#include "sparse/ops.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace gmpsvm {
namespace {

CsrMatrix RandomSparse(int64_t rows, int64_t cols, double density, uint64_t seed) {
  Rng rng(seed);
  CsrBuilder b(cols);
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<int32_t> idx;
    std::vector<double> val;
    for (int32_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.Normal());
      }
    }
    b.AddRow(idx, val);
  }
  return ValueOrDie(b.Finish());
}

double NaiveDot(const CsrMatrix& a, int64_t i, const CsrMatrix& bm, int64_t j) {
  auto da = a.ToDense();
  auto db = bm.ToDense();
  double dot = 0.0;
  for (int64_t c = 0; c < a.cols(); ++c) {
    dot += da[i * a.cols() + c] * db[j * bm.cols() + c];
  }
  return dot;
}

TEST(BatchRowDotsTest, MatchesNaiveDense) {
  CsrMatrix x = RandomSparse(20, 15, 0.3, 42);
  std::vector<int32_t> batch = {0, 5, 19};
  std::vector<int32_t> targets = {1, 2, 3, 10, 19};
  std::vector<double> out(batch.size() * targets.size());
  BatchRowDots(x, batch, targets, out.data());
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    for (size_t tj = 0; tj < targets.size(); ++tj) {
      EXPECT_NEAR(out[bi * targets.size() + tj],
                  NaiveDot(x, batch[bi], x, targets[tj]), 1e-12)
          << "batch " << bi << " target " << tj;
    }
  }
}

TEST(BatchRowDotsTest, StatsReflectWork) {
  CsrMatrix x = RandomSparse(10, 8, 0.5, 7);
  std::vector<int32_t> batch = {0, 1};
  std::vector<int32_t> targets = {2, 3, 4};
  std::vector<double> out(6);
  OpStats stats = BatchRowDots(x, batch, targets, out.data());
  // 2 flops per streamed nonzero of each target row, per batch row.
  double nnz_targets = 0;
  for (int32_t t : targets) nnz_targets += static_cast<double>(x.RowNnz(t));
  EXPECT_DOUBLE_EQ(stats.flops, 2.0 * 2.0 * nnz_targets);
  EXPECT_GT(stats.bytes_read, 0.0);
  EXPECT_DOUBLE_EQ(stats.bytes_written, 6.0 * sizeof(double));
}

TEST(BatchRowDotsTest, EmptyBatch) {
  CsrMatrix x = RandomSparse(5, 5, 0.5, 3);
  std::vector<double> out;
  OpStats stats = BatchRowDots(x, {}, {}, out.data());
  EXPECT_DOUBLE_EQ(stats.flops, 0.0);
}

TEST(BatchRowDots2Test, CrossMatrixMatchesNaive) {
  CsrMatrix a = RandomSparse(8, 12, 0.4, 1);
  CsrMatrix b = RandomSparse(10, 12, 0.4, 2);
  std::vector<int32_t> batch = {0, 7};
  std::vector<int32_t> targets = {0, 4, 9};
  std::vector<double> out(6);
  BatchRowDots2(a, batch, b, targets, out.data());
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    for (size_t tj = 0; tj < targets.size(); ++tj) {
      EXPECT_NEAR(out[bi * targets.size() + tj],
                  NaiveDot(a, batch[bi], b, targets[tj]), 1e-12);
    }
  }
}

TEST(DenseBatchRowDotsTest, MatchesSparsePath) {
  CsrMatrix x = RandomSparse(12, 9, 0.5, 11);
  DenseMatrix d(x.rows(), x.cols(), x.ToDense());
  std::vector<int32_t> batch = {0, 3, 11};
  std::vector<int32_t> targets = {1, 2, 3, 4};
  std::vector<double> sparse_out(12), dense_out(12);
  BatchRowDots(x, batch, targets, sparse_out.data());
  DenseBatchRowDots(d, batch, targets, dense_out.data());
  for (size_t i = 0; i < sparse_out.size(); ++i) {
    EXPECT_NEAR(sparse_out[i], dense_out[i], 1e-12);
  }
}

TEST(DenseBatchRowDotsTest, DenseCostsMoreFlopsOnSparseData) {
  // The representational point behind Figure 10: on sparse data the dense
  // path performs ~1/density times more arithmetic.
  CsrMatrix x = RandomSparse(30, 200, 0.05, 21);
  DenseMatrix d(x.rows(), x.cols(), x.ToDense());
  std::vector<int32_t> batch = {0, 1, 2};
  std::vector<int32_t> targets;
  for (int32_t t = 3; t < 30; ++t) targets.push_back(t);
  std::vector<double> out(batch.size() * targets.size());
  OpStats sparse_stats = BatchRowDots(x, batch, targets, out.data());
  OpStats dense_stats = DenseBatchRowDots(d, batch, targets, out.data());
  EXPECT_GT(dense_stats.flops, 5.0 * sparse_stats.flops);
}

TEST(SpMVTest, MatchesNaive) {
  CsrMatrix x = RandomSparse(10, 6, 0.5, 9);
  std::vector<double> v = {1, -1, 2, 0.5, 0, 3};
  std::vector<int32_t> rows = {0, 4, 9};
  std::vector<double> out(3);
  SpMV(x, rows, v, out.data());
  auto dense = x.ToDense();
  for (size_t j = 0; j < rows.size(); ++j) {
    double expect = 0.0;
    for (int64_t c = 0; c < x.cols(); ++c) {
      expect += dense[rows[j] * x.cols() + c] * v[static_cast<size_t>(c)];
    }
    EXPECT_NEAR(out[j], expect, 1e-12);
  }
}

TEST(ParallelOpsTest, PoolDoesNotChangeResultsOrStats) {
  // Every op routed through a ThreadPool must return bitwise-identical
  // outputs AND bitwise-identical OpStats: per-row flop accounting is summed
  // in serial row order regardless of which thread computed the row.
  CsrMatrix x = RandomSparse(120, 64, 0.2, 21);
  CsrMatrix b = RandomSparse(80, 64, 0.15, 22);
  std::vector<int32_t> batch, targets, brows;
  for (int32_t i = 0; i < 120; i += 3) batch.push_back(i);
  for (int32_t i = 0; i < 120; i += 2) targets.push_back(i);
  for (int32_t i = 0; i < 80; i += 2) brows.push_back(i);
  ThreadPool pool(4);

  {
    std::vector<double> serial(batch.size() * targets.size());
    std::vector<double> parallel(serial.size(), -1.0);
    OpStats s = BatchRowDots(x, batch, targets, serial.data());
    OpStats p = BatchRowDots(x, batch, targets, parallel.data(), &pool);
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(double)));
    EXPECT_EQ(s.flops, p.flops);
    EXPECT_EQ(s.bytes_read, p.bytes_read);
    EXPECT_EQ(s.bytes_written, p.bytes_written);
  }
  {
    std::vector<double> serial(batch.size() * brows.size());
    std::vector<double> parallel(serial.size(), -1.0);
    OpStats s = BatchRowDots2(x, batch, b, brows, serial.data());
    OpStats p = BatchRowDots2(x, batch, b, brows, parallel.data(), &pool);
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(double)));
    EXPECT_EQ(s.flops, p.flops);
    EXPECT_EQ(s.bytes_read, p.bytes_read);
    EXPECT_EQ(s.bytes_written, p.bytes_written);
  }
  {
    std::vector<double> v(static_cast<size_t>(x.cols()));
    for (size_t i = 0; i < v.size(); ++i) v[i] = 0.25 * static_cast<double>(i) - 3.0;
    std::vector<double> serial(batch.size());
    std::vector<double> parallel(serial.size(), -1.0);
    OpStats s = SpMV(x, batch, v, serial.data());
    OpStats p = SpMV(x, batch, v, parallel.data(), &pool);
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(double)));
    EXPECT_EQ(s.flops, p.flops);
  }
  {
    DenseMatrix dense(x.rows(), x.cols(), x.ToDense());
    std::vector<double> serial(batch.size() * targets.size());
    std::vector<double> parallel(serial.size(), -1.0);
    OpStats s = DenseBatchRowDots(dense, batch, targets, serial.data());
    OpStats p = DenseBatchRowDots(dense, batch, targets, parallel.data(), &pool);
    EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                             serial.size() * sizeof(double)));
    EXPECT_EQ(s.flops, p.flops);
  }
}

TEST(ParallelOpsTest, OpStatsBitwiseIdenticalAcrossPoolSizes) {
  // Satellite check for the SIMD tier: aggregated OpStats (and outputs) must
  // be byte-identical for pool sizes {0, 1, 4} — no pool, a degenerate pool
  // that runs serial, and a real 4-thread pool — on BatchRowDots and SpMV.
  CsrMatrix x = RandomSparse(90, 48, 0.25, 33);
  std::vector<int32_t> batch, targets;
  for (int32_t i = 0; i < 90; i += 2) batch.push_back(i);
  for (int32_t i = 0; i < 90; i += 3) targets.push_back(i);
  std::vector<double> vec(static_cast<size_t>(x.cols()));
  for (size_t i = 0; i < vec.size(); ++i) {
    vec[i] = 0.5 * static_cast<double>(i % 7) - 1.5;
  }

  ThreadPool pool1(1);
  ThreadPool pool4(4);
  ThreadPool* const pools[] = {nullptr, &pool1, &pool4};

  std::vector<std::vector<double>> dots_out;
  std::vector<OpStats> dots_stats;
  std::vector<std::vector<double>> spmv_out;
  std::vector<OpStats> spmv_stats;
  for (ThreadPool* pool : pools) {
    dots_out.emplace_back(batch.size() * targets.size(), -7.0);
    dots_stats.push_back(BatchRowDots(x, batch, targets,
                                      dots_out.back().data(), pool));
    spmv_out.emplace_back(batch.size(), -7.0);
    spmv_stats.push_back(SpMV(x, batch, vec, spmv_out.back().data(), pool));
  }
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(0, std::memcmp(dots_out[0].data(), dots_out[i].data(),
                             dots_out[0].size() * sizeof(double)))
        << "BatchRowDots output, pool variant " << i;
    EXPECT_EQ(dots_stats[0].flops, dots_stats[i].flops);
    EXPECT_EQ(dots_stats[0].bytes_read, dots_stats[i].bytes_read);
    EXPECT_EQ(dots_stats[0].bytes_written, dots_stats[i].bytes_written);
    EXPECT_EQ(0, std::memcmp(spmv_out[0].data(), spmv_out[i].data(),
                             spmv_out[0].size() * sizeof(double)))
        << "SpMV output, pool variant " << i;
    EXPECT_EQ(spmv_stats[0].flops, spmv_stats[i].flops);
    EXPECT_EQ(spmv_stats[0].bytes_read, spmv_stats[i].bytes_read);
    EXPECT_EQ(spmv_stats[0].bytes_written, spmv_stats[i].bytes_written);
  }
}

TEST(ScatterRowDotsTest, StatsMatchSingleRowBatch) {
  // ScatterRowDots must report the same OpStats as a one-row BatchRowDots2
  // over the same targets: flops = 2*nnz of the touched target rows,
  // bytes_read covering both the scattered row and the target rows.
  CsrMatrix a = RandomSparse(20, 40, 0.3, 44);
  CsrMatrix b = RandomSparse(30, 40, 0.2, 45);
  std::vector<int32_t> targets;
  for (int32_t i = 0; i < 30; i += 2) targets.push_back(i);
  const std::vector<int32_t> batch = {7};

  std::vector<double> scatter(targets.size(), -1.0);
  std::vector<double> batched(targets.size(), -2.0);
  OpStats s = ScatterRowDots(a, 7, b, targets, scatter.data());
  OpStats t = BatchRowDots2(a, batch, b, targets, batched.data());
  EXPECT_EQ(0, std::memcmp(scatter.data(), batched.data(),
                           scatter.size() * sizeof(double)));
  EXPECT_EQ(s.flops, t.flops);
  EXPECT_EQ(s.bytes_read, t.bytes_read);
  EXPECT_EQ(s.bytes_written, t.bytes_written);
  EXPECT_GT(s.flops, 0.0);
}

TEST(OpStatsTest, Accumulates) {
  OpStats a{10, 20, 30};
  OpStats b{1, 2, 3};
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 11);
  EXPECT_DOUBLE_EQ(a.bytes_read, 22);
  EXPECT_DOUBLE_EQ(a.bytes_written, 33);
}

}  // namespace
}  // namespace gmpsvm
