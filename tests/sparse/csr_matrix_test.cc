#include "sparse/csr_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gmpsvm {
namespace {

// 3x4 matrix:
//   [1 0 2 0]
//   [0 3 0 0]
//   [4 0 0 5]
CsrMatrix MakeTestMatrix() {
  CsrBuilder b(4);
  b.AddRow(std::vector<int32_t>{0, 2}, std::vector<double>{1, 2});
  b.AddRow(std::vector<int32_t>{1}, std::vector<double>{3});
  b.AddRow(std::vector<int32_t>{0, 3}, std::vector<double>{4, 5});
  return ValueOrDie(b.Finish());
}

TEST(CsrMatrixTest, BasicProperties) {
  CsrMatrix m = MakeTestMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
}

TEST(CsrMatrixTest, RowViews) {
  CsrMatrix m = MakeTestMatrix();
  auto idx = m.RowIndices(2);
  auto val = m.RowValues(2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 3);
  EXPECT_DOUBLE_EQ(val[0], 4.0);
  EXPECT_DOUBLE_EQ(val[1], 5.0);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrBuilder b(10);
  CsrMatrix m = ValueOrDie(b.Finish());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrixTest, EmptyRowsAllowed) {
  CsrBuilder b(4);
  b.AddRow(std::vector<int32_t>{}, std::vector<double>{});
  b.AddRow(std::vector<int32_t>{2}, std::vector<double>{7});
  CsrMatrix m = ValueOrDie(b.Finish());
  EXPECT_EQ(m.RowNnz(0), 0);
  EXPECT_DOUBLE_EQ(m.RowDot(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.RowSquaredNorm(0), 0.0);
}

TEST(CsrMatrixTest, RowDot) {
  CsrMatrix m = MakeTestMatrix();
  EXPECT_DOUBLE_EQ(m.RowDot(0, 0), 1 * 1 + 2 * 2);
  EXPECT_DOUBLE_EQ(m.RowDot(0, 1), 0.0);   // disjoint support
  EXPECT_DOUBLE_EQ(m.RowDot(0, 2), 4.0);   // shared column 0
  EXPECT_DOUBLE_EQ(m.RowDot(2, 0), 4.0);   // symmetric
}

TEST(CsrMatrixTest, RowSquaredNorms) {
  CsrMatrix m = MakeTestMatrix();
  EXPECT_DOUBLE_EQ(m.RowSquaredNorm(0), 5.0);
  EXPECT_DOUBLE_EQ(m.RowSquaredNorm(1), 9.0);
  auto norms = m.AllRowSquaredNorms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[2], 41.0);
}

TEST(CsrMatrixTest, SelectRowsPreservesContentAndOrder) {
  CsrMatrix m = MakeTestMatrix();
  std::vector<int32_t> pick = {2, 0};
  CsrMatrix sub = m.SelectRows(pick);
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.cols(), 4);
  EXPECT_DOUBLE_EQ(sub.RowValues(0)[0], 4.0);  // old row 2 first
  EXPECT_DOUBLE_EQ(sub.RowValues(1)[0], 1.0);
}

TEST(CsrMatrixTest, ToDense) {
  CsrMatrix m = MakeTestMatrix();
  auto dense = m.ToDense();
  ASSERT_EQ(dense.size(), 12u);
  EXPECT_DOUBLE_EQ(dense[0 * 4 + 0], 1.0);
  EXPECT_DOUBLE_EQ(dense[0 * 4 + 1], 0.0);
  EXPECT_DOUBLE_EQ(dense[1 * 4 + 1], 3.0);
  EXPECT_DOUBLE_EQ(dense[2 * 4 + 3], 5.0);
}

TEST(CsrMatrixTest, ByteSizeCountsArrays) {
  CsrMatrix m = MakeTestMatrix();
  EXPECT_EQ(m.ByteSize(), 4 * sizeof(int64_t) + 5 * sizeof(int32_t) + 5 * sizeof(double));
}

TEST(CsrMatrixCreateTest, RejectsBadRowPtrSize) {
  auto r = CsrMatrix::Create(2, 3, {0, 1}, {0}, {1.0});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(CsrMatrixCreateTest, RejectsInconsistentLengths) {
  auto r = CsrMatrix::Create(1, 3, {0, 2}, {0}, {1.0});
  EXPECT_FALSE(r.ok());
}

TEST(CsrMatrixCreateTest, RejectsOutOfRangeColumn) {
  auto r = CsrMatrix::Create(1, 3, {0, 1}, {5}, {1.0});
  EXPECT_FALSE(r.ok());
}

TEST(CsrMatrixCreateTest, RejectsUnsortedColumns) {
  auto r = CsrMatrix::Create(1, 5, {0, 2}, {3, 1}, {1.0, 2.0});
  EXPECT_FALSE(r.ok());
}

TEST(CsrMatrixCreateTest, RejectsDuplicateColumns) {
  auto r = CsrMatrix::Create(1, 5, {0, 2}, {3, 3}, {1.0, 2.0});
  EXPECT_FALSE(r.ok());
}

TEST(CsrMatrixCreateTest, RejectsDecreasingRowPtr) {
  auto r = CsrMatrix::Create(2, 3, {0, 2, 1}, {0, 1}, {1.0, 2.0});
  EXPECT_FALSE(r.ok());
}

TEST(CsrBuilderTest, AddRowUnsortedSorts) {
  CsrBuilder b(10);
  b.AddRowUnsorted({{7, 1.0}, {2, 2.0}, {5, 3.0}});
  CsrMatrix m = ValueOrDie(b.Finish());
  auto idx = m.RowIndices(0);
  EXPECT_EQ(idx[0], 2);
  EXPECT_EQ(idx[1], 5);
  EXPECT_EQ(idx[2], 7);
  EXPECT_DOUBLE_EQ(m.RowValues(0)[0], 2.0);
}

TEST(CsrBuilderTest, FinishResetsBuilder) {
  CsrBuilder b(3);
  b.AddRow(std::vector<int32_t>{0}, std::vector<double>{1});
  CsrMatrix first = ValueOrDie(b.Finish());
  EXPECT_EQ(first.rows(), 1);
  EXPECT_EQ(b.rows(), 0);
  b.AddRow(std::vector<int32_t>{1, 2}, std::vector<double>{4, 5});
  CsrMatrix second = ValueOrDie(b.Finish());
  EXPECT_EQ(second.rows(), 1);
  EXPECT_EQ(second.nnz(), 2);
}

}  // namespace
}  // namespace gmpsvm
