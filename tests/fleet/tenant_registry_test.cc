#include "fleet/tenant_registry.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "fault/fault_injector.h"

namespace gmpsvm::fleet {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 15, 5, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

TenantSpec Spec(const std::string& name, int priority = 0) {
  TenantSpec spec;
  spec.name = name;
  spec.priority = priority;
  return spec;
}

TEST(TenantRegistryTest, AddAndGet) {
  TenantRegistry registry;
  EXPECT_EQ(ValueOrDie(registry.AddTenant(Spec("acme", 2), TrainSmallModel(1))),
            1);
  auto spec = ValueOrDie(registry.GetSpec("acme"));
  EXPECT_EQ(spec.name, "acme");
  EXPECT_EQ(spec.priority, 2);
  auto handle = ValueOrDie(registry.GetModel("acme"));
  EXPECT_EQ(handle.version, 1);
  EXPECT_EQ(handle.name, TenantRegistry::ModelKey("acme"));
  EXPECT_EQ(handle.model->num_classes, 3);
}

TEST(TenantRegistryTest, RejectsMalformedSpecs) {
  TenantRegistry registry;
  EXPECT_TRUE(registry.AddTenant(Spec(""), TrainSmallModel(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.AddTenant(Spec("a:b"), TrainSmallModel(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.AddTenant(Spec("a b"), TrainSmallModel(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.AddTenant(Spec("ok", -1), TrainSmallModel(1))
                  .status()
                  .IsInvalidArgument());
  TenantSpec negative_weight = Spec("w");
  negative_weight.weight = -1.0;
  EXPECT_TRUE(registry.AddTenant(negative_weight, TrainSmallModel(1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(TenantRegistryTest, DuplicateTenantFails) {
  TenantRegistry registry;
  ValueOrDie(registry.AddTenant(Spec("acme"), TrainSmallModel(1)));
  auto dup = registry.AddTenant(Spec("acme"), TrainSmallModel(2));
  EXPECT_TRUE(dup.status().IsFailedPrecondition());
}

TEST(TenantRegistryTest, SwapBumpsVersionPerTenant) {
  TenantRegistry registry;
  ValueOrDie(registry.AddTenant(Spec("a"), TrainSmallModel(1)));
  ValueOrDie(registry.AddTenant(Spec("b"), TrainSmallModel(2)));
  EXPECT_EQ(ValueOrDie(registry.SwapModel("a", TrainSmallModel(3))), 2);
  EXPECT_EQ(ValueOrDie(registry.SwapModel("a", TrainSmallModel(4))), 3);
  // Tenant b's chain is independent.
  EXPECT_EQ(ValueOrDie(registry.GetModel("b")).version, 1);
  // Swapping a tenant that does not exist is an error, not a create.
  EXPECT_TRUE(registry.SwapModel("ghost", TrainSmallModel(5))
                  .status()
                  .IsFailedPrecondition());
}

TEST(TenantRegistryTest, ValidatorRejectionLeavesOldVersionServing) {
  TenantRegistry registry;
  registry.SetValidator([](const MpSvmModel& model) {
    return model.num_classes >= 3
               ? Status::OK()
               : Status::InvalidArgument("needs >= 3 classes");
  });
  ValueOrDie(registry.AddTenant(Spec("acme"), TrainSmallModel(1, /*k=*/3)));
  auto rejected = registry.SwapModel("acme", TrainSmallModel(2, /*k=*/2));
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  auto handle = ValueOrDie(registry.GetModel("acme"));
  EXPECT_EQ(handle.version, 1);
  EXPECT_EQ(handle.model->num_classes, 3);
  // A rejected initial registration must not create the tenant at all.
  EXPECT_FALSE(
      registry.AddTenant(Spec("bad"), TrainSmallModel(3, /*k=*/2)).ok());
  EXPECT_FALSE(registry.GetSpec("bad").ok());
}

TEST(TenantRegistryTest, InjectedSwapFaultRollsBack) {
  fault::FaultPlan plan;
  plan.swap_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);

  TenantRegistry registry;
  ValueOrDie(registry.AddTenant(Spec("acme"), TrainSmallModel(1)));
  registry.SetFaultInjector(&injector);
  auto failed = registry.SwapModel("acme", TrainSmallModel(2));
  EXPECT_TRUE(failed.status().IsUnavailable()) << failed.status().ToString();
  EXPECT_EQ(ValueOrDie(registry.GetModel("acme")).version, 1);
  registry.SetFaultInjector(nullptr);
  EXPECT_EQ(ValueOrDie(registry.SwapModel("acme", TrainSmallModel(2))), 2);
}

TEST(TenantRegistryTest, NamespacesCannotCollideWithDirectModels) {
  TenantRegistry registry;
  ValueOrDie(registry.AddTenant(Spec("acme"), TrainSmallModel(1)));
  // A model registered directly under a plain name is a different key space.
  ValueOrDie(registry.models()->Register("acme", TrainSmallModel(2)));
  EXPECT_EQ(registry.models()->size(), 2u);
  EXPECT_EQ(TenantRegistry::ModelKey("acme"), "tenant:acme");
}

TEST(TenantRegistryTest, RemoveAndEnumerate) {
  TenantRegistry registry;
  ValueOrDie(registry.AddTenant(Spec("b", 1), TrainSmallModel(1)));
  ValueOrDie(registry.AddTenant(Spec("a", 4), TrainSmallModel(2)));
  EXPECT_EQ(registry.Tenants(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(registry.max_priority(), 4);
  EXPECT_TRUE(registry.RemoveTenant("a"));
  EXPECT_FALSE(registry.RemoveTenant("a"));
  EXPECT_EQ(registry.max_priority(), 1);
  EXPECT_FALSE(registry.GetModel("a").ok());
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace gmpsvm::fleet
