#include "fleet/fleet_server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fleet/fleet_config.h"

namespace gmpsvm::fleet {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 15, 5, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

// Trained once; tests copy it into tenants.
const MpSvmModel& SharedModel() {
  static const MpSvmModel* const model = new MpSvmModel(TrainSmallModel(7));
  return *model;
}

TenantSpec Spec(const std::string& name, int priority = 0) {
  TenantSpec spec;
  spec.name = name;
  spec.priority = priority;
  return spec;
}

const TenantStatsSnapshot& TenantSnap(const FleetStatsSnapshot& snap,
                                      const std::string& name) {
  for (const TenantStatsSnapshot& tenant : snap.tenants) {
    if (tenant.tenant == name) return tenant;
  }
  ADD_FAILURE() << "no tenant " << name << " in snapshot";
  static const TenantStatsSnapshot empty;
  return empty;
}

TEST(FleetServerTest, PredictMatchesOfflinePredictorByteForByte) {
  FleetOptions options;
  options.serve.num_workers = 2;
  options.initial_replicas = 1;
  FleetServer fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ValueOrDie(fleet.AddTenant(Spec("acme"), MpSvmModel(SharedModel())));
  ValueOrDie(fleet.AddTenant(Spec("beta"), MpSvmModel(SharedModel())));

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 6, 5, 2.5, 42));
  SimExecutor ref_exec(ExecutorModel::TeslaP100());
  auto reference = ValueOrDie(MpSvmPredictor(&SharedModel())
                                  .Predict(queries.features(), &ref_exec,
                                           PredictOptions{}));

  const CsrMatrix& rows = queries.features();
  for (const char* tenant : {"acme", "beta"}) {
    for (int64_t i = 0; i < queries.size(); ++i) {
      auto response = ValueOrDie(
          fleet.Predict(tenant, rows.RowIndices(i), rows.RowValues(i)));
      ASSERT_EQ(response.probabilities.size(),
                static_cast<size_t>(reference.num_classes));
      EXPECT_EQ(std::memcmp(
                    response.probabilities.data(),
                    reference.probabilities.data() + i * reference.num_classes,
                    sizeof(double) * reference.num_classes),
                0)
          << tenant << " row " << i;
      EXPECT_EQ(response.label, reference.labels[i]);
      EXPECT_EQ(response.model_version, 1);
    }
  }

  EXPECT_TRUE(fleet.Shutdown().ok());
  FleetStatsSnapshot snap = fleet.Snapshot();
  const uint64_t n = static_cast<uint64_t>(queries.size());
  EXPECT_EQ(TenantSnap(snap, "acme").completed, n);
  EXPECT_EQ(TenantSnap(snap, "beta").completed, n);
  // The second tenant's identical queries were served from the shared store.
  EXPECT_GT(snap.sv.hits, 0);
  EXPECT_GT(snap.kernel_values_computed, 0);
  EXPECT_NE(snap.ToTable().find("acme"), std::string::npos);
}

TEST(FleetServerTest, SubmitFailsWithoutReplicasOrTenant) {
  FleetServer fleet(FleetOptions{});
  ValueOrDie(fleet.AddTenant(Spec("acme"), MpSvmModel(SharedModel())));

  const std::vector<int32_t> indices = {0, 2};
  const std::vector<double> values = {1.0, -0.5};
  // Before Start() there is nothing to serve on.
  EXPECT_TRUE(
      fleet.Submit("acme", indices, values).status().IsFailedPrecondition());

  ASSERT_TRUE(fleet.Start().ok());
  // A tenant that was never added is an admission error, not a crash.
  EXPECT_TRUE(
      fleet.Submit("ghost", indices, values).status().IsFailedPrecondition());
  EXPECT_TRUE(fleet.Shutdown().ok());
}

TEST(FleetServerTest, QuotaShedsWithRetryAfterHint) {
  FleetOptions options;
  options.serve.num_workers = 1;
  FleetServer fleet(options);
  ASSERT_TRUE(fleet.Start().ok());

  TenantSpec metered = Spec("metered");
  metered.quota.rate_per_sec = 1e-9;  // never refills within the test
  metered.quota.burst = 2.0;
  ValueOrDie(fleet.AddTenant(metered, MpSvmModel(SharedModel())));

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 2, 5, 2.5, 42));
  const CsrMatrix& rows = queries.features();
  ValueOrDie(fleet.Predict("metered", rows.RowIndices(0), rows.RowValues(0)));
  ValueOrDie(fleet.Predict("metered", rows.RowIndices(1), rows.RowValues(1)));

  auto shed = fleet.Submit("metered", rows.RowIndices(0), rows.RowValues(0));
  ASSERT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("retry after"), std::string::npos);

  EXPECT_TRUE(fleet.Shutdown().ok());
  const FleetStatsSnapshot snap = fleet.Snapshot();
  EXPECT_EQ(TenantSnap(snap, "metered").shed_quota, 1u);
  EXPECT_EQ(TenantSnap(snap, "metered").completed, 2u);
}

TEST(FleetServerTest, OverloadShedsLowestPriorityFirst) {
  FleetOptions options;
  options.serve.num_workers = 1;
  options.serve.queue_capacity = 8;
  options.initial_replicas = 1;
  options.autoscale.max_replicas = 1;
  options.shed_start_fraction = 0.5;
  FleetServer fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ValueOrDie(fleet.AddTenant(Spec("lo", /*priority=*/0),
                             MpSvmModel(SharedModel())));
  ValueOrDie(fleet.AddTenant(Spec("hi", /*priority=*/1),
                             MpSvmModel(SharedModel())));

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 3, 5, 2.5, 42));
  const CsrMatrix& rows = queries.features();
  auto submit = [&](const char* tenant) {
    return fleet.Submit(tenant, rows.RowIndices(0), rows.RowValues(0));
  };

  // Freeze consumption so the backlog (and the queue fraction) is exact.
  fleet.PauseAll();
  std::vector<std::future<Result<PredictResponse>>> admitted;
  for (int i = 0; i < 7; ++i) {
    admitted.push_back(ValueOrDie(submit("hi")));
  }
  ASSERT_EQ(fleet.total_queue_depth(), 7u);

  // 7/8 full: above lo's rung (0.75) but below hi's (1.0).
  auto shed = submit("lo");
  ASSERT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("shed"), std::string::npos);
  admitted.push_back(ValueOrDie(submit("hi")));

  // Completely full: even the top priority is past its rung's capacity and
  // every replica queue rejects.
  auto rejected = submit("hi");
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();

  fleet.ResumeAll();
  for (auto& future : admitted) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_TRUE(fleet.Shutdown().ok());

  const FleetStatsSnapshot snap = fleet.Snapshot();
  EXPECT_EQ(TenantSnap(snap, "lo").shed_overload, 1u);
  EXPECT_EQ(TenantSnap(snap, "lo").completed, 0u);
  EXPECT_EQ(TenantSnap(snap, "hi").shed_overload, 0u);
  EXPECT_EQ(TenantSnap(snap, "hi").rejected, 1u);
  EXPECT_EQ(TenantSnap(snap, "hi").completed, 8u);
}

TEST(FleetServerTest, AutoscalesUpUnderBacklogAndDownWhenIdle) {
  FleetOptions options;
  options.serve.num_workers = 1;
  options.initial_replicas = 1;
  options.autoscale.min_replicas = 1;
  options.autoscale.max_replicas = 3;
  options.autoscale.scale_up_depth = 2.0;
  options.autoscale.scale_up_ticks = 2;
  options.autoscale.scale_down_depth = 0.25;
  options.autoscale.scale_down_ticks = 2;
  FleetServer fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ValueOrDie(fleet.AddTenant(Spec("acme"), MpSvmModel(SharedModel())));
  ASSERT_EQ(fleet.num_replicas(), 1);

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 4, 5, 2.5, 42));
  const CsrMatrix& rows = queries.features();

  fleet.PauseAll();
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(ValueOrDie(fleet.Submit(
        "acme", rows.RowIndices(i % queries.size()),
        rows.RowValues(i % queries.size()))));
  }

  // Two sustained hot observations per step; the ceiling then clamps.
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kHold);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kScaleUp);
  EXPECT_EQ(fleet.num_replicas(), 2);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kHold);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kScaleUp);
  EXPECT_EQ(fleet.num_replicas(), 3);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kHold);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kHold);  // at the ceiling
  EXPECT_EQ(fleet.num_replicas(), 3);

  fleet.ResumeAll();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }

  // Idle ticks drain-and-retire one replica per decision.
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kHold);
  EXPECT_EQ(fleet.ScaleTick(), ScaleDecision::kScaleDown);
  EXPECT_EQ(fleet.num_replicas(), 2);

  // A retired replica's work remains visible in the aggregate counters.
  EXPECT_TRUE(fleet.Shutdown().ok());
  const FleetStatsSnapshot snap = fleet.Snapshot();
  EXPECT_EQ(snap.scale_ups, 2u);
  EXPECT_EQ(snap.scale_downs, 1u);
  EXPECT_EQ(TenantSnap(snap, "acme").completed, 12u);
  EXPECT_GT(snap.kernel_values_computed, 0);
}

TEST(FleetServerTest, SwapGoesThroughValidatorAndServesTheNewVersion) {
  FleetOptions options;
  options.serve.num_workers = 1;
  FleetServer fleet(options);
  fleet.tenants().SetValidator([](const MpSvmModel& model) {
    return model.num_classes >= 3
               ? Status::OK()
               : Status::InvalidArgument("needs >= 3 classes");
  });
  ASSERT_TRUE(fleet.Start().ok());
  ValueOrDie(fleet.AddTenant(Spec("acme"), MpSvmModel(SharedModel())));

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 2, 5, 2.5, 42));
  const CsrMatrix& rows = queries.features();
  auto before = ValueOrDie(
      fleet.Predict("acme", rows.RowIndices(0), rows.RowValues(0)));
  EXPECT_EQ(before.model_version, 1);

  // A rejected candidate never serves; the old version keeps answering.
  EXPECT_TRUE(fleet.SwapTenantModel("acme", TrainSmallModel(8, /*k=*/2))
                  .status()
                  .IsInvalidArgument());
  auto still_v1 = ValueOrDie(
      fleet.Predict("acme", rows.RowIndices(0), rows.RowValues(0)));
  EXPECT_EQ(still_v1.model_version, 1);

  EXPECT_EQ(ValueOrDie(fleet.SwapTenantModel("acme", TrainSmallModel(9))), 2);
  auto after = ValueOrDie(
      fleet.Predict("acme", rows.RowIndices(0), rows.RowValues(0)));
  EXPECT_EQ(after.model_version, 2);
  EXPECT_TRUE(fleet.Shutdown().ok());
}

TEST(FleetServerTest, PerTenantPredictOverridesApply) {
  // Three tenants sharing one model but diverging in prediction options: the
  // fleet default (probability + exact), a voting tenant, and a cascade
  // tenant. Each tenant's answers must match the offline predictor run with
  // that tenant's effective options, byte for byte.
  FleetOptions options;
  options.serve.num_workers = 1;
  options.initial_replicas = 1;
  FleetServer fleet(options);
  ASSERT_TRUE(fleet.Start().ok());

  TenantSpec vote_spec = Spec("voter");
  vote_spec.predict.emplace();
  vote_spec.predict->decision = PredictOptions::Decision::kVoting;
  TenantSpec cascade_spec = Spec("pruner");
  cascade_spec.predict.emplace();
  cascade_spec.predict->cascade.mode = CascadeOptions::Mode::kEliminate;
  cascade_spec.predict->cascade.ambiguity_band = 0.0;
  ValueOrDie(fleet.AddTenant(Spec("plain"), MpSvmModel(SharedModel())));
  ValueOrDie(fleet.AddTenant(vote_spec, MpSvmModel(SharedModel())));
  ValueOrDie(fleet.AddTenant(cascade_spec, MpSvmModel(SharedModel())));

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 4, 5, 2.5, 43));
  const CsrMatrix& rows = queries.features();
  const auto reference_for = [&](const PredictOptions& predict) {
    SimExecutor exec(ExecutorModel::TeslaP100());
    return ValueOrDie(MpSvmPredictor(&SharedModel())
                          .Predict(queries.features(), &exec, predict));
  };
  PredictOptions voting;
  voting.decision = PredictOptions::Decision::kVoting;
  const PredictResult plain_ref = reference_for(PredictOptions{});
  const PredictResult vote_ref = reference_for(voting);
  const PredictResult cascade_ref = reference_for(*cascade_spec.predict);

  const auto expect_matches = [&](const std::string& tenant,
                                  const PredictResult& reference) {
    for (int64_t i = 0; i < queries.size(); ++i) {
      auto response = ValueOrDie(
          fleet.Predict(tenant, rows.RowIndices(i), rows.RowValues(i)));
      ASSERT_EQ(response.probabilities.size(),
                static_cast<size_t>(reference.num_classes));
      EXPECT_EQ(std::memcmp(
                    response.probabilities.data(),
                    reference.probabilities.data() + i * reference.num_classes,
                    sizeof(double) * reference.num_classes),
                0)
          << tenant << " row " << i;
      EXPECT_EQ(response.label, reference.labels[i]) << tenant << " row " << i;
    }
  };
  expect_matches("plain", plain_ref);
  expect_matches("voter", vote_ref);
  expect_matches("pruner", cascade_ref);
  // Voting and probability disagree on the probability vector itself (vote
  // fractions vs coupled probabilities), proving the override really applied.
  EXPECT_NE(0, std::memcmp(vote_ref.probabilities.data(),
                           plain_ref.probabilities.data(),
                           sizeof(double) * vote_ref.probabilities.size()));
  EXPECT_TRUE(fleet.Shutdown().ok());
}

TEST(FleetServerTest, AddTenantRejectsInvalidPredictOverride) {
  FleetServer fleet(FleetOptions{});
  TenantSpec spec = Spec("broken");
  spec.predict.emplace();
  spec.predict->cascade.budget = -5;
  auto result = fleet.AddTenant(spec, MpSvmModel(SharedModel()));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("broken"), std::string::npos);
  EXPECT_NE(result.status().message().find("cascade.budget"),
            std::string::npos);
}

TEST(FleetConfigTest, ParsesPerTenantPredictKeys) {
  auto config = ValueOrDie(ParseFleetConfig(
      "replicas 1\n"
      "tenant plain model=a.model\n"
      "tenant voter model=b.model decision=voting weight=2\n"
      "tenant pruner model=c.model cascade=eliminate cascade_budget=16 "
      "cascade_threshold=1.5 cascade_band=0.1\n"));
  ASSERT_EQ(config.tenants.size(), 3u);
  EXPECT_FALSE(config.tenants[0].spec.predict.has_value());
  ASSERT_TRUE(config.tenants[1].spec.predict.has_value());
  EXPECT_EQ(config.tenants[1].spec.predict->decision,
            PredictOptions::Decision::kVoting);
  ASSERT_TRUE(config.tenants[2].spec.predict.has_value());
  const PredictOptions& pruner = *config.tenants[2].spec.predict;
  EXPECT_EQ(pruner.cascade.mode, CascadeOptions::Mode::kEliminate);
  EXPECT_EQ(pruner.cascade.budget, 16);
  EXPECT_DOUBLE_EQ(pruner.cascade.elimination_threshold, 1.5);
  EXPECT_DOUBLE_EQ(pruner.cascade.ambiguity_band, 0.1);
}

TEST(FleetConfigTest, ParsesAndValidatesSimdKey) {
  // scalar is supported on every CPU, so this parses everywhere.
  auto config = ValueOrDie(ParseFleetConfig(
      "replicas 1\n"
      "tenant slow model=a.model simd=scalar\n"
      "tenant fast model=b.model simd=auto\n"));
  ASSERT_EQ(config.tenants.size(), 2u);
  ASSERT_TRUE(config.tenants[0].spec.predict.has_value());
  EXPECT_EQ(config.tenants[0].spec.predict->simd, simd::SimdTier::kScalar);
  ASSERT_TRUE(config.tenants[1].spec.predict.has_value());
  EXPECT_EQ(config.tenants[1].spec.predict->simd, simd::SimdTier::kAuto);

  auto bad_name = ParseFleetConfig("tenant t model=a.model simd=sse9\n");
  ASSERT_FALSE(bad_name.ok());
  EXPECT_NE(bad_name.status().message().find("line 1"), std::string::npos);

  // A real tier the CPU cannot run fails Validate() with the line number.
  const simd::SimdTier foreign = simd::TierSupported(simd::SimdTier::kAvx2)
                                     ? simd::SimdTier::kNeon
                                     : simd::SimdTier::kAvx2;
  auto unsupported = ParseFleetConfig(
      std::string("tenant t model=a.model simd=") + simd::TierName(foreign) +
      "\n");
  ASSERT_FALSE(unsupported.ok());
  EXPECT_NE(unsupported.status().message().find("line 1"), std::string::npos);
}

TEST(FleetConfigTest, RejectsBadPredictKeysWithLineNumber) {
  auto bad_mode = ParseFleetConfig("tenant t model=a.model cascade=maybe\n");
  ASSERT_FALSE(bad_mode.ok());
  EXPECT_NE(bad_mode.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_mode.status().message().find("exact|eliminate"),
            std::string::npos);

  auto bad_decision =
      ParseFleetConfig("replicas 1\ntenant t model=a.model decision=coinflip\n");
  ASSERT_FALSE(bad_decision.ok());
  EXPECT_NE(bad_decision.status().message().find("line 2"), std::string::npos);

  // Structurally valid keys but invalid values fail Validate() at the line.
  auto bad_band = ParseFleetConfig(
      "tenant t model=a.model cascade=eliminate cascade_band=2.0\n");
  ASSERT_FALSE(bad_band.ok());
  EXPECT_NE(bad_band.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_band.status().message().find("cascade.ambiguity_band"),
            std::string::npos);
}

}  // namespace
}  // namespace gmpsvm::fleet
