#include "fleet/quota.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gmpsvm::fleet {
namespace {

TEST(QuotaTest, UnlimitedAlwaysAdmits) {
  TokenBucket bucket(QuotaSpec{});  // rate 0 = unlimited
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(0.0));
  }
  EXPECT_EQ(bucket.RetryAfterSeconds(0.0), 0.0);
}

TEST(QuotaTest, BucketStartsFullAndDrains) {
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/10.0, /*burst=*/4.0});
  // Full burst available immediately, then drained.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
}

TEST(QuotaTest, RefillsAtSustainedRate) {
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/10.0, /*burst=*/2.0});
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  // 0.1 s at 10/s refills exactly one token.
  EXPECT_TRUE(bucket.TryAcquire(0.1));
  EXPECT_FALSE(bucket.TryAcquire(0.1));
  // A long idle period refills only up to the burst cap.
  EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_FALSE(bucket.TryAcquire(100.0));
}

TEST(QuotaTest, RetryAfterHintMatchesRefillTime) {
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/4.0, /*burst=*/1.0});
  EXPECT_EQ(bucket.RetryAfterSeconds(0.0), 0.0);  // token ready
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  // Drained: a whole token accumulates after 1/rate seconds.
  EXPECT_NEAR(bucket.RetryAfterSeconds(0.0), 0.25, 1e-12);
  // Part-way through the refill the hint shrinks accordingly.
  EXPECT_NEAR(bucket.RetryAfterSeconds(0.1), 0.15, 1e-12);
  EXPECT_TRUE(bucket.TryAcquire(0.25));
}

TEST(QuotaTest, StaleTimestampRefillsNothing) {
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/10.0, /*burst=*/1.0});
  EXPECT_TRUE(bucket.TryAcquire(5.0));
  // Going "back in time" must not mint tokens.
  EXPECT_FALSE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(5.0));
  EXPECT_TRUE(bucket.TryAcquire(5.5));
}

TEST(QuotaTest, TinyBurstClampedToOneToken) {
  // A burst below one token could never admit anything; the bucket clamps.
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/10.0, /*burst=*/0.01});
  EXPECT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0));
}

TEST(QuotaTest, ConcurrentAcquiresNeverOveradmit) {
  TokenBucket bucket(QuotaSpec{/*rate_per_sec=*/1.0, /*burst=*/64.0});
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 32; ++i) {
        if (bucket.TryAcquire(0.0)) ++admitted;
      }
    });
  }
  for (auto& t : threads) t.join();
  // 8 threads x 32 tries against a 64-token bucket with no refill.
  EXPECT_EQ(admitted.load(), 64);
}

}  // namespace
}  // namespace gmpsvm::fleet
