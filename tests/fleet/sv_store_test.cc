#include "fleet/sv_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"

namespace gmpsvm::fleet {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 15, 5, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

// A fixture holding two registered snapshots of the same model content and
// a query dataset to gather against.
class SvStoreTest : public ::testing::Test {
 protected:
  SvStoreTest()
      : model_(TrainSmallModel(7)),
        queries_(ValueOrDie(MakeMulticlassBlobs(3, 4, 5, 2.5, 99))) {
    ValueOrDie(models_.Register("a", model_));
    ValueOrDie(models_.Register("b", model_));
  }

  SparseRowView Query(int64_t i) const {
    const CsrMatrix& rows = queries_.features();
    return SparseRowView{rows.RowIndices(i), rows.RowValues(i)};
  }

  int64_t pool() const { return model_.pool_size(); }

  // Gathers `q` through `cache`, asserts every slot missed, commits
  // synthetic values keyed by the slot index, scaled by `salt`.
  void MissAndCommit(PredictionKernelCache* cache, const SparseRowView& q,
                     double salt) {
    std::vector<double> out(pool(), 0.0);
    std::vector<uint8_t> hit(pool(), 0);
    ASSERT_EQ(cache->Gather(q, out, hit), 0);
    std::vector<double> values(pool());
    for (int64_t j = 0; j < pool(); ++j) values[j] = salt + 0.5 * j;
    cache->Commit(q, values, hit);
  }

  MpSvmModel model_;
  Dataset queries_;
  ModelRegistry models_;
};

TEST_F(SvStoreTest, BindDedupsIdenticalPoolsAcrossModels) {
  SvStore store;
  auto a = ValueOrDie(models_.Get("a"));
  auto b = ValueOrDie(models_.Get("b"));

  PredictionKernelCache* binding_a = store.Bind(a);
  PredictionKernelCache* binding_b = store.Bind(b);
  ASSERT_NE(binding_a, nullptr);
  ASSERT_NE(binding_b, nullptr);
  EXPECT_NE(binding_a, binding_b);  // distinct snapshots, distinct bindings
  // Re-binding the same snapshot is idempotent.
  EXPECT_EQ(store.Bind(a), binding_a);
  // An invalid handle never binds.
  EXPECT_EQ(store.Bind(ModelHandle{}), nullptr);

  SvStoreStats stats = store.stats();
  EXPECT_EQ(stats.models_bound, 2);
  EXPECT_EQ(stats.pool_rows, 2 * pool());
  // Identical content collapses onto one global identity per pool row.
  EXPECT_EQ(stats.unique_svs, pool());
}

TEST_F(SvStoreTest, MissThenCommitThenHitRoundTripsValues) {
  SvStore store;
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));
  const SparseRowView q = Query(0);

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, q, /*salt=*/1.0));

  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(cache->Gather(q, out, hit), pool());
  for (int64_t j = 0; j < pool(); ++j) {
    EXPECT_EQ(hit[j], 1);
    EXPECT_EQ(out[j], 1.0 + 0.5 * j);
  }

  SvStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, pool());
  EXPECT_EQ(stats.misses, pool());  // only the first gather missed
  EXPECT_EQ(stats.queries_interned, 1);
  EXPECT_EQ(stats.values_resident, pool());
}

TEST_F(SvStoreTest, ValuesCommittedViaOneModelHitFromAnother) {
  SvStore store;
  PredictionKernelCache* binding_a = store.Bind(ValueOrDie(models_.Get("a")));
  PredictionKernelCache* binding_b = store.Bind(ValueOrDie(models_.Get("b")));
  const SparseRowView q = Query(1);

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(binding_a, q, /*salt=*/3.0));

  // Model b references the same deduplicated support vectors, so the values
  // model a computed are served back — Section 3.3.3 across tenants.
  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(binding_b->Gather(q, out, hit), pool());
  for (int64_t j = 0; j < pool(); ++j) {
    EXPECT_EQ(out[j], 3.0 + 0.5 * j);
  }
}

TEST_F(SvStoreTest, DifferentKernelParamsNeverShare) {
  SvStore store;
  MpSvmModel other = model_;
  other.kernel.gamma *= 2.0;  // same rows, different kernel: distinct values
  ValueOrDie(models_.Register("c", std::move(other)));

  PredictionKernelCache* binding_a = store.Bind(ValueOrDie(models_.Get("a")));
  PredictionKernelCache* binding_c = store.Bind(ValueOrDie(models_.Get("c")));
  EXPECT_EQ(store.stats().unique_svs, 2 * pool());

  const SparseRowView q = Query(2);
  ASSERT_NO_FATAL_FAILURE(MissAndCommit(binding_a, q, /*salt=*/5.0));

  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(binding_c->Gather(q, out, hit), 0);
}

TEST_F(SvStoreTest, CapacityZeroDisablesValueCaching) {
  SvStoreOptions options;
  options.kernel_value_capacity = 0;
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));
  const SparseRowView q = Query(0);

  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(cache->Gather(q, out, hit), 0);
  std::vector<double> values(pool(), 1.0);
  cache->Commit(q, values, hit);
  EXPECT_EQ(cache->Gather(q, out, hit), 0);  // nothing was retained

  SvStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2 * pool());  // miss accounting still runs
  EXPECT_EQ(stats.values_resident, 0);
  EXPECT_EQ(stats.queries_interned, 0);
}

TEST_F(SvStoreTest, EvictsWholeQueriesInFifoOrder) {
  SvStoreOptions options;
  options.kernel_value_capacity = pool();  // room for exactly one query
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));
  const SparseRowView first = Query(0);
  const SparseRowView second = Query(1);

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, first, /*salt=*/1.0));
  // Exactly at capacity: nothing evicts yet.
  EXPECT_EQ(store.stats().values_evicted, 0);

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, second, /*salt=*/2.0));

  // The overflow retired the oldest query wholesale; the new one stayed.
  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(cache->Gather(first, out, hit), 0);
  std::fill(hit.begin(), hit.end(), 0);
  EXPECT_EQ(cache->Gather(second, out, hit), pool());

  SvStoreStats stats = store.stats();
  EXPECT_EQ(stats.values_evicted, pool());
  EXPECT_EQ(stats.values_resident, pool());
}

TEST_F(SvStoreTest, UnboundedCapacityNeverEvicts) {
  SvStoreOptions options;
  options.kernel_value_capacity = -1;
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));

  for (int64_t i = 0; i < queries_.size(); ++i) {
    ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(i), /*salt=*/i * 10.0));
  }
  SvStoreStats stats = store.stats();
  EXPECT_EQ(stats.values_evicted, 0);
  EXPECT_EQ(stats.values_resident, queries_.size() * pool());
}

TEST_F(SvStoreTest, FrequencyRetentionEvictsLeastUsedQuery) {
  SvStoreOptions options;
  options.kernel_value_capacity = 2 * pool();  // room for two queries
  options.retention = SvStoreOptions::RetentionPolicy::kFrequency;
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(0), /*salt=*/1.0));
  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(1), /*salt=*/2.0));

  // A hit on query 0 makes query 1 the least-used resident.
  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(cache->Gather(Query(0), out, hit), pool());

  std::fill(hit.begin(), hit.end(), 0);
  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(2), /*salt=*/3.0));

  // FIFO would have retired query 0 (the oldest); frequency retires the
  // never-rehit query 1 instead.
  std::fill(hit.begin(), hit.end(), 0);
  EXPECT_EQ(cache->Gather(Query(1), out, hit), 0);
  std::fill(hit.begin(), hit.end(), 0);
  EXPECT_EQ(cache->Gather(Query(0), out, hit), pool());
  for (int64_t j = 0; j < pool(); ++j) EXPECT_EQ(out[j], 1.0 + 0.5 * j);
  std::fill(hit.begin(), hit.end(), 0);
  EXPECT_EQ(cache->Gather(Query(2), out, hit), pool());
  EXPECT_EQ(store.stats().values_evicted, pool());
}

TEST_F(SvStoreTest, FrequencyTiesDegradeToFifoOrder) {
  SvStoreOptions options;
  options.kernel_value_capacity = pool();  // room for exactly one query
  options.retention = SvStoreOptions::RetentionPolicy::kFrequency;
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(0), /*salt=*/1.0));
  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(1), /*salt=*/2.0));

  // All uses equal: the tie-break is interning order, exactly FIFO.
  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  EXPECT_EQ(cache->Gather(Query(0), out, hit), 0);
  std::fill(hit.begin(), hit.end(), 0);
  EXPECT_EQ(cache->Gather(Query(1), out, hit), pool());
}

TEST_F(SvStoreTest, PublishesMetricsWhenGivenARegistry) {
  obs::MetricsRegistry metrics;
  SvStoreOptions options;
  options.kernel_value_capacity = pool();
  options.metrics = &metrics;
  SvStore store(options);
  PredictionKernelCache* cache = store.Bind(ValueOrDie(models_.Get("a")));

  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(0), /*salt=*/1.0));
  ASSERT_NO_FATAL_FAILURE(MissAndCommit(cache, Query(1), /*salt=*/2.0));
  std::vector<double> out(pool(), 0.0);
  std::vector<uint8_t> hit(pool(), 0);
  cache->Gather(Query(1), out, hit);

  const std::string text = metrics.ToPrometheusText();
  for (const char* series :
       {"gmpsvm_fleet_sv_hits_total", "gmpsvm_fleet_sv_misses_total",
        "gmpsvm_fleet_sv_evicted_total", "gmpsvm_fleet_sv_unique",
        "gmpsvm_fleet_sv_values_resident"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

}  // namespace
}  // namespace gmpsvm::fleet
