// Satellite determinism matrix for the shared SV store (ISSUE PR 6): a
// fleet's probabilities must be byte-identical to the offline predictor
// with sharing on or off, at cache capacity 0 / small / unbounded, on one
// or four replicas, with one or eight workers, on a clean fleet and under
// injected chaos. The store only changes WHERE a kernel value comes from,
// never WHAT it is.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"
#include "fleet/fleet_server.h"

namespace gmpsvm::fleet {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed, double c = 1.0) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 15, 5, 2.5, seed));
  MpTrainOptions options;
  options.c = c;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

struct Config {
  const char* label;
  bool share;
  int64_t capacity;
  int replicas;
  int workers;
  bool chaos;
  SvStoreOptions::RetentionPolicy retention =
      SvStoreOptions::RetentionPolicy::kFifo;
};

TEST(SvStoreDeterminismTest, ProbabilitiesAreByteIdenticalAcrossTheMatrix) {
  // Two distinct models trained on overlapping data (so their SV pools
  // overlap) and three tenants: t0 and t2 share model A's content, t1 runs
  // model B.
  const MpSvmModel model_a = TrainSmallModel(7);
  const MpSvmModel model_b = TrainSmallModel(7, /*c=*/4.0);
  const MpSvmModel* tenant_models[] = {&model_a, &model_b, &model_a};
  const char* tenant_names[] = {"t0", "t1", "t2"};

  auto queries = ValueOrDie(MakeMulticlassBlobs(3, 8, 5, 2.5, 321));
  const CsrMatrix& rows = queries.features();

  // The ground truth: the offline predictor, no serving layer, no store.
  SimExecutor ref_exec(ExecutorModel::TeslaP100());
  const PredictResult ref_a = ValueOrDie(
      MpSvmPredictor(&model_a).Predict(rows, &ref_exec, PredictOptions{}));
  const PredictResult ref_b = ValueOrDie(
      MpSvmPredictor(&model_b).Predict(rows, &ref_exec, PredictOptions{}));
  const PredictResult* refs[] = {&ref_a, &ref_b, &ref_a};
  const int k = ref_a.num_classes;

  const Config configs[] = {
      {"share-off", false, 1 << 20, 1, 1, false},
      {"cap-0", true, 0, 1, 1, false},
      {"cap-small", true, 64, 1, 1, false},
      {"cap-unbounded", true, -1, 1, 1, false},
      {"replicas-4", true, 64, 4, 1, false},
      {"workers-8", true, -1, 1, 8, false},
      {"chaos-replicas-4-workers-8", true, 64, 4, 8, true},
      {"chaos-unbounded", true, -1, 1, 1, true},
      // Frequency-weighted retention changes only WHICH query is retired,
      // never any served probability.
      {"freq-cap-small", true, 64, 1, 1, false,
       SvStoreOptions::RetentionPolicy::kFrequency},
      {"chaos-freq", true, 64, 4, 8, true,
       SvStoreOptions::RetentionPolicy::kFrequency},
  };

  for (const Config& config : configs) {
    SCOPED_TRACE(config.label);

    FleetOptions options;
    options.serve.num_workers = config.workers;
    options.initial_replicas = config.replicas;
    options.autoscale.min_replicas = config.replicas;
    options.autoscale.max_replicas = config.replicas;
    options.share_support_vectors = config.share;
    options.sv_cache_capacity = config.capacity;
    options.sv_retention = config.retention;
    if (config.replicas > 1) {
      // Exercise the device-cycling path explicitly.
      options.devices = {ExecutorModel::TeslaP100(),
                         ExecutorModel::TeslaP100()};
    }
    fault::FaultInjector injector(fault::FaultPlan::Chaos(13));
    if (config.chaos) {
      options.serve.fault = &injector;
      options.serve.max_request_retries = 5;
    }

    FleetServer fleet(options);
    ASSERT_TRUE(fleet.Start().ok());
    for (int t = 0; t < 3; ++t) {
      TenantSpec spec;
      spec.name = tenant_names[t];
      ValueOrDie(fleet.AddTenant(spec, MpSvmModel(*tenant_models[t])));
    }
    ASSERT_EQ(fleet.num_replicas(), config.replicas);

    int failed = 0;
    int compared = 0;
    // Interleave tenants per row (t2 right after t0) so even a small cache
    // sees the cross-tenant replay while the query is still resident.
    for (int64_t i = 0; i < queries.size(); ++i) {
      for (int t : {0, 2, 1}) {
        auto response =
            fleet.Predict(tenant_names[t], rows.RowIndices(i),
                          rows.RowValues(i));
        if (!response.ok()) {
          // Only chaos may fail a request, and then only terminally after
          // the retry budget (never with a wrong answer).
          ASSERT_TRUE(config.chaos) << response.status().ToString();
          ++failed;
          continue;
        }
        ASSERT_EQ(response->probabilities.size(), static_cast<size_t>(k));
        EXPECT_EQ(std::memcmp(response->probabilities.data(),
                              refs[t]->probabilities.data() + i * k,
                              sizeof(double) * k),
                  0)
            << tenant_names[t] << " row " << i;
        EXPECT_EQ(response->label, refs[t]->labels[i]);
        ++compared;
      }
    }
    EXPECT_TRUE(fleet.Shutdown().ok());
    EXPECT_GT(compared, 0);
    if (!config.chaos) {
      EXPECT_EQ(failed, 0);
    }

    const FleetStatsSnapshot snap = fleet.Snapshot();
    if (!config.share) {
      // Sharing off: the store is never consulted.
      EXPECT_EQ(snap.sv.models_bound, 0);
      EXPECT_EQ(snap.sv.hits + snap.sv.misses, 0);
    } else if (config.capacity == 0 && !config.chaos) {
      // Dedup bookkeeping runs but no kernel value is ever retained.
      EXPECT_GT(snap.sv.models_bound, 0);
      EXPECT_EQ(snap.sv.hits, 0);
      EXPECT_EQ(snap.sv.values_resident, 0);
    } else if (!config.chaos) {
      // t2 replays t0's queries against the same deduplicated pool, so a
      // caching store must produce hits.
      EXPECT_GT(snap.sv.hits, 0);
    }
  }
}

}  // namespace
}  // namespace gmpsvm::fleet
