#include "fleet/autoscaler.h"

#include <gtest/gtest.h>

#include <vector>

namespace gmpsvm::fleet {
namespace {

TEST(AutoscalePolicyTest, ValidateRejectsBadBounds) {
  AutoscalePolicy policy;
  EXPECT_TRUE(policy.Validate().ok());

  policy.min_replicas = 0;
  EXPECT_FALSE(policy.Validate().ok());

  policy = AutoscalePolicy{};
  policy.max_replicas = 0;
  EXPECT_FALSE(policy.Validate().ok());

  policy = AutoscalePolicy{};
  policy.min_replicas = 5;
  policy.max_replicas = 2;
  EXPECT_FALSE(policy.Validate().ok());

  policy = AutoscalePolicy{};
  policy.scale_up_ticks = 0;
  EXPECT_FALSE(policy.Validate().ok());

  policy = AutoscalePolicy{};
  policy.scale_down_depth = 10.0;  // idle threshold above the hot threshold
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(AutoscalerTest, ScaleUpNeedsConsecutiveHotTicks) {
  AutoscalePolicy policy;
  policy.scale_up_depth = 8.0;
  policy.scale_up_ticks = 3;
  Autoscaler scaler(policy);

  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kScaleUp);
  // The decision resets the streak: the next hot tick starts over.
  EXPECT_EQ(scaler.Tick(10.0, 2), ScaleDecision::kHold);
}

TEST(AutoscalerTest, MidBandObservationResetsTheStreak) {
  AutoscalePolicy policy;
  policy.scale_up_depth = 8.0;
  policy.scale_up_ticks = 2;
  Autoscaler scaler(policy);

  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick(1.0, 1), ScaleDecision::kHold);  // mid-band: reset
  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kHold);
  EXPECT_EQ(scaler.Tick(10.0, 1), ScaleDecision::kScaleUp);
}

TEST(AutoscalerTest, ScaleDownNeedsLongerIdleStreak) {
  AutoscalePolicy policy;
  policy.scale_down_depth = 0.25;
  policy.scale_down_ticks = 4;
  Autoscaler scaler(policy);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scaler.Tick(0.0, 2), ScaleDecision::kHold);
  }
  EXPECT_EQ(scaler.Tick(0.0, 2), ScaleDecision::kScaleDown);
}

TEST(AutoscalerTest, RespectsFloorAndCeiling) {
  AutoscalePolicy policy;
  policy.min_replicas = 1;
  policy.max_replicas = 2;
  policy.scale_up_ticks = 1;
  policy.scale_down_ticks = 1;
  Autoscaler scaler(policy);

  // At the ceiling a hot observation holds instead of scaling up.
  EXPECT_EQ(scaler.Tick(100.0, 2), ScaleDecision::kHold);
  // At the floor an idle observation holds instead of scaling down.
  EXPECT_EQ(scaler.Tick(0.0, 1), ScaleDecision::kHold);
  // Away from the bounds the same observations decide.
  EXPECT_EQ(scaler.Tick(100.0, 1), ScaleDecision::kScaleUp);
  EXPECT_EQ(scaler.Tick(0.0, 2), ScaleDecision::kScaleDown);
}

TEST(AutoscalerTest, DeterministicForTheSameObservationSequence) {
  const double depths[] = {9.0, 9.0, 0.0, 0.0, 0.0, 0.0, 12.0, 12.0};
  AutoscalePolicy policy;
  policy.scale_up_ticks = 2;
  policy.scale_down_ticks = 4;

  auto run = [&] {
    Autoscaler scaler(policy);
    std::vector<ScaleDecision> decisions;
    int replicas = 2;
    for (double depth : depths) {
      ScaleDecision d = scaler.Tick(depth, replicas);
      if (d == ScaleDecision::kScaleUp) ++replicas;
      if (d == ScaleDecision::kScaleDown) --replicas;
      decisions.push_back(d);
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

TEST(AutoscalerTest, DecisionNames) {
  EXPECT_STREQ(ScaleDecisionName(ScaleDecision::kHold), "hold");
  EXPECT_STREQ(ScaleDecisionName(ScaleDecision::kScaleUp), "scale-up");
  EXPECT_STREQ(ScaleDecisionName(ScaleDecision::kScaleDown), "scale-down");
}

}  // namespace
}  // namespace gmpsvm::fleet
