// Shared helpers for the test suite: small synthetic problems with known
// structure, plus reference (brute-force) implementations to validate the
// optimized code paths against.

#ifndef GMPSVM_TESTS_TEST_UTIL_H_
#define GMPSVM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/dataset.h"
#include "kernel/kernel_computer.h"
#include "solver/svm_problem.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm::testing {

// Two Gaussian blobs in `dim` dimensions, centered at +/- `separation` on
// every axis. Returns a dense-as-CSR matrix and +/-1 labels.
struct BinaryBlobs {
  CsrMatrix data;
  std::vector<int8_t> y;
};

inline BinaryBlobs MakeBinaryBlobs(int n_per_class, int dim, double separation,
                                   uint64_t seed, double noise = 1.0) {
  Rng rng(seed);
  CsrBuilder builder(dim);
  std::vector<int8_t> y;
  for (int i = 0; i < 2 * n_per_class; ++i) {
    const int8_t label = (i % 2 == 0) ? int8_t{1} : int8_t{-1};
    const double center = label > 0 ? separation : -separation;
    std::vector<int32_t> idx(static_cast<size_t>(dim));
    std::vector<double> val(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      idx[static_cast<size_t>(d)] = d;
      val[static_cast<size_t>(d)] = rng.Normal(center, noise);
    }
    builder.AddRow(idx, val);
    y.push_back(label);
  }
  return BinaryBlobs{ValueOrDie(builder.Finish()), std::move(y)};
}

// Multi-class Gaussian blobs: class c centered at separation * unit basis
// direction (c mod dim), labels 0..k-1 round-robin then shuffled.
inline gmpsvm::Result<Dataset> MakeMulticlassBlobs(int k, int n_per_class, int dim,
                                                   double separation, uint64_t seed,
                                                   double noise = 1.0) {
  Rng rng(seed);
  const int n = k * n_per_class;
  std::vector<int32_t> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) labels[static_cast<size_t>(i)] = i % k;
  rng.Shuffle(&labels);
  CsrBuilder builder(dim);
  for (int i = 0; i < n; ++i) {
    const int c = labels[static_cast<size_t>(i)];
    std::vector<int32_t> idx(static_cast<size_t>(dim));
    std::vector<double> val(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      idx[static_cast<size_t>(d)] = d;
      const double center = (d == c % dim) ? separation : 0.0;
      val[static_cast<size_t>(d)] = rng.Normal(center, noise);
    }
    builder.AddRow(idx, val);
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix features, builder.Finish());
  return Dataset::Create(std::move(features), std::move(labels), k, "blobs");
}

// Wraps blobs into a BinaryProblem over all rows.
inline BinaryProblem MakeProblem(const BinaryBlobs& blobs, double c,
                                 KernelParams kernel) {
  BinaryProblem p;
  p.data = &blobs.data;
  p.rows.resize(static_cast<size_t>(blobs.data.rows()));
  for (size_t i = 0; i < p.rows.size(); ++i) p.rows[i] = static_cast<int32_t>(i);
  p.y = blobs.y;
  p.C = c;
  p.kernel = kernel;
  return p;
}

// Decision value of instance `row` under a solution (Equation 11), computed
// brute-force.
inline double DecisionValue(const BinaryProblem& problem,
                            const KernelComputer& computer,
                            const std::vector<double>& alpha, double bias,
                            int32_t local_row) {
  double v = bias;
  for (int64_t j = 0; j < problem.n(); ++j) {
    if (alpha[static_cast<size_t>(j)] == 0.0) continue;
    v += alpha[static_cast<size_t>(j)] * problem.y[static_cast<size_t>(j)] *
         computer.Compute(problem.rows[static_cast<size_t>(j)],
                          problem.rows[static_cast<size_t>(local_row)]);
  }
  return v;
}

// Checks the KKT conditions of problem (2) at tolerance eps:
// max_{I_low} f - min_{I_up} f < eps with f recomputed from scratch.
inline double MaxKktViolation(const BinaryProblem& problem,
                              const KernelComputer& computer,
                              const std::vector<double>& alpha) {
  const int64_t n = problem.n();
  double f_up_min = std::numeric_limits<double>::infinity();
  double f_low_max = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < n; ++i) {
    double f_i = -static_cast<double>(problem.y[static_cast<size_t>(i)]);
    for (int64_t j = 0; j < n; ++j) {
      if (alpha[static_cast<size_t>(j)] == 0.0) continue;
      f_i += alpha[static_cast<size_t>(j)] * problem.y[static_cast<size_t>(j)] *
             computer.Compute(problem.rows[static_cast<size_t>(j)],
                              problem.rows[static_cast<size_t>(i)]);
    }
    const int8_t yi = problem.y[static_cast<size_t>(i)];
    const double ai = alpha[static_cast<size_t>(i)];
    const bool in_up = (yi > 0 && ai < problem.C) || (yi < 0 && ai > 0);
    const bool in_low = (yi > 0 && ai > 0) || (yi < 0 && ai < problem.C);
    if (in_up) f_up_min = std::min(f_up_min, f_i);
    if (in_low) f_low_max = std::max(f_low_max, f_i);
  }
  return f_low_max - f_up_min;
}

// Dual objective sum(alpha) - 0.5 alpha' Q alpha computed brute-force.
inline double DualObjective(const BinaryProblem& problem,
                            const KernelComputer& computer,
                            const std::vector<double>& alpha) {
  const int64_t n = problem.n();
  double sum = 0.0, quad = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double ai = alpha[static_cast<size_t>(i)];
    if (ai == 0.0) continue;
    sum += ai;
    for (int64_t j = 0; j < n; ++j) {
      const double aj = alpha[static_cast<size_t>(j)];
      if (aj == 0.0) continue;
      quad += ai * aj * problem.y[static_cast<size_t>(i)] *
              problem.y[static_cast<size_t>(j)] *
              computer.Compute(problem.rows[static_cast<size_t>(i)],
                               problem.rows[static_cast<size_t>(j)]);
    }
  }
  return sum - 0.5 * quad;
}

}  // namespace gmpsvm::testing

#endif  // GMPSVM_TESTS_TEST_UTIL_H_
