#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 15, 5, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

TEST(ModelRegistryTest, RegisterAndGet) {
  ModelRegistry registry;
  const int64_t version = ValueOrDie(registry.Register("m", TrainSmallModel(1)));
  EXPECT_EQ(version, 1);
  auto handle = ValueOrDie(registry.Get("m"));
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.version, 1);
  EXPECT_EQ(handle.name, "m");
  EXPECT_EQ(handle.model->num_classes, 3);
}

TEST(ModelRegistryTest, UnknownNameFails) {
  ModelRegistry registry;
  auto handle = registry.Get("missing");
  EXPECT_FALSE(handle.ok());
  EXPECT_TRUE(handle.status().IsFailedPrecondition());
}

TEST(ModelRegistryTest, RejectsEmptyModel) {
  ModelRegistry registry;
  auto result = registry.Register("empty", MpSvmModel{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ModelRegistryTest, HotSwapBumpsVersionAndOldHandleSurvives) {
  ModelRegistry registry;
  ValueOrDie(registry.Register("m", TrainSmallModel(1)));
  auto old_handle = ValueOrDie(registry.Get("m"));

  EXPECT_EQ(ValueOrDie(registry.Register("m", TrainSmallModel(2))), 2);
  auto new_handle = ValueOrDie(registry.Get("m"));
  EXPECT_EQ(new_handle.version, 2);
  EXPECT_NE(old_handle.model.get(), new_handle.model.get());

  // The old snapshot remains fully usable (in-flight batches).
  EXPECT_EQ(old_handle.version, 1);
  EXPECT_EQ(old_handle.model->num_classes, 3);
  EXPECT_GT(old_handle.model->pool_size(), 0);
}

TEST(ModelRegistryTest, RemoveThenReRegisterKeepsVersionMonotonic) {
  ModelRegistry registry;
  ValueOrDie(registry.Register("m", TrainSmallModel(1)));
  ValueOrDie(registry.Register("m", TrainSmallModel(2)));
  EXPECT_TRUE(registry.Remove("m"));
  EXPECT_FALSE(registry.Remove("m"));
  EXPECT_FALSE(registry.Get("m").ok());
  EXPECT_EQ(ValueOrDie(registry.Register("m", TrainSmallModel(3))), 3);
}

TEST(ModelRegistryTest, NamesAndSize) {
  ModelRegistry registry;
  ValueOrDie(registry.Register("b", TrainSmallModel(1)));
  ValueOrDie(registry.Register("a", TrainSmallModel(2)));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(ModelRegistryTest, LoadFromFile) {
  MpSvmModel model = TrainSmallModel(5);
  const std::string path = ::testing::TempDir() + "/registry_model.txt";
  GMP_CHECK_OK(SaveModel(model, path));

  ModelRegistry registry;
  EXPECT_EQ(ValueOrDie(registry.LoadFromFile("disk", path)), 1);
  auto handle = ValueOrDie(registry.Get("disk"));
  EXPECT_EQ(handle.model->num_classes, model.num_classes);
  EXPECT_EQ(handle.model->pool_size(), model.pool_size());
  std::remove(path.c_str());

  auto missing = registry.LoadFromFile("nope", "/nonexistent/model.txt");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsIoError());
}

}  // namespace
}  // namespace gmpsvm
