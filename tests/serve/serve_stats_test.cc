#include "serve/serve_stats.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gmpsvm {
namespace {

TEST(PercentileSortedTest, NearestRankSemantics) {
  const std::vector<double> sorted{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 95.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 99.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted({7.0}, 99.0), 7.0);
}

TEST(ServeStatsTest, CountersFlowIntoSnapshot) {
  ServeStats stats;
  stats.RecordAdmitted(1);
  stats.RecordAdmitted(3);
  stats.RecordRejected();
  stats.RecordExpired();
  stats.RecordFailed();
  stats.RecordBatch(2);
  stats.RecordCompleted(0.001, 0.002);
  stats.RecordCompleted(0.002, 0.004);

  const ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.admitted, 2u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.submitted, 3u);
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.max_queue_depth, 3u);
  EXPECT_GT(snap.elapsed_seconds, 0.0);
  EXPECT_GT(snap.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(snap.latency_mean, 0.003);
  EXPECT_DOUBLE_EQ(snap.latency_max, 0.004);
  EXPECT_DOUBLE_EQ(snap.queue_mean, 0.0015);
}

TEST(ServeStatsTest, BatchHistogramAndMean) {
  ServeStats stats;
  stats.RecordBatch(1);
  stats.RecordBatch(1);
  stats.RecordBatch(4);
  const ServeStatsSnapshot snap = stats.Snapshot();
  ASSERT_EQ(snap.batch_histogram.size(), 4u);
  EXPECT_EQ(snap.batch_histogram[0], 2u);  // two singleton batches
  EXPECT_EQ(snap.batch_histogram[3], 1u);  // one batch of four
  EXPECT_EQ(snap.max_batch_size, 4);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 2.0);  // (1 + 1 + 4) / 3
}

TEST(ServeStatsTest, PercentilesFromManySamples) {
  ServeStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordCompleted(0.0, static_cast<double>(i) * 1e-3);
  }
  const ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_NEAR(snap.latency_p50, 0.050, 1e-12);
  EXPECT_NEAR(snap.latency_p95, 0.095, 1e-12);
  EXPECT_NEAR(snap.latency_p99, 0.099, 1e-12);
  EXPECT_NEAR(snap.latency_max, 0.100, 1e-12);
}

TEST(ServeStatsTest, ResetClearsEverything) {
  ServeStats stats;
  stats.RecordAdmitted(5);
  stats.RecordBatch(3);
  stats.RecordCompleted(0.1, 0.2);
  stats.Reset();
  const ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.admitted, 0u);
  EXPECT_EQ(snap.batches, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_TRUE(snap.batch_histogram.empty());
  EXPECT_DOUBLE_EQ(snap.latency_p99, 0.0);
}

TEST(ServeStatsTest, TableRendersAllMetrics) {
  ServeStats stats;
  stats.RecordAdmitted(1);
  stats.RecordBatch(1);
  stats.RecordCompleted(0.001, 0.002);
  const std::string table = stats.Snapshot().ToTable();
  for (const char* metric :
       {"throughput", "latency p50", "latency p95", "latency p99",
        "mean batch size", "max queue depth", "completed"}) {
    EXPECT_NE(table.find(metric), std::string::npos) << "missing: " << metric;
  }
}

}  // namespace
}  // namespace gmpsvm
