// Hot-swap under live traffic: while client threads hammer the server, a
// swapper thread re-registers the served name every few milliseconds,
// alternating between two known models. Every single response must be
// attributable to one registered snapshot — correct version number AND
// bit-identical probabilities for that version — i.e. a swap never tears a
// batch and never serves a half-installed model.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "serve/server.h"

namespace gmpsvm {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainModel(uint64_t seed) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 6, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

PredictResult Reference(const MpSvmModel& model, const CsrMatrix& rows,
                        const PredictOptions& options) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(MpSvmPredictor(&model).Predict(rows, &exec, options));
}

TEST(HotSwapStressTest, EveryResponseMatchesARegisteredSnapshot) {
  // Two distinguishable models swap back and forth under the served name.
  // The version parity identifies which one a response came from: odd
  // versions are A (registered first and on every odd re-registration),
  // even versions are B.
  const MpSvmModel model_a = TrainModel(1);
  const MpSvmModel model_b = TrainModel(2);

  auto test = ValueOrDie(MakeMulticlassBlobs(3, 25, 6, 2.5, 99));
  ServeOptions options;
  options.num_workers = 3;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = microseconds(200);

  const PredictResult ref_a =
      Reference(model_a, test.features(), options.predict);
  const PredictResult ref_b =
      Reference(model_b, test.features(), options.predict);

  ModelRegistry registry;
  ValueOrDie(registry.Register(options.model_name, model_a));  // version 1
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  constexpr int kSwaps = 20;
  std::atomic<bool> clients_done{false};
  std::thread swapper([&] {
    for (int i = 0; i < kSwaps && !clients_done.load(); ++i) {
      // Versions 2, 3, 4, ...: even = B, odd = A.
      const MpSvmModel& next = (i % 2 == 0) ? model_b : model_a;
      ValueOrDie(registry.Register(options.model_name, next));
      std::this_thread::sleep_for(milliseconds(2));
    }
  });

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int64_t> max_version_seen{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t row = (c * kPerClient + r) % test.size();
        auto result = server.Predict(test.features().RowIndices(row),
                                     test.features().RowValues(row));
        if (!result.ok()) {
          ++mismatches;
          continue;
        }
        const PredictResult& ref =
            (result->model_version % 2 == 1) ? ref_a : ref_b;
        int64_t prev = max_version_seen.load();
        while (prev < result->model_version &&
               !max_version_seen.compare_exchange_weak(prev,
                                                       result->model_version)) {
        }
        bool match = result->label == ref.labels[static_cast<size_t>(row)] &&
                     result->probabilities.size() == 3u;
        for (int k = 0; match && k < 3; ++k) {
          // Bit-identical to the snapshot's offline predictions: a swap must
          // never mix models within a response.
          match = result->probabilities[static_cast<size_t>(k)] ==
                  ref.Probability(row, k);
        }
        if (!match) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  clients_done.store(true);
  swapper.join();
  GMP_CHECK_OK(server.Shutdown());

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(max_version_seen.load(), 1);
  const ServeStatsSnapshot snap = server.stats().Snapshot();
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(snap.failed, 0u);
}

TEST(HotSwapStressTest, SwapEveryNBatchesVersionsStayConsistent) {
  // Deterministic variant: one worker, swaps interleaved with traffic from
  // the same thread, so we can assert exact version progression.
  const MpSvmModel model_a = TrainModel(3);
  const MpSvmModel model_b = TrainModel(4);
  auto test = ValueOrDie(MakeMulticlassBlobs(3, 20, 6, 2.5, 5));

  ServeOptions options;
  options.num_workers = 1;
  ModelRegistry registry;
  ValueOrDie(registry.Register(options.model_name, model_a));
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  const PredictResult ref_a =
      Reference(model_a, test.features(), options.predict);
  const PredictResult ref_b =
      Reference(model_b, test.features(), options.predict);

  int64_t expected_version = 1;
  for (int swap = 0; swap < 6; ++swap) {
    for (int64_t row = 0; row < 5; ++row) {
      auto response = ValueOrDie(server.Predict(
          test.features().RowIndices(row), test.features().RowValues(row)));
      EXPECT_EQ(response.model_version, expected_version);
      const PredictResult& ref = (expected_version % 2 == 1) ? ref_a : ref_b;
      EXPECT_EQ(response.label, ref.labels[static_cast<size_t>(row)]);
    }
    const MpSvmModel& next = (swap % 2 == 0) ? model_b : model_a;
    expected_version = ValueOrDie(registry.Register(options.model_name, next));
  }
  GMP_CHECK_OK(server.Shutdown());
}

}  // namespace
}  // namespace gmpsvm
