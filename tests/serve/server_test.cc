// End-to-end tests for the inference service: batching correctness
// (bit-identical to the offline predictor), admission control, deadlines,
// graceful drain, and model hot-swap under live traffic.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;
using std::chrono::microseconds;
using std::chrono::milliseconds;

MpSvmModel TrainSmallModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 20, 6, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

struct ServerFixture {
  Dataset test;
  ModelRegistry registry;
  std::unique_ptr<InferenceServer> server;

  explicit ServerFixture(ServeOptions options, uint64_t seed = 42) {
    test = ValueOrDie(MakeMulticlassBlobs(3, 25, 6, 2.5, seed + 1));
    ValueOrDie(registry.Register(options.model_name, TrainSmallModel(seed)));
    server = std::make_unique<InferenceServer>(&registry, options);
    GMP_CHECK_OK(server->Start());
  }

  std::future<Result<PredictResponse>> SubmitRow(int64_t row) {
    const CsrMatrix& m = test.features();
    return ValueOrDie(server->Submit(m.RowIndices(row), m.RowValues(row)));
  }
};

// Offline reference for the same rows, same predict options.
PredictResult DirectPredict(const ModelRegistry& registry,
                            const std::string& name, const CsrMatrix& rows,
                            const PredictOptions& options) {
  auto handle = ValueOrDie(registry.Get(name));
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(MpSvmPredictor(handle.model.get())
                        .Predict(rows, &exec, options));
}

TEST(InferenceServerTest, ServesSingleRequest) {
  ServeOptions options;
  ServerFixture fx(options);
  PredictResponse response = ValueOrDie(fx.SubmitRow(0).get());
  EXPECT_EQ(response.probabilities.size(), 3u);
  EXPECT_GE(response.label, 0);
  EXPECT_LT(response.label, 3);
  EXPECT_EQ(response.model_version, 1);
  EXPECT_GE(response.batch_size, 1);
}

TEST(InferenceServerTest, ResultsBitIdenticalToDirectPredict) {
  ServeOptions options;
  options.num_workers = 3;
  options.batching.max_batch_size = 16;
  options.batching.max_queue_delay = milliseconds(5);
  ServerFixture fx(options);

  const int64_t n = fx.test.size();
  std::vector<std::future<Result<PredictResponse>>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) futures.push_back(fx.SubmitRow(i));

  const PredictResult reference = DirectPredict(
      fx.registry, options.model_name, fx.test.features(), options.predict);

  for (int64_t i = 0; i < n; ++i) {
    PredictResponse response = ValueOrDie(futures[static_cast<size_t>(i)].get());
    EXPECT_EQ(response.label, reference.labels[static_cast<size_t>(i)]);
    ASSERT_EQ(response.probabilities.size(), 3u);
    for (int c = 0; c < 3; ++c) {
      // Bit-identical, not approximately equal: batching must not change
      // the math.
      EXPECT_EQ(response.probabilities[static_cast<size_t>(c)],
                reference.Probability(i, c))
          << "row " << i << " class " << c;
    }
  }
}

TEST(InferenceServerTest, BacklogCoalescesIntoBatches) {
  ServeOptions options;
  options.num_workers = 1;
  options.batching.max_batch_size = 16;
  options.batching.max_queue_delay = milliseconds(20);
  ServerFixture fx(options);

  // Build the backlog while consumption is gated, then release: the worker
  // must drain it in multi-request tiles, not one by one.
  fx.server->Pause();
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 32; ++i) futures.push_back(fx.SubmitRow(i));
  fx.server->Resume();
  int max_batch_seen = 0;
  for (auto& f : futures) {
    PredictResponse response = ValueOrDie(f.get());
    max_batch_seen = std::max(max_batch_seen, response.batch_size);
  }
  EXPECT_GT(max_batch_seen, 1);
  const ServeStatsSnapshot snap = fx.server->stats().Snapshot();
  EXPECT_EQ(snap.completed, 32u);
  EXPECT_LT(snap.batches, 32u);  // strictly fewer Predict calls than requests
  EXPECT_GT(snap.mean_batch_size, 1.0);
}

TEST(InferenceServerTest, QueueOverflowRejectsWithResourceExhausted) {
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  ServerFixture fx(options);

  fx.server->Pause();  // nothing drains: overflow is deterministic
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 4; ++i) futures.push_back(fx.SubmitRow(i));
  const CsrMatrix& m = fx.test.features();
  auto overflow = fx.server->Submit(m.RowIndices(4), m.RowValues(4));
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted())
      << overflow.status().ToString();

  // Every *accepted* request still completes.
  fx.server->Resume();
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  const ServeStatsSnapshot snap = fx.server->stats().Snapshot();
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.completed, 4u);
}

TEST(InferenceServerTest, ShutdownDrainsAcceptedRequests) {
  ServeOptions options;
  options.num_workers = 2;
  options.batching.max_batch_size = 4;
  ServerFixture fx(options);

  fx.server->Pause();  // hold the backlog so Shutdown itself must drain it
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 24; ++i) futures.push_back(fx.SubmitRow(i));
  GMP_CHECK_OK(fx.server->Shutdown());

  // No accepted request is lost: every future resolves OK.
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  const ServeStatsSnapshot snap = fx.server->stats().Snapshot();
  EXPECT_EQ(snap.completed, 24u);

  // After shutdown, admission fails cleanly.
  auto late = fx.server->Submit(fx.test.features().RowIndices(0),
                                fx.test.features().RowValues(0));
  EXPECT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsFailedPrecondition());
}

TEST(InferenceServerTest, ExpiredRequestsGetDeadlineExceeded) {
  ServeOptions options;
  options.num_workers = 1;
  ServerFixture fx(options);

  fx.server->Pause();
  const CsrMatrix& m = fx.test.features();
  auto doomed = ValueOrDie(fx.server->Submit(m.RowIndices(0), m.RowValues(0),
                                             Deadline::After(microseconds(1))));
  auto healthy = fx.SubmitRow(1);
  std::this_thread::sleep_for(milliseconds(10));  // let the deadline lapse
  fx.server->Resume();

  auto doomed_response = doomed.get();
  EXPECT_TRUE(doomed_response.status().IsDeadlineExceeded())
      << doomed_response.status().ToString();
  GMP_CHECK_OK(healthy.get().status());
  EXPECT_EQ(fx.server->stats().Snapshot().expired, 1u);
}

TEST(InferenceServerTest, MalformedRowRejectedAtAdmission) {
  ServeOptions options;
  ServerFixture fx(options);
  const std::vector<int32_t> bad_order{3, 1};
  const std::vector<double> vals{1.0, 2.0};
  auto r1 = fx.server->Submit(bad_order, vals);
  EXPECT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsInvalidArgument());
  const std::vector<int32_t> one{0};
  auto r2 = fx.server->Submit(one, vals);  // size mismatch
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST(InferenceServerTest, OutOfRangeFeatureFailsOnlyThatRequest) {
  ServeOptions options;
  options.num_workers = 1;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = milliseconds(20);
  ServerFixture fx(options);

  // Index past the model's dimensionality passes admission (the model is
  // resolved per batch) but must fail prediction for this request alone.
  fx.server->Pause();
  const std::vector<int32_t> oob{1000000};
  const std::vector<double> val{1.0};
  auto bad = ValueOrDie(fx.server->Submit(oob, val));
  auto good = fx.SubmitRow(0);
  fx.server->Resume();

  EXPECT_FALSE(bad.get().ok());
  GMP_CHECK_OK(good.get().status());
}

TEST(InferenceServerTest, HotSwapTakesEffectOnLaterRequests) {
  ServeOptions options;
  options.num_workers = 1;
  ServerFixture fx(options);

  GMP_CHECK_OK(fx.SubmitRow(0).get().status());
  ValueOrDie(fx.registry.Register(options.model_name, TrainSmallModel(7)));
  PredictResponse response = ValueOrDie(fx.SubmitRow(1).get());
  EXPECT_EQ(response.model_version, 2);
}

TEST(InferenceServerTest, MissingModelFailsRequestsNotServer) {
  ModelRegistry registry;  // nothing registered
  ServeOptions options;
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());
  const std::vector<int32_t> idx{0};
  const std::vector<double> val{1.0};
  auto response = ValueOrDie(server.Submit(idx, val)).get();
  EXPECT_TRUE(response.status().IsFailedPrecondition())
      << response.status().ToString();
  GMP_CHECK_OK(server.Shutdown());
}

TEST(InferenceServerTest, ConcurrentClientsAllServedCorrectly) {
  ServeOptions options;
  options.num_workers = 4;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = microseconds(200);
  ServerFixture fx(options);

  const PredictResult reference = DirectPredict(
      fx.registry, options.model_name, fx.test.features(), options.predict);

  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t row = (c * kPerClient + r) % fx.test.size();
        auto result = fx.server->Predict(fx.test.features().RowIndices(row),
                                         fx.test.features().RowValues(row));
        if (!result.ok() ||
            result->label != reference.labels[static_cast<size_t>(row)]) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServeStatsSnapshot snap = fx.server->stats().Snapshot();
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GT(snap.throughput_rps, 0.0);
}

TEST(InferenceServerTest, PublishesMetricsAndSpansWhenConfigured) {
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  ServeOptions options;
  options.num_workers = 2;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = milliseconds(2);
  options.metrics = &metrics;
  options.trace = &trace;
  ServerFixture fx(options);

  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 8; ++i) futures.push_back(fx.SubmitRow(i));
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  GMP_CHECK_OK(fx.server->Shutdown());

  // ServeStats is a view over the shared registry: the serving series and
  // the per-worker device counters land in the same Prometheus dump.
  const std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("gmpsvm_serve_admitted_total 8"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gmpsvm_serve_latency_seconds_count"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_device_launches_total{worker="),
            std::string::npos)
      << text;

  // Host spans cover the request path: queue_wait and predict per batch.
  bool saw_queue_wait = false, saw_predict = false;
  for (const auto& e : trace.events()) {
    if (e.origin != obs::SpanEvent::Origin::kHost) continue;
    if (e.name == "queue_wait") saw_queue_wait = true;
    if (e.name.rfind("predict", 0) == 0) saw_predict = true;
  }
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_predict);
}

TEST(InferenceServerTest, StartTwiceFails) {
  ServeOptions options;
  ServerFixture fx(options);
  EXPECT_TRUE(fx.server->Start().IsFailedPrecondition());
  GMP_CHECK_OK(fx.server->Shutdown());
  GMP_CHECK_OK(fx.server->Shutdown());  // idempotent
}

}  // namespace
}  // namespace gmpsvm
