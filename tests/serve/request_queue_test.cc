#include "serve/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/micro_batcher.h"

namespace gmpsvm {
namespace {

using std::chrono::milliseconds;

PendingRequest MakeItem(int32_t tag = 0) {
  PendingRequest item;
  item.request.indices = {tag};
  item.request.values = {1.0};
  item.enqueue_time = MonotonicNow();
  return item;
}

TEST(RequestQueueTest, PushPopFifo) {
  RequestQueue queue(8);
  for (int32_t i = 0; i < 3; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  EXPECT_EQ(queue.size(), 3u);
  for (int32_t i = 0; i < 3; ++i) {
    PendingRequest out;
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out.request.indices[0], i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, OverflowReturnsResourceExhausted) {
  RequestQueue queue(2);
  GMP_CHECK_OK(queue.Push(MakeItem()));
  GMP_CHECK_OK(queue.Push(MakeItem()));
  const Status status = queue.Push(MakeItem());
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
}

TEST(RequestQueueTest, PushAfterCloseFails) {
  RequestQueue queue(2);
  queue.Close();
  const Status status = queue.Push(MakeItem());
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(RequestQueueTest, PopDrainsAfterClose) {
  RequestQueue queue(4);
  GMP_CHECK_OK(queue.Push(MakeItem(1)));
  GMP_CHECK_OK(queue.Push(MakeItem(2)));
  queue.Close();
  PendingRequest out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(RequestQueueTest, PopBlocksUntilPush) {
  RequestQueue queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    PendingRequest out;
    if (queue.Pop(&out)) got = true;
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(got.load());
  GMP_CHECK_OK(queue.Push(MakeItem()));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueueTest, PausedConsumersHoldUntilResume) {
  RequestQueue queue(4);
  queue.Pause();
  GMP_CHECK_OK(queue.Push(MakeItem()));
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    PendingRequest out;
    if (queue.Pop(&out)) got = true;
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(got.load());  // item queued but consumption gated
  queue.Resume();
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueueTest, CloseOverridesPauseForDraining) {
  RequestQueue queue(4);
  queue.Pause();
  GMP_CHECK_OK(queue.Push(MakeItem()));
  queue.Close();
  PendingRequest out;
  EXPECT_TRUE(queue.Pop(&out));  // drain proceeds despite pause
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(RequestQueueTest, PopBatchTakesBacklogUpToMax) {
  RequestQueue queue(16);
  for (int32_t i = 0; i < 6; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  std::vector<PendingRequest> out;
  EXPECT_EQ(queue.PopBatch(4, milliseconds(0), &out), 4u);
  EXPECT_EQ(queue.size(), 2u);
  // Admission order is preserved.
  for (int32_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].request.indices[0], i);
}

TEST(RequestQueueTest, PopBatchWaitsForBatchWindow) {
  RequestQueue queue(16);
  GMP_CHECK_OK(queue.Push(MakeItem(0)));
  std::thread producer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    (void)queue.Push(MakeItem(1));
  });
  std::vector<PendingRequest> out;
  // A generous window lets the late second request join the batch.
  EXPECT_EQ(queue.PopBatch(4, milliseconds(500), &out), 2u);
  producer.join();
}

TEST(RequestQueueTest, PopBatchWithInfiniteDelayWaitsInsteadOfSpinning) {
  // Regression: duration::max() added to now() used to overflow into the
  // past, making PopBatch return partial batches immediately. With the
  // saturating deadline it must keep the batch window open.
  RequestQueue queue(16);
  GMP_CHECK_OK(queue.Push(MakeItem(0)));
  std::thread producer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    (void)queue.Push(MakeItem(1));
    std::this_thread::sleep_for(milliseconds(10));
    (void)queue.Push(MakeItem(2));
    queue.Close();
  });
  std::vector<PendingRequest> out;
  EXPECT_EQ(queue.PopBatch(3, MonotonicClock::duration::max(), &out), 3u);
  producer.join();
}

TEST(RequestQueueTest, PopBatchWithInfiniteDelayReturnsFullBatchPromptly) {
  RequestQueue queue(16);
  for (int32_t i = 0; i < 4; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  std::vector<PendingRequest> out;
  // A full batch never waits, however large the window is.
  EXPECT_EQ(queue.PopBatch(4, MonotonicClock::duration::max(), &out), 4u);
}

TEST(RequestQueueTest, PopBatchReturnsZeroWhenClosedEmpty) {
  RequestQueue queue(4);
  queue.Close();
  std::vector<PendingRequest> out;
  EXPECT_EQ(queue.PopBatch(4, milliseconds(10), &out), 0u);
}

TEST(MicroBatcherTest, CoalescesBacklogIntoOneBatch) {
  RequestQueue queue(16);
  for (int32_t i = 0; i < 5; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  BatchingOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay = std::chrono::microseconds(0);
  MicroBatcher batcher(&queue, options);
  auto batch = batcher.NextBatch();
  EXPECT_EQ(batch.requests.size(), 5u);
  EXPECT_TRUE(batch.expired.empty());
}

TEST(MicroBatcherTest, RespectsMaxBatchSize) {
  RequestQueue queue(16);
  for (int32_t i = 0; i < 5; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  BatchingOptions options;
  options.max_batch_size = 2;
  options.max_queue_delay = std::chrono::microseconds(0);
  MicroBatcher batcher(&queue, options);
  EXPECT_EQ(batcher.NextBatch().requests.size(), 2u);
  EXPECT_EQ(batcher.NextBatch().requests.size(), 2u);
  EXPECT_EQ(batcher.NextBatch().requests.size(), 1u);
}

TEST(MicroBatcherTest, BatchSizeOverrideShrinksTheCap) {
  RequestQueue queue(16);
  for (int32_t i = 0; i < 5; ++i) GMP_CHECK_OK(queue.Push(MakeItem(i)));
  BatchingOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay = std::chrono::microseconds(0);
  MicroBatcher batcher(&queue, options);
  // Degraded-mode override caps the batch below the configured maximum; 0
  // means "no override".
  EXPECT_EQ(batcher.NextBatch(2).requests.size(), 2u);
  EXPECT_EQ(batcher.NextBatch(0).requests.size(), 3u);
}

TEST(MicroBatcherTest, SeparatesExpiredRequests) {
  RequestQueue queue(16);
  PendingRequest expired = MakeItem(0);
  expired.request.deadline = Deadline::After(std::chrono::microseconds(-1));
  GMP_CHECK_OK(queue.Push(std::move(expired)));
  GMP_CHECK_OK(queue.Push(MakeItem(1)));
  BatchingOptions options;
  options.max_batch_size = 8;
  options.max_queue_delay = std::chrono::microseconds(0);
  MicroBatcher batcher(&queue, options);
  auto batch = batcher.NextBatch();
  EXPECT_EQ(batch.expired.size(), 1u);
  ASSERT_EQ(batch.requests.size(), 1u);
  EXPECT_EQ(batch.requests[0].request.indices[0], 1);
}

TEST(MicroBatcherTest, EmptyBatchSignalsShutdown) {
  RequestQueue queue(4);
  queue.Close();
  MicroBatcher batcher(&queue, BatchingOptions{});
  EXPECT_TRUE(batcher.NextBatch().empty());
}

}  // namespace
}  // namespace gmpsvm
