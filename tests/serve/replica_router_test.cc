// ReplicaRouter: least-loaded dispatch across per-device replicas, spill on
// full queues, bit-identical answers whichever replica serves, router-level
// metrics, and clean shutdown.

#include "serve/replica_router.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "obs/metrics.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 20, 6, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

struct RouterFixture {
  Dataset test;
  ModelRegistry registry;
  std::unique_ptr<ReplicaRouter> router;

  explicit RouterFixture(RouterOptions options, uint64_t seed = 42) {
    test = ValueOrDie(MakeMulticlassBlobs(3, 25, 6, 2.5, seed + 1));
    ValueOrDie(registry.Register(options.serve.model_name, TrainSmallModel(seed)));
    router = std::make_unique<ReplicaRouter>(&registry, options);
    GMP_CHECK_OK(router->Start());
  }

  std::future<Result<PredictResponse>> SubmitRow(int64_t row) {
    const CsrMatrix& m = test.features();
    return ValueOrDie(router->Submit(m.RowIndices(row), m.RowValues(row)));
  }
};

RouterOptions TwoReplicas() {
  RouterOptions options;
  options.serve.num_workers = 1;
  options.devices.assign(2, options.serve.executor_model);
  return options;
}

TEST(ReplicaRouterTest, EmptyDeviceListMeansOneReplica) {
  RouterOptions options;
  RouterFixture fx(options);
  EXPECT_EQ(fx.router->num_replicas(), 1);
  PredictResponse response = ValueOrDie(fx.SubmitRow(0).get());
  EXPECT_EQ(response.probabilities.size(), 3u);
}

TEST(ReplicaRouterTest, AnswersBitIdenticalToDirectPredictOnAnyReplica) {
  RouterOptions options = TwoReplicas();
  RouterFixture fx(options);

  const int64_t n = fx.test.size();
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < n; ++i) futures.push_back(fx.SubmitRow(i));

  auto handle = ValueOrDie(fx.registry.Get(options.serve.model_name));
  SimExecutor exec(ExecutorModel::TeslaP100());
  const PredictResult reference = ValueOrDie(
      MpSvmPredictor(handle.model.get())
          .Predict(fx.test.features(), &exec, options.serve.predict));

  for (int64_t i = 0; i < n; ++i) {
    PredictResponse response = ValueOrDie(futures[static_cast<size_t>(i)].get());
    EXPECT_EQ(response.label, reference.labels[static_cast<size_t>(i)]);
    ASSERT_EQ(response.probabilities.size(), 3u);
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(response.probabilities[static_cast<size_t>(c)],
                reference.Probability(i, c))
          << "row " << i << " class " << c;
    }
  }
  // Both replicas took part: least-loaded dispatch over a growing backlog
  // cannot starve one of them for 75 single-row requests.
  EXPECT_GT(fx.router->routed(0), 0);
  EXPECT_GT(fx.router->routed(1), 0);
  EXPECT_EQ(fx.router->routed(0) + fx.router->routed(1), n);
}

TEST(ReplicaRouterTest, LeastLoadedAlternatesOverAPausedBacklog) {
  RouterOptions options = TwoReplicas();
  RouterFixture fx(options);
  // With consumption gated, queue depths grow monotonically, so the
  // least-loaded snapshot alternates deterministically: 4 requests each.
  fx.router->replica(0)->Pause();
  fx.router->replica(1)->Pause();
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 8; ++i) futures.push_back(fx.SubmitRow(i));
  EXPECT_EQ(fx.router->routed(0), 4);
  EXPECT_EQ(fx.router->routed(1), 4);
  fx.router->replica(0)->Resume();
  fx.router->replica(1)->Resume();
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
}

TEST(ReplicaRouterTest, SpillsAndRejectsOnlyWhenEveryReplicaIsFull) {
  RouterOptions options = TwoReplicas();
  options.serve.queue_capacity = 2;
  RouterFixture fx(options);
  fx.router->replica(0)->Pause();
  fx.router->replica(1)->Pause();

  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 4; ++i) futures.push_back(fx.SubmitRow(i));

  // Both queues are at capacity: the router tries every replica, then
  // surfaces the full-queue rejection.
  const CsrMatrix& m = fx.test.features();
  auto rejected = fx.router->Submit(m.RowIndices(4), m.RowValues(4));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());

  fx.router->replica(0)->Resume();
  fx.router->replica(1)->Resume();
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
}

TEST(ReplicaRouterTest, PublishesRoutingMetricsPerDevice) {
  obs::MetricsRegistry metrics;
  RouterOptions options = TwoReplicas();
  options.metrics = &metrics;
  RouterFixture fx(options);

  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 10; ++i) futures.push_back(fx.SubmitRow(i));
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());

  double routed_total = 0.0;
  for (int r = 0; r < fx.router->num_replicas(); ++r) {
    routed_total +=
        metrics
            .GetCounter(
                "gmpsvm_router_requests_routed_total",
                "Requests dispatched to a replica by the least-loaded router.",
                {{"device", std::to_string(r)}})
            ->Value();
  }
  EXPECT_EQ(routed_total, 10.0);
}

TEST(ReplicaRouterTest, PredictFlattensSubmitAndWait) {
  RouterOptions options = TwoReplicas();
  RouterFixture fx(options);
  const CsrMatrix& m = fx.test.features();
  PredictResponse response =
      ValueOrDie(fx.router->Predict(m.RowIndices(0), m.RowValues(0)));
  EXPECT_EQ(response.probabilities.size(), 3u);
}

TEST(ReplicaRouterTest, ShutdownDrainsAndIsIdempotent) {
  RouterOptions options = TwoReplicas();
  RouterFixture fx(options);
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 12; ++i) futures.push_back(fx.SubmitRow(i));
  GMP_CHECK_OK(fx.router->Shutdown());
  // Every accepted request still resolves to a terminal result.
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  GMP_CHECK_OK(fx.router->Shutdown());
  // A post-shutdown submit is rejected, not queued forever.
  const CsrMatrix& m = fx.test.features();
  EXPECT_FALSE(fx.router->Submit(m.RowIndices(0), m.RowValues(0)).ok());
}

}  // namespace
}  // namespace gmpsvm
