// Registry swap-under-load stress (run under TSan in CI): concurrent
// Register calls against one name must serialize the whole
// validate -> fault-gate -> commit sequence, so every success gets a unique
// contiguous version and the final snapshot is exactly the last committed
// model — even with validator rejections and injected swap faults rolling
// back attempts mid-stream. Readers and a live server observe only
// monotonic versions and bit-exact snapshots throughout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"
#include "serve/server.h"

namespace gmpsvm {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 20, 6, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

// Tags a copy of `base` so concurrent registrations are distinguishable:
// the first SVM's bias doubles as the attempt marker.
MpSvmModel Tagged(const MpSvmModel& base, double marker) {
  MpSvmModel model = base;
  model.svms[0].bias = marker;
  return model;
}

double MarkerOf(const ModelHandle& handle) {
  return handle.model->svms[0].bias;
}

TEST(RegistrySwapStressTest, ConcurrentSwapsGetUniqueContiguousVersions) {
  const MpSvmModel base = TrainModel(1);
  ModelRegistry registry;
  // The validator sees candidates from every thread; negative markers are
  // the deliberately-bad swaps that must roll back without a version.
  registry.SetValidator([](const MpSvmModel& model) {
    return model.svms[0].bias >= 0.0
               ? Status::OK()
               : Status::InvalidArgument("negative marker");
  });

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 30;
  std::mutex mu;
  std::map<int64_t, double> committed;  // version -> marker
  std::atomic<bool> done{false};

  std::thread reader([&] {
    int64_t last = 0;
    while (!done.load()) {
      auto handle = registry.Get("shared");
      if (!handle.ok()) continue;  // nothing registered yet
      // Versions move forward only, and a snapshot is never half-installed.
      EXPECT_GE(handle->version, last);
      EXPECT_TRUE(handle->valid());
      EXPECT_GE(MarkerOf(*handle), 0.0);
      last = handle->version;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const double marker = w * 1000 + i + 1;
        if (i % 5 == 4) {
          auto rejected = registry.Register("shared", Tagged(base, -marker));
          EXPECT_TRUE(rejected.status().IsInvalidArgument());
          continue;
        }
        auto version = registry.Register("shared", Tagged(base, marker));
        ASSERT_TRUE(version.ok()) << version.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        auto [it, inserted] = committed.emplace(*version, marker);
        // Two commits must never report the same version.
        EXPECT_TRUE(inserted) << "duplicate version " << *version;
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  // Successful swaps number a gapless 1..N.
  const int64_t successes = static_cast<int64_t>(committed.size());
  EXPECT_EQ(successes, kWriters * (kPerWriter - kPerWriter / 5));
  EXPECT_EQ(committed.begin()->first, 1);
  EXPECT_EQ(committed.rbegin()->first, successes);

  // The registry serves exactly the last committed model.
  auto final_handle = ValueOrDie(registry.Get("shared"));
  EXPECT_EQ(final_handle.version, successes);
  EXPECT_EQ(MarkerOf(final_handle), committed.rbegin()->second);
}

TEST(RegistrySwapStressTest, InjectedSwapFaultsRollBackUnderConcurrency) {
  const MpSvmModel base = TrainModel(2);
  ModelRegistry registry;
  ValueOrDie(registry.Register("shared", Tagged(base, 0.0)));  // version 1

  fault::FaultPlan plan;
  plan.seed = 42;
  plan.swap_fail_prob = 0.5;
  plan.max_consecutive_per_site = 2;
  fault::FaultInjector injector(plan);
  registry.SetFaultInjector(&injector);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 25;
  std::mutex mu;
  std::map<int64_t, double> committed{{1, 0.0}};
  std::atomic<int> faulted{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const double marker = w * 1000 + i + 1;
        auto version = registry.Register("shared", Tagged(base, marker));
        if (!version.ok()) {
          // An injected fault is the only legal failure, and it must leave
          // no trace: no version consumed, previous snapshot still serving.
          EXPECT_TRUE(version.status().IsUnavailable())
              << version.status().ToString();
          ++faulted;
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(committed.emplace(*version, marker).second);
      }
    });
  }
  for (auto& t : writers) t.join();
  registry.SetFaultInjector(nullptr);

  EXPECT_GT(faulted.load(), 0);  // the plan actually fired
  const int64_t successes = static_cast<int64_t>(committed.size());
  EXPECT_EQ(committed.rbegin()->first, successes);  // gapless despite faults
  auto final_handle = ValueOrDie(registry.Get("shared"));
  EXPECT_EQ(final_handle.version, successes);
  EXPECT_EQ(MarkerOf(final_handle), committed.rbegin()->second);
}

TEST(RegistrySwapStressTest, PredictStaysConsistentAcrossNamespaceSwaps) {
  // A server pinned to one namespace answers under fire while that
  // namespace hot-swaps between two known models (with periodic validator
  // rejections rolling back mid-stream) and a sibling namespace churns
  // independently. Every response must be bit-identical to the snapshot its
  // version names.
  const MpSvmModel model_a = TrainModel(3);
  const MpSvmModel model_b = TrainModel(4);
  const MpSvmModel bad = TrainModel(5, /*k=*/2);
  auto test = ValueOrDie(MakeMulticlassBlobs(3, 25, 6, 2.5, 99));

  ServeOptions options;
  options.model_name = "tenant:a";
  options.num_workers = 3;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = microseconds(200);

  SimExecutor ref_exec(ExecutorModel::TeslaP100());
  const PredictResult ref_a = ValueOrDie(MpSvmPredictor(&model_a).Predict(
      test.features(), &ref_exec, options.predict));
  const PredictResult ref_b = ValueOrDie(MpSvmPredictor(&model_b).Predict(
      test.features(), &ref_exec, options.predict));

  ModelRegistry registry;
  registry.SetValidator([](const MpSvmModel& model) {
    return model.num_classes >= 3
               ? Status::OK()
               : Status::InvalidArgument("needs >= 3 classes");
  });
  ValueOrDie(registry.Register("tenant:a", model_a));  // version 1 = A
  ValueOrDie(registry.Register("tenant:b", model_a));
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  std::atomic<bool> clients_done{false};
  // Served namespace: versions alternate B (even) / A (odd); a rejected
  // candidate every third swap must not disturb the parity.
  std::thread swapper_a([&] {
    for (int i = 0; i < 20 && !clients_done.load(); ++i) {
      if (i % 3 == 2) {
        EXPECT_TRUE(registry.Register("tenant:a", bad)
                        .status()
                        .IsInvalidArgument());
      }
      const MpSvmModel& next = (i % 2 == 0) ? model_b : model_a;
      ValueOrDie(registry.Register("tenant:a", next));
      std::this_thread::sleep_for(milliseconds(2));
    }
  });
  // Sibling namespace churn: must be invisible to tenant:a's clients.
  std::thread swapper_b([&] {
    for (int i = 0; i < 40 && !clients_done.load(); ++i) {
      const MpSvmModel& next = (i % 2 == 0) ? model_b : model_a;
      ValueOrDie(registry.Register("tenant:b", next));
    }
  });

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t row = (c * kPerClient + r) % test.size();
        auto result = server.Predict(test.features().RowIndices(row),
                                     test.features().RowValues(row));
        if (!result.ok()) {
          ++mismatches;
          continue;
        }
        const PredictResult& ref =
            (result->model_version % 2 == 1) ? ref_a : ref_b;
        bool match = result->label == ref.labels[static_cast<size_t>(row)] &&
                     result->probabilities.size() == 3u;
        for (int k = 0; match && k < 3; ++k) {
          match = result->probabilities[static_cast<size_t>(k)] ==
                  ref.Probability(row, k);
        }
        if (!match) ++mismatches;
      }
    });
  }
  for (auto& t : clients) t.join();
  clients_done.store(true);
  swapper_a.join();
  swapper_b.join();
  GMP_CHECK_OK(server.Shutdown());

  EXPECT_EQ(mismatches.load(), 0);
  const ServeStatsSnapshot snap = server.stats().Snapshot();
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(snap.failed, 0u);
}

}  // namespace
}  // namespace gmpsvm
