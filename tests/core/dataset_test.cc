#include "core/dataset.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gmpsvm {
namespace {

CsrMatrix TinyMatrix(int rows, int cols = 4) {
  CsrBuilder b(cols);
  for (int r = 0; r < rows; ++r) {
    b.AddRow(std::vector<int32_t>{r % cols}, std::vector<double>{1.0 + r});
  }
  return ValueOrDie(b.Finish());
}

TEST(DatasetTest, CreateValidatesLabelCount) {
  auto result = Dataset::Create(TinyMatrix(3), {0, 1});
  EXPECT_FALSE(result.ok());
}

TEST(DatasetTest, CreateValidatesLabelRange) {
  EXPECT_FALSE(Dataset::Create(TinyMatrix(3), {0, 1, -1}).ok());
  EXPECT_FALSE(Dataset::Create(TinyMatrix(3), {0, 1, 5}, 3).ok());
}

TEST(DatasetTest, CreateRejectsSingleClass) {
  EXPECT_FALSE(Dataset::Create(TinyMatrix(3), {0, 0, 0}).ok());
}

TEST(DatasetTest, InfersNumClasses) {
  auto d = ValueOrDie(Dataset::Create(TinyMatrix(6), {0, 2, 1, 2, 0, 1}));
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.num_pairs(), 3);
  EXPECT_EQ(d.size(), 6);
}

TEST(DatasetTest, ClassRowsPreserveDatasetOrder) {
  auto d = ValueOrDie(Dataset::Create(TinyMatrix(6), {1, 0, 1, 0, 1, 0}, 2));
  EXPECT_EQ(d.ClassRows(0), (std::vector<int32_t>{1, 3, 5}));
  EXPECT_EQ(d.ClassRows(1), (std::vector<int32_t>{0, 2, 4}));
}

TEST(DatasetTest, MakePairProblemLayout) {
  auto d = ValueOrDie(Dataset::Create(TinyMatrix(7), {0, 1, 2, 0, 1, 2, 0}, 3));
  KernelParams kernel;
  BinaryProblem p = d.MakePairProblem(0, 2, 3.5, kernel);
  // Class 0 rows (+1) first, class 2 rows (-1) after, in dataset order.
  EXPECT_EQ(p.rows, (std::vector<int32_t>{0, 3, 6, 2, 5}));
  EXPECT_EQ(p.y, (std::vector<int8_t>{1, 1, 1, -1, -1}));
  EXPECT_DOUBLE_EQ(p.C, 3.5);
  EXPECT_EQ(p.data, &d.features());
}

TEST(DatasetTest, ClassPairsEnumeration) {
  auto d = ValueOrDie(
      Dataset::Create(TinyMatrix(4), {0, 1, 2, 3}, 4));
  const auto pairs = d.ClassPairs();
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<int, int>{0, 2}));
  EXPECT_EQ(pairs[2], (std::pair<int, int>{0, 3}));
  EXPECT_EQ(pairs[3], (std::pair<int, int>{1, 2}));
  EXPECT_EQ(pairs[5], (std::pair<int, int>{2, 3}));
}

TEST(DatasetTest, NumPairsFormula) {
  for (int k = 2; k <= 20; ++k) {
    std::vector<int32_t> labels;
    for (int i = 0; i < 2 * k; ++i) labels.push_back(i % k);
    auto d = ValueOrDie(Dataset::Create(TinyMatrix(2 * k), labels, k));
    EXPECT_EQ(d.num_pairs(), k * (k - 1) / 2);
    EXPECT_EQ(static_cast<int>(d.ClassPairs().size()), d.num_pairs());
  }
}

}  // namespace
}  // namespace gmpsvm
