#include "core/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "metrics/metrics.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

MpTrainOptions SmallGmpOptions() {
  MpTrainOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

SimExecutor Gpu() { return SimExecutor(ExecutorModel::TeslaP100()); }

struct TrainedFixture {
  Dataset train;
  Dataset test;
  MpSvmModel model;
};

TrainedFixture MakeFixture(int k, uint64_t seed, double separation = 2.5) {
  TrainedFixture fx{
      ValueOrDie(MakeMulticlassBlobs(k, 30, 6, separation, seed)),
      ValueOrDie(MakeMulticlassBlobs(k, 10, 6, separation, seed + 1000)),
      MpSvmModel{},
  };
  SimExecutor exec = Gpu();
  fx.model = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(fx.train, &exec,
                                                               nullptr));
  return fx;
}

TEST(MpSvmPredictorTest, ProbabilitiesAreDistributions) {
  TrainedFixture fx = MakeFixture(4, 42);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &exec, PredictOptions{}));
  ASSERT_EQ(result.num_instances, fx.test.size());
  for (int64_t i = 0; i < result.num_instances; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 4; ++c) {
      const double p = result.Probability(i, c);
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MpSvmPredictorTest, LabelsAreArgmax) {
  TrainedFixture fx = MakeFixture(3, 7);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &exec, PredictOptions{}));
  for (int64_t i = 0; i < result.num_instances; ++i) {
    int best = 0;
    for (int c = 1; c < 3; ++c) {
      if (result.Probability(i, c) > result.Probability(i, best)) best = c;
    }
    EXPECT_EQ(result.labels[static_cast<size_t>(i)], best);
  }
}

TEST(MpSvmPredictorTest, SeparableDataPredictsAccurately) {
  TrainedFixture fx = MakeFixture(4, 11, /*separation=*/4.0);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &exec, PredictOptions{}));
  const double err = ValueOrDie(ErrorRate(result.labels, fx.test.labels()));
  EXPECT_LT(err, 0.1);
}

TEST(MpSvmPredictorTest, SharedAndPerSvmPathsAgree) {
  TrainedFixture fx = MakeFixture(4, 13);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions shared;
  shared.share_kernel_values = true;
  PredictOptions per_svm;
  per_svm.share_kernel_values = false;
  per_svm.concurrent_svms = false;
  auto rs = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, shared));
  auto rp = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2, per_svm));
  ASSERT_EQ(rs.probabilities.size(), rp.probabilities.size());
  for (size_t i = 0; i < rs.probabilities.size(); ++i) {
    EXPECT_NEAR(rs.probabilities[i], rp.probabilities[i], 1e-9);
  }
  EXPECT_EQ(rs.labels, rp.labels);
}

TEST(MpSvmPredictorTest, SharingComputesFewerKernelValues) {
  TrainedFixture fx = MakeFixture(5, 17);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions shared;
  PredictOptions per_svm;
  per_svm.share_kernel_values = false;
  per_svm.concurrent_svms = false;
  ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, shared));
  ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2, per_svm));
  EXPECT_LT(e1.counters().kernel_values_computed,
            e2.counters().kernel_values_computed);
  // And it is faster in simulated time (the Figure 5 multi-class effect).
  EXPECT_LT(e1.NowSeconds(), e2.NowSeconds());
}

TEST(MpSvmPredictorTest, TilingDoesNotChangeResults) {
  TrainedFixture fx = MakeFixture(3, 19);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions one_tile;
  one_tile.tile_rows = fx.test.size();
  PredictOptions tiny_tiles;
  tiny_tiles.tile_rows = 3;
  auto r1 = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, one_tile));
  auto r2 = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2, tiny_tiles));
  for (size_t i = 0; i < r1.probabilities.size(); ++i) {
    EXPECT_NEAR(r1.probabilities[i], r2.probabilities[i], 1e-12);
  }
}

TEST(MpSvmPredictorTest, PhaseBreakdownDominatedByDecisionValues) {
  TrainedFixture fx = MakeFixture(4, 23);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &exec, PredictOptions{}));
  // Figure 12's shape: decision values dominate; coupling is negligible.
  EXPECT_GT(result.phases.Get("decision_values"), result.phases.Get("coupling"));
  EXPECT_GT(result.phases.Get("decision_values"), 0.0);
  EXPECT_GT(result.phases.Get("sigmoid"), 0.0);
}

TEST(MpSvmPredictorTest, RejectsDimensionMismatch) {
  TrainedFixture fx = MakeFixture(3, 29);
  CsrBuilder b(99);
  b.AddRow(std::vector<int32_t>{0}, std::vector<double>{1.0});
  CsrMatrix bad = ValueOrDie(b.Finish());
  SimExecutor exec = Gpu();
  auto result = MpSvmPredictor(&fx.model).Predict(bad, &exec, PredictOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(MpSvmPredictorTest, EmptyTestSetYieldsEmptyResult) {
  TrainedFixture fx = MakeFixture(3, 31);
  CsrBuilder b(fx.test.dim());
  CsrMatrix empty = ValueOrDie(b.Finish());
  SimExecutor exec = Gpu();
  auto result =
      ValueOrDie(MpSvmPredictor(&fx.model).Predict(empty, &exec, PredictOptions{}));
  EXPECT_EQ(result.num_instances, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(MpSvmPredictorTest, DeterministicAcrossRuns) {
  TrainedFixture fx = MakeFixture(3, 37);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto r1 = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, PredictOptions{}));
  auto r2 = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2, PredictOptions{}));
  EXPECT_EQ(r1.probabilities, r2.probabilities);
  EXPECT_DOUBLE_EQ(r1.sim_seconds, r2.sim_seconds);
}

// --- Tiling / PredictRows edge cases exercised by the serving micro-batcher.

std::vector<SparseRowView> RowViews(const CsrMatrix& m) {
  std::vector<SparseRowView> rows;
  rows.reserve(static_cast<size_t>(m.rows()));
  for (int64_t i = 0; i < m.rows(); ++i) {
    rows.push_back(SparseRowView{m.RowIndices(i), m.RowValues(i)});
  }
  return rows;
}

TEST(MpSvmPredictorTest, PredictRowsMatchesPredictBitForBit) {
  TrainedFixture fx = MakeFixture(3, 43);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto direct = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, PredictOptions{}));
  const auto rows = RowViews(fx.test.features());
  auto via_rows = ValueOrDie(
      MpSvmPredictor(&fx.model).PredictRows(rows, &e2, PredictOptions{}));
  EXPECT_EQ(direct.probabilities, via_rows.probabilities);
  EXPECT_EQ(direct.labels, via_rows.labels);
}

TEST(MpSvmPredictorTest, OneRowBatchesMatchFullBatchBitForBit) {
  TrainedFixture fx = MakeFixture(3, 47);
  SimExecutor e1 = Gpu();
  auto full = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, PredictOptions{}));
  const auto rows = RowViews(fx.test.features());
  for (size_t i = 0; i < rows.size(); ++i) {
    SimExecutor e2 = Gpu();
    auto one = ValueOrDie(MpSvmPredictor(&fx.model)
                              .PredictRows({&rows[i], 1}, &e2, PredictOptions{}));
    ASSERT_EQ(one.num_instances, 1);
    for (int c = 0; c < 3; ++c) {
      // The per-row math must not depend on batch composition — this is
      // what lets the serving layer batch arbitrarily without changing
      // results.
      EXPECT_EQ(one.Probability(0, c), full.Probability(static_cast<int64_t>(i), c));
    }
    EXPECT_EQ(one.labels[0], full.labels[i]);
  }
}

TEST(MpSvmPredictorTest, TileBoundaryExactlyAtBatchSize) {
  TrainedFixture fx = MakeFixture(3, 53);
  const int64_t n = fx.test.size();
  // tile == n (single full tile), tile dividing n exactly, and tile = 1.
  for (int64_t tile : {n, n / 2, int64_t{1}}) {
    if (tile <= 0 || n % tile != 0) continue;
    SimExecutor e1 = Gpu(), e2 = Gpu();
    PredictOptions exact;
    exact.tile_rows = tile;
    auto r1 = ValueOrDie(
        MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, exact));
    auto r2 = ValueOrDie(MpSvmPredictor(&fx.model)
                             .Predict(fx.test.features(), &e2, PredictOptions{}));
    EXPECT_EQ(r1.probabilities, r2.probabilities) << "tile_rows=" << tile;
    EXPECT_EQ(r1.labels, r2.labels);
  }
}

TEST(MpSvmPredictorTest, EmptyRequestSetYieldsEmptyResult) {
  TrainedFixture fx = MakeFixture(3, 59);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(MpSvmPredictor(&fx.model).PredictRows(
      {}, &exec, PredictOptions{}));
  EXPECT_EQ(result.num_instances, 0);
  EXPECT_TRUE(result.probabilities.empty());
  EXPECT_TRUE(result.labels.empty());
}

TEST(MpSvmPredictorTest, PredictRowsRejectsMismatchedRow) {
  TrainedFixture fx = MakeFixture(3, 61);
  SimExecutor exec = Gpu();
  const std::vector<int32_t> idx{0, 1};
  const std::vector<double> val{1.0};
  const SparseRowView bad{idx, val};
  auto result =
      MpSvmPredictor(&fx.model).PredictRows({&bad, 1}, &exec, PredictOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(MpSvmPredictorTest, PredictOneMatchesBatchRow) {
  TrainedFixture fx = MakeFixture(3, 67);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions sequential;
  sequential.concurrent_svms = false;
  auto batch = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, sequential));
  auto one = ValueOrDie(MpSvmPredictor(&fx.model).PredictOne(
      fx.test.features().RowIndices(0), fx.test.features().RowValues(0), &e2,
      sequential));
  ASSERT_EQ(one.size(), 3u);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(one[static_cast<size_t>(c)], batch.Probability(0, c));
}

TEST(MpSvmPredictorTest, PredictOneCarriesCascadeOptions) {
  // The unified entry point exposes the whole options surface: a cascade
  // PredictOne call must reproduce the cascade batch path's row exactly.
  TrainedFixture fx = MakeFixture(4, 71);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions cascade;
  cascade.cascade.mode = CascadeOptions::Mode::kEliminate;
  cascade.cascade.ambiguity_band = 0.0;
  auto batch = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, cascade));
  auto one = ValueOrDie(MpSvmPredictor(&fx.model).PredictOne(
      fx.test.features().RowIndices(0), fx.test.features().RowValues(0), &e2,
      cascade));
  ASSERT_EQ(one.size(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(one[static_cast<size_t>(c)], batch.Probability(0, c));
  }
}

TEST(MpSvmPredictorTest, ValidateRejectsBadOptions) {
  TrainedFixture fx = MakeFixture(3, 73);
  SimExecutor exec = Gpu();
  MpSvmPredictor predictor(&fx.model);
  PredictOptions bad;
  bad.max_concurrent_svms = 0;
  auto result = predictor.Predict(fx.test.features(), &exec, bad);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("max_concurrent_svms"),
            std::string::npos);
}

TEST(MpSvmPredictorTest, TrainingErrorLowOnSeparableData) {
  TrainedFixture fx = MakeFixture(4, 41, 4.0);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.train.features(), &exec, PredictOptions{}));
  const double err = ValueOrDie(ErrorRate(result.labels, fx.train.labels()));
  EXPECT_LT(err, 0.05);
}

}  // namespace
}  // namespace gmpsvm
