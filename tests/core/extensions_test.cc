// Tests for the extension features: voting prediction, cross-validation,
// the one-vs-all trainer, execution tracing, LRU buffer policy plumbing,
// and the classic solver's shrinking heuristic.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/cross_validation.h"
#include "core/grid_search.h"
#include "core/mp_trainer.h"
#include "core/ova_trainer.h"
#include "core/predictor.h"
#include "core/sigmoid_cv.h"
#include "obs/span.h"
#include "metrics/metrics.h"
#include "common/rng.h"
#include "solver/batch_smo_solver.h"
#include "solver/smo_solver.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeBinaryBlobs;
using ::gmpsvm::testing::MakeMulticlassBlobs;
using ::gmpsvm::testing::MakeProblem;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

MpTrainOptions SmallOptions() {
  MpTrainOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.shared_cache_bytes = 32ull << 20;
  return options;
}

SimExecutor Gpu() { return SimExecutor(ExecutorModel::TeslaP100()); }

TEST(VotingPredictionTest, AgreesWithProbabilityOnSeparableData) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 30, 6, 3.5, 42));
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
  MpSvmPredictor predictor(&model);

  PredictOptions prob_opts;
  PredictOptions vote_opts;
  vote_opts.decision = PredictOptions::Decision::kVoting;
  auto prob = ValueOrDie(predictor.Predict(data.features(), &exec, prob_opts));
  auto vote = ValueOrDie(predictor.Predict(data.features(), &exec, vote_opts));
  int disagreements = 0;
  for (size_t i = 0; i < prob.labels.size(); ++i) {
    if (prob.labels[i] != vote.labels[i]) ++disagreements;
  }
  // On cleanly separable data the two rules agree (almost) everywhere.
  EXPECT_LE(disagreements, static_cast<int>(prob.labels.size() / 50));
}

TEST(VotingPredictionTest, VoteFractionsSumToOne) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.0, 7));
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
  PredictOptions opts;
  opts.decision = PredictOptions::Decision::kVoting;
  auto result =
      ValueOrDie(MpSvmPredictor(&model).Predict(data.features(), &exec, opts));
  for (int64_t i = 0; i < result.num_instances; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += result.Probability(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(CrossValidationTest, ReportsPooledMetrics) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 2.5, 11));
  CrossValidationOptions options;
  options.folds = 3;
  options.train = SmallOptions();
  SimExecutor exec = Gpu();
  auto cv = ValueOrDie(CrossValidate(data, options, &exec));
  EXPECT_EQ(cv.folds, 3);
  EXPECT_EQ(cv.fold_errors.size(), 3u);
  EXPECT_LT(cv.error_rate, 0.15);  // separable blobs
  EXPECT_GT(cv.log_loss, 0.0);
  EXPECT_LT(cv.brier_score, 0.5);
  EXPECT_GT(cv.sim_seconds, 0.0);
}

TEST(CrossValidationTest, HarderDataHasHigherCvError) {
  auto easy = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 3.0, 13));
  auto hard = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 0.5, 13));
  CrossValidationOptions options;
  options.folds = 3;
  options.train = SmallOptions();
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto cv_easy = ValueOrDie(CrossValidate(easy, options, &e1));
  auto cv_hard = ValueOrDie(CrossValidate(hard, options, &e2));
  EXPECT_LT(cv_easy.error_rate, cv_hard.error_rate);
}

TEST(CrossValidationTest, RejectsBadFolds) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 5, 3, 2.0, 17));
  CrossValidationOptions options;
  options.folds = 1;
  SimExecutor exec = Gpu();
  EXPECT_FALSE(CrossValidate(data, options, &exec).ok());
}

TEST(OvaTrainerTest, TrainsOneSvmPerClass) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 25, 5, 2.5, 19));
  SimExecutor exec = Gpu();
  MpTrainReport report;
  auto model = ValueOrDie(OvaTrainer(SmallOptions()).Train(data, &exec, &report));
  EXPECT_EQ(model.classes.size(), 4u);
  EXPECT_GT(model.support_vectors.rows(), 0);
  EXPECT_GT(report.sim_seconds, 0.0);
  for (const auto& entry : model.classes) {
    EXPECT_GT(entry.sv_pool_index.size(), 0u);
  }
}

TEST(OvaTrainerTest, PredictsAccuratelyOnSeparableData) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 3.0, 23));
  auto test = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 3.0, 1023));
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(OvaTrainer(SmallOptions()).Train(data, &exec, nullptr));
  auto pred = ValueOrDie(OvaPredict(model, test.features(), &exec));
  const double err = ValueOrDie(ErrorRate(pred.labels, test.labels()));
  EXPECT_LT(err, 0.15);
  for (int64_t i = 0; i < pred.num_instances; ++i) {
    double sum = 0.0;
    for (int c = 0; c < 3; ++c) sum += pred.Probability(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OvaTrainerTest, OvaProblemsAreLargerThanPairwise) {
  // The structural cost difference: each OVA SVM sees all n instances.
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 20, 5, 2.0, 29));
  SimExecutor e1 = Gpu(), e2 = Gpu();
  MpTrainReport ova_report, ovo_report;
  ValueOrDie(OvaTrainer(SmallOptions()).Train(data, &e1, &ova_report));
  ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &e2, &ovo_report));
  // 5 problems x 100 instances vs 10 problems x 40 instances: OVA does more
  // kernel work per problem.
  EXPECT_GT(e1.counters().kernel_values_computed / 5,
            e2.counters().kernel_values_computed / 10);
}

TEST(DeviceTraceTest, RecordsChargesAndTransfers) {
  SimExecutor exec = Gpu();
  obs::TraceRecorder trace;
  exec.SetSpanRecorder(&trace);
  TaskCost cost;
  cost.flops = 1e6;
  cost.parallel_items = 1000;
  exec.Charge(kDefaultStream, cost);
  exec.Transfer(kDefaultStream, 1e6, TransferDirection::kHostToDevice);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_FALSE(trace.events()[0].is_transfer);
  EXPECT_TRUE(trace.events()[1].is_transfer);
  EXPECT_DOUBLE_EQ(trace.events()[0].flops, 1e6);
  // Events tile the stream timeline.
  EXPECT_DOUBLE_EQ(trace.events()[0].end_seconds, trace.events()[1].start_seconds);
}

TEST(DeviceTraceTest, BusyTimeAndJsonExport) {
  SimExecutor exec = Gpu();
  obs::TraceRecorder trace;
  exec.SetSpanRecorder(&trace);
  StreamId s1 = exec.CreateStream(0.5);
  TaskCost cost;
  cost.flops = 1e7;
  cost.parallel_items = 100000;
  exec.Charge(kDefaultStream, cost);
  exec.Charge(s1, cost);
  auto busy = trace.BusyTimePerStream();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_GT(busy[0], 0.0);
  EXPECT_GT(busy[1], 0.0);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(DeviceTraceTest, TrainerProducesOverlappingStreams) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 20, 5, 2.0, 31));
  SimExecutor exec = Gpu();
  obs::TraceRecorder trace;
  exec.SetSpanRecorder(&trace);
  MpTrainOptions options = SmallOptions();
  options.max_concurrent_svms = 6;
  ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
  // Concurrent training used more than the default stream.
  int max_lane = 0;
  for (const auto& e : trace.events()) max_lane = std::max(max_lane, e.lane);
  EXPECT_GT(max_lane, 0);
}

TEST(ShrinkingTest, SameClassifierWithAndWithout) {
  auto blobs = MakeBinaryBlobs(60, 4, 1.0, 37, /*noise=*/1.4);
  BinaryProblem p = MakeProblem(blobs, 1.5, Gaussian(0.4));
  KernelComputer kc(p.data, p.kernel);

  SmoOptions plain;
  SmoOptions shrink;
  shrink.shrinking = true;
  shrink.shrink_interval = 50;

  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto a = ValueOrDie(SmoSolver(plain).Solve(p, kc, &e1, kDefaultStream, nullptr));
  auto b = ValueOrDie(SmoSolver(shrink).Solve(p, kc, &e2, kDefaultStream, nullptr));
  EXPECT_NEAR(a.objective, b.objective, 1e-3 * (1.0 + std::abs(a.objective)));
  EXPECT_NEAR(a.bias, b.bias, 5e-2);
  EXPECT_LT(::gmpsvm::testing::MaxKktViolation(p, kc, b.alpha), 2e-3);
}

TEST(ShrinkingTest, ShrinkingReducesScanWork) {
  auto blobs = MakeBinaryBlobs(80, 4, 2.0, 41);  // separable: many non-SVs
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);
  SmoOptions plain;
  SmoOptions shrink;
  shrink.shrinking = true;
  shrink.shrink_interval = 20;

  SimExecutor e1 = Gpu(), e2 = Gpu();
  SolverStats s1, s2;
  ValueOrDie(SmoSolver(plain).Solve(p, kc, &e1, kDefaultStream, &s1));
  ValueOrDie(SmoSolver(shrink).Solve(p, kc, &e2, kDefaultStream, &s2));
  // Scan flops drop when most instances are shrunk away (total flops falls
  // even with the reconstruction pass added).
  EXPECT_LT(e2.counters().flops, e1.counters().flops * 1.05);
}

TEST(LruBufferPolicyTest, SolverConvergesWithLru) {
  auto blobs = MakeBinaryBlobs(40, 4, 1.2, 43, /*noise=*/1.3);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.4));
  KernelComputer kc(p.data, p.kernel);
  BatchSmoOptions options;
  options.working_set.ws_size = 16;
  options.working_set.q = 8;
  options.buffer_policy = KernelBuffer::Policy::kLru;
  SimExecutor exec = Gpu();
  auto sol = ValueOrDie(
      BatchSmoSolver(options).Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_LT(::gmpsvm::testing::MaxKktViolation(p, kc, sol.alpha), 2e-3);
}

TEST(ClassWeightsTest, RejectsWrongSize) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 10, 4, 2.0, 47));
  MpTrainOptions options = SmallOptions();
  options.class_weights = {1.0, 2.0};  // 2 weights for 3 classes
  SimExecutor exec = Gpu();
  EXPECT_FALSE(GmpSvmTrainer(options).Train(data, &exec, nullptr).ok());
}

TEST(ClassWeightsTest, BoxConstraintsRespectWeights) {
  auto blobs = MakeBinaryBlobs(40, 4, 0.6, 53, /*noise=*/1.8);  // overlapped
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.4));
  p.weight_pos = 3.0;  // C_+ = 3, C_- = 1
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec = Gpu();
  auto sol = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &exec, kDefaultStream, nullptr));
  bool pos_above_one = false;
  double sum_ya = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    const double a = sol.alpha[static_cast<size_t>(i)];
    const double bound = p.y[static_cast<size_t>(i)] > 0 ? 3.0 : 1.0;
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, bound + 1e-12);
    if (p.y[static_cast<size_t>(i)] > 0 && a > 1.0 + 1e-9) pos_above_one = true;
    sum_ya += a * p.y[static_cast<size_t>(i)];
  }
  EXPECT_TRUE(pos_above_one);  // the larger box is actually used
  EXPECT_NEAR(sum_ya, 0.0, 1e-8);
}

TEST(ClassWeightsTest, UpweightingMinorityReducesItsErrors) {
  // Imbalanced binary data: 20 positives vs 120 negatives, overlapping.
  Rng rng(59);
  CsrBuilder b(6);
  std::vector<int32_t> labels;
  for (int i = 0; i < 140; ++i) {
    const bool minority = i < 20;
    std::vector<int32_t> idx(6);
    std::vector<double> val(6);
    for (int d = 0; d < 6; ++d) {
      idx[static_cast<size_t>(d)] = d;
      val[static_cast<size_t>(d)] = rng.Normal(minority ? 0.7 : -0.7, 1.4);
    }
    b.AddRow(idx, val);
    labels.push_back(minority ? 0 : 1);
  }
  auto data = ValueOrDie(Dataset::Create(ValueOrDie(b.Finish()), labels, 2, "imb"));

  auto minority_errors = [&](std::vector<double> weights) {
    MpTrainOptions options = SmallOptions();
    options.class_weights = std::move(weights);
    SimExecutor exec = Gpu();
    auto model = ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
    auto pred = ValueOrDie(
        MpSvmPredictor(&model).Predict(data.features(), &exec, PredictOptions{}));
    int errors = 0;
    for (int32_t r : data.ClassRows(0)) {
      if (pred.labels[static_cast<size_t>(r)] != 0) ++errors;
    }
    return errors;
  };
  const int unweighted = minority_errors({});
  const int weighted = minority_errors({6.0, 1.0});
  EXPECT_LE(weighted, unweighted);
  EXPECT_GT(unweighted, 0);  // the imbalance actually bites without weights
}

TEST(ClassWeightsTest, BatchAndClassicSolversAgreeUnderWeights) {
  auto blobs = MakeBinaryBlobs(35, 4, 1.0, 61, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.3));
  p.weight_pos = 2.5;
  p.weight_neg = 0.5;
  KernelComputer kc(p.data, p.kernel);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto ref = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &e1, kDefaultStream, nullptr));
  BatchSmoOptions bopts;
  bopts.working_set.ws_size = 16;
  bopts.working_set.q = 8;
  auto batch = ValueOrDie(
      BatchSmoSolver(bopts).Solve(p, kc, &e2, kDefaultStream, nullptr));
  EXPECT_NEAR(batch.objective, ref.objective,
              1e-2 * (1.0 + std::abs(ref.objective)));
  EXPECT_NEAR(batch.bias, ref.bias, 5e-2);
}

TEST(SigmoidCvTest, CvDecisionValuesDifferFromTraining) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 40, 5, 1.2, 67));
  MpTrainOptions direct = SmallOptions();
  MpTrainOptions cv = SmallOptions();
  cv.sigmoid_cv_folds = 5;
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto m_direct = ValueOrDie(GmpSvmTrainer(direct).Train(data, &e1, nullptr));
  auto m_cv = ValueOrDie(GmpSvmTrainer(cv).Train(data, &e2, nullptr));
  // The SVM itself is identical; only the sigmoid differs.
  EXPECT_DOUBLE_EQ(m_direct.svms[0].bias, m_cv.svms[0].bias);
  EXPECT_EQ(m_direct.svms[0].sv_coef, m_cv.svms[0].sv_coef);
  EXPECT_NE(m_direct.svms[0].sigmoid.a, m_cv.svms[0].sigmoid.a);
  // CV costs extra training: more kernel values were computed.
  EXPECT_GT(e2.counters().kernel_values_computed,
            e1.counters().kernel_values_computed);
}

TEST(SigmoidCvTest, CvSigmoidLessOverconfidentOnNoisyData) {
  // With label noise and high C, training decision values are optimistic
  // (everything fitted); CV values are not, so the CV sigmoid is shallower.
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 60, 5, 0.8, 71, /*noise=*/1.6));
  MpTrainOptions direct = SmallOptions();
  direct.c = 50.0;
  MpTrainOptions cv = direct;
  cv.sigmoid_cv_folds = 5;
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto m_direct = ValueOrDie(GmpSvmTrainer(direct).Train(data, &e1, nullptr));
  auto m_cv = ValueOrDie(GmpSvmTrainer(cv).Train(data, &e2, nullptr));
  // Steeper sigmoid = more negative A = more confident.
  EXPECT_GT(m_cv.svms[0].sigmoid.a, m_direct.svms[0].sigmoid.a);
}

TEST(SigmoidCvTest, RejectsBadFoldCount) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 10, 4, 2.0, 73));
  KernelParams kernel = Gaussian(0.3);
  KernelComputer kc(&data.features(), kernel);
  BinaryProblem p = data.MakePairProblem(0, 1, 1.0, kernel);
  SimExecutor exec = Gpu();
  auto solve = [&](const BinaryProblem& sub, SimExecutor* e, StreamId s) {
    return SmoSolver(SmoOptions{}).Solve(sub, kc, e, s, nullptr);
  };
  EXPECT_FALSE(CrossValidatedDecisionValues(p, kc, solve, 1, 1, &exec,
                                            kDefaultStream)
                   .ok());
  EXPECT_FALSE(CrossValidatedDecisionValues(p, kc, solve, 1000, 1, &exec,
                                            kDefaultStream)
                   .ok());
}

TEST(GridSearchTest, FindsBestCellAndCoversGrid) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 25, 5, 1.0, 79));
  GridSearchOptions options;
  options.c_values = {0.1, 10.0};
  options.gamma_values = {0.05, 0.5};
  options.folds = 3;
  options.train = SmallOptions();
  SimExecutor exec = Gpu();
  auto grid = ValueOrDie(GridSearch(data, options, &exec));
  ASSERT_EQ(grid.cells.size(), 4u);
  double best_seen = 1.0;
  for (const auto& cell : grid.cells) {
    EXPECT_GE(cell.error_rate, 0.0);
    EXPECT_LE(cell.error_rate, 1.0);
    best_seen = std::min(best_seen, cell.error_rate);
  }
  EXPECT_DOUBLE_EQ(grid.best.error_rate, best_seen);
  EXPECT_GT(grid.sim_seconds, 0.0);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 10, 4, 2.0, 83));
  GridSearchOptions options;
  options.c_values.clear();
  SimExecutor exec = Gpu();
  EXPECT_FALSE(GridSearch(data, options, &exec).ok());
}

TEST(PredictOneTest, MatchesBatchPrediction) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 25, 5, 2.5, 89));
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
  MpSvmPredictor predictor(&model);
  auto batch = ValueOrDie(
      predictor.Predict(data.features(), &exec, PredictOptions{}));

  for (int64_t row : {int64_t{0}, data.size() / 2, data.size() - 1}) {
    auto idx = data.features().RowIndices(row);
    auto val = data.features().RowValues(row);
    auto p = ValueOrDie(predictor.PredictOne(idx, val, &exec, PredictOptions{}));
    ASSERT_EQ(p.size(), 3u);
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(p[static_cast<size_t>(c)], batch.Probability(row, c), 1e-9);
    }
  }
}

TEST(PredictOneTest, RejectsMismatchedSpans) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 10, 4, 2.0, 97));
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
  std::vector<int32_t> idx = {0, 1};
  std::vector<double> val = {1.0};
  EXPECT_FALSE(
      MpSvmPredictor(&model).PredictOne(idx, val, &exec, PredictOptions{}).ok());
}

}  // namespace
}  // namespace gmpsvm
