// Pair-parallel trainer orchestration under a real thread pool. Kept small
// and fast: this binary is the TSan target for the fork-join training path,
// so it exercises concurrent pair solves (satellite executors sharing the
// kernel computer, solver, and host pool) rather than statistical coverage —
// host_determinism_test covers the {1,2,8} sweep.

#include "core/mp_trainer.h"

#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "core/model_io.h"
#include "core/ova_trainer.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpTrainOptions Options(int host_threads) {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  options.host_threads = host_threads;
  return options;
}

TEST(PairParallelTrainerTest, GmpMatchesSerial) {
  // share_kernel_blocks off puts every pair on its own satellite executor;
  // four worker threads solve the six pairs of group 0 concurrently.
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 20, 5, 2.0, 42));
  MpTrainOptions serial_options = Options(1);
  serial_options.share_kernel_blocks = false;
  MpTrainOptions parallel_options = Options(4);
  parallel_options.share_kernel_blocks = false;

  SimExecutor serial_exec(ExecutorModel::TeslaP100());
  MpTrainReport serial_report;
  auto serial_model = ValueOrDie(
      GmpSvmTrainer(serial_options).Train(data, &serial_exec, &serial_report));

  SimExecutor parallel_exec(ExecutorModel::TeslaP100());
  MpTrainReport parallel_report;
  auto parallel_model = ValueOrDie(GmpSvmTrainer(parallel_options)
                                       .Train(data, &parallel_exec,
                                              &parallel_report));

  EXPECT_EQ(SerializeModel(parallel_model), SerializeModel(serial_model));
  EXPECT_EQ(parallel_report.sim_seconds, serial_report.sim_seconds);
  EXPECT_EQ(parallel_report.solver.iterations, serial_report.solver.iterations);
  EXPECT_EQ(parallel_exec.counters().flops, serial_exec.counters().flops);
  EXPECT_EQ(parallel_exec.counters().launches, serial_exec.counters().launches);
  EXPECT_EQ(parallel_exec.counters().kernel_values_computed,
            serial_exec.counters().kernel_values_computed);
}

TEST(PairParallelTrainerTest, GmpWithSharedCacheStaysCorrect) {
  // With the shared block cache on, pair-level parallelism is disabled (the
  // hit/miss accounting is schedule-dependent) but op-level threading stays
  // active; results must still match the serial run.
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 20, 5, 2.0, 42));
  SimExecutor serial_exec(ExecutorModel::TeslaP100());
  MpTrainReport serial_report;
  auto serial_model = ValueOrDie(
      GmpSvmTrainer(Options(1)).Train(data, &serial_exec, &serial_report));
  SimExecutor parallel_exec(ExecutorModel::TeslaP100());
  MpTrainReport parallel_report;
  auto parallel_model = ValueOrDie(
      GmpSvmTrainer(Options(4)).Train(data, &parallel_exec, &parallel_report));
  EXPECT_EQ(SerializeModel(parallel_model), SerializeModel(serial_model));
  EXPECT_EQ(parallel_report.sim_seconds, serial_report.sim_seconds);
}

TEST(PairParallelTrainerTest, SequentialMatchesSerial) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 24, 5, 2.0, 17));
  SimExecutor serial_exec(ExecutorModel::TeslaP100());
  MpTrainReport serial_report;
  auto serial_model = ValueOrDie(SequentialMpTrainer(Options(1))
                                     .Train(data, &serial_exec, &serial_report));
  SimExecutor parallel_exec(ExecutorModel::TeslaP100());
  MpTrainReport parallel_report;
  auto parallel_model =
      ValueOrDie(SequentialMpTrainer(Options(4))
                     .Train(data, &parallel_exec, &parallel_report));
  EXPECT_EQ(SerializeModel(parallel_model), SerializeModel(serial_model));
  EXPECT_EQ(parallel_report.sim_seconds, serial_report.sim_seconds);
  EXPECT_EQ(parallel_exec.counters().flops, serial_exec.counters().flops);
}

TEST(PairParallelTrainerTest, OvaMatchesSerial) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.0, 23));
  auto train = [&data](int threads, MpTrainReport* report) {
    SimExecutor exec(ExecutorModel::TeslaP100());
    return ValueOrDie(OvaTrainer(Options(threads)).Train(data, &exec, report));
  };
  MpTrainReport serial_report, parallel_report;
  OvaModel serial_model = train(1, &serial_report);
  OvaModel parallel_model = train(4, &parallel_report);
  EXPECT_EQ(parallel_report.sim_seconds, serial_report.sim_seconds);
  ASSERT_EQ(parallel_model.classes.size(), serial_model.classes.size());
  for (size_t c = 0; c < serial_model.classes.size(); ++c) {
    EXPECT_EQ(parallel_model.classes[c].bias, serial_model.classes[c].bias);
    EXPECT_EQ(parallel_model.classes[c].sigmoid.a,
              serial_model.classes[c].sigmoid.a);
    EXPECT_EQ(parallel_model.classes[c].sigmoid.b,
              serial_model.classes[c].sigmoid.b);
  }
}

TEST(PairParallelTrainerTest, ChaosFallsBackToSerialAndStaysDeterministic) {
  // A fault injector forces the serial pair path even when host_threads > 1;
  // the chaotic model must match the chaotic serial model byte for byte.
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.0, 31));
  fault::FaultPlan plan = fault::FaultPlan::Chaos(5);
  plan.kernel_row_fail_prob = 0.3;

  auto run = [&](int threads) {
    MpTrainOptions options = Options(threads);
    options.share_kernel_blocks = false;
    SimExecutor exec(ExecutorModel::TeslaP100());
    fault::FaultInjector injector(plan);
    exec.SetFaultInjector(&injector);
    return SerializeModel(
        ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr)));
  };
  EXPECT_EQ(run(4), run(1));
}

}  // namespace
}  // namespace gmpsvm
