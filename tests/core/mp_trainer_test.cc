#include "core/mp_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "../test_util.h"
#include "baselines/libsvm_ref.h"
#include "core/predictor.h"
#include "metrics/metrics.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

MpTrainOptions SmallGmpOptions(double c = 1.0, double gamma = 0.3) {
  MpTrainOptions options;
  options.c = c;
  options.kernel = Gaussian(gamma);
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

SimExecutor Gpu() { return SimExecutor(ExecutorModel::TeslaP100()); }

TEST(GmpSvmTrainerTest, TrainsAllPairs) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 25, 6, 3.0, 42));
  SimExecutor exec = Gpu();
  MpTrainReport report;
  auto model =
      ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &exec, &report));
  EXPECT_EQ(model.num_classes, 4);
  EXPECT_EQ(model.num_pairs(), 6);
  EXPECT_GT(model.pool_size(), 0);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GT(report.solver.iterations, 0);
  for (const auto& svm : model.svms) {
    EXPECT_GT(svm.num_svs(), 0) << svm.class_s << "," << svm.class_t;
    EXPECT_LT(svm.sigmoid.a, 0.0);  // separable data: decreasing sigmoid in -v
  }
}

TEST(GmpSvmTrainerTest, PairOrderMatchesPairIndex) {
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 12, 5, 3.0, 7));
  SimExecutor exec = Gpu();
  auto model =
      ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &exec, nullptr));
  for (int s = 0; s < 5; ++s) {
    for (int t = s + 1; t < 5; ++t) {
      const auto& svm = model.svms[static_cast<size_t>(model.PairIndex(s, t))];
      EXPECT_EQ(svm.class_s, s);
      EXPECT_EQ(svm.class_t, t);
    }
  }
}

TEST(GmpSvmTrainerTest, SupportVectorPoolIsDeduplicated) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 1.5, 11));
  SimExecutor exec = Gpu();
  auto model =
      ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &exec, nullptr));
  std::unordered_set<int32_t> uniq(model.pool_source_rows.begin(),
                                   model.pool_source_rows.end());
  EXPECT_EQ(uniq.size(), model.pool_source_rows.size());
  // Sharing means strictly fewer pool entries than total references on
  // overlapping multi-class data.
  EXPECT_LT(model.pool_size(), model.total_sv_references());
}

TEST(GmpSvmTrainerTest, UnsharedPoolDuplicates) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 1.5, 11));
  MpTrainOptions options = SmallGmpOptions();
  options.share_support_vectors = false;
  SimExecutor exec = Gpu();
  auto model = ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
  EXPECT_EQ(model.pool_size(), model.total_sv_references());
}

TEST(GmpSvmTrainerTest, MatchesLibsvmReferenceClassifier) {
  // The Table 4 claim at test scale: same biases and same training errors.
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 6, 2.0, 13));
  SimExecutor gpu = Gpu();
  auto gmp = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &gpu, nullptr));

  SimExecutor cpu = MakeLibsvmExecutor(1);
  LibsvmRefTrainer libsvm(1.0, Gaussian(0.3));
  auto ref = ValueOrDie(libsvm.Train(data, &cpu, nullptr));

  auto agreement = ValueOrDie(CompareModels(gmp, ref));
  EXPECT_LT(agreement.max_bias_diff, 5e-2);

  // Training errors agree exactly.
  SimExecutor pred_exec = Gpu();
  PredictOptions popts;
  auto gmp_pred = ValueOrDie(
      MpSvmPredictor(&gmp).Predict(data.features(), &pred_exec, popts));
  auto ref_pred = ValueOrDie(
      MpSvmPredictor(&ref).Predict(data.features(), &pred_exec, popts));
  const double gmp_err = ValueOrDie(ErrorRate(gmp_pred.labels, data.labels()));
  const double ref_err = ValueOrDie(ErrorRate(ref_pred.labels, data.labels()));
  EXPECT_DOUBLE_EQ(gmp_err, ref_err);
}

TEST(GmpSvmTrainerTest, DeterministicAcrossRuns) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.5, 17));
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto m1 = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &e1, nullptr));
  auto m2 = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &e2, nullptr));
  ASSERT_EQ(m1.svms.size(), m2.svms.size());
  for (size_t p = 0; p < m1.svms.size(); ++p) {
    EXPECT_DOUBLE_EQ(m1.svms[p].bias, m2.svms[p].bias);
    EXPECT_EQ(m1.svms[p].sv_coef, m2.svms[p].sv_coef);
  }
  EXPECT_DOUBLE_EQ(e1.NowSeconds(), e2.NowSeconds());
}

TEST(GmpSvmTrainerTest, ConcurrencyReducesSimTime) {
  auto data = ValueOrDie(MakeMulticlassBlobs(6, 20, 6, 2.5, 19));
  MpTrainOptions serial = SmallGmpOptions();
  serial.max_concurrent_svms = 1;
  MpTrainOptions concurrent = SmallGmpOptions();
  concurrent.max_concurrent_svms = 8;

  SimExecutor e1 = Gpu(), e2 = Gpu();
  MpTrainReport r1, r2;
  ValueOrDie(GmpSvmTrainer(serial).Train(data, &e1, &r1));
  ValueOrDie(GmpSvmTrainer(concurrent).Train(data, &e2, &r2));
  EXPECT_LT(r2.sim_seconds, r1.sim_seconds);
}

TEST(GmpSvmTrainerTest, KernelBlockSharingReducesComputedValues) {
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 24, 6, 1.2, 23));
  MpTrainOptions shared = SmallGmpOptions();
  shared.share_kernel_blocks = true;
  MpTrainOptions unshared = SmallGmpOptions();
  unshared.share_kernel_blocks = false;

  SimExecutor e1 = Gpu(), e2 = Gpu();
  MpTrainReport r1, r2;
  ValueOrDie(GmpSvmTrainer(shared).Train(data, &e1, &r1));
  ValueOrDie(GmpSvmTrainer(unshared).Train(data, &e2, &r2));
  EXPECT_LT(r1.kernel_values_computed, r2.kernel_values_computed);
}

TEST(SequentialMpTrainerTest, BaselineTrainsSameClassifier) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 25, 5, 2.0, 29));
  MpTrainOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  options.smo.cache_bytes = 512ull << 20;
  options.smo.cache_on_device = true;  // the GPU baseline's 4GB-style cache
  SimExecutor exec = Gpu();
  MpTrainReport report;
  auto baseline =
      ValueOrDie(SequentialMpTrainer(options).Train(data, &exec, &report));
  EXPECT_EQ(baseline.num_pairs(), 3);
  EXPECT_GT(report.sim_seconds, 0.0);

  SimExecutor e2 = Gpu();
  auto gmp = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &e2, nullptr));
  auto agreement = ValueOrDie(CompareModels(baseline, gmp));
  EXPECT_LT(agreement.max_bias_diff, 5e-2);
}

TEST(GmpSvmTrainerTest, FasterThanSequentialBaselineInSimTime) {
  // The headline Table 3 relationship at test scale: GMP < baseline sim time.
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 30, 6, 1.5, 31));
  MpTrainOptions baseline_options;
  baseline_options.c = 1.0;
  baseline_options.kernel = Gaussian(0.3);
  baseline_options.smo.cache_on_device = true;

  SimExecutor e1 = Gpu(), e2 = Gpu();
  MpTrainReport rb, rg;
  ValueOrDie(SequentialMpTrainer(baseline_options).Train(data, &e1, &rb));
  ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &e2, &rg));
  EXPECT_LT(rg.sim_seconds, rb.sim_seconds);
}

TEST(GmpSvmTrainerTest, CpuExecutorActsAsCmpSvm) {
  // Same trainer on the CPU model = CMP-SVM; classifier matches, and at a
  // realistic problem size (GPU launch overhead amortized) the GPU run is
  // faster in simulated time.
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 400, 16, 1.6, 37));
  MpTrainOptions options = SmallGmpOptions();
  options.batch.working_set.ws_size = 128;
  options.batch.working_set.q = 64;
  SimExecutor gpu = Gpu();
  SimExecutor cpu(ExecutorModel::XeonCpu(40));
  MpTrainReport rg, rc;
  auto mg = ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, &rg));
  auto mc = ValueOrDie(GmpSvmTrainer(options).Train(data, &cpu, &rc));
  auto agreement = ValueOrDie(CompareModels(mg, mc));
  EXPECT_LT(agreement.max_bias_diff, 1e-9);  // identical math, identical model
  EXPECT_LT(rg.sim_seconds, rc.sim_seconds);
}

TEST(GmpSvmTrainerTest, ReportsPhaseBreakdown) {
  // Higher-dimensional data, where the paper observes kernel-value
  // computation dominating the training time.
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 120, 48, 1.5, 41));
  SimExecutor exec = Gpu();
  MpTrainReport report;
  ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &exec, &report));
  EXPECT_GT(report.phases.Get("kernel_values"), 0.0);
  EXPECT_GT(report.phases.Get("subproblem"), 0.0);
  EXPECT_GT(report.phases.Get("sigmoid"), 0.0);
  // Kernel values dominate (the Figure 11 shape).
  EXPECT_GT(report.phases.Get("kernel_values"), report.phases.Get("subproblem"));
}

TEST(GmpSvmTrainerTest, BinaryDatasetWorks) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 40, 5, 2.5, 43));
  SimExecutor exec = Gpu();
  auto model =
      ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(data, &exec, nullptr));
  EXPECT_EQ(model.num_pairs(), 1);
  EXPECT_EQ(model.svms[0].class_s, 0);
  EXPECT_EQ(model.svms[0].class_t, 1);
}

TEST(MpTrainOptionsValidateTest, RejectsBadFieldsByName) {
  MpTrainOptions options = SmallGmpOptions();
  EXPECT_TRUE(options.Validate(3).ok());

  MpTrainOptions bad_c = options;
  bad_c.c = 0.0;
  Status s = bad_c.Validate(3);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("c must be positive"), std::string::npos);

  MpTrainOptions bad_ws = options;
  bad_ws.batch.working_set.ws_size = 1;
  s = bad_ws.Validate(3);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("ws_size"), std::string::npos);

  MpTrainOptions bad_weights = options;
  bad_weights.class_weights = {1.0, 2.0};  // 3 classes
  s = bad_weights.Validate(3);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("class_weights"), std::string::npos);

  MpTrainOptions bad_folds = options;
  bad_folds.sigmoid_cv_folds = 1;
  EXPECT_TRUE(bad_folds.Validate(3).IsInvalidArgument());
}

TEST(MpTrainOptionsValidateTest, TrainerFailsFastOnInvalidOptions) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 5, 2.5, 44));
  SimExecutor exec = Gpu();
  MpTrainOptions options = SmallGmpOptions();
  options.max_concurrent_svms = 0;
  auto gmp = GmpSvmTrainer(options).Train(data, &exec, nullptr);
  ASSERT_FALSE(gmp.ok());
  EXPECT_TRUE(gmp.status().IsInvalidArgument());
  EXPECT_NE(gmp.status().message().find("max_concurrent_svms"),
            std::string::npos);
  auto seq = SequentialMpTrainer(options).Train(data, &exec, nullptr);
  ASSERT_FALSE(seq.ok());
  EXPECT_TRUE(seq.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gmpsvm
