// Cross-validation and grid search must be host-thread invariant: the fold
// splits, per-cell models, and every reported quality number are byte-equal
// whether the executor runs its op bodies on 1, 2, or 8 host threads. (The
// per-pair training determinism is covered by host_determinism_test; this
// suite pins the composite CV/grid pipelines that PR-goal tooling, svm_tool
// cv/grid, builds on.)

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "../test_util.h"
#include "core/cross_validation.h"
#include "core/grid_search.h"
#include "device/executor.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

Dataset CvProxy() {
  return ValueOrDie(MakeMulticlassBlobs(3, 18, 5, 2.0, 13));
}

MpTrainOptions SmallTrainOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  return options;
}

CrossValidationResult RunCv(const Dataset& data, int host_threads) {
  CrossValidationOptions options;
  options.folds = 3;
  options.train = SmallTrainOptions();
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  SimExecutor exec(std::move(model));
  return ValueOrDie(CrossValidate(data, options, &exec));
}

GridSearchResult RunGrid(const Dataset& data, int host_threads) {
  GridSearchOptions options;
  options.c_values = {0.5, 2.0};
  options.gamma_values = {0.1, 1.0};
  options.folds = 2;
  options.train = SmallTrainOptions();
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  SimExecutor exec(std::move(model));
  return ValueOrDie(GridSearch(data, options, &exec));
}

TEST(CvGridDeterminismTest, CrossValidationInvariantAcrossHostThreads) {
  Dataset data = CvProxy();
  const CrossValidationResult base = RunCv(data, 1);
  EXPECT_EQ(base.folds, 3);
  ASSERT_EQ(base.fold_errors.size(), 3u);
  for (int threads : {2, 8}) {
    const CrossValidationResult other = RunCv(data, threads);
    EXPECT_EQ(base.error_rate, other.error_rate) << threads;
    EXPECT_EQ(base.log_loss, other.log_loss) << threads;
    EXPECT_EQ(base.brier_score, other.brier_score) << threads;
    EXPECT_EQ(base.sim_seconds, other.sim_seconds) << threads;
    ASSERT_EQ(base.fold_errors.size(), other.fold_errors.size()) << threads;
    EXPECT_EQ(0, std::memcmp(base.fold_errors.data(), other.fold_errors.data(),
                             base.fold_errors.size() * sizeof(double)))
        << threads;
  }
}

TEST(CvGridDeterminismTest, GridSearchInvariantAcrossHostThreads) {
  Dataset data = CvProxy();
  const GridSearchResult base = RunGrid(data, 1);
  ASSERT_EQ(base.cells.size(), 4u);
  for (int threads : {2, 8}) {
    const GridSearchResult other = RunGrid(data, threads);
    EXPECT_EQ(base.sim_seconds, other.sim_seconds) << threads;
    ASSERT_EQ(base.cells.size(), other.cells.size()) << threads;
    for (size_t i = 0; i < base.cells.size(); ++i) {
      EXPECT_EQ(base.cells[i].c, other.cells[i].c) << threads << " cell " << i;
      EXPECT_EQ(base.cells[i].gamma, other.cells[i].gamma)
          << threads << " cell " << i;
      EXPECT_EQ(base.cells[i].error_rate, other.cells[i].error_rate)
          << threads << " cell " << i;
      EXPECT_EQ(base.cells[i].log_loss, other.cells[i].log_loss)
          << threads << " cell " << i;
      EXPECT_EQ(base.cells[i].brier_score, other.cells[i].brier_score)
          << threads << " cell " << i;
    }
    EXPECT_EQ(base.best.c, other.best.c) << threads;
    EXPECT_EQ(base.best.gamma, other.best.gamma) << threads;
    EXPECT_EQ(base.best.error_rate, other.best.error_rate) << threads;
  }
}

TEST(CvGridDeterminismTest, GridBestIsTheMinimumErrorCell) {
  Dataset data = CvProxy();
  const GridSearchResult grid = RunGrid(data, 4);
  for (const GridCellResult& cell : grid.cells) {
    EXPECT_LE(grid.best.error_rate, cell.error_rate);
  }
}

}  // namespace
}  // namespace gmpsvm
