#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  options.shared_cache_bytes = 16ull << 20;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

void ExpectModelsEqual(const MpSvmModel& a, const MpSvmModel& b) {
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_DOUBLE_EQ(a.c, b.c);
  EXPECT_EQ(a.kernel.type, b.kernel.type);
  EXPECT_DOUBLE_EQ(a.kernel.gamma, b.kernel.gamma);
  ASSERT_EQ(a.svms.size(), b.svms.size());
  for (size_t s = 0; s < a.svms.size(); ++s) {
    EXPECT_EQ(a.svms[s].class_s, b.svms[s].class_s);
    EXPECT_EQ(a.svms[s].class_t, b.svms[s].class_t);
    EXPECT_DOUBLE_EQ(a.svms[s].bias, b.svms[s].bias);
    EXPECT_DOUBLE_EQ(a.svms[s].sigmoid.a, b.svms[s].sigmoid.a);
    EXPECT_DOUBLE_EQ(a.svms[s].sigmoid.b, b.svms[s].sigmoid.b);
    EXPECT_EQ(a.svms[s].sv_pool_index, b.svms[s].sv_pool_index);
    ASSERT_EQ(a.svms[s].sv_coef.size(), b.svms[s].sv_coef.size());
    for (size_t m = 0; m < a.svms[s].sv_coef.size(); ++m) {
      EXPECT_DOUBLE_EQ(a.svms[s].sv_coef[m], b.svms[s].sv_coef[m]);
    }
  }
  EXPECT_EQ(a.pool_source_rows, b.pool_source_rows);
  ASSERT_EQ(a.support_vectors.rows(), b.support_vectors.rows());
  EXPECT_EQ(a.support_vectors.col_idx(), b.support_vectors.col_idx());
  ASSERT_EQ(a.support_vectors.values().size(), b.support_vectors.values().size());
  for (size_t v = 0; v < a.support_vectors.values().size(); ++v) {
    EXPECT_DOUBLE_EQ(a.support_vectors.values()[v], b.support_vectors.values()[v]);
  }
}

TEST(ModelIoTest, SerializeDeserializeRoundTrip) {
  MpSvmModel model = TrainSmallModel(42);
  const std::string text = SerializeModel(model);
  auto restored = ValueOrDie(DeserializeModel(text));
  ExpectModelsEqual(model, restored);
}

TEST(ModelIoTest, RestoredModelPredictsIdentically) {
  MpSvmModel model = TrainSmallModel(7);
  auto restored = ValueOrDie(DeserializeModel(SerializeModel(model)));
  auto test = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 999));
  SimExecutor e1(ExecutorModel::TeslaP100()), e2(ExecutorModel::TeslaP100());
  auto r1 = ValueOrDie(
      MpSvmPredictor(&model).Predict(test.features(), &e1, PredictOptions{}));
  auto r2 = ValueOrDie(
      MpSvmPredictor(&restored).Predict(test.features(), &e2, PredictOptions{}));
  EXPECT_EQ(r1.probabilities, r2.probabilities);
  EXPECT_EQ(r1.labels, r2.labels);
}

TEST(ModelIoTest, SaveAndLoadFile) {
  MpSvmModel model = TrainSmallModel(11);
  const std::string path = ::testing::TempDir() + "/gmpsvm_model_test.txt";
  GMP_CHECK_OK(SaveModel(model, path));
  auto loaded = ValueOrDie(LoadModel(path));
  ExpectModelsEqual(model, loaded);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeModel("not_a_model\nfoo").ok());
  EXPECT_FALSE(DeserializeModel("").ok());
}

TEST(ModelIoTest, RejectsTruncatedModel) {
  MpSvmModel model = TrainSmallModel(13);
  std::string text = SerializeModel(model);
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsOutOfRangeSvIndex) {
  MpSvmModel model = TrainSmallModel(17);
  std::string text = SerializeModel(model);
  // Corrupt: the pool index "0:" of the first SV becomes huge.
  const size_t pos = text.find("\nsvm ");
  ASSERT_NE(pos, std::string::npos);
  const size_t line_end = text.find('\n', pos + 1);
  text.insert(line_end + 1, "999999:1.0 ");
  EXPECT_FALSE(DeserializeModel(text).ok());
}

// Fuzz-ish robustness table: every malformed input must come back as an
// error Result — no exception, no abort, no absurd allocation. The serving
// layer loads models from disk at runtime, so the parser is attack surface.
TEST(ModelIoTest, MalformedInputsReturnErrorsNeverCrash) {
  const std::string valid = SerializeModel(TrainSmallModel(19));
  const struct {
    const char* name;
    std::string text;
  } kCases[] = {
      {"empty", ""},
      {"whitespace only", "   \n\t\n  "},
      {"wrong magic", "libsvm_model\nnum_classes 3\n"},
      {"magic only", "gmpsvm_model_v1\n"},
      {"truncated header", "gmpsvm_model_v1\nnum_classes 3\nc 1.0\n"},
      {"non-numeric num_classes", "gmpsvm_model_v1\nnum_classes abc\n"},
      {"one class", "gmpsvm_model_v1\nnum_classes 1\nc 1\n"
                    "kernel gaussian 0.5 0 3\npool 0 0\nsvms 0\npool_rows\n"},
      {"negative pool rows", "gmpsvm_model_v1\nnum_classes 3\nc 1\n"
                             "kernel gaussian 0.5 0 3\npool -4 5\nsvms 0\n"},
      {"unknown kernel", "gmpsvm_model_v1\nnum_classes 3\nc 1\n"
                         "kernel quantum 0.5 0 3\npool 0 0\nsvms 0\n"},
      // Hostile counts: must be rejected before any allocation attempt.
      {"huge pool count", "gmpsvm_model_v1\nnum_classes 3\nc 1\n"
                          "kernel gaussian 0.5 0 3\npool 999999999999999999 5\n"
                          "svms 0\npool_rows\n"},
      {"huge svm count", "gmpsvm_model_v1\nnum_classes 3\nc 1\n"
                         "kernel gaussian 0.5 0 3\npool 0 5\n"
                         "svms 999999999999999999\n"},
      {"negative svm count", "gmpsvm_model_v1\nnum_classes 3\nc 1\n"
                             "kernel gaussian 0.5 0 3\npool 0 5\nsvms -1\n"},
      {"huge nsv", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                   "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                   "svm 0 1 0.0 1.0 0.0 999999999999999999\n"},
      // Non-numeric / overflowing sv tokens: std::stol would have thrown.
      {"alpha sv index", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                         "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                         "svm 0 1 0.0 1.0 0.0 1\nabc:1.0\npool_rows 0\n0:1\n"},
      {"alpha sv coef", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                        "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                        "svm 0 1 0.0 1.0 0.0 1\n0:xyz\npool_rows 0\n0:1\n"},
      {"overflow sv index", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                            "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                            "svm 0 1 0.0 1.0 0.0 1\n"
                            "99999999999999999999999:1.0\npool_rows 0\n0:1\n"},
      {"missing colon", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                        "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                        "svm 0 1 0.0 1.0 0.0 1\n17\npool_rows 0\n0:1\n"},
      {"bad pool token", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                         "kernel gaussian 0.5 0 3\npool 1 5\nsvms 0\n"
                         "pool_rows 0\nfoo:bar\n"},
      {"pool col out of range", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                                "kernel gaussian 0.5 0 3\npool 1 5\nsvms 0\n"
                                "pool_rows 0\n12:1.0\n"},
      {"duplicate pool cols", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                              "kernel gaussian 0.5 0 3\npool 1 5\nsvms 0\n"
                              "pool_rows 0\n2:1.0 2:2.0\n"},
      {"missing pool row", "gmpsvm_model_v1\nnum_classes 2\nc 1\n"
                           "kernel gaussian 0.5 0 3\npool 2 5\nsvms 0\n"
                           "pool_rows 0 1\n0:1.0\n"},
      {"binary junk", std::string("gmpsvm_model_v1\n\x01\x02\xff\xfe\x00junk",
                                  25)},
      {"valid with junk magic suffix", "x" + valid},
      // v2 cascade section edges: the count must equal the svm count, every
      // entry must be a full numeric triple, and the section must still be
      // followed by pool_rows.
      {"cascade count mismatch", "gmpsvm_model_v2\nnum_classes 2\nc 1\n"
                                 "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                                 "svm 0 1 0.0 1.0 0.0 1\n0:1.0\n"
                                 "cascade 2\n0.5 0.5 0.5\n0.5 0.5 0.5\n"
                                 "pool_rows 0\n0:1\n"},
      {"cascade huge count", "gmpsvm_model_v2\nnum_classes 2\nc 1\n"
                             "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                             "svm 0 1 0.0 1.0 0.0 1\n0:1.0\n"
                             "cascade 999999999999999999\n"},
      {"cascade non-numeric entry", "gmpsvm_model_v2\nnum_classes 2\nc 1\n"
                                    "kernel gaussian 0.5 0 3\npool 1 5\n"
                                    "svms 1\nsvm 0 1 0.0 1.0 0.0 1\n0:1.0\n"
                                    "cascade 1\n0.5 abc 0.5\npool_rows 0\n"
                                    "0:1\n"},
      {"cascade truncated entry", "gmpsvm_model_v2\nnum_classes 2\nc 1\n"
                                  "kernel gaussian 0.5 0 3\npool 1 5\nsvms 1\n"
                                  "svm 0 1 0.0 1.0 0.0 1\n0:1.0\n"
                                  "cascade 1\n0.5 0.5\n"},
      {"cascade without pool_rows", "gmpsvm_model_v2\nnum_classes 2\nc 1\n"
                                    "kernel gaussian 0.5 0 3\npool 1 5\n"
                                    "svms 1\nsvm 0 1 0.0 1.0 0.0 1\n0:1.0\n"
                                    "cascade 1\n0.5 0.5 0.5\n"},
  };
  for (const auto& test_case : kCases) {
    auto result = DeserializeModel(test_case.text);
    EXPECT_FALSE(result.ok()) << "accepted malformed input: " << test_case.name;
  }
  // Truncation at every 16th byte boundary: error or (for a prefix that is
  // accidentally complete) success — but never a crash.
  for (size_t cut = 0; cut < valid.size(); cut += 16) {
    (void)DeserializeModel(valid.substr(0, cut));
  }
}

TEST(ModelIoTest, LoadMissingFileFails) {
  auto result = LoadModel("/nonexistent/path/model.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

}  // namespace
}  // namespace gmpsvm
