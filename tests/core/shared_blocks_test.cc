#include "core/shared_blocks.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

struct Fixture {
  Dataset data;
  KernelComputer computer;
  SimExecutor exec;

  explicit Fixture(uint64_t seed, int k = 3)
      : data(ValueOrDie(MakeMulticlassBlobs(k, 12, 5, 2.0, seed))),
        computer(&data.features(), Gaussian(0.4)),
        exec(ExecutorModel::TeslaP100()) {}
};

TEST(SharedBlockCacheTest, EnsureThenLookup) {
  Fixture fx(42);
  SharedBlockCache cache(&fx.data, &fx.computer, 16ull << 20, &fx.exec);
  std::vector<int32_t> rows = {0, 5};
  GMP_CHECK_OK(cache.Ensure(rows, /*cls=*/1, &fx.exec, kDefaultStream));
  auto seg = cache.Lookup(0, 1);
  ASSERT_EQ(seg.size(), fx.data.ClassRows(1).size());
  // Segment values equal pointwise kernel evaluations.
  for (size_t j = 0; j < seg.size(); ++j) {
    EXPECT_NEAR(seg[j], fx.computer.Compute(0, fx.data.ClassRows(1)[j]), 1e-12);
  }
  EXPECT_EQ(cache.segments_cached(), 2);
}

TEST(SharedBlockCacheTest, SecondEnsureIsAllHits) {
  Fixture fx(7);
  SharedBlockCache cache(&fx.data, &fx.computer, 16ull << 20, &fx.exec);
  std::vector<int32_t> rows = {1, 2, 3};
  GMP_CHECK_OK(cache.Ensure(rows, 0, &fx.exec, kDefaultStream));
  const int64_t computed_after_first = fx.exec.counters().kernel_values_computed;
  GMP_CHECK_OK(cache.Ensure(rows, 0, &fx.exec, kDefaultStream));
  EXPECT_EQ(fx.exec.counters().kernel_values_computed, computed_after_first);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_GT(fx.exec.counters().kernel_values_reused, 0);
}

TEST(SharedBlockCacheTest, EvictsUnderPressure) {
  Fixture fx(11);
  const size_t seg_bytes = fx.data.ClassRows(0).size() * sizeof(double);
  // Budget for ~4 segments of class 0.
  SharedBlockCache cache(&fx.data, &fx.computer, 4 * seg_bytes, &fx.exec);
  for (int32_t r = 0; r < 8; ++r) {
    std::vector<int32_t> rows = {r};
    GMP_CHECK_OK(cache.Ensure(rows, 0, &fx.exec, kDefaultStream));
  }
  EXPECT_LE(cache.bytes_used(), 4 * seg_bytes);
  EXPECT_LE(cache.segments_cached(), 4);
  // The most recent segment survives; the oldest was evicted.
  EXPECT_FALSE(cache.Lookup(7, 0).empty());
  EXPECT_TRUE(cache.Lookup(0, 0).empty());
}

TEST(SharedBlockCacheTest, BatchLargerThanBudgetFails) {
  Fixture fx(13);
  SharedBlockCache cache(&fx.data, &fx.computer, /*budget=*/8, &fx.exec);
  std::vector<int32_t> rows = {0, 1, 2, 3};
  auto status = cache.Ensure(rows, 0, &fx.exec, kDefaultStream);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsFailedPrecondition());
}

TEST(SharedRowSourceTest, RowsMatchDirectComputation) {
  Fixture fx(17);
  SharedBlockCache cache(&fx.data, &fx.computer, 32ull << 20, &fx.exec);
  BinaryProblem problem = fx.data.MakePairProblem(0, 2, 1.0, Gaussian(0.4));
  SharedRowSource shared(&problem, 0, 2, &cache, &fx.computer);
  DirectRowSource direct(&problem, &fx.computer);

  const int64_t n = problem.n();
  std::vector<int32_t> locals = {0, static_cast<int32_t>(n / 2),
                                 static_cast<int32_t>(n - 1)};
  std::vector<double> shared_rows(locals.size() * n);
  std::vector<double> direct_rows(locals.size() * n);
  std::vector<double*> shared_ptrs, direct_ptrs;
  for (size_t i = 0; i < locals.size(); ++i) {
    shared_ptrs.push_back(shared_rows.data() + i * n);
    direct_ptrs.push_back(direct_rows.data() + i * n);
  }
  shared.ComputeRows(locals, shared_ptrs, &fx.exec, kDefaultStream);
  direct.ComputeRows(locals, direct_ptrs, &fx.exec, kDefaultStream);
  for (size_t i = 0; i < shared_rows.size(); ++i) {
    EXPECT_NEAR(shared_rows[i], direct_rows[i], 1e-12) << "entry " << i;
  }
}

TEST(SharedRowSourceTest, CrossPairSharingSavesComputation) {
  // Pairs (0,1) and (0,2) share class 0: rows of class-0 instances computed
  // by the first pair are reused by the second.
  Fixture fx(19);
  SharedBlockCache cache(&fx.data, &fx.computer, 64ull << 20, &fx.exec);

  BinaryProblem p01 = fx.data.MakePairProblem(0, 1, 1.0, Gaussian(0.4));
  BinaryProblem p02 = fx.data.MakePairProblem(0, 2, 1.0, Gaussian(0.4));
  SharedRowSource s01(&p01, 0, 1, &cache, &fx.computer);
  SharedRowSource s02(&p02, 0, 2, &cache, &fx.computer);

  // Same class-0 instance is local row 0 in both problems.
  std::vector<int32_t> locals = {0};
  std::vector<double> row01(static_cast<size_t>(p01.n()));
  std::vector<double> row02(static_cast<size_t>(p02.n()));
  std::vector<double*> ptr01 = {row01.data()};
  std::vector<double*> ptr02 = {row02.data()};

  s01.ComputeRows(locals, ptr01, &fx.exec, kDefaultStream);
  const int64_t computed_mid = fx.exec.counters().kernel_values_computed;
  s02.ComputeRows(locals, ptr02, &fx.exec, kDefaultStream);
  const int64_t computed_by_second =
      fx.exec.counters().kernel_values_computed - computed_mid;
  // The second pair only computed the class-2 segment, not class-0 again.
  EXPECT_EQ(computed_by_second,
            static_cast<int64_t>(fx.data.ClassRows(2).size()));
  EXPECT_GT(cache.hits(), 0);
}

TEST(SharedRowSourceTest, FallsBackWhenBudgetTooSmall) {
  Fixture fx(23);
  SharedBlockCache cache(&fx.data, &fx.computer, /*budget=*/8, &fx.exec);
  BinaryProblem problem = fx.data.MakePairProblem(0, 1, 1.0, Gaussian(0.4));
  SharedRowSource shared(&problem, 0, 1, &cache, &fx.computer);
  DirectRowSource direct(&problem, &fx.computer);

  const int64_t n = problem.n();
  std::vector<int32_t> locals = {0, 1};
  std::vector<double> got(2 * n), want(2 * n);
  std::vector<double*> got_ptrs = {got.data(), got.data() + n};
  std::vector<double*> want_ptrs = {want.data(), want.data() + n};
  shared.ComputeRows(locals, got_ptrs, &fx.exec, kDefaultStream);  // fallback
  direct.ComputeRows(locals, want_ptrs, &fx.exec, kDefaultStream);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-12);
}

}  // namespace
}  // namespace gmpsvm
