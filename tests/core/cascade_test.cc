// Prediction-cascade contract tests (docs/cascade.md):
//   * kExact is byte-for-byte the pre-cascade predictor and reports zero
//     cascade activity;
//   * kEliminate's top-1 labels agree with exact coupling on separable data;
//   * ambiguity_band = 1.0 forces the exact fallback for every row and the
//     output is byte-identical to kExact;
//   * PredictOptions::Validate names the offending field;
//   * cascade stats survive a model v2 round-trip, and v1 files still load
//     (with no stats).

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

MpTrainOptions SmallGmpOptions() {
  MpTrainOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

SimExecutor Gpu() { return SimExecutor(ExecutorModel::TeslaP100()); }

struct TrainedFixture {
  Dataset train;
  Dataset test;
  MpSvmModel model;
};

TrainedFixture MakeFixture(int k, uint64_t seed, double separation = 3.0) {
  TrainedFixture fx{
      ValueOrDie(MakeMulticlassBlobs(k, 30, 6, separation, seed)),
      ValueOrDie(MakeMulticlassBlobs(k, 12, 6, separation, seed + 1000)),
      MpSvmModel{},
  };
  SimExecutor exec = Gpu();
  fx.model = ValueOrDie(GmpSvmTrainer(SmallGmpOptions()).Train(fx.train, &exec,
                                                               nullptr));
  return fx;
}

PredictOptions EliminateOptions(double band) {
  PredictOptions options;
  options.cascade.mode = CascadeOptions::Mode::kEliminate;
  options.cascade.ambiguity_band = band;
  return options;
}

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(CascadeTest, TrainingStampsCascadeStats) {
  TrainedFixture fx = MakeFixture(4, 21);
  ASSERT_TRUE(fx.model.has_cascade_stats());
  ASSERT_EQ(fx.model.cascade.size(), fx.model.svms.size());
  for (const PairCascadeStats& stats : fx.model.cascade) {
    EXPECT_GE(stats.score, 0.0);
    // Balanced blobs: every class holds 1/4 of the training rows.
    EXPECT_DOUBLE_EQ(stats.prior_s, 0.25);
    EXPECT_DOUBLE_EQ(stats.prior_t, 0.25);
  }
}

TEST(CascadeTest, ExactModeIsByteIdenticalToDefaultOptions) {
  TrainedFixture fx = MakeFixture(5, 23);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions exact;
  exact.cascade.mode = CascadeOptions::Mode::kExact;
  auto a = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, exact));
  auto b = ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2,
                                                        PredictOptions{}));
  EXPECT_TRUE(SameBytes(a.probabilities, b.probabilities));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.cascade_rows, 0);
  EXPECT_EQ(a.cascade_fallback_rows, 0);
  EXPECT_EQ(a.cascade_pairs_evaluated, 0);
  EXPECT_EQ(a.cascade_classes_eliminated, 0);
}

TEST(CascadeTest, EliminateAgreesWithExactOnSeparableData) {
  // Default ambiguity band (0.05): confident rows keep their pruned
  // coupling, rows whose survivor margin is inside the band re-run exactly.
  // On separable blobs that leaves only rows that are confidently pruned
  // AND genuinely ambiguous under exact coupling to disagree — under 1%.
  TrainedFixture fx = MakeFixture(8, 29);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto exact = ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(),
                                                            &e1,
                                                            PredictOptions{}));
  auto cascade = ValueOrDie(MpSvmPredictor(&fx.model).Predict(
      fx.test.features(), &e2, EliminateOptions(0.05)));
  EXPECT_EQ(cascade.cascade_rows, cascade.num_instances);
  // The band must not degenerate into running everything exactly.
  EXPECT_LT(cascade.cascade_fallback_rows, cascade.num_instances / 4);
  EXPECT_GT(cascade.cascade_classes_eliminated, 0);

  int64_t agree = 0;
  for (int64_t i = 0; i < exact.num_instances; ++i) {
    if (exact.labels[static_cast<size_t>(i)] ==
        cascade.labels[static_cast<size_t>(i)]) {
      ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) /
                static_cast<double>(exact.num_instances),
            0.99);
}

TEST(CascadeTest, FullBandForcesExactFallbackEverywhere) {
  TrainedFixture fx = MakeFixture(6, 31);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  auto exact = ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(),
                                                            &e1,
                                                            PredictOptions{}));
  auto cascade = ValueOrDie(MpSvmPredictor(&fx.model).Predict(
      fx.test.features(), &e2, EliminateOptions(1.0)));
  EXPECT_EQ(cascade.cascade_fallback_rows, cascade.num_instances);
  EXPECT_TRUE(SameBytes(exact.probabilities, cascade.probabilities));
  EXPECT_EQ(exact.labels, cascade.labels);
}

TEST(CascadeTest, SharedAndPerSvmCascadePathsAgreeExactly) {
  // Both paths compute kernel values through the same scatter-gather
  // arithmetic, so the ablation (share_kernel_values = false) reproduces the
  // shared cascade bit for bit.
  TrainedFixture fx = MakeFixture(6, 37);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  PredictOptions shared = EliminateOptions(0.05);
  PredictOptions per_svm = EliminateOptions(0.05);
  per_svm.share_kernel_values = false;
  auto a = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1, shared));
  auto b = ValueOrDie(
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2, per_svm));
  EXPECT_TRUE(SameBytes(a.probabilities, b.probabilities));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.cascade_fallback_rows, b.cascade_fallback_rows);
  EXPECT_EQ(a.cascade_pairs_evaluated, b.cascade_pairs_evaluated);
}

TEST(CascadeTest, EliminationComputesFewerKernelValuesThanExact) {
  TrainedFixture fx = MakeFixture(8, 41);
  SimExecutor e1 = Gpu(), e2 = Gpu();
  ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e1,
                                               PredictOptions{}));
  ValueOrDie(MpSvmPredictor(&fx.model).Predict(fx.test.features(), &e2,
                                               EliminateOptions(0.0)));
  EXPECT_LT(e2.counters().kernel_values_computed,
            e1.counters().kernel_values_computed);
}

TEST(CascadeTest, EliminationPhaseIsReported) {
  TrainedFixture fx = MakeFixture(5, 43);
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(MpSvmPredictor(&fx.model).Predict(
      fx.test.features(), &exec, EliminateOptions(0.05)));
  EXPECT_GT(result.phases.Get("elimination"), 0.0);
  EXPECT_GT(result.phases.Get("coupling"), 0.0);
}

TEST(CascadeTest, ValidateNamesOffendingField) {
  PredictOptions options;
  options.cascade.budget = -1;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cascade.budget"), std::string::npos);

  options = PredictOptions{};
  options.cascade.elimination_threshold = 0.0;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cascade.elimination_threshold"),
            std::string::npos);

  options = PredictOptions{};
  options.cascade.ambiguity_band = 1.5;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cascade.ambiguity_band"),
            std::string::npos);

  options = PredictOptions{};
  options.tile_rows = -1;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("tile_rows"), std::string::npos);

  options = PredictOptions{};
  options.cascade.mode = CascadeOptions::Mode::kEliminate;
  options.decision = PredictOptions::Decision::kVoting;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());

  EXPECT_TRUE(PredictOptions{}.Validate().ok());
}

TEST(CascadeTest, CascadeStatsSurviveModelRoundTrip) {
  TrainedFixture fx = MakeFixture(4, 47);
  ASSERT_TRUE(fx.model.has_cascade_stats());
  const std::string text = SerializeModel(fx.model);
  EXPECT_NE(text.find("gmpsvm_model_v2"), std::string::npos);
  auto loaded = ValueOrDie(DeserializeModel(text));
  ASSERT_TRUE(loaded.has_cascade_stats());
  ASSERT_EQ(loaded.cascade.size(), fx.model.cascade.size());
  for (size_t i = 0; i < loaded.cascade.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.cascade[i].score, fx.model.cascade[i].score);
    EXPECT_DOUBLE_EQ(loaded.cascade[i].prior_s, fx.model.cascade[i].prior_s);
    EXPECT_DOUBLE_EQ(loaded.cascade[i].prior_t, fx.model.cascade[i].prior_t);
  }
  // The round-trip re-serializes to the same bytes.
  EXPECT_EQ(SerializeModel(loaded), text);
}

TEST(CascadeTest, V1ModelsLoadWithoutCascadeStats) {
  TrainedFixture fx = MakeFixture(3, 53);
  MpSvmModel stripped = fx.model;
  stripped.cascade.clear();
  std::string text = SerializeModel(stripped);
  EXPECT_EQ(text.find("cascade"), std::string::npos);
  const size_t magic = text.find("gmpsvm_model_v2");
  ASSERT_NE(magic, std::string::npos);
  text.replace(magic, 15, "gmpsvm_model_v1");

  auto loaded = ValueOrDie(DeserializeModel(text));
  EXPECT_FALSE(loaded.has_cascade_stats());
  EXPECT_EQ(loaded.num_classes, fx.model.num_classes);

  // A stat-less model still predicts in eliminate mode (index-order scan).
  SimExecutor exec = Gpu();
  auto result = ValueOrDie(MpSvmPredictor(&loaded).Predict(
      fx.test.features(), &exec, EliminateOptions(0.05)));
  EXPECT_EQ(result.cascade_rows, result.num_instances);
}

TEST(CascadeTest, VotingPlusEliminateIsRejectedAtPredict) {
  TrainedFixture fx = MakeFixture(3, 59);
  SimExecutor exec = Gpu();
  PredictOptions options = EliminateOptions(0.05);
  options.decision = PredictOptions::Decision::kVoting;
  auto result =
      MpSvmPredictor(&fx.model).Predict(fx.test.features(), &exec, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gmpsvm
