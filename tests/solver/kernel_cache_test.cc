#include "solver/kernel_cache.h"

#include <gtest/gtest.h>

namespace gmpsvm {
namespace {

TEST(KernelCacheTest, MissThenHit) {
  KernelCache cache(/*row_length=*/4, /*capacity_bytes=*/4 * 8 * 3);  // 3 rows
  EXPECT_EQ(cache.capacity_rows(), 3);
  EXPECT_EQ(cache.Lookup(0), nullptr);
  double* slot = cache.Insert(0);
  slot[0] = 1.5;
  const double* hit = cache.Lookup(0);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit[0], 1.5);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsed) {
  KernelCache cache(2, 2 * 8 * 2);  // 2 rows
  cache.Insert(10)[0] = 10;
  cache.Insert(20)[0] = 20;
  // Touch 10 so 20 becomes LRU.
  ASSERT_NE(cache.Lookup(10), nullptr);
  cache.Insert(30)[0] = 30;
  EXPECT_NE(cache.Lookup(10), nullptr);
  EXPECT_EQ(cache.Lookup(20), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(30), nullptr);
}

TEST(KernelCacheTest, AtLeastOneRowEvenWithTinyBudget) {
  KernelCache cache(1000, /*capacity_bytes=*/1);
  EXPECT_EQ(cache.capacity_rows(), 1);
  cache.Insert(5)[999] = 7.0;
  EXPECT_DOUBLE_EQ(cache.Lookup(5)[999], 7.0);
  cache.Insert(6)[0] = 1.0;
  EXPECT_EQ(cache.Lookup(5), nullptr);
}

TEST(KernelCacheTest, RowsCachedTracksOccupancy) {
  KernelCache cache(2, 2 * 8 * 4);
  EXPECT_EQ(cache.rows_cached(), 0);
  cache.Insert(1);
  cache.Insert(2);
  EXPECT_EQ(cache.rows_cached(), 2);
}

TEST(KernelCacheTest, ManyInsertionsCycleWithoutGrowth) {
  KernelCache cache(8, 8 * 8 * 4);  // 4 rows
  for (int32_t r = 0; r < 100; ++r) {
    double* slot = cache.Insert(r);
    slot[0] = r;
  }
  EXPECT_EQ(cache.rows_cached(), 4);
  // The last four rows survive.
  for (int32_t r = 96; r < 100; ++r) {
    ASSERT_NE(cache.Lookup(r), nullptr);
    EXPECT_DOUBLE_EQ(cache.Lookup(r)[0], r);
  }
}

}  // namespace
}  // namespace gmpsvm
