#include "solver/working_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace gmpsvm {
namespace {

TEST(EligibilitySetsTest, MatchPaperDefinitions) {
  const double c = 1.0;
  // I_1: free SVs are in both sets.
  EXPECT_TRUE(InUpSet(+1, 0.5, c));
  EXPECT_TRUE(InLowSet(+1, 0.5, c));
  EXPECT_TRUE(InUpSet(-1, 0.5, c));
  EXPECT_TRUE(InLowSet(-1, 0.5, c));
  // I_2: y=+1, alpha=0 -> up only.
  EXPECT_TRUE(InUpSet(+1, 0.0, c));
  EXPECT_FALSE(InLowSet(+1, 0.0, c));
  // I_3: y=-1, alpha=C -> up only.
  EXPECT_TRUE(InUpSet(-1, c, c));
  EXPECT_FALSE(InLowSet(-1, c, c));
  // I_4: y=+1, alpha=C -> low only.
  EXPECT_FALSE(InUpSet(+1, c, c));
  EXPECT_TRUE(InLowSet(+1, c, c));
  // I_5: y=-1, alpha=0 -> low only.
  EXPECT_FALSE(InUpSet(-1, 0.0, c));
  EXPECT_TRUE(InLowSet(-1, 0.0, c));
}

struct State {
  std::vector<double> f;
  std::vector<double> alpha;
  std::vector<int8_t> y;
  std::vector<double> c;  // per-instance box constraint

  void FinishC(double value = 1.0) { c.assign(y.size(), value); }
};

// All-zero-alpha state (start of training): every +1 is up-eligible with
// f=-1; every -1 is low-eligible with f=+1.
State FreshState(int n) {
  State s;
  for (int i = 0; i < n; ++i) {
    const int8_t label = (i % 2 == 0) ? int8_t{1} : int8_t{-1};
    s.y.push_back(label);
    s.alpha.push_back(0.0);
    s.f.push_back(-static_cast<double>(label));
  }
  s.FinishC();
  return s;
}

TEST(WorkingSetSelectorTest, FirstCallFillsWholeSet) {
  WorkingSetConfig cfg;
  cfg.ws_size = 8;
  cfg.q = 4;
  State s = FreshState(20);
  WorkingSetSelector sel(cfg, 20);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(ws.size(), 8u);
  std::unordered_set<int32_t> uniq(ws.begin(), ws.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(WorkingSetSelectorTest, ClampsToProblemSize) {
  WorkingSetConfig cfg;
  cfg.ws_size = 1024;
  cfg.q = 512;
  WorkingSetSelector sel(cfg, 6);
  EXPECT_EQ(sel.ws_size(), 6);
  EXPECT_LE(sel.q(), 6);
  State s = FreshState(6);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(ws.size(), 6u);
}

TEST(WorkingSetSelectorTest, PicksMostViolatingFromBothEnds) {
  // f values: up-eligible (y=+1, alpha=0) instances at indexes 0..9 with
  // f = index; low-eligible (y=-1, alpha=0) at 10..19 with f = index.
  State s;
  for (int i = 0; i < 20; ++i) {
    const bool up = i < 10;
    s.y.push_back(up ? int8_t{1} : int8_t{-1});
    s.alpha.push_back(0.0);
    s.f.push_back(static_cast<double>(i));
  }
  s.FinishC();
  WorkingSetConfig cfg;
  cfg.ws_size = 4;
  cfg.q = 4;
  WorkingSetSelector sel(cfg, 20);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  std::unordered_set<int32_t> got(ws.begin(), ws.end());
  // Up side: smallest f among up-eligible = {0, 1}; low side: largest f
  // among low-eligible = {19, 18}.
  EXPECT_TRUE(got.count(0));
  EXPECT_TRUE(got.count(1));
  EXPECT_TRUE(got.count(19));
  EXPECT_TRUE(got.count(18));
}

TEST(WorkingSetSelectorTest, KeepsHalfOnRefresh) {
  WorkingSetConfig cfg;
  cfg.ws_size = 8;
  cfg.q = 4;
  State s = FreshState(40);
  WorkingSetSelector sel(cfg, 40);
  const auto first = sel.Update(s.f, s.alpha, s.y, s.c);
  std::unordered_set<int32_t> first_set(first.begin(), first.end());

  const auto& second = sel.Update(s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(second.size(), 8u);
  int kept = 0;
  for (int32_t m : second) kept += first_set.count(m) ? 1 : 0;
  // At least ws_size - q members survive the refresh (the keep-half rule).
  // With unchanged f, dropped members may also be re-admitted as still-most-
  // violating, so this is a lower bound, not an equality.
  EXPECT_GE(kept, 4);
}

TEST(WorkingSetSelectorTest, FifoDropsOldestMembers) {
  WorkingSetConfig cfg;
  cfg.ws_size = 4;
  cfg.q = 2;
  cfg.drop_policy = WorkingSetConfig::DropPolicy::kOldest;
  State s = FreshState(30);
  WorkingSetSelector sel(cfg, 30);
  auto ws1 = sel.Update(s.f, s.alpha, s.y, s.c);
  auto ws2 = sel.Update(s.f, s.alpha, s.y, s.c);
  auto ws3 = sel.Update(s.f, s.alpha, s.y, s.c);
  // After two refreshes of q=2 each, none of ws1's first-admitted members
  // need have survived, but the set size stays ws_size and stays unique.
  EXPECT_EQ(ws3.size(), 4u);
  std::unordered_set<int32_t> uniq(ws3.begin(), ws3.end());
  EXPECT_EQ(uniq.size(), 4u);
  (void)ws2;
}

TEST(WorkingSetSelectorTest, LeastViolatingDropPolicy) {
  WorkingSetConfig cfg;
  cfg.ws_size = 4;
  cfg.q = 2;
  cfg.drop_policy = WorkingSetConfig::DropPolicy::kLeastViolating;
  State s = FreshState(30);
  WorkingSetSelector sel(cfg, 30);
  sel.Update(s.f, s.alpha, s.y, s.c);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(ws.size(), 4u);
  std::unordered_set<int32_t> uniq(ws.begin(), ws.end());
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(WorkingSetSelectorTest, HandlesOneSidedEligibility) {
  // Everyone is up-eligible only (all y=+1, alpha=0): selector fills from
  // one side rather than failing.
  State s;
  for (int i = 0; i < 10; ++i) {
    s.y.push_back(1);
    s.alpha.push_back(0.0);
    s.f.push_back(static_cast<double>(i));
  }
  s.FinishC();
  WorkingSetConfig cfg;
  cfg.ws_size = 6;
  cfg.q = 6;
  WorkingSetSelector sel(cfg, 10);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(ws.size(), 6u);
  for (int32_t m : ws) EXPECT_TRUE(InUpSet(s.y[m], s.alpha[m], s.c[m]));
}

TEST(WorkingSetSelectorTest, MembersAlwaysUnique) {
  // Free SVs are in both eligibility sets; make sure nobody is admitted
  // twice.
  State s;
  for (int i = 0; i < 12; ++i) {
    s.y.push_back(i % 2 == 0 ? int8_t{1} : int8_t{-1});
    s.alpha.push_back(0.5);  // free: both up and low eligible
    s.f.push_back(static_cast<double>(i % 5));
  }
  s.FinishC();
  WorkingSetConfig cfg;
  cfg.ws_size = 10;
  cfg.q = 10;
  WorkingSetSelector sel(cfg, 12);
  const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
  std::unordered_set<int32_t> uniq(ws.begin(), ws.end());
  EXPECT_EQ(uniq.size(), ws.size());
}

// Parameterized sweep over (ws_size, q) combinations: set size invariants
// hold for every configuration.
class WorkingSetSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WorkingSetSweepTest, SizeAndUniquenessInvariants) {
  auto [ws_size, q] = GetParam();
  WorkingSetConfig cfg;
  cfg.ws_size = ws_size;
  cfg.q = q;
  const int n = 64;
  State s = FreshState(n);
  WorkingSetSelector sel(cfg, n);
  for (int round = 0; round < 5; ++round) {
    const auto& ws = sel.Update(s.f, s.alpha, s.y, s.c);
    EXPECT_LE(static_cast<int>(ws.size()), sel.ws_size());
    EXPECT_GE(static_cast<int>(ws.size()), 2);
    std::unordered_set<int32_t> uniq(ws.begin(), ws.end());
    EXPECT_EQ(uniq.size(), ws.size());
    for (int32_t m : ws) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkingSetSweepTest,
                         ::testing::Combine(::testing::Values(4, 16, 32, 64, 128),
                                            ::testing::Values(2, 8, 16, 64)));

// --- Distributed refresh ----------------------------------------------------

// Contiguous [begin, end) shard bounds: shard j gets [j*n/S, (j+1)*n/S).
std::vector<std::pair<int64_t, int64_t>> ShardBounds(int64_t n, int shards) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int j = 0; j < shards; ++j) {
    out.emplace_back(j * n / shards, (j + 1) * n / shards);
  }
  return out;
}

// Deterministic mixed solver-like state: a spread of f values, some bound
// and some free alphas, both labels.
State MixedState(int n) {
  State s;
  for (int i = 0; i < n; ++i) {
    s.y.push_back((i % 2 == 0) ? int8_t{1} : int8_t{-1});
    const int phase = i % 4;
    s.alpha.push_back(phase == 0 ? 0.0 : (phase == 1 ? 1.0 : 0.5));
    // Irrational stride spreads f without ties; a few duplicates are added
    // below to exercise the (f, index) tie-break.
    s.f.push_back(std::fmod(static_cast<double>(i) * 0.7548776662, 3.0) - 1.5);
  }
  for (int i = 8; i + 5 < n; i += 9) s.f[i + 5] = s.f[i];  // forced ties
  s.FinishC();
  return s;
}

// The merged shard selection must equal the full-sort selection exactly —
// same members, same order — for any shard partition, across consecutive
// refreshes of an evolving state. This is the property the distributed
// solver's byte-identity proof leans on (dist/dist_solver.h).
TEST(WorkingSetDistributedRefreshTest, MatchesFullSortForAnyShardCount) {
  WorkingSetConfig cfg;
  cfg.ws_size = 16;
  cfg.q = 6;
  const int n = 103;  // prime: uneven shard splits
  for (int shards : {1, 2, 3, 4, 7}) {
    State s = MixedState(n);
    WorkingSetSelector full(cfg, n);
    WorkingSetSelector dist(cfg, n);
    for (int round = 0; round < 6; ++round) {
      const std::vector<int32_t> expected = full.Update(s.f, s.alpha, s.y, s.c);
      const int needed = dist.BeginDistributedRefresh();
      std::vector<WorkingSetSelector::ShardCandidates> collected;
      for (const auto& [begin, end] : ShardBounds(n, shards)) {
        collected.push_back(
            dist.CollectShardCandidates(begin, end, needed, s.f, s.alpha, s.y, s.c));
      }
      const std::vector<int32_t> merged =
          dist.FinishDistributedRefresh(collected, s.f, s.alpha, s.y, s.c);
      ASSERT_EQ(merged, expected) << "shards=" << shards << " round=" << round;
      // Evolve the state the way solver iterations would: perturb f and move
      // some working-set alphas between free and bound.
      for (int32_t m : merged) {
        s.f[static_cast<size_t>(m)] += (m % 3 == 0) ? 0.25 : -0.125;
        s.alpha[static_cast<size_t>(m)] =
            (round + m) % 3 == 0 ? 0.0 : ((round + m) % 3 == 1 ? 1.0 : 0.5);
      }
    }
  }
}

TEST(WorkingSetDistributedRefreshTest, CollectIsPure) {
  WorkingSetConfig cfg;
  cfg.ws_size = 8;
  cfg.q = 4;
  const int n = 24;
  State s = MixedState(n);
  WorkingSetSelector sel(cfg, n);
  const int needed = sel.BeginDistributedRefresh();
  const auto once = sel.CollectShardCandidates(0, n, needed, s.f, s.alpha, s.y, s.c);
  const auto twice = sel.CollectShardCandidates(0, n, needed, s.f, s.alpha, s.y, s.c);
  EXPECT_EQ(once.up, twice.up);
  EXPECT_EQ(once.low, twice.low);
}

}  // namespace
}  // namespace gmpsvm
