// Property-based tests on solver invariants that hold for ANY correct SVM
// solver, checked across solvers, kernels, C values and data difficulty:
//   * weak duality: primal objective >= dual objective at the solution;
//   * complementary slackness structure of the alpha values;
//   * support-vector geometry: free SVs sit near the margin;
//   * monotonicity: the dual objective never decreases with C.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "device/executor.h"
#include "solver/batch_smo_solver.h"
#include "solver/smo_solver.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::BinaryBlobs;
using ::gmpsvm::testing::DecisionValue;
using ::gmpsvm::testing::MakeBinaryBlobs;
using ::gmpsvm::testing::MakeProblem;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

// ||w||^2 in feature space = sum_ij alpha_i alpha_j y_i y_j K_ij.
double SquaredNormW(const BinaryProblem& p, const KernelComputer& kc,
                    const std::vector<double>& alpha) {
  double norm = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    if (alpha[static_cast<size_t>(i)] == 0.0) continue;
    for (int64_t j = 0; j < p.n(); ++j) {
      if (alpha[static_cast<size_t>(j)] == 0.0) continue;
      norm += alpha[static_cast<size_t>(i)] * alpha[static_cast<size_t>(j)] *
              p.y[static_cast<size_t>(i)] * p.y[static_cast<size_t>(j)] *
              kc.Compute(p.rows[static_cast<size_t>(i)],
                         p.rows[static_cast<size_t>(j)]);
    }
  }
  return norm;
}

// Primal objective 0.5||w||^2 + C * sum max(0, 1 - y_i v_i).
double PrimalObjective(const BinaryProblem& p, const KernelComputer& kc,
                       const BinarySolution& sol) {
  double primal = 0.5 * SquaredNormW(p, kc, sol.alpha);
  for (int64_t i = 0; i < p.n(); ++i) {
    const double v =
        DecisionValue(p, kc, sol.alpha, sol.bias, static_cast<int32_t>(i));
    const double slack =
        std::max(0.0, 1.0 - p.y[static_cast<size_t>(i)] * v);
    primal += p.CFor(p.y[static_cast<size_t>(i)]) * slack;
  }
  return primal;
}

struct Case {
  double c;
  double gamma;
  double separation;
  bool batch_solver;
};

class SolverPropertyTest : public ::testing::TestWithParam<Case> {
 protected:
  BinarySolution Solve(const BinaryProblem& p, const KernelComputer& kc) {
    SimExecutor exec(ExecutorModel::TeslaP100());
    if (GetParam().batch_solver) {
      BatchSmoOptions options;
      options.working_set.ws_size = 24;
      options.working_set.q = 12;
      return ValueOrDie(
          BatchSmoSolver(options).Solve(p, kc, &exec, kDefaultStream, nullptr));
    }
    return ValueOrDie(
        SmoSolver(SmoOptions{}).Solve(p, kc, &exec, kDefaultStream, nullptr));
  }
};

TEST_P(SolverPropertyTest, WeakDualityHolds) {
  const Case& param = GetParam();
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, param.separation, 97, 1.3);
  BinaryProblem p = MakeProblem(blobs, param.c, Gaussian(param.gamma));
  KernelComputer kc(p.data, p.kernel);
  BinarySolution sol = Solve(p, kc);
  const double primal = PrimalObjective(p, kc, sol);
  // primal >= dual always; near-equality at the optimum (eps-tolerance gap).
  EXPECT_GE(primal, sol.objective - 1e-6 * (1.0 + std::abs(sol.objective)));
  EXPECT_LT(primal - sol.objective,
            0.05 * (1.0 + std::abs(sol.objective)) + 0.5);
}

TEST_P(SolverPropertyTest, FreeSupportVectorsSitOnMargin) {
  const Case& param = GetParam();
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, param.separation, 101, 1.3);
  BinaryProblem p = MakeProblem(blobs, param.c, Gaussian(param.gamma));
  KernelComputer kc(p.data, p.kernel);
  BinarySolution sol = Solve(p, kc);
  for (int64_t i = 0; i < p.n(); ++i) {
    const double a = sol.alpha[static_cast<size_t>(i)];
    const double c_i = p.CFor(p.y[static_cast<size_t>(i)]);
    if (a <= 1e-9 || a >= c_i - 1e-9) continue;  // not free
    const double margin =
        p.y[static_cast<size_t>(i)] *
        DecisionValue(p, kc, sol.alpha, sol.bias, static_cast<int32_t>(i));
    EXPECT_NEAR(margin, 1.0, 5e-3) << "free SV " << i;
  }
}

TEST_P(SolverPropertyTest, NonSupportVectorsAreCorrectlyClassified) {
  const Case& param = GetParam();
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, param.separation, 103, 1.3);
  BinaryProblem p = MakeProblem(blobs, param.c, Gaussian(param.gamma));
  KernelComputer kc(p.data, p.kernel);
  BinarySolution sol = Solve(p, kc);
  for (int64_t i = 0; i < p.n(); ++i) {
    if (sol.alpha[static_cast<size_t>(i)] > 1e-9) continue;  // SV
    const double margin =
        p.y[static_cast<size_t>(i)] *
        DecisionValue(p, kc, sol.alpha, sol.bias, static_cast<int32_t>(i));
    // alpha = 0 at optimality requires margin >= 1 (up to tolerance).
    EXPECT_GT(margin, 1.0 - 5e-3) << "non-SV " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverPropertyTest,
    ::testing::Values(Case{0.5, 0.3, 1.5, false}, Case{0.5, 0.3, 1.5, true},
                      Case{10.0, 0.5, 0.8, false}, Case{10.0, 0.5, 0.8, true},
                      Case{1.0, 0.1, 2.5, false}, Case{1.0, 0.1, 2.5, true},
                      Case{100.0, 0.3, 1.0, false}, Case{100.0, 0.3, 1.0, true}),
    [](const auto& info) {
      const Case& c = info.param;
      return std::string(c.batch_solver ? "batch" : "classic") + "_c" +
             std::to_string(static_cast<int>(c.c * 10)) + "_g" +
             std::to_string(static_cast<int>(c.gamma * 10)) + "_s" +
             std::to_string(static_cast<int>(c.separation * 10));
    });

TEST(SolverMonotonicityTest, DualObjectiveNondecreasingInC) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, 0.8, 107, 1.6);
  KernelComputer kc(&blobs.data, Gaussian(0.4));
  double prev_obj = -1.0;
  for (double c : {0.1, 0.5, 2.0, 10.0, 50.0}) {
    BinaryProblem p = MakeProblem(blobs, c, Gaussian(0.4));
    SimExecutor exec(ExecutorModel::TeslaP100());
    auto sol = ValueOrDie(
        SmoSolver(SmoOptions{}).Solve(p, kc, &exec, kDefaultStream, nullptr));
    // Relaxing the box constraint can only improve the dual optimum.
    EXPECT_GE(sol.objective, prev_obj - 1e-6);
    prev_obj = sol.objective;
  }
}

TEST(SolverAgreementTest, BatchAndClassicAgreeAcrossSeeds) {
  for (uint64_t seed : {1u, 7u, 23u, 91u, 211u}) {
    BinaryBlobs blobs = MakeBinaryBlobs(25, 4, 1.2, seed, 1.4);
    BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.35));
    KernelComputer kc(p.data, p.kernel);
    SimExecutor e1(ExecutorModel::TeslaP100()), e2(ExecutorModel::TeslaP100());
    auto a = ValueOrDie(
        SmoSolver(SmoOptions{}).Solve(p, kc, &e1, kDefaultStream, nullptr));
    BatchSmoOptions options;
    options.working_set.ws_size = 16;
    options.working_set.q = 8;
    auto b = ValueOrDie(
        BatchSmoSolver(options).Solve(p, kc, &e2, kDefaultStream, nullptr));
    EXPECT_NEAR(a.objective, b.objective, 1e-2 * (1.0 + std::abs(a.objective)))
        << "seed " << seed;
    EXPECT_NEAR(a.bias, b.bias, 5e-2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gmpsvm
