#include "solver/kernel_buffer.h"

#include <gtest/gtest.h>

#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

TEST(KernelBufferTest, InsertAndLookup) {
  KernelBuffer buf(/*row_length=*/3, /*capacity_rows=*/4);
  std::vector<int32_t> rows = {7, 9};
  auto slots = ValueOrDie(buf.InsertBatch(rows));
  ASSERT_EQ(slots.size(), 2u);
  slots[0][0] = 70;
  slots[1][0] = 90;
  EXPECT_DOUBLE_EQ(buf.Lookup(7)[0], 70);
  EXPECT_DOUBLE_EQ(buf.Lookup(9)[0], 90);
  EXPECT_EQ(buf.Lookup(8), nullptr);
  EXPECT_EQ(buf.rows_buffered(), 2);
}

TEST(KernelBufferTest, PartitionSplitsPresentAndMissing) {
  KernelBuffer buf(2, 4);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2}));
  std::vector<int32_t> present, missing;
  std::vector<int32_t> want = {1, 3, 2, 4};
  buf.Partition(want, &present, &missing);
  EXPECT_EQ(present, (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(missing, (std::vector<int32_t>{3, 4}));
  EXPECT_EQ(buf.hits(), 2);
  EXPECT_EQ(buf.misses(), 2);
}

TEST(KernelBufferTest, FifoEviction) {
  KernelBuffer buf(1, 2);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1}))[0][0] = 1;
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{2}))[0][0] = 2;
  // Lookup does not refresh order (FIFO, not LRU).
  ASSERT_NE(buf.Lookup(1), nullptr);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{3}));
  EXPECT_EQ(buf.Lookup(1), nullptr);  // oldest evicted despite recent lookup
  EXPECT_NE(buf.Lookup(2), nullptr);
  EXPECT_NE(buf.Lookup(3), nullptr);
  EXPECT_EQ(buf.evictions(), 1);
}

TEST(KernelBufferTest, PinnedRowsSurviveEviction) {
  KernelBuffer buf(1, 3);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2, 3}));
  std::vector<int32_t> pins = {1};
  buf.Pin(pins);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{4}));
  EXPECT_NE(buf.Lookup(1), nullptr);  // pinned: skipped
  EXPECT_EQ(buf.Lookup(2), nullptr);  // next-oldest evicted instead
  EXPECT_NE(buf.Lookup(4), nullptr);
}

TEST(KernelBufferTest, FailsWhenEverythingPinned) {
  KernelBuffer buf(1, 2);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2}));
  std::vector<int32_t> pins = {1, 2};
  buf.Pin(pins);
  auto result = buf.InsertBatch(std::vector<int32_t>{3});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(KernelBufferTest, PinReplacesPreviousPinSet) {
  KernelBuffer buf(1, 2);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2}));
  std::vector<int32_t> pins1 = {1, 2};
  buf.Pin(pins1);
  std::vector<int32_t> pins2 = {2};
  buf.Pin(pins2);  // 1 is unpinned now
  auto result = buf.InsertBatch(std::vector<int32_t>{3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(buf.Lookup(1), nullptr);
  EXPECT_NE(buf.Lookup(2), nullptr);
}

TEST(KernelBufferTest, WorkingSetChurnScenario) {
  // Simulates the solver's use: ws of 4 rows, q=2 replaced each round with a
  // buffer of 4 rows — reuse hits should be exactly the kept half.
  KernelBuffer buf(8, 4);
  std::vector<int32_t> ws = {0, 1, 2, 3};
  buf.Pin(ws);
  std::vector<int32_t> present, missing;
  buf.Partition(ws, &present, &missing);
  EXPECT_EQ(missing.size(), 4u);
  ValueOrDie(buf.InsertBatch(missing));

  // Next round: 2 kept (2, 3), 2 new (4, 5).
  std::vector<int32_t> ws2 = {2, 3, 4, 5};
  buf.Pin(ws2);
  buf.Partition(ws2, &present, &missing);
  EXPECT_EQ(present, (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(missing, (std::vector<int32_t>{4, 5}));
  auto slots = ValueOrDie(buf.InsertBatch(missing));
  ASSERT_EQ(slots.size(), 2u);
  for (int32_t r : ws2) EXPECT_NE(buf.Lookup(r), nullptr);
  EXPECT_EQ(buf.Lookup(0), nullptr);
  EXPECT_EQ(buf.Lookup(1), nullptr);
}

TEST(KernelBufferTest, ByteSizeMatchesCapacity) {
  KernelBuffer buf(100, 10);
  EXPECT_EQ(buf.ByteSize(), 100u * 10u * sizeof(double));
}

TEST(KernelBufferTest, LargerBufferRetainsDepartedRows) {
  // Buffer capacity > working set: rows that leave the ws stay buffered and
  // produce hits when they re-enter — the Figure 6 effect.
  KernelBuffer small(1, 2);
  KernelBuffer large(1, 6);
  for (KernelBuffer* buf : {&small, &large}) {
    std::vector<int32_t> present, missing;
    // Rounds with ws {0,1}, {2,3}, {0,1}: re-entry of 0 and 1.
    for (auto& ws : std::vector<std::vector<int32_t>>{{0, 1}, {2, 3}, {0, 1}}) {
      buf->Pin(ws);
      buf->Partition(ws, &present, &missing);
      if (!missing.empty()) ValueOrDie(buf->InsertBatch(missing));
    }
  }
  EXPECT_EQ(small.hits(), 0);
  EXPECT_EQ(large.hits(), 2);  // 0 and 1 were still buffered on re-entry
}

TEST(KernelBufferPoisonTest, PoisonedRowBehavesAsAbsentUntilRewritten) {
  fault::FaultPlan plan;
  plan.evict_poison_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);

  KernelBuffer buf(2, 3);
  buf.SetFaultInjector(&injector);
  auto slots = ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2, 3}));
  for (auto* s : slots) s[0] = 42.0;
  EXPECT_EQ(buf.rows_poisoned(), 0);  // no eviction yet, no poison draw

  // Inserting 4 evicts row 1 and (injected) poisons the oldest survivor: 2.
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{4}));
  EXPECT_EQ(buf.rows_poisoned(), 1);
  EXPECT_TRUE(buf.IsPoisoned(2));
  EXPECT_EQ(buf.Lookup(2), nullptr);  // reads garbage never, recompute always
  EXPECT_NE(buf.Lookup(3), nullptr);

  std::vector<int32_t> present, missing;
  std::vector<int32_t> want = {2, 3};
  buf.Partition(want, &present, &missing);
  EXPECT_EQ(present, (std::vector<int32_t>{3}));
  EXPECT_EQ(missing, (std::vector<int32_t>{2}));

  // Re-inserting the poisoned row reuses its slot and clears the poison.
  auto rewrite = ValueOrDie(buf.InsertBatch(missing));
  ASSERT_EQ(rewrite.size(), 1u);
  rewrite[0][0] = 7.0;
  EXPECT_FALSE(buf.IsPoisoned(2));
  ASSERT_NE(buf.Lookup(2), nullptr);
  EXPECT_DOUBLE_EQ(buf.Lookup(2)[0], 7.0);
}

TEST(KernelBufferPoisonTest, PinnedRowsAreNeverPoisoned) {
  fault::FaultPlan plan;
  plan.evict_poison_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);

  KernelBuffer buf(1, 3);
  buf.SetFaultInjector(&injector);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2, 3}));
  std::vector<int32_t> pins = {2, 3};
  buf.Pin(pins);
  // Evicts unpinned row 1; the only poison candidates are pinned or freshly
  // inserted, so nothing is poisoned.
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{4}));
  EXPECT_EQ(buf.rows_poisoned(), 0);
  EXPECT_NE(buf.Lookup(2), nullptr);
  EXPECT_NE(buf.Lookup(3), nullptr);
}

TEST(KernelBufferPoisonTest, NoInjectorNoPoisonEver) {
  KernelBuffer buf(1, 2);
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{1, 2}));
  ValueOrDie(buf.InsertBatch(std::vector<int32_t>{3}));  // evicts
  EXPECT_EQ(buf.rows_poisoned(), 0);
  EXPECT_EQ(buf.evictions(), 1);
}

}  // namespace
}  // namespace gmpsvm
