#include "solver/smo_solver.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "device/executor.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::BinaryBlobs;
using ::gmpsvm::testing::DecisionValue;
using ::gmpsvm::testing::DualObjective;
using ::gmpsvm::testing::MakeBinaryBlobs;
using ::gmpsvm::testing::MakeProblem;
using ::gmpsvm::testing::MaxKktViolation;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.gamma = gamma;
  return p;
}

TEST(SmoSolverTest, RejectsDegenerateProblems) {
  BinaryBlobs blobs = MakeBinaryBlobs(1, 2, 3.0, 1);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoSolver solver(SmoOptions{});

  BinaryProblem small = p;
  small.rows = {0};
  small.y = {1};
  EXPECT_FALSE(solver.Solve(small, kc, &exec, kDefaultStream, nullptr).ok());

  BinaryProblem bad_c = p;
  bad_c.C = 0.0;
  EXPECT_FALSE(solver.Solve(bad_c, kc, &exec, kDefaultStream, nullptr).ok());
}

TEST(SmoSolverTest, SeparatesEasyBlobs) {
  BinaryBlobs blobs = MakeBinaryBlobs(40, 4, 3.0, 7);
  BinaryProblem p = MakeProblem(blobs, 10.0, Gaussian(0.25));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoSolver solver(SmoOptions{});
  SolverStats stats;
  auto solution = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, &stats));

  // All training instances correctly classified on separable data.
  for (int64_t i = 0; i < p.n(); ++i) {
    const double v =
        DecisionValue(p, kc, solution.alpha, solution.bias, static_cast<int32_t>(i));
    EXPECT_GT(v * p.y[static_cast<size_t>(i)], 0.0) << "instance " << i;
  }
  EXPECT_GT(stats.iterations, 0);
}

TEST(SmoSolverTest, SatisfiesKktAtTolerance) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 3, 1.0, 11, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoOptions opts;
  opts.eps = 1e-3;
  SmoSolver solver(opts);
  auto solution = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_LT(MaxKktViolation(p, kc, solution.alpha), opts.eps + 1e-9);
}

TEST(SmoSolverTest, RespectsBoxAndEqualityConstraints) {
  BinaryBlobs blobs = MakeBinaryBlobs(25, 3, 0.5, 3, /*noise=*/2.0);  // hard data
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoSolver solver(SmoOptions{});
  auto solution = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, nullptr));

  double sum_ya = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    const double a = solution.alpha[static_cast<size_t>(i)];
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, p.C + 1e-12);
    sum_ya += a * p.y[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(sum_ya, 0.0, 1e-9);
}

TEST(SmoSolverTest, ObjectiveMatchesBruteForce) {
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 1.5, 5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoSolver solver(SmoOptions{});
  auto solution = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_NEAR(solution.objective, DualObjective(p, kc, solution.alpha),
              1e-6 * (1.0 + std::abs(solution.objective)));
}

TEST(SmoSolverTest, DeterministicAcrossRuns) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, 1.0, 13);
  BinaryProblem p = MakeProblem(blobs, 5.0, Gaussian(0.25));
  KernelComputer kc(p.data, p.kernel);
  SmoSolver solver(SmoOptions{});

  SimExecutor exec1(ExecutorModel::TeslaP100());
  auto s1 = ValueOrDie(solver.Solve(p, kc, &exec1, kDefaultStream, nullptr));
  SimExecutor exec2(ExecutorModel::TeslaP100());
  auto s2 = ValueOrDie(solver.Solve(p, kc, &exec2, kDefaultStream, nullptr));

  EXPECT_EQ(s1.alpha, s2.alpha);
  EXPECT_DOUBLE_EQ(s1.bias, s2.bias);
  EXPECT_DOUBLE_EQ(exec1.NowSeconds(), exec2.NowSeconds());
}

TEST(SmoSolverTest, HigherCFitsHarder) {
  BinaryBlobs blobs = MakeBinaryBlobs(40, 3, 0.8, 17, /*noise=*/1.5);
  KernelComputer kc(&blobs.data, Gaussian(0.5));
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoSolver solver(SmoOptions{});

  auto count_errors = [&](double c) {
    BinaryProblem p = MakeProblem(blobs, c, Gaussian(0.5));
    auto sol = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, nullptr));
    int errors = 0;
    for (int64_t i = 0; i < p.n(); ++i) {
      const double v =
          DecisionValue(p, kc, sol.alpha, sol.bias, static_cast<int32_t>(i));
      if (v * p.y[static_cast<size_t>(i)] <= 0) ++errors;
    }
    return errors;
  };
  EXPECT_LE(count_errors(100.0), count_errors(0.01));
}

TEST(SmoSolverTest, CacheReducesKernelRowComputation) {
  BinaryBlobs blobs = MakeBinaryBlobs(50, 4, 1.0, 19, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);

  SmoOptions big_cache;
  big_cache.cache_bytes = 64ull << 20;
  SmoOptions tiny_cache;
  tiny_cache.cache_bytes = 2 * p.n() * sizeof(double);  // 2 rows

  SimExecutor exec_big(ExecutorModel::TeslaP100());
  SolverStats stats_big;
  ValueOrDie(SmoSolver(big_cache).Solve(p, kc, &exec_big, kDefaultStream, &stats_big));
  SimExecutor exec_tiny(ExecutorModel::TeslaP100());
  SolverStats stats_tiny;
  ValueOrDie(
      SmoSolver(tiny_cache).Solve(p, kc, &exec_tiny, kDefaultStream, &stats_tiny));

  EXPECT_LT(stats_big.kernel_rows_computed, stats_tiny.kernel_rows_computed);
  EXPECT_GT(stats_big.kernel_rows_reused, 0);
  // Same classifier regardless of cache size.
  EXPECT_EQ(stats_big.iterations, stats_tiny.iterations);
}

TEST(SmoSolverTest, GpuBaselineCacheComesFromDeviceBudget) {
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 2.0, 23);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SmoOptions opts;
  opts.cache_bytes = 4ull << 30;
  opts.cache_on_device = true;
  SimExecutor exec(ExecutorModel::TeslaP100());
  ValueOrDie(SmoSolver(opts).Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_GE(exec.counters().peak_bytes_in_use, 4ull << 30);
  EXPECT_EQ(exec.bytes_in_use(), 0u);  // released after solve
}

// Sweep over kernels and C: constraints hold everywhere.
class SmoSweepTest
    : public ::testing::TestWithParam<std::tuple<KernelType, double>> {};

TEST_P(SmoSweepTest, ConstraintsHold) {
  auto [type, c] = GetParam();
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 1.0, 29);
  KernelParams kp;
  kp.type = type;
  kp.gamma = 0.5;
  kp.coef0 = type == KernelType::kSigmoid ? -1.0 : 1.0;
  kp.degree = 2;
  BinaryProblem p = MakeProblem(blobs, c, kp);
  KernelComputer kc(p.data, kp);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SmoOptions opts;
  opts.max_iterations = 200000;
  auto sol = ValueOrDie(SmoSolver(opts).Solve(p, kc, &exec, kDefaultStream, nullptr));
  double sum_ya = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    EXPECT_GE(sol.alpha[static_cast<size_t>(i)], -1e-12);
    EXPECT_LE(sol.alpha[static_cast<size_t>(i)], c + 1e-12);
    sum_ya += sol.alpha[static_cast<size_t>(i)] * p.y[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(sum_ya, 0.0, 1e-8 * (1.0 + c));
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndC, SmoSweepTest,
    ::testing::Combine(::testing::Values(KernelType::kGaussian, KernelType::kLinear,
                                         KernelType::kPolynomial),
                       ::testing::Values(0.1, 1.0, 10.0)));

TEST(SmoSolverTest, SecondOrderSelectionNeedsFewerIterations) {
  // Fan et al. 2005 (and the paper's Equation (5)): the second-order
  // heuristic converges in fewer SMO iterations than the maximal-violating-
  // pair rule, at the same final objective.
  BinaryBlobs blobs = MakeBinaryBlobs(60, 5, 0.9, 131, /*noise=*/1.4);
  BinaryProblem p = MakeProblem(blobs, 5.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);

  SmoOptions second;
  SmoOptions first;
  first.selection = SmoOptions::Selection::kFirstOrder;

  SimExecutor e1(ExecutorModel::TeslaP100()), e2(ExecutorModel::TeslaP100());
  SolverStats s2nd, s1st;
  auto sol2 = ValueOrDie(SmoSolver(second).Solve(p, kc, &e1, kDefaultStream, &s2nd));
  auto sol1 = ValueOrDie(SmoSolver(first).Solve(p, kc, &e2, kDefaultStream, &s1st));

  EXPECT_LT(s2nd.iterations, s1st.iterations);
  EXPECT_NEAR(sol2.objective, sol1.objective,
              1e-2 * (1.0 + std::abs(sol2.objective)));
}

}  // namespace
}  // namespace gmpsvm

