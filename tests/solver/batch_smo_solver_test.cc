#include "solver/batch_smo_solver.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "device/executor.h"
#include "solver/smo_solver.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::BinaryBlobs;
using ::gmpsvm::testing::DecisionValue;
using ::gmpsvm::testing::DualObjective;
using ::gmpsvm::testing::MakeBinaryBlobs;
using ::gmpsvm::testing::MakeProblem;
using ::gmpsvm::testing::MaxKktViolation;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.gamma = gamma;
  return p;
}

BatchSmoOptions SmallOptions(int ws = 32, int q = 16) {
  BatchSmoOptions opts;
  opts.working_set.ws_size = ws;
  opts.working_set.q = q;
  return opts;
}

TEST(BatchSmoSolverTest, SeparatesEasyBlobs) {
  BinaryBlobs blobs = MakeBinaryBlobs(40, 4, 3.0, 7);
  BinaryProblem p = MakeProblem(blobs, 10.0, Gaussian(0.25));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  BatchSmoSolver solver(SmallOptions());
  SolverStats stats;
  auto sol = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, &stats));
  for (int64_t i = 0; i < p.n(); ++i) {
    const double v =
        DecisionValue(p, kc, sol.alpha, sol.bias, static_cast<int32_t>(i));
    EXPECT_GT(v * p.y[static_cast<size_t>(i)], 0.0) << "instance " << i;
  }
  EXPECT_GT(stats.outer_rounds, 0);
  EXPECT_GT(stats.iterations, 0);
}

TEST(BatchSmoSolverTest, SatisfiesKktAtTolerance) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 3, 1.0, 11, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  BatchSmoOptions opts = SmallOptions();
  opts.eps = 1e-3;
  BatchSmoSolver solver(opts);
  auto sol = ValueOrDie(solver.Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_LT(MaxKktViolation(p, kc, sol.alpha), opts.eps + 1e-9);
}

TEST(BatchSmoSolverTest, MatchesClassicSmoSolution) {
  // The paper's Table 4 claim: GMP-SVM produces the same classifier as
  // LibSVM. Dual objective, bias, and decision values agree to tolerance.
  BinaryBlobs blobs = MakeBinaryBlobs(50, 4, 1.2, 13, /*noise=*/1.3);
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);

  SimExecutor exec1(ExecutorModel::TeslaP100());
  auto ref = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &exec1, kDefaultStream, nullptr));
  SimExecutor exec2(ExecutorModel::TeslaP100());
  auto batch = ValueOrDie(
      BatchSmoSolver(SmallOptions()).Solve(p, kc, &exec2, kDefaultStream, nullptr));

  EXPECT_NEAR(batch.objective, ref.objective,
              1e-2 * (1.0 + std::abs(ref.objective)));
  EXPECT_NEAR(batch.bias, ref.bias, 5e-2);
  int disagreements = 0;
  for (int64_t i = 0; i < p.n(); ++i) {
    const double v_ref =
        DecisionValue(p, kc, ref.alpha, ref.bias, static_cast<int32_t>(i));
    const double v_batch =
        DecisionValue(p, kc, batch.alpha, batch.bias, static_cast<int32_t>(i));
    if ((v_ref > 0) != (v_batch > 0)) ++disagreements;
  }
  EXPECT_EQ(disagreements, 0);
}

TEST(BatchSmoSolverTest, RespectsConstraints) {
  BinaryBlobs blobs = MakeBinaryBlobs(35, 3, 0.7, 3, /*noise=*/2.0);
  BinaryProblem p = MakeProblem(blobs, 1.5, Gaussian(0.4));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto sol = ValueOrDie(
      BatchSmoSolver(SmallOptions()).Solve(p, kc, &exec, kDefaultStream, nullptr));
  double sum_ya = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    EXPECT_GE(sol.alpha[static_cast<size_t>(i)], -1e-12);
    EXPECT_LE(sol.alpha[static_cast<size_t>(i)], p.C + 1e-12);
    sum_ya += sol.alpha[static_cast<size_t>(i)] * p.y[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(sum_ya, 0.0, 1e-8);
}

TEST(BatchSmoSolverTest, BuffersReduceKernelRowRecomputation) {
  BinaryBlobs blobs = MakeBinaryBlobs(60, 4, 1.0, 19, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  SolverStats stats;
  ValueOrDie(
      BatchSmoSolver(SmallOptions()).Solve(p, kc, &exec, kDefaultStream, &stats));
  // Keep-half refreshes mean roughly half of each round's rows are reused.
  EXPECT_GT(stats.kernel_rows_reused, 0);
  EXPECT_GT(exec.counters().kernel_values_reused, 0);
}

TEST(BatchSmoSolverTest, FarFewerKernelRowsThanClassicSmo) {
  // The headline efficiency claim of the binary-SVM level: batching +
  // buffering computes far fewer kernel rows than row-pair-per-iteration SMO
  // with a tiny cache.
  BinaryBlobs blobs = MakeBinaryBlobs(80, 5, 0.9, 31, /*noise=*/1.4);
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);

  SmoOptions classic_opts;
  classic_opts.cache_bytes = 4 * p.n() * sizeof(double);  // 4 rows
  SimExecutor exec1(ExecutorModel::TeslaP100());
  SolverStats classic_stats;
  ValueOrDie(
      SmoSolver(classic_opts).Solve(p, kc, &exec1, kDefaultStream, &classic_stats));

  SimExecutor exec2(ExecutorModel::TeslaP100());
  SolverStats batch_stats;
  ValueOrDie(
      BatchSmoSolver(SmallOptions()).Solve(p, kc, &exec2, kDefaultStream,
                                           &batch_stats));

  EXPECT_LT(batch_stats.kernel_rows_computed, classic_stats.kernel_rows_computed);
  // And fewer kernel launches (batching).
  EXPECT_LT(exec2.counters().launches, exec1.counters().launches);
}

TEST(BatchSmoSolverTest, DeterministicAcrossRuns) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, 1.0, 13);
  BinaryProblem p = MakeProblem(blobs, 5.0, Gaussian(0.25));
  KernelComputer kc(p.data, p.kernel);
  BatchSmoSolver solver(SmallOptions());
  SimExecutor e1(ExecutorModel::TeslaP100());
  auto s1 = ValueOrDie(solver.Solve(p, kc, &e1, kDefaultStream, nullptr));
  SimExecutor e2(ExecutorModel::TeslaP100());
  auto s2 = ValueOrDie(solver.Solve(p, kc, &e2, kDefaultStream, nullptr));
  EXPECT_EQ(s1.alpha, s2.alpha);
  EXPECT_DOUBLE_EQ(s1.bias, s2.bias);
  EXPECT_DOUBLE_EQ(e1.NowSeconds(), e2.NowSeconds());
}

TEST(BatchSmoSolverTest, DeviceBufferCountsAgainstBudget) {
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 2.0, 23);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  BatchSmoOptions opts = SmallOptions(16, 8);
  opts.buffer_on_device = true;
  ValueOrDie(BatchSmoSolver(opts).Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_GE(exec.counters().peak_bytes_in_use,
            16u * static_cast<size_t>(p.n()) * sizeof(double));
  EXPECT_EQ(exec.bytes_in_use(), 0u);
}

TEST(BatchSmoSolverTest, FixedInnerPolicyAlsoConverges) {
  BinaryBlobs blobs = MakeBinaryBlobs(30, 3, 1.0, 37, /*noise=*/1.5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  BatchSmoOptions opts = SmallOptions();
  opts.inner_policy = BatchSmoOptions::InnerPolicy::kFixed;
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto sol =
      ValueOrDie(BatchSmoSolver(opts).Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_LT(MaxKktViolation(p, kc, sol.alpha), opts.eps + 1e-9);
}

// Sweep: the solver reaches KKT optimality for every (ws_size, q) combo,
// matching the classic solver's objective. This is the convergence-safety
// property behind the Figure 6/7 parameter sweeps.
class BatchSmoSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchSmoSweepTest, ConvergesToReferenceObjective) {
  auto [ws, q] = GetParam();
  BinaryBlobs blobs = MakeBinaryBlobs(40, 4, 1.1, 41, /*noise=*/1.3);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.4));
  KernelComputer kc(p.data, p.kernel);

  SimExecutor ref_exec(ExecutorModel::TeslaP100());
  auto ref = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &ref_exec, kDefaultStream, nullptr));

  BatchSmoOptions opts = SmallOptions(ws, q);
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto sol =
      ValueOrDie(BatchSmoSolver(opts).Solve(p, kc, &exec, kDefaultStream, nullptr));
  EXPECT_LT(MaxKktViolation(p, kc, sol.alpha), 2e-3);
  EXPECT_NEAR(sol.objective, ref.objective, 1e-2 * (1.0 + std::abs(ref.objective)));
}

INSTANTIATE_TEST_SUITE_P(WsAndQ, BatchSmoSweepTest,
                         ::testing::Combine(::testing::Values(8, 16, 32, 64),
                                            ::testing::Values(4, 8, 16, 32)));

TEST(BatchSmoSolverTest, AlphaSeedingCutsIterationsOnCPath) {
  // Warm-starting from the previous C's solution (alpha seeding) should
  // converge in far fewer iterations than a cold start, with an equal
  // objective.
  BinaryBlobs blobs = MakeBinaryBlobs(50, 4, 1.0, 171, /*noise=*/1.4);
  KernelParams kernel = Gaussian(0.3);
  KernelComputer kc(&blobs.data, kernel);
  BatchSmoSolver solver(SmallOptions());

  BinaryProblem p1 = MakeProblem(blobs, 1.0, kernel);
  SimExecutor e0(ExecutorModel::TeslaP100());
  auto base = ValueOrDie(solver.Solve(p1, kc, &e0, kDefaultStream, nullptr));

  BinaryProblem p2 = MakeProblem(blobs, 1.3, kernel);  // nearby C
  SimExecutor e_cold(ExecutorModel::TeslaP100());
  SolverStats cold;
  auto cold_sol = ValueOrDie(solver.Solve(p2, kc, &e_cold, kDefaultStream, &cold));
  SimExecutor e_warm(ExecutorModel::TeslaP100());
  SolverStats warm;
  auto warm_sol = ValueOrDie(
      solver.SolveWarm(p2, kc, base.alpha, &e_warm, kDefaultStream, &warm));

  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_NEAR(warm_sol.objective, cold_sol.objective,
              1e-2 * (1.0 + std::abs(cold_sol.objective)));
  EXPECT_LT(::gmpsvm::testing::MaxKktViolation(p2, kc, warm_sol.alpha), 2e-3);
}

TEST(BatchSmoSolverTest, AlphaSeedingRepairsBrokenConstraints) {
  // A seed violating the box and equality constraints is clamped/repaired;
  // the solve still reaches a valid optimum.
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, 1.5, 173);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);
  std::vector<double> bad_seed(static_cast<size_t>(p.n()), 5.0);  // way out of box
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto sol = ValueOrDie(BatchSmoSolver(SmallOptions())
                            .SolveWarm(p, kc, bad_seed, &exec, kDefaultStream,
                                       nullptr));
  double sum_ya = 0.0;
  for (int64_t i = 0; i < p.n(); ++i) {
    EXPECT_GE(sol.alpha[static_cast<size_t>(i)], -1e-12);
    EXPECT_LE(sol.alpha[static_cast<size_t>(i)], p.C + 1e-12);
    sum_ya += sol.alpha[static_cast<size_t>(i)] * p.y[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(sum_ya, 0.0, 1e-8);
  EXPECT_LT(::gmpsvm::testing::MaxKktViolation(p, kc, sol.alpha), 2e-3);
}

TEST(BatchSmoSolverTest, AlphaSeedingRejectsWrongSize) {
  BinaryBlobs blobs = MakeBinaryBlobs(10, 3, 2.0, 177);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);
  std::vector<double> seed(3, 0.0);
  SimExecutor exec(ExecutorModel::TeslaP100());
  EXPECT_FALSE(BatchSmoSolver(SmallOptions())
                   .SolveWarm(p, kc, seed, &exec, kDefaultStream, nullptr)
                   .ok());
}

TEST(BatchSmoOptionsValidateTest, NamesTheOffendingField) {
  BatchSmoOptions options = SmallOptions();
  EXPECT_TRUE(options.Validate().ok());

  BatchSmoOptions bad_q = options;
  bad_q.working_set.q = 0;
  Status s = bad_q.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("working_set.q"), std::string::npos);

  // q above ws_size is legal: WorkingSetSelector clamps it (the documented
  // behavior the ws/q sweep configurations rely on).
  BatchSmoOptions big_q = options;
  big_q.working_set.q = big_q.working_set.ws_size + 1;
  EXPECT_TRUE(big_q.Validate().ok());

  BatchSmoOptions bad_eps = options;
  bad_eps.eps = 0.0;
  s = bad_eps.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("eps"), std::string::npos);

  BatchSmoOptions bad_buffer = options;
  bad_buffer.buffer_rows = -1;
  EXPECT_TRUE(bad_buffer.Validate().IsInvalidArgument());

  // The solver itself rejects invalid options before doing any work.
  BinaryBlobs blobs = MakeBinaryBlobs(10, 3, 2.0, 178);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.3));
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto sol = BatchSmoSolver(bad_eps).Solve(p, kc, &exec, kDefaultStream,
                                           nullptr);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gmpsvm
