#include "data/scale.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gmpsvm {
namespace {

CsrMatrix DenseMatrixOf(const std::vector<std::vector<double>>& rows) {
  const int64_t dim = static_cast<int64_t>(rows[0].size());
  CsrBuilder b(dim);
  for (const auto& row : rows) {
    std::vector<int32_t> idx;
    std::vector<double> val;
    for (int64_t f = 0; f < dim; ++f) {
      if (row[static_cast<size_t>(f)] != 0.0) {
        idx.push_back(static_cast<int32_t>(f));
        val.push_back(row[static_cast<size_t>(f)]);
      }
    }
    b.AddRow(idx, val);
  }
  return ValueOrDie(b.Finish());
}

TEST(FeatureScalerTest, MinMaxMapsToRange) {
  CsrMatrix data = DenseMatrixOf({{2.0, 10.0}, {4.0, 20.0}, {6.0, 30.0}});
  auto scaler = ValueOrDie(FeatureScaler::Fit(data, FeatureScaler::Mode::kMinMax,
                                              -1.0, 1.0));
  CsrMatrix scaled = scaler.Apply(data);
  // Feature 0: [2,6] -> [-1,1]; middle value 4 -> 0 (dropped as sparse zero).
  EXPECT_DOUBLE_EQ(scaled.RowValues(0)[0], -1.0);
  EXPECT_DOUBLE_EQ(scaled.RowValues(2)[0], 1.0);
  // Feature 1: [10,30] -> [-1,1].
  EXPECT_DOUBLE_EQ(scaled.RowValues(0)[1], -1.0);
  EXPECT_DOUBLE_EQ(scaled.RowValues(2)[1], 1.0);
}

TEST(FeatureScalerTest, MinMaxCustomRange) {
  CsrMatrix data = DenseMatrixOf({{1.0}, {3.0}});
  auto scaler =
      ValueOrDie(FeatureScaler::Fit(data, FeatureScaler::Mode::kMinMax, 0.0, 1.0));
  CsrMatrix scaled = scaler.Apply(data);
  EXPECT_EQ(scaled.RowNnz(0), 0);  // min maps to exactly 0 -> stays sparse
  EXPECT_DOUBLE_EQ(scaled.RowValues(1)[0], 1.0);
}

TEST(FeatureScalerTest, ConstantFeaturePassesThrough) {
  CsrMatrix data = DenseMatrixOf({{5.0, 1.0}, {5.0, 2.0}});
  auto scaler = ValueOrDie(FeatureScaler::Fit(data, FeatureScaler::Mode::kMinMax));
  CsrMatrix scaled = scaler.Apply(data);
  EXPECT_DOUBLE_EQ(scaled.RowValues(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(scaled.RowValues(1)[0], 5.0);
}

TEST(FeatureScalerTest, StdDevNormalizesMoments) {
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 500; ++i) rows.push_back({rng.Normal(10.0, 4.0)});
  CsrMatrix data = DenseMatrixOf(rows);
  auto scaler = ValueOrDie(FeatureScaler::Fit(data, FeatureScaler::Mode::kStdDev));
  CsrMatrix scaled = scaler.Apply(data);
  double sum = 0, sumsq = 0;
  int64_t count = 0;
  for (int64_t r = 0; r < scaled.rows(); ++r) {
    for (double v : scaled.RowValues(r)) {
      sum += v;
      sumsq += v * v;
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sumsq / static_cast<double>(count) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(FeatureScalerTest, ApplyToUnseenDataUsesTrainParameters) {
  // (Zeros are sparse non-entries, so the observed range of feature 0 is
  // [1, 11].)
  CsrMatrix train = DenseMatrixOf({{1.0, 2.0}, {11.0, 4.0}});
  auto scaler =
      ValueOrDie(FeatureScaler::Fit(train, FeatureScaler::Mode::kMinMax, 0.0, 1.0));
  // Test value outside the train range extrapolates linearly.
  CsrMatrix test = DenseMatrixOf({{21.0, 3.0}});
  CsrMatrix scaled = scaler.Apply(test);
  EXPECT_DOUBLE_EQ(scaled.RowValues(0)[0], 2.0);   // (21-1)/10
  EXPECT_DOUBLE_EQ(scaled.RowValues(0)[1], 0.5);   // (3-2)/2
}

TEST(FeatureScalerTest, SparseZerosStayZero) {
  CsrBuilder b(3);
  b.AddRow(std::vector<int32_t>{0}, std::vector<double>{4.0});
  b.AddRow(std::vector<int32_t>{2}, std::vector<double>{8.0});
  b.AddRow(std::vector<int32_t>{0, 2}, std::vector<double>{2.0, 6.0});
  CsrMatrix data = ValueOrDie(b.Finish());
  auto scaler = ValueOrDie(FeatureScaler::Fit(data, FeatureScaler::Mode::kMinMax));
  CsrMatrix scaled = scaler.Apply(data);
  // Rows keep (at most) their original support.
  EXPECT_LE(scaled.RowNnz(0), 1);
  EXPECT_LE(scaled.RowNnz(1), 1);
  EXPECT_EQ(scaled.rows(), 3);
}

TEST(FeatureScalerTest, RejectsBadInput) {
  CsrBuilder b(2);
  CsrMatrix empty = ValueOrDie(b.Finish());
  EXPECT_FALSE(FeatureScaler::Fit(empty, FeatureScaler::Mode::kMinMax).ok());
  CsrMatrix data = DenseMatrixOf({{1.0}});
  EXPECT_FALSE(
      FeatureScaler::Fit(data, FeatureScaler::Mode::kMinMax, 1.0, -1.0).ok());
}

}  // namespace
}  // namespace gmpsvm
