#include "data/libsvm_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gmpsvm {
namespace {

TEST(ParseLibsvmTest, BasicParse) {
  const std::string content =
      "1 1:0.5 3:1.25\n"
      "-1 2:2\n"
      "1 1:1 2:1 3:1\n";
  auto file = ValueOrDie(ParseLibsvm(content));
  EXPECT_EQ(file.dataset.size(), 3);
  EXPECT_EQ(file.dataset.dim(), 3);
  EXPECT_EQ(file.dataset.num_classes(), 2);
  // Label values in order of first appearance: 1 then -1.
  EXPECT_EQ(file.label_values, (std::vector<int32_t>{1, -1}));
  EXPECT_EQ(file.dataset.labels(), (std::vector<int32_t>{0, 1, 0}));
  // 1-based indices became 0-based.
  EXPECT_EQ(file.dataset.features().RowIndices(0)[0], 0);
  EXPECT_DOUBLE_EQ(file.dataset.features().RowValues(0)[1], 1.25);
}

TEST(ParseLibsvmTest, SkipsCommentsAndBlankLines) {
  const std::string content =
      "# a comment\n"
      "\n"
      "2 1:1\n"
      "   \n"
      "7 2:1\n";
  auto file = ValueOrDie(ParseLibsvm(content));
  EXPECT_EQ(file.dataset.size(), 2);
  EXPECT_EQ(file.label_values, (std::vector<int32_t>{2, 7}));
}

TEST(ParseLibsvmTest, FloatLabelsRounded) {
  auto file = ValueOrDie(ParseLibsvm("1.0 1:1\n-1.0 2:1\n"));
  EXPECT_EQ(file.label_values, (std::vector<int32_t>{1, -1}));
}

TEST(ParseLibsvmTest, MinDimPadsFeatureSpace) {
  auto file = ValueOrDie(ParseLibsvm("1 1:1\n0 2:1\n", /*min_dim=*/100));
  EXPECT_EQ(file.dataset.dim(), 100);
}

TEST(ParseLibsvmTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseLibsvm("abc 1:1\n0 1:2\n").ok());       // bad label
  EXPECT_FALSE(ParseLibsvm("1 1:1 1:2\n0 1:2\n").ok());     // duplicate index
  EXPECT_FALSE(ParseLibsvm("1 3:1 2:2\n0 1:2\n").ok());     // unsorted
  EXPECT_FALSE(ParseLibsvm("1 0:1\n0 1:2\n").ok());         // 0 index (1-based)
  EXPECT_FALSE(ParseLibsvm("1 1:x\n0 1:2\n").ok());         // bad value
  EXPECT_FALSE(ParseLibsvm("1 1\n0 1:2\n").ok());           // missing colon
}

TEST(ParseLibsvmTest, ScientificNotationValues) {
  auto file = ValueOrDie(ParseLibsvm("1 1:1e-3 2:2.5E2\n0 1:-4e0\n"));
  EXPECT_DOUBLE_EQ(file.dataset.features().RowValues(0)[0], 1e-3);
  EXPECT_DOUBLE_EQ(file.dataset.features().RowValues(0)[1], 250.0);
  EXPECT_DOUBLE_EQ(file.dataset.features().RowValues(1)[0], -4.0);
}

TEST(LibsvmFileRoundTripTest, WriteThenRead) {
  auto original = ValueOrDie(ParseLibsvm(
      "3 1:0.5 4:2\n"
      "5 2:1.5\n"
      "3 1:1 2:2 3:3 4:4\n"
      "9 4:0.25\n"));
  const std::string path = ::testing::TempDir() + "/libsvm_io_test.txt";
  GMP_CHECK_OK(
      WriteLibsvmFile(path, original.dataset, original.label_values));
  auto reread = ValueOrDie(ReadLibsvmFile(path));
  EXPECT_EQ(reread.dataset.size(), original.dataset.size());
  EXPECT_EQ(reread.label_values, original.label_values);
  EXPECT_EQ(reread.dataset.labels(), original.dataset.labels());
  EXPECT_EQ(reread.dataset.features().col_idx(),
            original.dataset.features().col_idx());
  for (size_t v = 0; v < original.dataset.features().values().size(); ++v) {
    EXPECT_DOUBLE_EQ(reread.dataset.features().values()[v],
                     original.dataset.features().values()[v]);
  }
  std::remove(path.c_str());
}

TEST(ReadLibsvmFileTest, MissingFileFails) {
  auto result = ReadLibsvmFile("/nonexistent/file.libsvm");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(ParseLibsvmTest, MulticlassLabelRemap) {
  auto file = ValueOrDie(ParseLibsvm(
      "10 1:1\n20 1:1\n30 1:1\n20 2:1\n10 3:1\n30 1:2\n"));
  EXPECT_EQ(file.dataset.num_classes(), 3);
  EXPECT_EQ(file.label_values, (std::vector<int32_t>{10, 20, 30}));
  EXPECT_EQ(file.dataset.labels(), (std::vector<int32_t>{0, 1, 2, 1, 0, 2}));
}

}  // namespace
}  // namespace gmpsvm
