#include "data/split.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "../test_util.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

TEST(SubsetDatasetTest, SelectsRowsAndLabels) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 10, 4, 2.0, 42));
  std::vector<int32_t> rows = {0, 5, 10, 29};
  auto subset = ValueOrDie(SubsetDataset(data, rows));
  EXPECT_EQ(subset.size(), 4);
  EXPECT_EQ(subset.num_classes(), 3);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(subset.labels()[i], data.labels()[static_cast<size_t>(rows[i])]);
    EXPECT_DOUBLE_EQ(subset.features().RowValues(static_cast<int64_t>(i))[0],
                     data.features().RowValues(rows[i])[0]);
  }
}

TEST(SubsetDatasetTest, RejectsBadRows) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 5, 3, 2.0, 1));
  EXPECT_FALSE(SubsetDataset(data, {}).ok());
  EXPECT_FALSE(SubsetDataset(data, {100}).ok());
  EXPECT_FALSE(SubsetDataset(data, {-1}).ok());
}

TEST(StratifiedSplitTest, PartitionIsCompleteAndDisjoint) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 25, 4, 2.0, 7));
  auto split = ValueOrDie(StratifiedSplit(data, 0.2, 11));
  EXPECT_EQ(split.train.size() + split.test.size(), data.size());
  std::set<int32_t> seen(split.train_rows.begin(), split.train_rows.end());
  for (int32_t r : split.test_rows) {
    EXPECT_TRUE(seen.insert(r).second) << "row " << r << " in both parts";
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), data.size());
}

TEST(StratifiedSplitTest, PreservesClassBalance) {
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 40, 4, 2.0, 13));
  auto split = ValueOrDie(StratifiedSplit(data, 0.25, 3));
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(split.test.ClassRows(c).size(), 10u) << "class " << c;
    EXPECT_EQ(split.train.ClassRows(c).size(), 30u) << "class " << c;
  }
}

TEST(StratifiedSplitTest, DeterministicPerSeed) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 4, 2.0, 17));
  auto a = ValueOrDie(StratifiedSplit(data, 0.3, 5));
  auto b = ValueOrDie(StratifiedSplit(data, 0.3, 5));
  EXPECT_EQ(a.test_rows, b.test_rows);
  auto c = ValueOrDie(StratifiedSplit(data, 0.3, 6));
  EXPECT_NE(a.test_rows, c.test_rows);
}

TEST(StratifiedSplitTest, RejectsBadFraction) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 10, 3, 2.0, 19));
  EXPECT_FALSE(StratifiedSplit(data, 0.0, 1).ok());
  EXPECT_FALSE(StratifiedSplit(data, 1.0, 1).ok());
}

TEST(StratifiedFoldsTest, FoldsPartitionAllRows) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 21, 4, 2.0, 23));
  auto folds = ValueOrDie(StratifiedFolds(data, 5, 29));
  ASSERT_EQ(folds.size(), 5u);
  std::set<int32_t> seen;
  for (const auto& fold : folds) {
    for (int32_t r : fold) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), data.size());
}

TEST(StratifiedFoldsTest, FoldsAreStratified) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 50, 4, 2.0, 31));
  auto folds = ValueOrDie(StratifiedFolds(data, 5, 37));
  for (const auto& fold : folds) {
    int c0 = 0, c1 = 0;
    for (int32_t r : fold) {
      (data.labels()[static_cast<size_t>(r)] == 0 ? c0 : c1)++;
    }
    EXPECT_EQ(c0, 10);
    EXPECT_EQ(c1, 10);
  }
}

TEST(StratifiedFoldsTest, RejectsBadFoldCounts) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 3, 3, 2.0, 41));
  EXPECT_FALSE(StratifiedFolds(data, 1, 1).ok());
  EXPECT_FALSE(StratifiedFolds(data, 100, 1).ok());
}

}  // namespace
}  // namespace gmpsvm
