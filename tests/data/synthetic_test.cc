#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "kernel/kernel_computer.h"

namespace gmpsvm {
namespace {

TEST(PaperDatasetSpecsTest, AllNineDatasetsPresent) {
  auto specs = PaperDatasetSpecs();
  ASSERT_EQ(specs.size(), 9u);
  const std::vector<std::string> expected = {
      "Adult", "RCV1", "Real-sim", "Webdata", "CIFAR-10",
      "Connect-4", "MNIST", "MNIST8M", "News20"};
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].name, expected[i]);
  }
}

TEST(PaperDatasetSpecsTest, ClassCountsMatchTable2) {
  auto specs = PaperDatasetSpecs();
  std::map<std::string, int> classes;
  for (const auto& s : specs) classes[s.name] = s.num_classes;
  EXPECT_EQ(classes["Adult"], 2);
  EXPECT_EQ(classes["RCV1"], 2);
  EXPECT_EQ(classes["Real-sim"], 2);
  EXPECT_EQ(classes["Webdata"], 2);
  EXPECT_EQ(classes["CIFAR-10"], 10);
  EXPECT_EQ(classes["Connect-4"], 3);
  EXPECT_EQ(classes["MNIST"], 10);
  EXPECT_EQ(classes["MNIST8M"], 10);
  EXPECT_EQ(classes["News20"], 20);
}

TEST(PaperDatasetSpecsTest, HyperparametersMatchTable2) {
  auto adult = ValueOrDie(FindPaperSpec("Adult"));
  EXPECT_DOUBLE_EQ(adult.c, 100.0);
  EXPECT_DOUBLE_EQ(adult.gamma, 0.5);
  auto mnist8m = ValueOrDie(FindPaperSpec("MNIST8M"));
  EXPECT_DOUBLE_EQ(mnist8m.c, 1000.0);
  EXPECT_DOUBLE_EQ(mnist8m.gamma, 0.006);
  auto news20 = ValueOrDie(FindPaperSpec("News20"));
  EXPECT_DOUBLE_EQ(news20.c, 4.0);
  EXPECT_DOUBLE_EQ(news20.gamma, 0.5);
}

TEST(PaperDatasetSpecsTest, ScaleMultipliesCardinality) {
  auto full = ValueOrDie(FindPaperSpec("MNIST", 1.0));
  auto half = ValueOrDie(FindPaperSpec("MNIST", 0.5));
  EXPECT_EQ(half.cardinality, full.cardinality / 2);
}

TEST(PaperDatasetSpecsTest, UnknownNameFails) {
  EXPECT_FALSE(FindPaperSpec("NotADataset").ok());
}

TEST(GenerateSyntheticTest, ShapeMatchesSpec) {
  auto spec = ValueOrDie(FindPaperSpec("Connect-4", 0.1));
  auto data = ValueOrDie(GenerateSynthetic(spec));
  EXPECT_EQ(data.size(), spec.cardinality);
  EXPECT_EQ(data.dim(), spec.dim);
  EXPECT_EQ(data.num_classes(), spec.num_classes);
  EXPECT_EQ(data.name(), "Connect-4");
}

TEST(GenerateSyntheticTest, ClassesRoughlyBalanced) {
  auto spec = ValueOrDie(FindPaperSpec("MNIST", 0.2));
  auto data = ValueOrDie(GenerateSynthetic(spec));
  const int64_t expect = data.size() / data.num_classes();
  for (int c = 0; c < data.num_classes(); ++c) {
    const int64_t count = static_cast<int64_t>(data.ClassRows(c).size());
    EXPECT_GE(count, expect - 1);
    EXPECT_LE(count, expect + 1);
  }
}

TEST(GenerateSyntheticTest, DensityApproximatelyRespected) {
  auto spec = ValueOrDie(FindPaperSpec("RCV1", 0.2));
  auto data = ValueOrDie(GenerateSynthetic(spec));
  const double actual_density =
      static_cast<double>(data.features().nnz()) /
      (static_cast<double>(data.size()) * static_cast<double>(data.dim()));
  EXPECT_NEAR(actual_density, spec.density, spec.density * 0.3);
}

TEST(GenerateSyntheticTest, DenseSpecIsDense) {
  auto spec = ValueOrDie(FindPaperSpec("CIFAR-10", 0.05));
  auto data = ValueOrDie(GenerateSynthetic(spec));
  const double actual_density =
      static_cast<double>(data.features().nnz()) /
      (static_cast<double>(data.size()) * static_cast<double>(data.dim()));
  EXPECT_GT(actual_density, 0.95);
}

TEST(GenerateSyntheticTest, Deterministic) {
  auto spec = ValueOrDie(FindPaperSpec("Webdata", 0.1));
  auto a = ValueOrDie(GenerateSynthetic(spec));
  auto b = ValueOrDie(GenerateSynthetic(spec));
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.features().col_idx(), b.features().col_idx());
  EXPECT_EQ(a.features().values(), b.features().values());
}

TEST(GenerateSyntheticTest, TrainAndTestDiffer) {
  auto spec = ValueOrDie(FindPaperSpec("Adult", 0.1));
  auto train = ValueOrDie(GenerateSynthetic(spec));
  auto test = ValueOrDie(GenerateSyntheticTest(spec));
  EXPECT_EQ(test.size(), spec.cardinality / 5);
  // Same feature space, different draws.
  EXPECT_EQ(test.dim(), train.dim());
  EXPECT_NE(train.features().values(), test.features().values());
}

TEST(GenerateSyntheticTest, GammaCalibration) {
  // The rescaling puts gamma * E||x_i - x_j||^2 near 1, so Gaussian kernel
  // values are spread over (0, 1) rather than collapsing to 0 or 1.
  for (const char* name : {"Adult", "RCV1", "CIFAR-10", "MNIST8M"}) {
    auto spec = ValueOrDie(FindPaperSpec(name, 0.05));
    auto data = ValueOrDie(GenerateSynthetic(spec));
    KernelParams params;
    params.gamma = spec.gamma;
    KernelComputer kc(&data.features(), params);
    Rng rng(5);
    double sum = 0.0;
    const int kSamples = 200;
    for (int s = 0; s < kSamples; ++s) {
      const int64_t i = static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(data.size())));
      const int64_t j = static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(data.size())));
      sum += kc.Compute(i, j);
    }
    const double mean_k = sum / kSamples;
    EXPECT_GT(mean_k, 0.05) << name;
    EXPECT_LT(mean_k, 0.95) << name;
  }
}

TEST(GenerateSyntheticTest, EveryRowHasAtLeastOneFeature) {
  auto spec = ValueOrDie(FindPaperSpec("News20", 0.1));
  auto data = ValueOrDie(GenerateSynthetic(spec));
  for (int64_t r = 0; r < data.size(); ++r) {
    EXPECT_GT(data.features().RowNnz(r), 0) << "row " << r;
  }
}

TEST(GenerateSyntheticTest, RejectsBadSpecs) {
  SyntheticSpec bad;
  bad.name = "bad";
  bad.num_classes = 1;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad.num_classes = 2;
  bad.cardinality = 100;
  bad.dim = 10;
  bad.density = 0.0;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
  bad.density = 1.5;
  EXPECT_FALSE(GenerateSynthetic(bad).ok());
}

}  // namespace
}  // namespace gmpsvm
