// Tests for the observability metrics substrate: registry identity,
// concurrent counter updates, exact nearest-rank percentiles, and the
// Prometheus / JSON exporters (label escaping included).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace gmpsvm::obs {
namespace {

TEST(CounterTest, AddIgnoresNonPositiveDeltas) {
  Counter c;
  c.Add(2.5);
  c.Add(0.0);
  c.Add(-7.0);
  c.Increment();
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("gmpsvm_test_total", "concurrent test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_DOUBLE_EQ(c->Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetMaxKeepsHighWaterMark) {
  Gauge g;
  g.SetMax(3.0);
  g.SetMax(1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
  g.Set(0.5);  // plain Set overrides
  EXPECT_DOUBLE_EQ(g.Value(), 0.5);
}

TEST(RegistryTest, SameNameAndLabelsReturnSameSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("gmpsvm_x_total", "x", {{"k", "v"}});
  Counter* b = registry.GetCounter("gmpsvm_x_total", "x", {{"k", "v"}});
  Counter* other = registry.GetCounter("gmpsvm_x_total", "x", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  EXPECT_EQ(registry.NumSeries(), 2u);
}

TEST(HistogramTest, PercentileEdges) {
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Snapshot().Percentile(50.0), 0.0);

  Histogram single({1.0});
  single.Observe(7.0);
  const HistogramSnapshot one = single.Snapshot();
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.Percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(one.Percentile(100.0), 7.0);

  Histogram h(Histogram::LatencyBuckets());
  for (int i = 100; i >= 1; --i) h.Observe(i * 1e-3);  // insertion order free
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_NEAR(snap.Percentile(50.0), 0.050, 1e-12);  // nearest rank, not
  EXPECT_NEAR(snap.Percentile(95.0), 0.095, 1e-12);  // bucket interpolation
  EXPECT_NEAR(snap.Percentile(99.0), 0.099, 1e-12);
  EXPECT_NEAR(snap.Max(), 0.100, 1e-12);
  EXPECT_NEAR(snap.Mean(), 0.0505, 1e-12);
}

TEST(HistogramTest, CumulativeBucketsAndOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);
  h.Observe(1.0);   // inclusive upper bound: falls in le="1"
  h.Observe(1.5);
  h.Observe(100.0);  // +Inf bucket
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);  // <= 1
  EXPECT_EQ(snap.bucket_counts[1], 3u);  // <= 2
  EXPECT_EQ(snap.bucket_counts[2], 3u);  // <= 5
  EXPECT_EQ(snap.bucket_counts[3], 4u);  // +Inf == count
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 103.0);
}

TEST(PrometheusTextTest, RendersTypesValuesAndHistogramSeries) {
  MetricsRegistry registry;
  registry.GetCounter("gmpsvm_requests_total", "requests")->Add(42);
  registry.GetGauge("gmpsvm_depth", "queue depth")->Set(3);
  Histogram* h = registry.GetHistogram("gmpsvm_latency_seconds", "latency",
                                       {0.5, 1.0});
  h->Observe(0.05);
  h->Observe(2.0);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP gmpsvm_requests_total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gmpsvm_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gmpsvm_requests_total 42\n"), std::string::npos)
      << "integer counters must render without a decimal point:\n" << text;
  EXPECT_NE(text.find("# TYPE gmpsvm_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_latency_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("gmpsvm_latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("gmpsvm_latency_seconds_count 2\n"), std::string::npos);
}

TEST(PrometheusTextTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line\nbreak"), "line\\nbreak");

  MetricsRegistry registry;
  registry
      .GetCounter("gmpsvm_labeled_total", "labeled",
                  {{"impl", "LibSVM w/ \"OpenMP\"\n"}})
      ->Increment();
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(
      text.find("gmpsvm_labeled_total{impl=\"LibSVM w/ \\\"OpenMP\\\"\\n\"} 1"),
      std::string::npos)
      << text;
}

TEST(JsonExportTest, ContainsExactPercentilesAndBalancedBraces) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("gmpsvm_latency_seconds", "latency",
                                       Histogram::LatencyBuckets());
  for (int i = 1; i <= 100; ++i) h->Observe(i * 1e-3);
  registry.GetCounter("gmpsvm_requests_total", "requests")->Add(5);

  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"p50\":0.05"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace gmpsvm::obs
