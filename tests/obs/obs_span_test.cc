// Tests for the span layer: the merged device + host Chrome trace export,
// busy-time semantics (phase envelopes excluded), and lane bases for shared
// recorders. Also guards the removal of the old ExecutionTrace shim: the
// public docs must not resurrect the deleted header.

#include "obs/span.h"

#include <fstream>
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "device/executor.h"

namespace gmpsvm {
namespace {

using obs::SpanEvent;
using obs::TraceRecorder;

SpanEvent DeviceSpan(int lane, double start, double end, bool is_phase = false) {
  SpanEvent e;
  e.origin = SpanEvent::Origin::kDevice;
  e.lane = lane;
  e.start_seconds = start;
  e.end_seconds = end;
  e.is_phase = is_phase;
  return e;
}

SpanEvent HostSpanEvent(std::string name, int lane, double start, double end) {
  SpanEvent e;
  e.name = std::move(name);
  e.origin = SpanEvent::Origin::kHost;
  e.lane = lane;
  e.start_seconds = start;
  e.end_seconds = end;
  return e;
}

TEST(TraceRecorderTest, BusyTimeSumsLeafDeviceSpansOnly) {
  TraceRecorder trace;
  trace.RecordSpan(DeviceSpan(0, 0.0, 1.0));
  trace.RecordSpan(DeviceSpan(0, 1.0, 1.5));
  trace.RecordSpan(DeviceSpan(2, 0.0, 0.25));
  // Phase envelopes and host spans must not count as stream busy time.
  trace.RecordSpan(DeviceSpan(0, 0.0, 10.0, /*is_phase=*/true));
  trace.RecordSpan(HostSpanEvent("queue_wait", 0, 0.0, 100.0));

  const std::vector<double> busy = trace.BusyTimePerStream();
  ASSERT_EQ(busy.size(), 3u);
  EXPECT_DOUBLE_EQ(busy[0], 1.5);
  EXPECT_DOUBLE_EQ(busy[1], 0.0);
  EXPECT_DOUBLE_EQ(busy[2], 0.25);
}

TEST(TraceRecorderTest, ChromeJsonMergesStreamAndWorkerRows) {
  TraceRecorder trace;
  trace.RecordSpan(DeviceSpan(0, 0.0, 1e-3));
  trace.RecordSpan(DeviceSpan(2, 0.0, 2e-3));
  trace.RecordSpan(HostSpanEvent("predict batch=4", 1, 0.0, 5e-3));

  const std::string json = trace.ToChromeJson();
  // Both clock domains present, with named rows.
  EXPECT_NE(json.find("\"simulated device (sim time)\""), std::string::npos);
  EXPECT_NE(json.find("\"host (wall time)\""), std::string::npos);
  EXPECT_NE(json.find("\"stream 0\""), std::string::npos);
  EXPECT_NE(json.find("\"stream 2\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"predict batch=4\""), std::string::npos);
  // Device events land in pid 0, host events in pid 1.
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":1"), std::string::npos);

  // Well-formed: starts/ends as one JSON object, brackets balance.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceRecorderTest, UnnamedLeafSpansGetDefaultNames) {
  TraceRecorder trace;
  SpanEvent kernel = DeviceSpan(0, 0.0, 1e-3);
  trace.RecordSpan(kernel);
  SpanEvent transfer = DeviceSpan(0, 1e-3, 2e-3);
  transfer.is_transfer = true;
  trace.RecordSpan(transfer);
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"transfer\""), std::string::npos);
}

TEST(TraceRecorderTest, ExecutorLaneBaseOffsetsStreams) {
  TraceRecorder trace;
  SimExecutor a(ExecutorModel::TeslaP100());
  SimExecutor b(ExecutorModel::TeslaP100());
  a.SetSpanRecorder(&trace, /*lane_base=*/0);
  b.SetSpanRecorder(&trace, /*lane_base=*/16);

  TaskCost cost;
  cost.flops = 1e9;
  a.Charge(kDefaultStream, cost);
  b.Charge(kDefaultStream, cost);

  const std::vector<double> busy = trace.BusyTimePerStream();
  ASSERT_EQ(busy.size(), 17u);
  EXPECT_GT(busy[0], 0.0);
  EXPECT_GT(busy[16], 0.0);
  EXPECT_DOUBLE_EQ(busy[0], busy[16]);  // identical work on identical models
}

// A long-lived executor keeps creating streams; a positive lane width wraps
// them so the trace rows stay inside the executor's assigned band.
TEST(TraceRecorderTest, LaneWidthWrapsStreamsIntoBand) {
  TraceRecorder trace;
  SimExecutor exec(ExecutorModel::TeslaP100());
  exec.SetSpanRecorder(&trace, /*lane_base=*/16, /*lane_width=*/4);

  StreamId last = kDefaultStream;
  for (int i = 0; i < 6; ++i) last = exec.CreateStream(0.25);
  ASSERT_GE(last, 4);  // stream id past the band width

  EXPECT_EQ(exec.SpanLane(kDefaultStream), 16);
  EXPECT_EQ(exec.SpanLane(last), 16 + last % 4);

  TaskCost cost;
  cost.flops = 1e9;
  exec.Charge(last, cost);
  ASSERT_EQ(trace.size(), 1u);
  const SpanEvent& span = trace.events().back();
  EXPECT_GE(span.lane, 16);
  EXPECT_LT(span.lane, 20);
}

// Regression guard for the deleted ExecutionTrace shim (PR 2's deprecation,
// removed in PR 5): the public API docs must describe SetSpanRecorder /
// TraceRecorder only, never the old header or class.
TEST(TraceShimRemovalTest, DocsDoNotMentionTheDeletedShim) {
  for (const char* rel : {"docs/api.md", "docs/observability.md",
                          "docs/cost_model.md", "README.md"}) {
    const std::string path = std::string(GMPSVM_REPO_DIR "/") + rel;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_EQ(text.find("ExecutionTrace"), std::string::npos) << rel;
    EXPECT_EQ(text.find("device/trace.h"), std::string::npos) << rel;
  }
}

}  // namespace
}  // namespace gmpsvm
