#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "baselines/gpusvm_like.h"
#include "baselines/gtsvm_like.h"
#include "baselines/libsvm_ref.h"
#include "baselines/ohd_svm_like.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "metrics/metrics.h"
#include "solver/smo_solver.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.gamma = gamma;
  return p;
}

SimExecutor Gpu() { return SimExecutor(ExecutorModel::TeslaP100()); }

TEST(LibsvmRefTest, ExecutorModels) {
  SimExecutor single = MakeLibsvmExecutor(1);
  SimExecutor omp = MakeLibsvmExecutor(40);
  EXPECT_DOUBLE_EQ(single.model().compute_units, 1.0);
  EXPECT_GT(omp.model().compute_units, single.model().compute_units);
  EXPECT_TRUE(single.model().transfers_are_free);
}

TEST(LibsvmRefTest, TrainsAndPredicts) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 25, 5, 2.5, 42));
  SimExecutor cpu = MakeLibsvmExecutor(1);
  LibsvmRefTrainer trainer(1.0, Gaussian(0.3));
  MpTrainReport report;
  auto model = ValueOrDie(trainer.Train(data, &cpu, &report));
  EXPECT_EQ(model.num_pairs(), 3);
  EXPECT_GT(report.sim_seconds, 0.0);

  auto pred = ValueOrDie(MpSvmPredictor(&model).Predict(
      data.features(), &cpu, LibsvmPredictOptions()));
  const double err = ValueOrDie(ErrorRate(pred.labels, data.labels()));
  EXPECT_LT(err, 0.1);
}

TEST(LibsvmRefTest, OpenMpModelIsFasterThanSingleThread) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 30, 6, 2.0, 7));
  LibsvmRefTrainer trainer(1.0, Gaussian(0.3));
  SimExecutor single = MakeLibsvmExecutor(1);
  SimExecutor omp = MakeLibsvmExecutor(40);
  MpTrainReport r1, r40;
  ValueOrDie(trainer.Train(data, &single, &r1));
  ValueOrDie(trainer.Train(data, &omp, &r40));
  EXPECT_LT(r40.sim_seconds, r1.sim_seconds);
  // OpenMP gives the paper's ~4-10x, not superlinear gains.
  EXPECT_GT(r40.sim_seconds, r1.sim_seconds / 25.0);
}

TEST(GtsvmLikeTest, TrainsMulticlassWithoutProbability) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 25, 5, 2.0, 11));
  GtsvmLikeOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  SimExecutor exec = Gpu();
  MpTrainReport report;
  auto model =
      ValueOrDie(GtsvmLikeTrainer(options).Train(data, &exec, &report));
  EXPECT_EQ(model.num_pairs(), 3);
  EXPECT_GT(report.sim_seconds, 0.0);
  // No sigmoids fitted.
  for (const auto& svm : model.svms) {
    EXPECT_DOUBLE_EQ(svm.sigmoid.a, 0.0);
    EXPECT_DOUBLE_EQ(svm.sigmoid.b, 0.0);
  }
}

TEST(GtsvmLikeTest, SlowerThanGmpOnMulticlass) {
  // The Figure 8 relationship: GMP-SVM beats the GTSVM-like trainer.
  auto data = ValueOrDie(MakeMulticlassBlobs(5, 25, 6, 1.5, 13));
  GtsvmLikeOptions gt;
  gt.c = 1.0;
  gt.kernel = Gaussian(0.3);
  SimExecutor e1 = Gpu();
  MpTrainReport rg;
  ValueOrDie(GtsvmLikeTrainer(gt).Train(data, &e1, &rg));

  MpTrainOptions gmp;
  gmp.c = 1.0;
  gmp.kernel = Gaussian(0.3);
  gmp.batch.working_set.ws_size = 32;
  gmp.batch.working_set.q = 16;
  gmp.shared_cache_bytes = 64ull << 20;
  SimExecutor e2 = Gpu();
  MpTrainReport rm;
  ValueOrDie(GmpSvmTrainer(gmp).Train(data, &e2, &rm));
  EXPECT_LT(rm.sim_seconds, rg.sim_seconds);
}

TEST(OhdSvmLikeTest, BinaryOnly) {
  auto multi = ValueOrDie(MakeMulticlassBlobs(3, 10, 4, 2.0, 17));
  OhdSvmLikeOptions options;
  SimExecutor exec = Gpu();
  EXPECT_FALSE(OhdSvmLikeTrainer(options).Train(multi, &exec, nullptr).ok());
}

TEST(OhdSvmLikeTest, SolvesBinaryProblemCorrectly) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 40, 5, 2.5, 19));
  OhdSvmLikeOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  SimExecutor exec = Gpu();
  SolverStats stats;
  auto solution = ValueOrDie(OhdSvmLikeTrainer(options).Train(data, &exec, &stats));
  EXPECT_GT(stats.iterations, 0);

  // Same objective as the reference solver.
  SimExecutor ref_exec = Gpu();
  KernelComputer kc(&data.features(), Gaussian(0.3));
  BinaryProblem p = data.MakePairProblem(0, 1, 1.0, Gaussian(0.3));
  auto ref = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &ref_exec, kDefaultStream, nullptr));
  EXPECT_NEAR(solution.objective, ref.objective,
              1e-2 * (1.0 + std::abs(ref.objective)));
}

TEST(GpuSvmLikeTest, BinaryOnly) {
  auto multi = ValueOrDie(MakeMulticlassBlobs(3, 10, 4, 2.0, 23));
  GpuSvmLikeOptions options;
  SimExecutor exec = Gpu();
  EXPECT_FALSE(GpuSvmLikeTrainer(options).Train(multi, &exec, nullptr).ok());
}

TEST(GpuSvmLikeTest, MatchesReferenceObjective) {
  auto data = ValueOrDie(MakeMulticlassBlobs(2, 40, 5, 2.0, 29));
  GpuSvmLikeOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.3);
  SimExecutor exec = Gpu();
  SolverStats stats;
  auto solution = ValueOrDie(GpuSvmLikeTrainer(options).Train(data, &exec, &stats));

  SimExecutor ref_exec = Gpu();
  KernelComputer kc(&data.features(), Gaussian(0.3));
  BinaryProblem p = data.MakePairProblem(0, 1, 1.0, Gaussian(0.3));
  auto ref = ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &ref_exec, kDefaultStream, nullptr));
  EXPECT_NEAR(solution.objective, ref.objective,
              2e-2 * (1.0 + std::abs(ref.objective)));
  EXPECT_NEAR(solution.bias, ref.bias, 0.1);
}

TEST(GpuSvmLikeTest, DensePathCostsMoreOnSparseData) {
  // The Figure 10 mechanism: sparse, higher-dimensional data makes the dense
  // representation pay (flops scale with dim, not nnz).
  auto sparse_like = [&]() {
    // Build a sparse 2-class dataset: 200-dim, ~6% density.
    Rng rng(31);
    CsrBuilder b(200);
    std::vector<int32_t> labels;
    for (int i = 0; i < 80; ++i) {
      const int32_t cls = i % 2;
      std::vector<std::pair<int32_t, double>> entries;
      for (int32_t d = 0; d < 200; ++d) {
        if (rng.Bernoulli(0.06)) {
          entries.emplace_back(d, rng.Normal(cls == 0 ? 1.2 : -1.2, 1.0));
        }
      }
      if (entries.empty()) entries.emplace_back(0, 1.0);
      b.AddRowUnsorted(std::move(entries));
      labels.push_back(cls);
    }
    return ValueOrDie(Dataset::Create(ValueOrDie(b.Finish()), labels, 2, "sp"));
  }();

  GpuSvmLikeOptions options;
  options.c = 1.0;
  options.kernel = Gaussian(0.1);
  SimExecutor dense_exec = Gpu();
  ValueOrDie(GpuSvmLikeTrainer(options).Train(sparse_like, &dense_exec, nullptr));

  SimExecutor sparse_exec = Gpu();
  KernelComputer kc(&sparse_like.features(), Gaussian(0.1));
  BinaryProblem p = sparse_like.MakePairProblem(0, 1, 1.0, Gaussian(0.1));
  ValueOrDie(
      SmoSolver(SmoOptions{}).Solve(p, kc, &sparse_exec, kDefaultStream, nullptr));

  EXPECT_GT(dense_exec.counters().flops, sparse_exec.counters().flops);
}

}  // namespace
}  // namespace gmpsvm
