// Checkpoint/resume: exact round-trips through the text format, hostile and
// truncated input never crashing (kInvalidArgument only), and the end-to-end
// interrupt -> resume path producing a byte-identical model.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

namespace fs = std::filesystem;
using ::gmpsvm::testing::MakeMulticlassBlobs;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

MpTrainOptions SmallOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

PairCheckpoint SamplePair() {
  PairCheckpoint pair;
  pair.class_s = 1;
  pair.class_t = 3;
  pair.bias = -1.0 / 3.0;
  pair.sigmoid.a = -std::sqrt(2.0);
  pair.sigmoid.b = 1.25e-7;
  pair.sv_rows = {4, 0, 17};
  pair.sv_coef = {0.1 + 0.2, -2.0 / 7.0, 1e-17};
  return pair;
}

TEST(PairCheckpointTest, RoundTripsExactly) {
  const PairCheckpoint pair = SamplePair();
  const PairCheckpoint parsed =
      ValueOrDie(ParsePairCheckpoint(SerializePairCheckpoint(pair)));
  EXPECT_EQ(parsed.class_s, pair.class_s);
  EXPECT_EQ(parsed.class_t, pair.class_t);
  EXPECT_EQ(parsed.bias, pair.bias);  // bit-exact through %.17g text
  EXPECT_EQ(parsed.sigmoid.a, pair.sigmoid.a);
  EXPECT_EQ(parsed.sigmoid.b, pair.sigmoid.b);
  EXPECT_EQ(parsed.degraded, pair.degraded);
  EXPECT_EQ(parsed.sv_rows, pair.sv_rows);
  EXPECT_EQ(parsed.sv_coef, pair.sv_coef);
}

TEST(PairCheckpointTest, DegradedFlagAndEmptySvsRoundTrip) {
  PairCheckpoint pair;
  pair.class_s = 0;
  pair.class_t = 2;
  pair.degraded = true;
  const PairCheckpoint parsed =
      ValueOrDie(ParsePairCheckpoint(SerializePairCheckpoint(pair)));
  EXPECT_TRUE(parsed.degraded);
  EXPECT_TRUE(parsed.sv_rows.empty());
  EXPECT_TRUE(parsed.sv_coef.empty());
}

TEST(PairCheckpointTest, EveryTruncationFailsCleanlyOrParses) {
  const std::string full = SerializePairCheckpoint(SamplePair());
  int failures = 0;
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = ParsePairCheckpoint(full.substr(0, len));
    if (!result.ok()) {
      // Never a crash, never any other code: corrupt checkpoints are data
      // errors.
      EXPECT_TRUE(result.status().IsInvalidArgument())
          << "len=" << len << ": " << result.status().ToString();
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);  // at the very least, short prefixes must fail
  GMP_CHECK_OK(ParsePairCheckpoint(full).status());
}

TEST(PairCheckpointTest, HostileInputsAreInvalidArgument) {
  const std::vector<std::string> hostile = {
      "",
      "not_a_checkpoint\n",
      "gmpsvm_pair_checkpoint_v1\n",
      "gmpsvm_pair_checkpoint_v1\npair 1 1\nbias 0\nsigmoid 0 0\ndegraded "
      "0\nsvs 0\n",  // s == t
      "gmpsvm_pair_checkpoint_v1\npair -1 2\nbias 0\nsigmoid 0 0\ndegraded "
      "0\nsvs 0\n",  // negative class
      "gmpsvm_pair_checkpoint_v1\npair 0 1\nbias 0\nsigmoid 0 0\ndegraded "
      "7\nsvs 0\n",  // bad flag
      "gmpsvm_pair_checkpoint_v1\npair 0 1\nbias 0\nsigmoid 0 0\ndegraded "
      "0\nsvs 99999999999\n",  // hostile count, no data
      "gmpsvm_pair_checkpoint_v1\npair 0 1\nbias 0\nsigmoid 0 0\ndegraded "
      "0\nsvs 1\n5;0.5\n",  // bad separator
      "gmpsvm_pair_checkpoint_v1\npair 0 1\nbias 0\nsigmoid 0 0\ndegraded "
      "0\nsvs 1\n-5:0.5\n",  // negative row
      "gmpsvm_pair_checkpoint_v1\npair 0 1\nbias x\nsigmoid 0 0\ndegraded "
      "0\nsvs 0\n",  // non-numeric
  };
  for (const auto& text : hostile) {
    auto result = ParsePairCheckpoint(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << text << " -> " << result.status().ToString();
  }
}

TEST(CheckpointManifestTest, RoundTripsExactly) {
  CheckpointManifest manifest;
  manifest.fingerprint = 0xDEADBEEFCAFEF00Dull;
  manifest.num_classes = 4;
  manifest.completed = {{0, 1}, {2, 3}, {0, 3}};
  const CheckpointManifest parsed = ValueOrDie(
      ParseCheckpointManifest(SerializeCheckpointManifest(manifest)));
  EXPECT_EQ(parsed.fingerprint, manifest.fingerprint);
  EXPECT_EQ(parsed.num_classes, manifest.num_classes);
  EXPECT_EQ(parsed.completed, manifest.completed);
}

TEST(CheckpointManifestTest, EveryTruncationFailsCleanlyOrParses) {
  CheckpointManifest manifest;
  manifest.fingerprint = 1234567890123456789ull;
  manifest.num_classes = 3;
  manifest.completed = {{0, 1}, {0, 2}, {1, 2}};
  const std::string full = SerializeCheckpointManifest(manifest);
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = ParseCheckpointManifest(full.substr(0, len));
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument())
          << "len=" << len << ": " << result.status().ToString();
    }
  }
}

TEST(CheckpointManifestTest, HostileInputsAreInvalidArgument) {
  const std::vector<std::string> hostile = {
      "",
      "gmpsvm_checkpoint_v1\n",
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 1\ncompleted 0\n",
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 3\ncompleted "
      "99999999999\n",
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 3\ncompleted 1\n0 "
      "5\n",  // pair out of range
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 3\ncompleted 1\n2 "
      "2\n",  // s == t
      "gmpsvm_model_v1\nfingerprint 1\nnum_classes 3\ncompleted 0\n",
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 3\ncompleted 2\n"
      "0 1\n0 1\n",  // duplicate completed pair
      "gmpsvm_checkpoint_v1\nfingerprint 1\nnum_classes 3\ncompleted 3\n"
      "0 1\n0 2\n0 1\n",  // duplicate after a distinct pair
      "gmpsvm_checkpoint_v1\nfingerprint xyz\nnum_classes 3\ncompleted 0\n",
      "gmpsvm_checkpoint_v1\nchecksum 1\nnum_classes 3\ncompleted 0\n",
  };
  for (const auto& text : hostile) {
    auto result = ParseCheckpointManifest(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << text << " -> " << result.status().ToString();
  }
}

TEST(CheckpointResumeTest, InterruptThenResumeIsByteIdentical) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 18, 5, 2.5, 42));
  MpTrainOptions options = SmallOptions();

  SimExecutor clean_gpu(ExecutorModel::TeslaP100());
  auto clean =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &clean_gpu, nullptr));

  const std::string dir = FreshDir("ckpt_interrupt");
  options.checkpoint.dir = dir;

  // Simulated kill after 2 completed pairs.
  fault::FaultPlan plan;
  plan.interrupt_after_pairs = 2;
  fault::FaultInjector injector(plan);
  SimExecutor gpu(ExecutorModel::TeslaP100());
  gpu.SetFaultInjector(&injector);
  auto interrupted = GmpSvmTrainer(options).Train(data, &gpu, nullptr);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_TRUE(interrupted.status().IsUnavailable())
      << interrupted.status().ToString();

  // The manifest survived the kill and lists the completed pairs.
  auto manifest = ValueOrDie(LoadCheckpointManifest(
      (fs::path(dir) / kCheckpointManifestFileName).string()));
  ASSERT_GE(manifest.completed.size(), 2u);
  for (const auto& [s, t] : manifest.completed) {
    EXPECT_TRUE(fs::exists(fs::path(dir) / PairCheckpointFileName(s, t)));
  }

  // Resume on a fresh executor: only the remainder is trained, and the model
  // comes out byte-identical to the uninterrupted run.
  options.checkpoint.resume = true;
  SimExecutor resume_gpu(ExecutorModel::TeslaP100());
  MpTrainReport report;
  auto resumed =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &resume_gpu, &report));
  EXPECT_GE(report.pairs_resumed, 2);
  EXPECT_EQ(SerializeModel(resumed), SerializeModel(clean));
}

TEST(CheckpointResumeTest, ResumeRetrainsDegradedPairs) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 14, 4, 3.0, 9));
  MpTrainOptions options = SmallOptions();

  SimExecutor clean_gpu(ExecutorModel::TeslaP100());
  auto clean =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &clean_gpu, nullptr));

  // First run: every pair degrades (all kernel-row batches fail), but the
  // checkpoint records that so a later healthy run can repair the model.
  const std::string dir = FreshDir("ckpt_degraded");
  options.checkpoint.dir = dir;
  options.pair_failure_policy = PairFailurePolicy::kSkipDegraded;
  fault::FaultPlan plan;
  plan.kernel_row_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  SimExecutor gpu(ExecutorModel::TeslaP100());
  gpu.SetFaultInjector(&injector);
  MpTrainReport degraded_report;
  ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, &degraded_report));
  EXPECT_EQ(degraded_report.pairs_degraded, 3);

  // Healthy resume: degraded pairs are not trusted, they are retrained.
  options.checkpoint.resume = true;
  SimExecutor resume_gpu(ExecutorModel::TeslaP100());
  MpTrainReport report;
  auto repaired =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &resume_gpu, &report));
  EXPECT_EQ(report.pairs_resumed, 0);  // nothing loadable, all degraded
  EXPECT_EQ(report.pairs_degraded, 0);
  EXPECT_EQ(SerializeModel(repaired), SerializeModel(clean));
}

TEST(CheckpointResumeTest, FingerprintMismatchIsRejected) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 14, 4, 3.0, 17));
  MpTrainOptions options = SmallOptions();
  const std::string dir = FreshDir("ckpt_fingerprint");
  options.checkpoint.dir = dir;
  SimExecutor gpu(ExecutorModel::TeslaP100());
  ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, nullptr));

  // Same checkpoints, different configuration: the resume must refuse.
  options.checkpoint.resume = true;
  options.kernel.gamma *= 2.0;
  SimExecutor gpu2(ExecutorModel::TeslaP100());
  auto result = GmpSvmTrainer(options).Train(data, &gpu2, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();

  // Different data, same options: also refused.
  options.kernel.gamma /= 2.0;
  auto other = ValueOrDie(MakeMulticlassBlobs(3, 14, 4, 3.0, 18));
  SimExecutor gpu3(ExecutorModel::TeslaP100());
  auto result2 = GmpSvmTrainer(options).Train(other, &gpu3, nullptr);
  ASSERT_FALSE(result2.ok());
  EXPECT_TRUE(result2.status().IsInvalidArgument())
      << result2.status().ToString();
}

TEST(CheckpointResumeTest, MissingManifestStartsFresh) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 14, 4, 3.0, 23));
  MpTrainOptions options = SmallOptions();
  options.checkpoint.dir = FreshDir("ckpt_fresh");
  options.checkpoint.resume = true;  // nothing there yet
  SimExecutor gpu(ExecutorModel::TeslaP100());
  MpTrainReport report;
  ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, &report));
  EXPECT_EQ(report.pairs_resumed, 0);
}

TEST(CheckpointResumeTest, ResumeWithoutDirIsRejected) {
  MpTrainOptions options = SmallOptions();
  options.checkpoint.resume = true;  // dir empty
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST(CheckpointFileTest, LoadFromMissingPathIsIoError) {
  EXPECT_TRUE(LoadPairCheckpoint("/nonexistent/p.ckpt").status().IsIoError());
  EXPECT_TRUE(
      LoadCheckpointManifest("/nonexistent/m.ckpt").status().IsIoError());
}

}  // namespace
}  // namespace gmpsvm
