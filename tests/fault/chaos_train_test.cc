// Chaos training: a fault plan injecting dozens of transient device faults
// must not change the trained model by a single byte — recovery is
// recompute-based, so retried work writes the same values, and only the
// simulated clock (not the math) observes the chaos.

#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpTrainOptions GmpOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

// Chaos(seed) with every training-path site turned up, so a small dataset
// still draws a large number of injections.
fault::FaultPlan LoudChaos(uint64_t seed) {
  fault::FaultPlan plan = fault::FaultPlan::Chaos(seed);
  plan.alloc_fail_prob = 0.3;
  plan.kernel_row_fail_prob = 0.35;
  plan.evict_poison_prob = 0.5;
  plan.latency_spike_prob = 0.3;
  return plan;
}

TEST(ChaosTrainTest, GmpTrainerModelIsByteIdenticalUnderManyFaults) {
  auto data = ValueOrDie(MakeMulticlassBlobs(4, 25, 6, 2.5, 42));
  const MpTrainOptions options = GmpOptions();

  SimExecutor clean_gpu(ExecutorModel::TeslaP100());
  auto clean =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &clean_gpu, nullptr));

  SimExecutor chaos_gpu(ExecutorModel::TeslaP100());
  fault::FaultInjector injector(LoudChaos(7));
  chaos_gpu.SetFaultInjector(&injector);
  MpTrainReport report;
  auto chaotic =
      ValueOrDie(GmpSvmTrainer(options).Train(data, &chaos_gpu, &report));

  EXPECT_GE(injector.total_injected(), 50)
      << "chaos plan too quiet to prove anything";
  EXPECT_EQ(SerializeModel(chaotic), SerializeModel(clean));
  // The report exposes the recovery work that made this possible.
  EXPECT_GT(report.solver.kernel_row_retries + report.solver.alloc_retries +
                report.solver.rows_poisoned + report.pair_retries,
            0);
  EXPECT_EQ(report.pairs_degraded, 0);
}

TEST(ChaosTrainTest, SequentialTrainerModelIsByteIdenticalUnderFaults) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 20, 5, 2.5, 11));
  MpTrainOptions options;
  options.kernel.gamma = 0.4;

  SimExecutor clean_gpu(ExecutorModel::TeslaP100());
  auto clean =
      ValueOrDie(SequentialMpTrainer(options).Train(data, &clean_gpu, nullptr));

  SimExecutor chaos_gpu(ExecutorModel::TeslaP100());
  fault::FaultInjector injector(LoudChaos(13));
  chaos_gpu.SetFaultInjector(&injector);
  auto chaotic = ValueOrDie(
      SequentialMpTrainer(options).Train(data, &chaos_gpu, nullptr));

  EXPECT_GT(injector.total_injected(), 0);
  EXPECT_EQ(SerializeModel(chaotic), SerializeModel(clean));
}

TEST(ChaosTrainTest, SameChaosSeedSameFaultsSameModel) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 18, 5, 2.5, 21));
  const MpTrainOptions options = GmpOptions();

  std::string first_model;
  int64_t first_faults = 0;
  for (int run = 0; run < 2; ++run) {
    SimExecutor gpu(ExecutorModel::TeslaP100());
    fault::FaultInjector injector(LoudChaos(77));
    gpu.SetFaultInjector(&injector);
    auto model = ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, nullptr));
    if (run == 0) {
      first_model = SerializeModel(model);
      first_faults = injector.total_injected();
    } else {
      EXPECT_EQ(SerializeModel(model), first_model);
      EXPECT_EQ(injector.total_injected(), first_faults);
    }
  }
}

TEST(ChaosTrainTest, FailFastAbortsWhenRetriesExhaust) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 12, 4, 3.0, 5));
  MpTrainOptions options = GmpOptions();
  fault::FaultPlan plan;
  plan.kernel_row_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;  // never forces a success
  fault::FaultInjector injector(plan);
  SimExecutor gpu(ExecutorModel::TeslaP100());
  gpu.SetFaultInjector(&injector);

  auto result = GmpSvmTrainer(options).Train(data, &gpu, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
}

TEST(ChaosTrainTest, SkipDegradedCompletesWithNeutralPairs) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 12, 4, 3.0, 5));
  MpTrainOptions options = GmpOptions();
  options.pair_failure_policy = PairFailurePolicy::kSkipDegraded;
  fault::FaultPlan plan;
  plan.kernel_row_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  SimExecutor gpu(ExecutorModel::TeslaP100());
  gpu.SetFaultInjector(&injector);

  MpTrainReport report;
  auto model = ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, &report));
  EXPECT_EQ(report.pairs_degraded, 3);
  EXPECT_GT(report.pair_retries, 0);
  for (const auto& svm : model.svms) {
    EXPECT_EQ(svm.num_svs(), 0);
    EXPECT_EQ(svm.bias, 0.0);
    // Neutral sigmoid: every probability is exactly 1/2.
    EXPECT_EQ(svm.sigmoid.a, 0.0);
    EXPECT_EQ(svm.sigmoid.b, 0.0);
  }
}

TEST(ChaosTrainTest, PublishesRecoveryCountersToMetrics) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 15, 5, 2.5, 31));
  const MpTrainOptions options = GmpOptions();
  SimExecutor gpu(ExecutorModel::TeslaP100());
  obs::MetricsRegistry metrics;
  fault::FaultInjector injector(LoudChaos(3), &metrics);
  gpu.SetFaultInjector(&injector);

  MpTrainReport report;
  ValueOrDie(GmpSvmTrainer(options).Train(data, &gpu, &report));
  report.PublishTo(&metrics);

  const std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("gmpsvm_fault_injected_total{site=\"kernel_row_batch\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gmpsvm_train_pair_retries_total"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_train_pairs_degraded_total"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_train_rows_poisoned_total"), std::string::npos);
}

}  // namespace
}  // namespace gmpsvm
