// Serving under chaos: every accepted request still ends with a terminal
// Result, transient faults drive the degraded-mode batch cap down and
// recovery brings it back, fault counters land in the shared metrics
// registry, and a failed hot-swap (validator or injected) never unseats the
// serving model.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "../test_util.h"
#include "core/mp_trainer.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "serve/server.h"

namespace gmpsvm {
namespace {

using std::chrono::milliseconds;
using ::gmpsvm::testing::MakeMulticlassBlobs;

MpSvmModel TrainSmallModel(uint64_t seed, int k = 3) {
  auto data = ValueOrDie(MakeMulticlassBlobs(k, 20, 6, 2.5, seed));
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 16;
  options.batch.working_set.q = 8;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
}

TEST(ChaosServeTest, AcceptedRequestsAlwaysGetTerminalResults) {
  // Allocations fail hard for a while, then the injector's budget runs out
  // and the device heals — a "bad minute" scenario.
  fault::FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_faults_per_site = 6;
  fault::FaultInjector injector(plan);

  ModelRegistry registry;
  ServeOptions options;
  ValueOrDie(registry.Register(options.model_name, TrainSmallModel(42)));
  options.num_workers = 1;
  options.batching.max_batch_size = 4;
  options.batching.max_queue_delay = milliseconds(5);
  options.fault = &injector;
  options.max_request_retries = 5;
  options.degraded_after_faults = 1;
  options.recover_after_successes = 2;

  auto test = ValueOrDie(MakeMulticlassBlobs(3, 25, 6, 2.5, 43));
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  server.Pause();  // build a backlog so batches actually form
  std::vector<std::future<Result<PredictResponse>>> futures;
  constexpr int kRequests = 40;
  for (int i = 0; i < kRequests; ++i) {
    const int64_t row = i % test.size();
    futures.push_back(ValueOrDie(server.Submit(
        test.features().RowIndices(row), test.features().RowValues(row))));
  }
  server.Resume();

  int ok = 0, failed = 0;
  for (auto& f : futures) {
    auto response = f.get();  // terminal Result, never hangs
    response.ok() ? ++ok : ++failed;
    if (!response.ok()) {
      EXPECT_TRUE(response.status().IsUnavailable())
          << response.status().ToString();
    }
  }
  EXPECT_EQ(ok + failed, kRequests);
  EXPECT_GT(injector.total_injected(), 0);
  // Once the injector's budget is spent everything succeeds, so the bulk of
  // the backlog must have been answered OK.
  EXPECT_GT(ok, kRequests / 2);

  const ServeStatsSnapshot snap = server.stats().Snapshot();
  EXPECT_EQ(snap.completed + snap.failed, static_cast<uint64_t>(kRequests));
  EXPECT_GT(snap.faults, 0u);
  GMP_CHECK_OK(server.Shutdown());
}

TEST(ChaosServeTest, DegradedModeShrinksThenRecovers) {
  fault::FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_faults_per_site = 4;
  fault::FaultInjector injector(plan);

  ModelRegistry registry;
  ServeOptions options;
  ValueOrDie(registry.Register(options.model_name, TrainSmallModel(7)));
  options.num_workers = 1;
  options.batching.max_batch_size = 8;
  options.batching.max_queue_delay = milliseconds(5);
  options.fault = &injector;
  options.max_request_retries = 5;
  options.degraded_after_faults = 1;  // degrade on the first faulted batch
  options.recover_after_successes = 2;

  auto test = ValueOrDie(MakeMulticlassBlobs(3, 30, 6, 2.5, 8));
  InferenceServer server(&registry, options);
  EXPECT_EQ(server.effective_max_batch(), 8);
  GMP_CHECK_OK(server.Start());

  server.Pause();
  std::vector<std::future<Result<PredictResponse>>> futures;
  for (int64_t i = 0; i < 64; ++i) {
    const int64_t row = i % test.size();
    futures.push_back(ValueOrDie(server.Submit(
        test.features().RowIndices(row), test.features().RowValues(row))));
  }
  server.Resume();
  for (auto& f : futures) f.wait();

  const ServeStatsSnapshot snap = server.stats().Snapshot();
  EXPECT_GT(snap.faults, 0u);
  EXPECT_GT(snap.degraded_entries, 0u);  // the cap was halved at least once
  // The fault budget is spent early; the long fault-free tail must have
  // doubled the cap back to the configured maximum.
  EXPECT_EQ(server.effective_max_batch(), 8);
  GMP_CHECK_OK(server.Shutdown());
}

TEST(ChaosServeTest, FaultCountersLandInSharedRegistry) {
  obs::MetricsRegistry metrics;
  fault::FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_faults_per_site = 3;
  fault::FaultInjector injector(plan, &metrics);

  ModelRegistry registry;
  ServeOptions options;
  ValueOrDie(registry.Register(options.model_name, TrainSmallModel(9)));
  options.num_workers = 1;
  options.fault = &injector;
  options.max_request_retries = 3;
  options.metrics = &metrics;

  auto test = ValueOrDie(MakeMulticlassBlobs(3, 20, 6, 2.5, 10));
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());
  for (int64_t i = 0; i < 12; ++i) {
    auto response = server.Predict(test.features().RowIndices(i),
                                   test.features().RowValues(i));
    (void)response;  // terminal either way
  }
  GMP_CHECK_OK(server.Shutdown());

  const std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("gmpsvm_serve_faults_total"), std::string::npos) << text;
  EXPECT_NE(text.find("gmpsvm_serve_retries_total"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_serve_degraded_entries_total"),
            std::string::npos);
  EXPECT_NE(text.find("gmpsvm_serve_effective_max_batch"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_fault_injected_total{site=\"device_alloc\"}"),
            std::string::npos);
}

TEST(ChaosServeTest, ValidatorRejectionRollsBackSwap) {
  ModelRegistry registry;
  ValueOrDie(registry.Register("m", TrainSmallModel(1)));
  registry.SetValidator([](const MpSvmModel& model) {
    return model.num_classes >= 4
               ? Status::OK()
               : Status::InvalidArgument("needs at least 4 classes");
  });

  auto rejected = registry.Register("m", TrainSmallModel(2, /*k=*/3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  // Old version keeps serving.
  auto handle = ValueOrDie(registry.Get("m"));
  EXPECT_EQ(handle.version, 1);
  EXPECT_EQ(handle.model->num_classes, 3);

  // A model that passes the gate commits with the next version number.
  ValueOrDie(registry.Register("m", TrainSmallModel(3, /*k=*/4)));
  EXPECT_EQ(ValueOrDie(registry.Get("m")).version, 2);
}

TEST(ChaosServeTest, InjectedSwapFailureRollsBackSwap) {
  fault::FaultPlan plan;
  plan.swap_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);

  ModelRegistry registry;
  registry.SetFaultInjector(&injector);
  // First registration is not a swap: no site to inject.
  ValueOrDie(registry.Register("m", TrainSmallModel(1)));

  auto failed = registry.Register("m", TrainSmallModel(2));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable()) << failed.status().ToString();
  EXPECT_EQ(injector.injected(fault::Site::kModelSwap), 1);
  EXPECT_EQ(ValueOrDie(registry.Get("m")).version, 1);

  // Detach the injector: the swap goes through and versions stay monotonic.
  registry.SetFaultInjector(nullptr);
  EXPECT_EQ(ValueOrDie(registry.Register("m", TrainSmallModel(2))), 2);
}

TEST(ChaosServeTest, FailedSwapKeepsOldModelServing) {
  fault::FaultPlan plan;
  plan.swap_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);

  ModelRegistry registry;
  ServeOptions options;
  ValueOrDie(registry.Register(options.model_name, TrainSmallModel(5)));
  registry.SetFaultInjector(&injector);
  options.num_workers = 1;

  auto test = ValueOrDie(MakeMulticlassBlobs(3, 10, 6, 2.5, 6));
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  auto before = ValueOrDie(server.Predict(test.features().RowIndices(0),
                                          test.features().RowValues(0)));
  EXPECT_EQ(before.model_version, 1);
  EXPECT_FALSE(registry.Register(options.model_name, TrainSmallModel(6)).ok());
  auto after = ValueOrDie(server.Predict(test.features().RowIndices(1),
                                         test.features().RowValues(1)));
  EXPECT_EQ(after.model_version, 1);  // still the pre-swap snapshot
  GMP_CHECK_OK(server.Shutdown());
}

}  // namespace
}  // namespace gmpsvm
