// FaultPlan / FaultInjector / retry policy unit tests: determinism, the two
// chaos bounds (consecutive cap, per-site total cap), per-site stream
// independence, metrics wiring, and validation.

#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "fault/retry.h"
#include "obs/metrics.h"

namespace gmpsvm::fault {
namespace {

std::vector<bool> Draw(FaultInjector& injector, Site site, int n) {
  std::vector<bool> decisions;
  decisions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) decisions.push_back(injector.ShouldInject(site));
  return decisions;
}

TEST(FaultPlanTest, ChaosValidatesAndBoundsConsecutiveFaults) {
  const FaultPlan plan = FaultPlan::Chaos(7);
  GMP_CHECK_OK(plan.Validate());
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_GT(plan.max_consecutive_per_site, 0);
  EXPECT_GT(plan.kernel_row_fail_prob, 0.0);
  EXPECT_EQ(plan.swap_fail_prob, 0.0);  // swaps are opt-in chaos
}

TEST(FaultPlanTest, ValidateRejectsBadFields) {
  FaultPlan plan;
  plan.alloc_fail_prob = 1.5;
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());
  plan = FaultPlan();
  plan.transfer_fail_prob = -0.1;
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());
  plan = FaultPlan();
  plan.latency_spike_seconds = -1.0;
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());
  plan = FaultPlan();
  plan.interrupt_after_pairs = -2;
  EXPECT_TRUE(plan.Validate().IsInvalidArgument());
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const FaultPlan plan = FaultPlan::Chaos(123);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int s = 0; s < kNumFaultSites; ++s) {
    const Site site = static_cast<Site>(s);
    EXPECT_EQ(Draw(a, site, 200), Draw(b, site, 200)) << SiteName(site);
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

TEST(FaultInjectorTest, DifferentSeedsDifferentDecisions) {
  FaultInjector a(FaultPlan::Chaos(1));
  FaultInjector b(FaultPlan::Chaos(2));
  EXPECT_NE(Draw(a, Site::kBufferEvict, 300),
            Draw(b, Site::kBufferEvict, 300));
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  const FaultPlan plan = FaultPlan::Chaos(99);
  FaultInjector pure(plan);
  FaultInjector interleaved(plan);
  // Consuming decisions at other sites must not perturb kDeviceAlloc's
  // sequence.
  std::vector<bool> expected = Draw(pure, Site::kDeviceAlloc, 100);
  std::vector<bool> got;
  for (int i = 0; i < 100; ++i) {
    interleaved.ShouldInject(Site::kDeviceSubmit);
    interleaved.ShouldInject(Site::kBufferEvict);
    got.push_back(interleaved.ShouldInject(Site::kDeviceAlloc));
    interleaved.ShouldInject(Site::kKernelRowBatch);
  }
  EXPECT_EQ(got, expected);
}

TEST(FaultInjectorTest, ConsecutiveCapForcesASuccess) {
  FaultPlan plan;
  plan.alloc_fail_prob = 1.0;  // would fail forever without the cap
  plan.max_consecutive_per_site = 3;
  FaultInjector injector(plan);
  const std::vector<bool> decisions = Draw(injector, Site::kDeviceAlloc, 8);
  const std::vector<bool> expected = {true, true, true, false,
                                      true, true, true, false};
  EXPECT_EQ(decisions, expected);
}

TEST(FaultInjectorTest, MaxFaultsPerSiteHeals) {
  FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;  // unbounded streaks
  plan.max_faults_per_site = 5;
  FaultInjector injector(plan);
  int injected = 0;
  for (int i = 0; i < 50; ++i) {
    if (injector.ShouldInject(Site::kDeviceAlloc)) ++injected;
  }
  EXPECT_EQ(injected, 5);
  EXPECT_EQ(injector.injected(Site::kDeviceAlloc), 5);
  EXPECT_FALSE(injector.ShouldInject(Site::kDeviceAlloc));  // healed for good
}

TEST(FaultInjectorTest, ZeroProbabilitySiteNeverInjects) {
  FaultPlan plan;  // all probabilities zero
  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    for (int s = 0; s < kNumFaultSites; ++s) {
      EXPECT_FALSE(injector.ShouldInject(static_cast<Site>(s)));
    }
  }
  EXPECT_EQ(injector.total_injected(), 0);
}

TEST(FaultInjectorTest, LatencySpikeReturnsConfiguredSeconds) {
  FaultPlan plan;
  plan.latency_spike_prob = 1.0;
  plan.latency_spike_seconds = 0.25;
  plan.max_consecutive_per_site = 0;
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.MaybeLatencySpike(), 0.25);
  plan.latency_spike_prob = 0.0;
  FaultInjector quiet(plan);
  EXPECT_DOUBLE_EQ(quiet.MaybeLatencySpike(), 0.0);
}

TEST(FaultInjectorTest, InterruptFiresAfterConfiguredPairs) {
  FaultPlan plan;
  plan.interrupt_after_pairs = 3;
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.ShouldInterruptTraining(0));
  EXPECT_FALSE(injector.ShouldInterruptTraining(2));
  EXPECT_TRUE(injector.ShouldInterruptTraining(3));
  EXPECT_EQ(injector.injected(Site::kTrainInterrupt), 1);

  FaultInjector off((FaultPlan()));
  EXPECT_FALSE(off.ShouldInterruptTraining(100));
}

TEST(FaultInjectorTest, MetricsSeriesExistEagerlyAndCountInjections) {
  obs::MetricsRegistry metrics;
  FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  FaultInjector injector(plan, &metrics);

  const std::string before = metrics.ToPrometheusText();
  // Every site's series exists at zero before any injection.
  for (int s = 0; s < kNumFaultSites; ++s) {
    const std::string series =
        std::string("gmpsvm_fault_injected_total{site=\"") +
        SiteName(static_cast<Site>(s)) + "\"} 0";
    EXPECT_NE(before.find(series), std::string::npos) << series << "\n"
                                                      << before;
  }

  for (int i = 0; i < 4; ++i) injector.ShouldInject(Site::kDeviceAlloc);
  const std::string after = metrics.ToPrometheusText();
  EXPECT_NE(
      after.find("gmpsvm_fault_injected_total{site=\"device_alloc\"} 4"),
      std::string::npos)
      << after;
}

TEST(RetryPolicyTest, ValidateRejectsBadFields) {
  RetryPolicy policy;
  GMP_CHECK_OK(policy.Validate());
  policy.max_attempts = 0;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy();
  policy.backoff_multiplier = 0.5;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy();
  policy.max_backoff_seconds = policy.initial_backoff_seconds / 2;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
  policy = RetryPolicy();
  policy.jitter_fraction = 1.0;
  EXPECT_TRUE(policy.Validate().IsInvalidArgument());
}

TEST(RetryPolicyTest, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1e-3;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.25;
  policy.jitter_fraction = 0.2;

  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double a = BackoffSeconds(policy, attempt, 42);
    const double b = BackoffSeconds(policy, attempt, 42);
    EXPECT_EQ(a, b);  // pure function of (policy, attempt, seed)
    EXPECT_GE(a, 0.0);
    // Jitter is bounded: within +-20% of the capped exponential base.
    EXPECT_LE(a, policy.max_backoff_seconds * 1.2);
  }
  // Different seeds jitter differently.
  EXPECT_NE(BackoffSeconds(policy, 3, 1), BackoffSeconds(policy, 3, 2));
  // The base grows with the attempt number (compare without jitter).
  policy.jitter_fraction = 0.0;
  EXPECT_LT(BackoffSeconds(policy, 1, 0), BackoffSeconds(policy, 4, 0));
  // ...and saturates at the cap.
  EXPECT_DOUBLE_EQ(BackoffSeconds(policy, 40, 0), policy.max_backoff_seconds);
}

TEST(RetryPolicyTest, IsTransientFaultMatchesUnavailableOnly) {
  EXPECT_TRUE(IsTransientFault(Status::Unavailable("flaky")));
  EXPECT_FALSE(IsTransientFault(Status::OK()));
  EXPECT_FALSE(IsTransientFault(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsTransientFault(Status::IoError("disk")));
}

}  // namespace
}  // namespace gmpsvm::fault
