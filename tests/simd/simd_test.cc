#include "simd/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "kernel/kernel_function.h"
#include "prob/pairwise_coupling.h"
#include "simd/simd_math.h"
#include "sparse/csr_matrix.h"
#include "sparse/ops.h"

namespace gmpsvm {
namespace {

using simd::SimdOps;
using simd::SimdTier;

// Every tier this CPU can execute; the scalar reference is always first so
// the loop body can diff each vector tier against it.
std::vector<SimdTier> SupportedTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (simd::TierSupported(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  if (simd::TierSupported(SimdTier::kNeon)) tiers.push_back(SimdTier::kNeon);
  return tiers;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Randomized lengths deliberately cover 0, 1, sub-lane sizes, odd tails and
// multi-block spans so every tier exercises its main loop and tail handling.
const int64_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63};

TEST(SimdDispatchTest, TierFromStringRoundTrips) {
  for (const char* name : {"auto", "scalar", "avx2", "neon"}) {
    Result<SimdTier> tier = simd::TierFromString(name);
    ASSERT_TRUE(tier.ok()) << name;
    EXPECT_STREQ(simd::TierName(tier.value()), name);
  }
  EXPECT_FALSE(simd::TierFromString("sse2").ok());
  EXPECT_FALSE(simd::TierFromString("").ok());
}

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndDetectedTierRuns) {
  EXPECT_TRUE(simd::TierSupported(SimdTier::kScalar));
  EXPECT_TRUE(simd::TierSupported(SimdTier::kAuto));
  const SimdTier best = simd::DetectBestTier();
  EXPECT_NE(best, SimdTier::kAuto);
  EXPECT_TRUE(simd::TierSupported(best));
  const SimdOps& ops = simd::OpsFor(best);
  EXPECT_GE(ops.lane_width, 1);
  const double a[3] = {1.0, 2.0, 3.0};
  EXPECT_EQ(ops.dot(a, a, 3), 14.0);
}

TEST(SimdDispatchTest, SetActiveTierValidatesAndOverrides) {
  ASSERT_TRUE(simd::SetActiveTier(SimdTier::kScalar).ok());
  EXPECT_EQ(simd::ActiveTier(), SimdTier::kScalar);
  EXPECT_STREQ(simd::OpsFor(SimdTier::kAuto).name, "scalar");
  ASSERT_TRUE(simd::SetActiveTier(SimdTier::kAuto).ok());
  EXPECT_EQ(simd::ActiveTier(), simd::DetectBestTier());
  // At least one of the vector tiers is impossible on any one CPU.
  const SimdTier impossible = simd::TierSupported(SimdTier::kAvx2)
                                  ? SimdTier::kNeon
                                  : SimdTier::kAvx2;
  if (!simd::TierSupported(impossible)) {
    EXPECT_FALSE(simd::SetActiveTier(impossible).ok());
    EXPECT_EQ(simd::ActiveTier(), simd::DetectBestTier());
  }
}

TEST(SimdDispatchTest, DescribeEnvironmentNamesActiveTier) {
  const std::string env = simd::DescribeEnvironment();
  EXPECT_NE(env.find("isa="), std::string::npos);
  EXPECT_NE(env.find("active="), std::string::npos);
  EXPECT_NE(env.find(simd::OpsFor(SimdTier::kAuto).name), std::string::npos);
}

TEST(SimdMathTest, ExpMatchesStdExpClosely) {
  Rng rng(11);
  double max_rel = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(-700.0, 700.0);
    const double got = simd::Exp(x);
    const double want = std::exp(x);
    if (want > 0.0 && std::isfinite(want)) {
      max_rel = std::max(max_rel, std::abs(got - want) / want);
    }
  }
  EXPECT_LT(max_rel, 1e-15);
  EXPECT_EQ(simd::Exp(0.0), 1.0);
  EXPECT_EQ(simd::Exp(800.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(simd::Exp(-800.0), 0.0);
  EXPECT_EQ(simd::Tanh(0.0), 0.0);
  EXPECT_EQ(simd::Tanh(100.0), 1.0);
  EXPECT_EQ(simd::Tanh(-100.0), -1.0);
  EXPECT_EQ(simd::PowInt(2.0, 10), 1024.0);
  EXPECT_EQ(simd::PowInt(5.0, 0), 1.0);
}

TEST(SimdTierIdentityTest, DotAndGatherDotBitwiseAcrossTiers) {
  const std::vector<SimdTier> tiers = SupportedTiers();
  const SimdOps& ref = simd::OpsFor(SimdTier::kScalar);
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    for (int64_t n : kLengths) {
      std::vector<double> a(static_cast<size_t>(n)), b(a), dense(512);
      std::vector<int32_t> idx(static_cast<size_t>(n));
      for (auto& v : a) v = rng.Normal();
      for (auto& v : b) v = rng.Normal();
      for (auto& v : dense) v = rng.Normal();
      int32_t last = 0;
      for (auto& v : idx) {  // strictly increasing CSR-style indices
        last += 1 + static_cast<int32_t>(rng.Uniform(0.0, 3.0));
        v = last % 512;
      }
      std::sort(idx.begin(), idx.end());
      const double want_dot = ref.dot(a.data(), b.data(), n);
      const double want_gather = ref.gather_dot(a.data(), idx.data(), n,
                                                dense.data());
      for (SimdTier tier : tiers) {
        const SimdOps& ops = simd::OpsFor(tier);
        EXPECT_EQ(ops.dot(a.data(), b.data(), n), want_dot)
            << ops.name << " n=" << n;
        EXPECT_EQ(ops.gather_dot(a.data(), idx.data(), n, dense.data()),
                  want_gather)
            << ops.name << " n=" << n;
      }
      // gather_dot with identity indices IS dot (same reduction tree).
      std::vector<int32_t> identity(static_cast<size_t>(n));
      for (int64_t j = 0; j < n; ++j) identity[static_cast<size_t>(j)] =
          static_cast<int32_t>(j);
      for (SimdTier tier : tiers) {
        const SimdOps& ops = simd::OpsFor(tier);
        EXPECT_EQ(ops.gather_dot(a.data(), identity.data(), n, b.data()),
                  want_dot)
            << ops.name << " n=" << n;
      }
    }
  }
}

TEST(SimdTierIdentityTest, TransformsBitwiseAcrossTiersAndMatchFromDot) {
  const std::vector<SimdTier> tiers = SupportedTiers();
  Rng rng(7);
  for (int64_t n : kLengths) {
    std::vector<double> dots(static_cast<size_t>(n)), norms(64);
    std::vector<int32_t> targets(static_cast<size_t>(n));
    for (auto& v : dots) v = rng.Normal();
    for (auto& v : norms) v = rng.Uniform(0.0, 5.0);
    for (auto& v : targets) {
      v = static_cast<int32_t>(rng.Uniform(0.0, 64.0)) % 64;
    }
    const double norm_row = 1.7, gamma = 0.35, coef0 = 0.25;
    const int degree = 3;

    // Scalar references straight from FromDot (the arithmetic definition).
    KernelParams gp;
    gp.type = KernelType::kGaussian;
    gp.gamma = gamma;
    KernelParams pp;
    pp.type = KernelType::kPolynomial;
    pp.gamma = gamma;
    pp.coef0 = coef0;
    pp.degree = degree;
    KernelParams sp;
    sp.type = KernelType::kSigmoid;
    sp.gamma = gamma;
    sp.coef0 = coef0;
    std::vector<double> want_g(static_cast<size_t>(n)),
        want_p(static_cast<size_t>(n)), want_s(static_cast<size_t>(n));
    for (int64_t j = 0; j < n; ++j) {
      const size_t sj = static_cast<size_t>(j);
      want_g[sj] = KernelFunction(gp).FromDot(
          dots[sj], norm_row, norms[static_cast<size_t>(targets[sj])]);
      want_p[sj] = KernelFunction(pp).FromDot(dots[sj], 0, 0);
      want_s[sj] = KernelFunction(sp).FromDot(dots[sj], 0, 0);
    }

    for (SimdTier tier : tiers) {
      const SimdOps& ops = simd::OpsFor(tier);
      std::vector<double> g = dots, p = dots, s = dots;
      ops.gaussian_transform(g.data(), norms.data(), targets.data(), n,
                             norm_row, gamma);
      ops.poly_transform(p.data(), n, gamma, coef0, degree);
      ops.sigmoid_transform(s.data(), n, gamma, coef0);
      EXPECT_TRUE(SameBits(g, want_g)) << ops.name << " gaussian n=" << n;
      EXPECT_TRUE(SameBits(p, want_p)) << ops.name << " poly n=" << n;
      EXPECT_TRUE(SameBits(s, want_s)) << ops.name << " sigmoid n=" << n;
    }
  }
}

TEST(SimdTierIdentityTest, CouplingUpdateAndAxpyBitwiseAcrossTiers) {
  const std::vector<SimdTier> tiers = SupportedTiers();
  const SimdOps& ref = simd::OpsFor(SimdTier::kScalar);
  Rng rng(19);
  for (int64_t n : kLengths) {
    std::vector<double> qp0(static_cast<size_t>(n)), p0(qp0), qrow(qp0),
        y0(qp0), x(qp0);
    for (auto& v : qp0) v = rng.Normal();
    for (auto& v : p0) v = rng.Uniform(0.0, 1.0);
    for (auto& v : qrow) v = rng.Normal();
    for (auto& v : y0) v = rng.Normal();
    for (auto& v : x) v = rng.Normal();
    const double diff = 0.037, factor = -1.25;

    std::vector<double> qp_ref = qp0, p_ref = p0, y_ref = y0,
        m_ref(static_cast<size_t>(n), -3.0);
    ref.coupling_update(qp_ref.data(), p_ref.data(), qrow.data(), n, diff);
    ref.axpy_neg(y_ref.data(), x.data(), n, factor);
    ref.mul_neg(m_ref.data(), qrow.data(), x.data(), n);
    for (SimdTier tier : tiers) {
      const SimdOps& ops = simd::OpsFor(tier);
      std::vector<double> qp = qp0, p = p0, y = y0,
          m(static_cast<size_t>(n), -3.0);
      ops.coupling_update(qp.data(), p.data(), qrow.data(), n, diff);
      ops.axpy_neg(y.data(), x.data(), n, factor);
      ops.mul_neg(m.data(), qrow.data(), x.data(), n);
      EXPECT_TRUE(SameBits(qp, qp_ref)) << ops.name << " n=" << n;
      EXPECT_TRUE(SameBits(p, p_ref)) << ops.name << " n=" << n;
      EXPECT_TRUE(SameBits(y, y_ref)) << ops.name << " n=" << n;
      EXPECT_TRUE(SameBits(m, m_ref)) << ops.name << " n=" << n;
    }
    if (n > 0) {
      EXPECT_EQ(m_ref[0], -(qrow[0] * x[0]));
    }
  }
}

// Randomized CSR fixture with empty rows and odd row lengths: row r is empty
// whenever r % 5 == 0.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  CsrBuilder builder(cols);
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<int32_t> idx;
    std::vector<double> val;
    if (r % 5 != 0) {
      for (int32_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.23)) {
          idx.push_back(c);
          val.push_back(rng.Normal());
        }
      }
    }
    builder.AddRow(idx, val);
  }
  return ValueOrDie(builder.Finish());
}

TEST(SimdTierIdentityTest, SparseOpsBitwiseAcrossTiersEndToEnd) {
  // The five instrumented paths' sparse entry points, scalar vs each vector
  // tier, on fixtures with empty rows and ragged tails. Outputs AND OpStats
  // must agree bitwise.
  CsrMatrix a = RandomCsr(40, 97, 5);
  CsrMatrix b = RandomCsr(33, 97, 6);
  std::vector<int32_t> batch, targets, rows;
  for (int32_t i = 0; i < 40; i += 3) batch.push_back(i);
  for (int32_t i = 0; i < 33; ++i) targets.push_back(i);
  for (int32_t i = 0; i < 33; i += 2) rows.push_back(i);
  std::vector<double> v(static_cast<size_t>(b.cols()));
  Rng rng(8);
  for (auto& e : v) e = rng.Normal();

  const SimdOps& ref = simd::OpsFor(SimdTier::kScalar);
  std::vector<double> want_batch(batch.size() * targets.size());
  std::vector<double> want_scatter(targets.size());
  std::vector<double> want_spmv(rows.size());
  const OpStats sb = BatchRowDots2(a, batch, b, targets, want_batch.data(),
                                   nullptr, &ref);
  const OpStats ss = ScatterRowDots(a, 7, b, targets, want_scatter.data(),
                                    &ref);
  const OpStats sv = SpMV(b, rows, v, want_spmv.data(), nullptr, &ref);

  for (SimdTier tier : SupportedTiers()) {
    const SimdOps& ops = simd::OpsFor(tier);
    std::vector<double> got_batch(want_batch.size(), -1.0);
    std::vector<double> got_scatter(want_scatter.size(), -1.0);
    std::vector<double> got_spmv(want_spmv.size(), -1.0);
    const OpStats gb = BatchRowDots2(a, batch, b, targets, got_batch.data(),
                                     nullptr, &ops);
    const OpStats gs = ScatterRowDots(a, 7, b, targets, got_scatter.data(),
                                      &ops);
    const OpStats gv = SpMV(b, rows, v, got_spmv.data(), nullptr, &ops);
    EXPECT_TRUE(SameBits(got_batch, want_batch)) << ops.name;
    EXPECT_TRUE(SameBits(got_scatter, want_scatter)) << ops.name;
    EXPECT_TRUE(SameBits(got_spmv, want_spmv)) << ops.name;
    EXPECT_EQ(gb.flops, sb.flops);
    EXPECT_EQ(gs.flops, ss.flops);
    EXPECT_EQ(gs.bytes_read, ss.bytes_read);
    EXPECT_EQ(gs.bytes_written, ss.bytes_written);
    EXPECT_EQ(gv.flops, sv.flops);
  }
}

TEST(SimdTierIdentityTest, CouplingSolvesBitwiseAcrossTiers) {
  Rng rng(23);
  for (int k : {2, 3, 5, 9}) {
    std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
    for (int s = 0; s < k; ++s) {
      for (int t = s + 1; t < k; ++t) {
        const double p = rng.Uniform(0.02, 0.98);
        r[static_cast<size_t>(s) * k + t] = p;
        r[static_cast<size_t>(t) * k + s] = 1.0 - p;
      }
    }
    for (CouplingMethod method :
         {CouplingMethod::kGaussianElimination, CouplingMethod::kIterative}) {
      CouplingOptions ref_opts;
      ref_opts.method = method;
      ref_opts.simd = SimdTier::kScalar;
      Result<std::vector<double>> want = CoupleProbabilities(r, k, ref_opts);
      ASSERT_TRUE(want.ok());
      for (SimdTier tier : SupportedTiers()) {
        CouplingOptions opts = ref_opts;
        opts.simd = tier;
        Result<std::vector<double>> got = CoupleProbabilities(r, k, opts);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(SameBits(got.value(), want.value()))
            << simd::TierName(tier) << " k=" << k;
      }
    }
  }
}

TEST(SimdPathStatsTest, RecordsCallsElementsAndFlops) {
  simd::ResetPathStats();
  CsrMatrix a = RandomCsr(12, 31, 3);
  std::vector<int32_t> batch = {1, 2}, targets = {3, 4, 6};
  std::vector<double> out(batch.size() * targets.size());
  const OpStats stats = BatchRowDots(a, batch, targets, out.data());
  const simd::PathStatsSnapshot snap =
      simd::PathStats(simd::SimdPath::kBatchRowDots);
  EXPECT_EQ(snap.calls, 1);
  EXPECT_EQ(snap.flops, stats.flops);
  EXPECT_GT(snap.elements, 0);
  simd::ResetPathStats();
  EXPECT_EQ(simd::PathStats(simd::SimdPath::kBatchRowDots).calls, 0);
}

}  // namespace
}  // namespace gmpsvm
