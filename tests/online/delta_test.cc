// Dataset deltas: content fingerprints, exact text round-trips, deterministic
// apply semantics, and hostile/truncated inputs failing as kInvalidArgument —
// never a crash. The delta parser is attack surface the same way the model
// and checkpoint parsers are: the retrain daemon reads these files off disk
// at runtime.

#include "online/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../test_util.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm::online {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

DatasetDelta SampleDelta(const Dataset& base) {
  DatasetDelta delta;
  delta.base_fingerprint = DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  DeltaOp add;
  add.kind = DeltaOp::Kind::kAdd;
  add.label = 1;
  add.indices = {0, 2, 4};
  add.values = {0.5, -1.0 / 3.0, 1e-17};
  delta.ops.push_back(add);
  DeltaOp relabel;
  relabel.kind = DeltaOp::Kind::kRelabel;
  relabel.row = 3;
  relabel.old_label = base.labels()[3];
  relabel.new_label = (base.labels()[3] + 1) % base.num_classes();
  delta.ops.push_back(relabel);
  return delta;
}

TEST(DatasetFingerprintTest, IsContentPureAndLabelSensitive) {
  auto a = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 42));
  auto b = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 42));
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));

  // A single relabel must change the fingerprint.
  std::vector<int32_t> labels = a.labels();
  labels[0] = (labels[0] + 1) % a.num_classes();
  auto relabeled = ValueOrDie(
      Dataset::Create(a.features(), labels, a.num_classes(), "relabeled"));
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(relabeled));

  // The name is NOT part of the content.
  auto renamed = ValueOrDie(
      Dataset::Create(a.features(), a.labels(), a.num_classes(), "other"));
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(renamed));
}

TEST(DeltaIoTest, RoundTripsExactly) {
  auto base = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 7));
  const DatasetDelta delta = SampleDelta(base);
  const DatasetDelta parsed = ValueOrDie(ParseDelta(SerializeDelta(delta)));
  EXPECT_EQ(parsed.base_fingerprint, delta.base_fingerprint);
  EXPECT_EQ(parsed.num_classes, delta.num_classes);
  ASSERT_EQ(parsed.ops.size(), delta.ops.size());
  EXPECT_EQ(parsed.ops[0].kind, DeltaOp::Kind::kAdd);
  EXPECT_EQ(parsed.ops[0].label, delta.ops[0].label);
  EXPECT_EQ(parsed.ops[0].indices, delta.ops[0].indices);
  // %.17g text must reproduce the doubles bit for bit.
  EXPECT_EQ(parsed.ops[0].values, delta.ops[0].values);
  EXPECT_EQ(parsed.ops[1].kind, DeltaOp::Kind::kRelabel);
  EXPECT_EQ(parsed.ops[1].row, delta.ops[1].row);
  EXPECT_EQ(parsed.ops[1].old_label, delta.ops[1].old_label);
  EXPECT_EQ(parsed.ops[1].new_label, delta.ops[1].new_label);
}

TEST(DeltaApplyTest, AppendsAndRelabelsDeterministically) {
  auto base = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 9));
  const DatasetDelta delta = SampleDelta(base);
  auto applied = ValueOrDie(ApplyDelta(base, delta));
  EXPECT_EQ(applied.size(), base.size() + 1);
  EXPECT_EQ(applied.labels().back(), 1);
  EXPECT_EQ(applied.labels()[3], delta.ops[1].new_label);
  // Existing row ids never move: every pre-existing row's content is
  // unchanged under the apply.
  for (int64_t r = 0; r < base.size(); ++r) {
    ASSERT_EQ(applied.features().RowIndices(r).size(),
              base.features().RowIndices(r).size());
    for (size_t j = 0; j < base.features().RowIndices(r).size(); ++j) {
      EXPECT_EQ(applied.features().RowIndices(r)[j],
                base.features().RowIndices(r)[j]);
      EXPECT_EQ(applied.features().RowValues(r)[j],
                base.features().RowValues(r)[j]);
    }
  }
  // Same base + same delta = same fingerprint everywhere.
  auto applied2 = ValueOrDie(ApplyDelta(base, delta));
  EXPECT_EQ(DatasetFingerprint(applied), DatasetFingerprint(applied2));
}

TEST(DeltaApplyTest, RejectsFingerprintMismatch) {
  auto base = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 11));
  DatasetDelta delta = SampleDelta(base);
  delta.base_fingerprint ^= 1;
  auto result = ApplyDelta(base, delta);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DeltaApplyTest, RejectsStaleRelabel) {
  auto base = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 13));
  DatasetDelta delta;
  delta.base_fingerprint = DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  DeltaOp op;
  op.kind = DeltaOp::Kind::kRelabel;
  op.row = 0;
  op.old_label = (base.labels()[0] + 1) % base.num_classes();  // wrong
  op.new_label = (base.labels()[0] + 2) % base.num_classes();
  delta.ops.push_back(op);
  auto result = ApplyDelta(base, delta);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(DeltaApplyTest, AffectedClassesCoverAddsAndRelabels) {
  auto base = ValueOrDie(MakeMulticlassBlobs(4, 10, 5, 2.5, 15));
  DatasetDelta delta = SampleDelta(base);  // add -> class 1, relabel 3's row
  const std::vector<int> affected = AffectedClasses(delta);
  EXPECT_FALSE(affected.empty());
  for (size_t i = 1; i < affected.size(); ++i) {
    EXPECT_LT(affected[i - 1], affected[i]);  // sorted, deduplicated
  }
  // The add's label and both relabel sides are present.
  auto contains = [&affected](int cls) {
    return std::find(affected.begin(), affected.end(), cls) != affected.end();
  };
  EXPECT_TRUE(contains(1));
  EXPECT_TRUE(contains(delta.ops[1].old_label));
  EXPECT_TRUE(contains(delta.ops[1].new_label));
}

TEST(DeltaParseTest, HostileInputsAreInvalidArgument) {
  const std::vector<std::string> hostile = {
      "",
      "   \n\t\n",
      "gmpsvm_model_v1\nbase_fingerprint 1\n",
      "gmpsvm_delta_v1\n",
      "gmpsvm_delta_v1\nbase_fingerprint abc\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 1\nops 0\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\n"
      "ops 999999999999\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "explode 1 2 3\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "add 7 0\n",  // label out of range
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "add 1 999999999999\n",  // hostile nnz
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "add 1 2 3:1.0 1:2.0\n",  // indices not increasing
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "add 1 1 abc:1.0\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "relabel -2 0 1\n",
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 1\n"
      "relabel 0 2 2\n",  // old == new
      "gmpsvm_delta_v1\nbase_fingerprint 1\nnum_classes 3\nops 2\n"
      "relabel 0 0 1\n",  // fewer ops than declared
      std::string("gmpsvm_delta_v1\n\x01\xff\x00junk", 22),
  };
  for (const auto& text : hostile) {
    auto result = ParseDelta(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << text << " -> " << result.status().ToString();
  }
}

TEST(DeltaParseTest, EveryTruncationFailsCleanlyOrParses) {
  auto base = ValueOrDie(MakeMulticlassBlobs(3, 10, 5, 2.5, 21));
  const std::string full = SerializeDelta(SampleDelta(base));
  for (size_t len = 0; len < full.size(); ++len) {
    auto result = ParseDelta(full.substr(0, len));
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument())
          << "len=" << len << ": " << result.status().ToString();
    }
  }
}

TEST(DeltaIoTest, LoadMissingFileIsIoError) {
  auto result = LoadDelta("/nonexistent/dir/x.delta");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

}  // namespace
}  // namespace gmpsvm::online
