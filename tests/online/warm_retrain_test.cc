// Warm-start retraining: only pairs touching a delta's classes are re-solved;
// every untouched pair's checkpoint is carried byte for byte. The retrained
// model must be byte-identical at any device count and under chaos, because
// the daemon's end-to-end determinism claim rests on this layer.

#include "online/warm_retrain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "online/delta.h"

namespace gmpsvm::online {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpTrainOptions SmallOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

Dataset SmallBase() {
  return ValueOrDie(MakeMulticlassBlobs(4, 22, 6, 2.5, 42));
}

MpSvmModel TrainCold(const Dataset& data) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
}

// A drift delta relabeling the first `n` class-0 rows to class 1.
DatasetDelta DriftDelta(const Dataset& base, int n) {
  DatasetDelta delta;
  delta.base_fingerprint = DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  const std::vector<int32_t>& rows = base.ClassRows(0);
  for (int i = 0; i < n && i < static_cast<int>(rows.size()); ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kRelabel;
    op.row = rows[static_cast<size_t>(i)];
    op.old_label = 0;
    op.new_label = 1;
    delta.ops.push_back(op);
  }
  return delta;
}

TEST(CheckpointsFromModelTest, ReconstructsEveryPairInClassPairOrder) {
  Dataset data = SmallBase();
  MpSvmModel model = TrainCold(data);
  const auto pairs = data.ClassPairs();
  const std::vector<PairCheckpoint> checkpoints = CheckpointsFromModel(model);
  ASSERT_EQ(checkpoints.size(), pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(checkpoints[p].class_s, pairs[p].first);
    EXPECT_EQ(checkpoints[p].class_t, pairs[p].second);
    EXPECT_EQ(checkpoints[p].sv_rows.size(), checkpoints[p].sv_coef.size());
    EXPECT_EQ(checkpoints[p].degraded, checkpoints[p].sv_rows.empty());
    EXPECT_FALSE(checkpoints[p].degraded)
        << "a separated-blobs pair trained no support vectors";
  }
}

TEST(AffectedPairIndicesTest, CoversTouchedClassesAndDegradedPairs) {
  Dataset data = SmallBase();  // 4 classes -> pairs 01 02 03 12 13 23
  std::vector<PairCheckpoint> previous(6);
  const auto pairs = data.ClassPairs();
  for (size_t p = 0; p < pairs.size(); ++p) {
    previous[p].class_s = pairs[p].first;
    previous[p].class_t = pairs[p].second;
  }

  EXPECT_EQ(AffectedPairIndices(data, {0}, previous),
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(AffectedPairIndices(data, {0, 1}, previous),
            (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(AffectedPairIndices(data, {}, previous), (std::vector<size_t>{}));

  // A degraded previous pair must be retrained even when untouched.
  previous[5].degraded = true;
  EXPECT_EQ(AffectedPairIndices(data, {0}, previous),
            (std::vector<size_t>{0, 1, 2, 5}));
}

TEST(WarmRetrainTest, RetrainsAffectedPairsAndCarriesRestByteIdentically) {
  Dataset base = SmallBase();
  MpSvmModel initial = TrainCold(base);
  const std::vector<PairCheckpoint> previous = CheckpointsFromModel(initial);

  const DatasetDelta delta = DriftDelta(base, 8);
  Dataset drifted = ValueOrDie(ApplyDelta(base, delta));
  const std::vector<int> affected = AffectedClasses(delta);
  ASSERT_EQ(affected, (std::vector<int>{0, 1}));

  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  WarmRetrainOptions options;
  options.train = SmallOptions();
  WarmRetrainReport report;
  MpSvmModel warm = ValueOrDie(
      WarmRetrain(drifted, previous, affected, options, &cluster, &report));

  // 5 of the 6 pairs touch class 0 or 1; only (2,3) carries.
  EXPECT_EQ(report.pairs_retrained, 5);
  EXPECT_EQ(report.pairs_carried, 1);
  EXPECT_GT(report.warm_seeded_rows, 0);
  EXPECT_GT(report.makespan_sim_seconds, 0.0);
  ASSERT_EQ(report.retrained.size(), 5u);

  // The carried pair (2,3) is slot 5 in ClassPairs order: its checkpoint in
  // the new model must serialize byte-identically to the pre-delta one.
  const std::vector<PairCheckpoint> after = CheckpointsFromModel(warm);
  ASSERT_EQ(after.size(), previous.size());
  EXPECT_EQ(SerializePairCheckpoint(after[5]),
            SerializePairCheckpoint(previous[5]));

  // The retrained pairs absorbed the drift: the warm model differs from the
  // stale one but still assembles and serializes cleanly.
  EXPECT_NE(SerializeModel(warm), SerializeModel(initial));
}

TEST(WarmRetrainTest, ByteIdenticalAcrossDeviceCountsAndChaos) {
  Dataset base = SmallBase();
  MpSvmModel initial = TrainCold(base);
  const std::vector<PairCheckpoint> previous = CheckpointsFromModel(initial);
  const DatasetDelta delta = DriftDelta(base, 8);
  Dataset drifted = ValueOrDie(ApplyDelta(base, delta));
  const std::vector<int> affected = AffectedClasses(delta);

  std::string reference;
  for (int devices : {1, 2, 4}) {
    cluster::SimCluster cluster =
        cluster::SimCluster::Homogeneous(devices, ExecutorModel::TeslaP100());
    WarmRetrainOptions options;
    options.train = SmallOptions();
    MpSvmModel warm = ValueOrDie(
        WarmRetrain(drifted, previous, affected, options, &cluster, nullptr));
    if (reference.empty()) {
      reference = SerializeModel(warm);
    } else {
      EXPECT_EQ(SerializeModel(warm), reference) << devices << " devices";
    }
  }

  // Chaos changes retries and sim-time, never bytes — per-pair injectors are
  // seeded from (plan seed, pair index) only, so this holds at any topology.
  for (int devices : {1, 3}) {
    cluster::SimCluster cluster =
        cluster::SimCluster::Homogeneous(devices, ExecutorModel::TeslaP100());
    WarmRetrainOptions options;
    options.train = SmallOptions();
    options.fault = fault::FaultPlan::Chaos(17);
    WarmRetrainReport report;
    MpSvmModel warm = ValueOrDie(
        WarmRetrain(drifted, previous, affected, options, &cluster, &report));
    EXPECT_EQ(SerializeModel(warm), reference)
        << "chaos on " << devices << " devices";
    EXPECT_EQ(report.pairs_degraded, 0);
  }
}

TEST(WarmRetrainTest, RejectsInvalidOptionsAndMismatchedCheckpoints) {
  Dataset base = SmallBase();
  MpSvmModel initial = TrainCold(base);
  const std::vector<PairCheckpoint> previous = CheckpointsFromModel(initial);
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());

  WarmRetrainOptions checkpointing;
  checkpointing.train = SmallOptions();
  checkpointing.train.checkpoint.dir = "/tmp/nope";
  auto r1 = WarmRetrain(base, previous, {0}, checkpointing, &cluster, nullptr);
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsInvalidArgument());

  WarmRetrainOptions resuming;
  resuming.train = SmallOptions();
  resuming.train.checkpoint.resume = true;
  EXPECT_FALSE(WarmRetrain(base, previous, {0}, resuming, &cluster, nullptr).ok());

  WarmRetrainOptions interrupting;
  interrupting.train = SmallOptions();
  interrupting.fault = fault::FaultPlan{};
  interrupting.fault->interrupt_after_pairs = 1;
  EXPECT_FALSE(
      WarmRetrain(base, previous, {0}, interrupting, &cluster, nullptr).ok());

  WarmRetrainOptions options;
  options.train = SmallOptions();

  std::vector<PairCheckpoint> truncated(previous.begin(), previous.end() - 1);
  auto r2 = WarmRetrain(base, truncated, {0}, options, &cluster, nullptr);
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsInvalidArgument());

  std::vector<PairCheckpoint> shuffled = previous;
  std::swap(shuffled[0], shuffled[1]);  // class labels no longer match
  auto r3 = WarmRetrain(base, shuffled, {0}, options, &cluster, nullptr);
  ASSERT_FALSE(r3.ok());
  EXPECT_TRUE(r3.status().IsInvalidArgument());

  auto r4 = WarmRetrain(base, previous, {0}, options, nullptr, nullptr);
  ASSERT_FALSE(r4.ok());
  EXPECT_TRUE(r4.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gmpsvm::online
