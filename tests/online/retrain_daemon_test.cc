// The end-to-end continual-learning loop: apply deltas, serve, detect drift,
// warm-retrain, canary, hot-swap — and roll back on any gate failure while
// the fleet keeps answering. The determinism matrix here is the PR's
// acceptance criterion: same deltas + same chaos seed must produce
// byte-identical final models and equal counters at every devices x
// host-threads topology.

#include "online/retrain_daemon.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "obs/metrics.h"
#include "online/delta.h"
#include "serve/model_registry.h"

namespace gmpsvm::online {
namespace {

namespace fs = std::filesystem;
using ::gmpsvm::testing::MakeMulticlassBlobs;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

MpTrainOptions SmallOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

Dataset SmallBase() {
  return ValueOrDie(MakeMulticlassBlobs(4, 22, 6, 2.5, 42));
}

MpSvmModel TrainInitial(const Dataset& data) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(SmallOptions()).Train(data, &exec, nullptr));
}

// One drift delta relabeling 12 of the 22 class-0 rows to class 1: enough
// confidently-wrong traffic (~14% of requests at Brier ~1.8 each) to push
// the windowed Brier past the 0.15 threshold the tests configure.
void WriteDriftDelta(const Dataset& base, const std::string& dir) {
  DatasetDelta delta;
  delta.base_fingerprint = DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  const std::vector<int32_t>& rows = base.ClassRows(0);
  for (int i = 0; i < 12; ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kRelabel;
    op.row = rows[static_cast<size_t>(i)];
    op.old_label = 0;
    op.new_label = 1;
    delta.ops.push_back(op);
  }
  GMP_CHECK_OK(SaveDelta(delta, dir + "/000_drift.delta"));
}

RetrainDaemonOptions BaseOptions(const std::string& delta_dir,
                                 int host_threads) {
  RetrainDaemonOptions options;
  options.delta_dir = delta_dir;
  options.drift.window = 128;
  options.drift.min_observations = 32;
  options.drift.brier_threshold = 0.15;
  // Retrains that absorb real drift legitimately move probabilities on the
  // relabeled rows; the candidate-vs-incumbent Brier gate is the guard.
  options.canary.tolerance = 1.0;
  options.retrain.train = SmallOptions();
  options.retrain.train.host_threads = host_threads;
  options.requests_per_round = 64;
  return options;
}

struct RunOutcome {
  std::string model_text;
  RetrainDaemonReport report;
};

RunOutcome RunDaemon(const Dataset& base, const std::string& delta_dir,
                     int devices, int host_threads,
                     std::optional<uint64_t> chaos_seed) {
  RetrainDaemonOptions options = BaseOptions(delta_dir, host_threads);
  if (chaos_seed.has_value()) {
    options.fault = fault::FaultPlan::Chaos(*chaos_seed);
    options.retrain.fault = fault::FaultPlan::Chaos(*chaos_seed);
  }
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(devices, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  RetrainDaemon daemon(options, &registry, &cluster);
  RunOutcome outcome;
  outcome.report = ValueOrDie(daemon.Run(base, TrainInitial(base)));
  outcome.model_text =
      SerializeModel(*ValueOrDie(registry.Get("online")).model);
  return outcome;
}

TEST(RetrainDaemonTest, CommitsDriftCorrectingSwapEndToEnd) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_commit");
  WriteDriftDelta(base, dir);

  RunOutcome run = RunDaemon(base, dir, 1, 1, std::nullopt);
  const RetrainDaemonReport& report = run.report;
  EXPECT_EQ(report.deltas_applied, 1);
  EXPECT_EQ(report.deltas_skipped, 0);
  EXPECT_EQ(report.drift_arms, 1);
  EXPECT_EQ(report.retrains, 1);
  EXPECT_EQ(report.swaps_committed, 1);
  EXPECT_EQ(report.rollbacks, 0);
  EXPECT_EQ(report.requests_served, 128);  // serve round + canary round
  EXPECT_EQ(report.requests_dropped, 0);
  EXPECT_GT(report.canary_sampled, 0);
  EXPECT_EQ(report.pairs_retrained, 5);  // all pairs touching class 0 or 1
  EXPECT_EQ(report.pairs_carried, 1);    // (2,3) carries
  EXPECT_EQ(report.final_model_version, 2);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_TRUE(report.verdicts[0].passed) << report.verdicts[0].reason;
}

TEST(RetrainDaemonTest, ByteIdenticalAcrossTopologyAndChaos) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_matrix");
  WriteDriftDelta(base, dir);

  std::string reference;
  RetrainDaemonReport ref_report;
  std::optional<int64_t> chaos_retries;
  for (int devices : {1, 2, 4}) {
    for (int host_threads : {1, 8}) {
      for (bool chaos : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << devices << " devices, " << host_threads
                     << " threads, chaos=" << chaos);
        RunOutcome run =
            RunDaemon(base, dir, devices, host_threads,
                      chaos ? std::optional<uint64_t>(11) : std::nullopt);
        if (reference.empty()) {
          reference = run.model_text;
          ref_report = run.report;
          ASSERT_EQ(ref_report.swaps_committed, 1);
        }
        // The committed model and every business counter are topology- and
        // chaos-invariant; only retry counters may move, and those are a
        // pure function of the chaos seed, so they match across topologies.
        EXPECT_EQ(run.model_text, reference);
        EXPECT_EQ(run.report.deltas_applied, ref_report.deltas_applied);
        EXPECT_EQ(run.report.drift_arms, ref_report.drift_arms);
        EXPECT_EQ(run.report.swaps_committed, ref_report.swaps_committed);
        EXPECT_EQ(run.report.rollbacks, ref_report.rollbacks);
        EXPECT_EQ(run.report.requests_served, ref_report.requests_served);
        EXPECT_EQ(run.report.requests_dropped, 0);
        EXPECT_EQ(run.report.canary_sampled, ref_report.canary_sampled);
        EXPECT_EQ(run.report.pairs_retrained, ref_report.pairs_retrained);
        EXPECT_EQ(run.report.pairs_carried, ref_report.pairs_carried);
        EXPECT_EQ(run.report.final_model_version,
                  ref_report.final_model_version);
        const int64_t retries = run.report.delta_parse_retries +
                                run.report.canary_retries +
                                run.report.swap_retries +
                                run.report.pair_retries;
        if (!chaos) {
          EXPECT_EQ(retries, 0);
        } else {
          if (!chaos_retries.has_value()) chaos_retries = retries;
          EXPECT_EQ(retries, *chaos_retries);
        }
      }
    }
  }
}

TEST(RetrainDaemonTest, CanaryRejectionRollsBackWithZeroDroppedRequests) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_canary_rollback");
  WriteDriftDelta(base, dir);

  RetrainDaemonOptions options = BaseOptions(dir, 1);
  options.canary.tolerance = 0.0;  // any probability movement fails the gate
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  RetrainDaemon daemon(options, &registry, &cluster);
  MpSvmModel initial = TrainInitial(base);
  const std::string initial_text = SerializeModel(initial);
  RetrainDaemonReport report =
      ValueOrDie(daemon.Run(base, std::move(initial)));

  EXPECT_EQ(report.retrains, 1);
  EXPECT_EQ(report.swaps_committed, 0);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.requests_served, 128);
  EXPECT_EQ(report.requests_dropped, 0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_FALSE(report.verdicts[0].passed);

  // Rollback is "never commit": version 1 is still serving, byte for byte.
  ModelHandle handle = ValueOrDie(registry.Get("online"));
  EXPECT_EQ(handle.version, 1);
  EXPECT_EQ(report.final_model_version, 1);
  EXPECT_EQ(SerializeModel(*handle.model), initial_text);
}

TEST(RetrainDaemonTest, ValidatorRejectionRollsBackWithZeroDroppedRequests) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_validator_rollback");
  WriteDriftDelta(base, dir);

  RetrainDaemonOptions options = BaseOptions(dir, 1);
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  // Admit the initial registration, reject every candidate after it.
  int validator_calls = 0;
  registry.SetValidator([&validator_calls](const MpSvmModel&) {
    return ++validator_calls == 1
               ? Status::OK()
               : Status::InvalidArgument("policy: frozen for audit");
  });
  RetrainDaemon daemon(options, &registry, &cluster);
  RetrainDaemonReport report =
      ValueOrDie(daemon.Run(base, TrainInitial(base)));

  EXPECT_GE(validator_calls, 2);
  EXPECT_EQ(report.swaps_committed, 0);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.requests_dropped, 0);
  EXPECT_EQ(ValueOrDie(registry.Get("online")).version, 1);
}

TEST(RetrainDaemonTest, UnreadableDeltaIsSkippedAndServingContinues) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_delta_fault");
  WriteDriftDelta(base, dir);

  RetrainDaemonOptions options = BaseOptions(dir, 1);
  options.fault = fault::FaultPlan{};
  options.fault->delta_parse_fail_prob = 1.0;
  options.fault->max_consecutive_per_site = 0;  // never force a success
  options.retry.max_attempts = 3;
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  RetrainDaemon daemon(options, &registry, &cluster);
  RetrainDaemonReport report =
      ValueOrDie(daemon.Run(base, TrainInitial(base)));

  EXPECT_EQ(report.deltas_applied, 0);
  EXPECT_EQ(report.deltas_skipped, 1);
  EXPECT_EQ(report.delta_parse_retries, 2);  // attempts 1..max, minus the last
  // No drift without the delta: the round still serves, nothing swaps.
  EXPECT_EQ(report.requests_served, 64);
  EXPECT_EQ(report.requests_dropped, 0);
  EXPECT_EQ(report.retrains, 0);
  EXPECT_EQ(ValueOrDie(registry.Get("online")).version, 1);
}

TEST(RetrainDaemonTest, PublishesDriftAndOnlineSeries) {
  Dataset base = SmallBase();
  const std::string dir = FreshDir("daemon_metrics");
  WriteDriftDelta(base, dir);

  obs::MetricsRegistry metrics;
  RetrainDaemonOptions options = BaseOptions(dir, 1);
  options.metrics = &metrics;
  options.drift.metrics = &metrics;
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  RetrainDaemon daemon(options, &registry, &cluster);
  RetrainDaemonReport report =
      ValueOrDie(daemon.Run(base, TrainInitial(base)));
  ASSERT_EQ(report.swaps_committed, 1);

  const std::string text = metrics.ToPrometheusText();
  for (const char* series :
       {"gmpsvm_drift_brier", "gmpsvm_drift_armed_total",
        "gmpsvm_online_deltas_applied_total", "gmpsvm_online_swaps_total",
        "gmpsvm_online_requests_total", "gmpsvm_online_retrains_total",
        "gmpsvm_online_canary_sampled_total"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

TEST(RetrainDaemonOptionsTest, ValidateRejectsBadFields) {
  RetrainDaemonOptions options;
  EXPECT_FALSE(options.Validate().ok()) << "empty delta_dir must fail";
  options.delta_dir = "/tmp/x";
  options.model_name = "";
  EXPECT_FALSE(options.Validate().ok());
  options = RetrainDaemonOptions{};
  options.delta_dir = "/tmp/x";
  options.requests_per_round = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(RetrainDaemonTest, MissingDeltaDirIsIoError) {
  Dataset base = SmallBase();
  RetrainDaemonOptions options = BaseOptions("/nonexistent/deltas", 1);
  cluster::SimCluster cluster =
      cluster::SimCluster::Homogeneous(1, ExecutorModel::TeslaP100());
  ModelRegistry registry;
  RetrainDaemon daemon(options, &registry, &cluster);
  auto result = daemon.Run(base, TrainInitial(base));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

}  // namespace
}  // namespace gmpsvm::online
