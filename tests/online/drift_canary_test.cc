// Drift detection and canary gating: pure functions of the observation
// sequence. Arming, disarming, windowed metrics, gmpsvm_drift_* series, and
// canary verdicts must all be deterministic and side-effect-free so the
// retrain daemon can claim end-to-end byte-identity.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "online/canary.h"
#include "online/drift.h"

namespace gmpsvm::online {
namespace {

// A confident k=2 response: p(truth) = p, p(other) = 1 - p.
std::vector<double> Response(double p_truth) { return {p_truth, 1.0 - p_truth}; }

TEST(DriftDetectorTest, StaysDisarmedOnGoodPredictions) {
  DriftOptions options;
  options.window = 32;
  options.min_observations = 8;
  options.brier_threshold = 0.5;
  DriftDetector drift(2, options);
  for (int i = 0; i < 64; ++i) drift.Observe(Response(0.95), 0);
  EXPECT_FALSE(drift.armed());
  EXPECT_EQ(drift.times_armed(), 0);
  EXPECT_LT(drift.WindowBrier(), 0.05);
  EXPECT_EQ(drift.window_size(), 32);  // rolling window slides
  EXPECT_EQ(drift.total_observed(), 64);
}

TEST(DriftDetectorTest, ArmsWhenBrierCrossesThreshold) {
  DriftOptions options;
  options.window = 32;
  options.min_observations = 8;
  options.brier_threshold = 0.5;
  DriftDetector drift(2, options);
  // Confidently wrong: truth is class 1, served p(class 0) = 0.9.
  for (int i = 0; i < 7; ++i) drift.Observe(Response(0.1), 0);
  EXPECT_FALSE(drift.armed()) << "must not arm below min_observations";
  drift.Observe(Response(0.1), 0);
  EXPECT_TRUE(drift.armed());
  EXPECT_EQ(drift.times_armed(), 1);
  EXPECT_GT(drift.WindowBrier(), 1.0);
}

TEST(DriftDetectorTest, DisarmClearsWindowAndCanRearm) {
  DriftOptions options;
  options.window = 16;
  options.min_observations = 4;
  options.brier_threshold = 0.5;
  DriftDetector drift(2, options);
  for (int i = 0; i < 8; ++i) drift.Observe(Response(0.05), 0);
  ASSERT_TRUE(drift.armed());
  drift.Disarm();
  EXPECT_FALSE(drift.armed());
  EXPECT_EQ(drift.window_size(), 0);
  EXPECT_EQ(drift.WindowBrier(), 0.0);
  // Persisting drift re-arms once the fresh window refills.
  for (int i = 0; i < 4; ++i) drift.Observe(Response(0.05), 0);
  EXPECT_TRUE(drift.armed());
  EXPECT_EQ(drift.times_armed(), 2);
}

TEST(DriftDetectorTest, PublishesGaugesAndCounter) {
  obs::MetricsRegistry metrics;
  DriftOptions options;
  options.window = 8;
  options.min_observations = 2;
  options.brier_threshold = 0.5;
  options.metrics = &metrics;
  DriftDetector drift(2, options);
  for (int i = 0; i < 4; ++i) drift.Observe(Response(0.05), 0);
  const std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("gmpsvm_drift_brier"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_drift_log_loss"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_drift_window"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_drift_armed 1"), std::string::npos);
  EXPECT_NE(text.find("gmpsvm_drift_armed_total"), std::string::npos);
}

TEST(DriftDetectorTest, LogLossTriggerIsOptional) {
  DriftOptions options;
  options.window = 8;
  options.min_observations = 2;
  options.brier_threshold = 2.0;   // unreachable
  options.log_loss_threshold = 1.0;
  DriftDetector drift(2, options);
  for (int i = 0; i < 4; ++i) drift.Observe(Response(0.1), 0);
  EXPECT_TRUE(drift.armed()) << "log-loss trigger must arm independently";
}

TEST(DriftOptionsTest, ValidateRejectsBadFields) {
  DriftOptions options;
  options.window = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = DriftOptions{};
  options.min_observations = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = DriftOptions{};
  options.brier_threshold = -0.5;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(DriftOptions{}.Validate().ok());
}

TEST(CanaryComparatorTest, SamplingIsDeterministic) {
  CanaryOptions options;
  options.traffic_fraction = 0.5;
  CanaryComparator a(2, options, 77);
  CanaryComparator b(2, options, 77);
  CanaryComparator c(2, options, 78);
  std::vector<bool> draws_a, draws_b, draws_c;
  for (int i = 0; i < 64; ++i) {
    draws_a.push_back(a.ShouldSample());
    draws_b.push_back(b.ShouldSample());
    draws_c.push_back(c.ShouldSample());
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_NE(draws_a, draws_c) << "different seeds must differ somewhere";
}

TEST(CanaryComparatorTest, IdenticalModelsPass) {
  CanaryOptions options;
  options.min_requests = 4;
  CanaryComparator comparator(2, options, 1);
  for (int i = 0; i < 8; ++i) {
    const auto p = Response(0.9);
    comparator.Record(p, p, 0);
  }
  const CanaryVerdict verdict = comparator.Verdict();
  EXPECT_TRUE(verdict.passed) << verdict.reason;
  EXPECT_EQ(verdict.requests_sampled, 8);
  EXPECT_EQ(verdict.max_disagreement, 0.0);
  EXPECT_EQ(verdict.labeled_requests, 8);
}

TEST(CanaryComparatorTest, FailsClosedBelowMinRequests) {
  CanaryOptions options;
  options.min_requests = 8;
  CanaryComparator comparator(2, options, 1);
  for (int i = 0; i < 3; ++i) {
    const auto p = Response(0.9);
    comparator.Record(p, p, 0);
  }
  EXPECT_FALSE(comparator.Verdict().passed);
}

TEST(CanaryComparatorTest, RejectsDisagreementAboveTolerance) {
  CanaryOptions options;
  options.min_requests = 1;
  options.tolerance = 0.3;
  options.brier_slack = -1.0;  // isolate the disagreement gate
  CanaryComparator comparator(2, options, 1);
  comparator.Record(Response(0.9), Response(0.4));  // L-inf distance 0.5
  const CanaryVerdict verdict = comparator.Verdict();
  EXPECT_FALSE(verdict.passed);
  EXPECT_DOUBLE_EQ(verdict.max_disagreement, 0.5);
}

TEST(CanaryComparatorTest, RejectsWorseCandidateBrier) {
  CanaryOptions options;
  options.min_requests = 1;
  options.tolerance = 1.0;
  options.brier_slack = 0.05;
  CanaryComparator comparator(2, options, 1);
  // Incumbent confidently right, candidate confidently wrong.
  for (int i = 0; i < 8; ++i) {
    comparator.Record(Response(0.95), Response(0.05), 0);
  }
  const CanaryVerdict verdict = comparator.Verdict();
  EXPECT_FALSE(verdict.passed);
  EXPECT_GT(verdict.candidate_brier, verdict.incumbent_brier);
}

TEST(CanaryComparatorTest, UnlabeledTrafficSkipsBrierGate) {
  CanaryOptions options;
  options.min_requests = 1;
  options.tolerance = 1.0;
  options.brier_slack = 0.0;
  CanaryComparator comparator(2, options, 1);
  comparator.Record(Response(0.95), Response(0.6));  // no truth
  const CanaryVerdict verdict = comparator.Verdict();
  EXPECT_TRUE(verdict.passed) << verdict.reason;
  EXPECT_EQ(verdict.labeled_requests, 0);
}

TEST(CanaryOptionsTest, ValidateRejectsBadFields) {
  CanaryOptions options;
  options.traffic_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = CanaryOptions{};
  options.tolerance = -0.1;
  EXPECT_FALSE(options.Validate().ok());
  options = CanaryOptions{};
  options.min_requests = 0;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(CanaryOptions{}.Validate().ok());
}

}  // namespace
}  // namespace gmpsvm::online
