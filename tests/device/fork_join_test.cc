// Fork-join accounting: a satellite executor's recorded event log, replayed
// onto the main executor, must reproduce a direct serial run bit for bit —
// stream timeline, counters, and the span stream.

#include "device/fork_join.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "device/executor.h"
#include "obs/span.h"

namespace gmpsvm {
namespace {

TaskCost Cost(double flops, double read, double written, int64_t items) {
  TaskCost c;
  c.flops = flops;
  c.bytes_read = read;
  c.bytes_written = written;
  c.parallel_items = items;
  return c;
}

// The accounting sequence one binary problem might charge. Mirrors what the
// solver does: task charges, a transfer, a backoff advance, and a client
// phase span wrapping the lot.
void ChargeWorkload(SimExecutor* exec, StreamId stream) {
  const double t0 = exec->StreamTime(stream);
  exec->Charge(stream, Cost(1e9, 4e6, 1e6, 4096));
  exec->Transfer(stream, 2.5e6, TransferDirection::kHostToDevice);
  exec->Charge(stream, Cost(3e8, 1e6, 5e5, 512));
  exec->AdvanceStream(stream, 1.5e-4, "backoff");
  exec->Transfer(stream, 9e5, TransferDirection::kDeviceToHost);
  if (exec->span_recorder() != nullptr) {
    obs::SpanEvent span;
    span.name = "phase";
    span.origin = obs::SpanEvent::Origin::kDevice;
    span.lane = exec->lane_base() + stream;
    span.start_seconds = t0;
    span.end_seconds = exec->StreamTime(stream);
    span.is_phase = true;
    exec->span_recorder()->RecordSpan(span);
  }
}

void ExpectSameSpans(const obs::TraceRecorder& a, const obs::TraceRecorder& b) {
  const auto ea = a.events();
  const auto eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].name, eb[i].name) << i;
    EXPECT_EQ(ea[i].lane, eb[i].lane) << i;
    EXPECT_EQ(ea[i].origin, eb[i].origin) << i;
    EXPECT_EQ(ea[i].start_seconds, eb[i].start_seconds) << i;
    EXPECT_EQ(ea[i].end_seconds, eb[i].end_seconds) << i;
    EXPECT_EQ(ea[i].flops, eb[i].flops) << i;
    EXPECT_EQ(ea[i].bytes, eb[i].bytes) << i;
    EXPECT_EQ(ea[i].is_transfer, eb[i].is_transfer) << i;
    EXPECT_EQ(ea[i].is_phase, eb[i].is_phase) << i;
  }
}

void ExpectSameCounters(const ExecutorCounters& a, const ExecutorCounters& b) {
  EXPECT_EQ(a.launches, b.launches);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_h2d, b.bytes_h2d);
  EXPECT_EQ(a.bytes_d2h, b.bytes_d2h);
  EXPECT_EQ(a.kernel_values_computed, b.kernel_values_computed);
  EXPECT_EQ(a.kernel_values_reused, b.kernel_values_reused);
  EXPECT_EQ(a.allocation_failures, b.allocation_failures);
  EXPECT_EQ(a.peak_bytes_in_use, b.peak_bytes_in_use);
}

TEST(ForkJoinTest, ReplayMatchesDirectSerialRun) {
  obs::TraceRecorder serial_trace, forked_trace;

  SimExecutor serial(ExecutorModel::TeslaP100());
  serial.SetSpanRecorder(&serial_trace);
  ChargeWorkload(&serial, kDefaultStream);

  SimExecutor main(ExecutorModel::TeslaP100());
  main.SetSpanRecorder(&forked_trace);
  ExecEventLog log;
  const double base = main.StreamTime(kDefaultStream);
  SimExecutor satellite = ForkSatellite(&main, kDefaultStream, &log, nullptr);
  ChargeWorkload(&satellite, kDefaultStream);
  JoinSatellite(log, satellite, base, &main, kDefaultStream);

  EXPECT_EQ(main.StreamTime(kDefaultStream), serial.StreamTime(kDefaultStream));
  EXPECT_EQ(main.NowSeconds(), serial.NowSeconds());
  ExpectSameCounters(main.counters(), serial.counters());
  ExpectSameSpans(forked_trace, serial_trace);
}

TEST(ForkJoinTest, ReplayOnNonDefaultStreamShiftsPhaseSpans) {
  // Fork from a secondary stream whose timeline has already advanced; the
  // satellite starts at that position, so replayed spans land exactly where a
  // serial run would put them (offset 0 at join).
  obs::TraceRecorder serial_trace, forked_trace;

  SimExecutor serial(ExecutorModel::TeslaP100());
  serial.SetSpanRecorder(&serial_trace);
  const StreamId ss = serial.CreateStream(0.25);
  serial.AdvanceStream(ss, 2.0e-3);
  const double serial_fork_point = serial.StreamTime(ss);
  ChargeWorkload(&serial, ss);

  SimExecutor main(ExecutorModel::TeslaP100());
  main.SetSpanRecorder(&forked_trace);
  const StreamId ms = main.CreateStream(0.25);
  main.AdvanceStream(ms, 2.0e-3);
  ExecEventLog log;
  const double base = main.StreamTime(ms);
  SimExecutor satellite = ForkSatellite(&main, ms, &log, nullptr);
  // The satellite's single stream mirrors the source stream's share and
  // position, so durations (which depend on unit_share) match too.
  EXPECT_EQ(satellite.StreamTime(kDefaultStream), serial_fork_point);
  ChargeWorkload(&satellite, kDefaultStream);
  JoinSatellite(log, satellite, base, &main, ms);

  EXPECT_EQ(main.StreamTime(ms), serial.StreamTime(ss));
  ExpectSameCounters(main.counters(), serial.counters());
  ExpectSameSpans(forked_trace, serial_trace);
}

TEST(ForkJoinTest, JoinMergesSatelliteLocalCounters) {
  SimExecutor main(ExecutorModel::TeslaP100());
  ExecEventLog log;
  SimExecutor satellite = ForkSatellite(&main, kDefaultStream, &log, nullptr);
  // Counters the replay cannot reconstruct are carried over additively
  // (kernel values, allocation failures) or by max (peak memory).
  satellite.counters().kernel_values_computed += 123;
  satellite.counters().kernel_values_reused += 45;
  satellite.counters().allocation_failures += 2;
  {
    auto alloc = ValueOrDie(satellite.Allocate(1 << 20));
    EXPECT_GE(satellite.counters().peak_bytes_in_use, size_t{1} << 20);
  }
  JoinSatellite(log, satellite, 0.0, &main, kDefaultStream);
  EXPECT_EQ(main.counters().kernel_values_computed, 123);
  EXPECT_EQ(main.counters().kernel_values_reused, 45);
  EXPECT_EQ(main.counters().allocation_failures, 2);
  EXPECT_GE(main.counters().peak_bytes_in_use, size_t{1} << 20);
}

TEST(ForkJoinTest, SatelliteSeesMainMemoryLedger) {
  // Allocation decisions on the satellite must match what a serial run on the
  // main executor would see: the live bytes_in_use is inherited at fork.
  SimExecutor main(ExecutorModel::TeslaP100());
  auto held = ValueOrDie(main.Allocate(8 << 20));
  ExecEventLog log;
  SimExecutor satellite = ForkSatellite(&main, kDefaultStream, &log, nullptr);
  EXPECT_EQ(satellite.bytes_in_use(), main.bytes_in_use());
}

TEST(SubmitParallelForTest, ThreadCountDoesNotChangeOutputOrSimTime) {
  constexpr int64_t kN = 10000;
  auto run = [&](int host_threads, std::vector<double>* out) -> double {
    ExecutorModel model = ExecutorModel::TeslaP100();
    model.host_threads = host_threads;
    SimExecutor exec(std::move(model));
    out->assign(static_cast<size_t>(kN), 0.0);
    SubmitParallelFor(
        &exec, kDefaultStream, kN, /*flops_per_item=*/10.0,
        /*bytes_per_item=*/16.0,
        [out](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            (*out)[static_cast<size_t>(i)] =
                static_cast<double>(i) * 1.000000001 + 0.5;
          }
        },
        /*min_chunk=*/64);
    exec.SynchronizeAll();
    return exec.NowSeconds();
  };
  std::vector<double> serial_out, mt_out;
  const double serial_time = run(1, &serial_out);
  const double mt_time = run(4, &mt_out);
  EXPECT_EQ(serial_time, mt_time);
  ASSERT_EQ(serial_out.size(), mt_out.size());
  EXPECT_EQ(0, std::memcmp(serial_out.data(), mt_out.data(),
                           serial_out.size() * sizeof(double)));
}

TEST(SubmitParallelForTest, BorrowedPoolRunsBodies) {
  // Satellites borrow the caller's pool rather than spawning threads; the
  // fork wiring must hand the pool through to HostParallelFor.
  ThreadPool pool(3);
  SimExecutor main(ExecutorModel::TeslaP100());
  ExecEventLog log;
  SimExecutor satellite = ForkSatellite(&main, kDefaultStream, &log, &pool);
  EXPECT_EQ(satellite.host_pool(), &pool);
  std::vector<double> out(5000, 0.0);
  SubmitParallelFor(
      &satellite, kDefaultStream, static_cast<int64_t>(out.size()),
      /*flops_per_item=*/1.0, /*bytes_per_item=*/8.0,
      [&out](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          out[static_cast<size_t>(i)] = static_cast<double>(i);
        }
      },
      /*min_chunk=*/16);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i));
  }
}

}  // namespace
}  // namespace gmpsvm
