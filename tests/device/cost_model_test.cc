// Property tests on the simulated cost model: duration must respond to each
// input the way a physical device does (monotonicity, saturation, roofline
// switching), across both executor presets. These are the assumptions the
// whole benchmark suite leans on.

#include <gtest/gtest.h>

#include "device/executor.h"
#include "device/sim_model.h"

namespace gmpsvm {
namespace {

class CostModelTest : public ::testing::TestWithParam<const char*> {
 protected:
  ExecutorModel Model() const {
    if (std::string(GetParam()) == "gpu") return ExecutorModel::TeslaP100();
    return ExecutorModel::XeonCpu(40);
  }
};

TEST_P(CostModelTest, DurationMonotoneInFlops) {
  SimExecutor exec(Model());
  TaskCost cost;
  cost.parallel_items = 1 << 20;
  double prev = 0.0;
  for (double flops = 1e6; flops <= 1e12; flops *= 10) {
    cost.flops = flops;
    const double d = exec.TaskDuration(cost, 1.0);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_P(CostModelTest, DurationMonotoneInBytes) {
  SimExecutor exec(Model());
  TaskCost cost;
  cost.parallel_items = 1 << 20;
  double prev = 0.0;
  for (double bytes = 1e3; bytes <= 1e12; bytes *= 10) {
    cost.bytes_read = bytes;
    const double d = exec.TaskDuration(cost, 1.0);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_P(CostModelTest, MoreUnitsNeverSlower) {
  SimExecutor exec(Model());
  TaskCost cost;
  cost.flops = 1e9;
  cost.bytes_read = 1e8;
  cost.parallel_items = 1 << 20;
  double prev = exec.TaskDuration(cost, 0.05);
  for (double share : {0.1, 0.25, 0.5, 1.0}) {
    const double d = exec.TaskDuration(cost, share);
    EXPECT_LE(d, prev + 1e-15);
    prev = d;
  }
}

TEST_P(CostModelTest, ParallelismSaturates) {
  // Past full occupancy, more items at fixed total work do not speed up.
  SimExecutor exec(Model());
  TaskCost cost;
  cost.flops = 1e9;
  const int64_t saturating =
      static_cast<int64_t>(Model().compute_units) * Model().block_size * 4;
  cost.parallel_items = saturating;
  const double at_saturation = exec.TaskDuration(cost, 1.0);
  cost.parallel_items = saturating * 64;
  EXPECT_DOUBLE_EQ(exec.TaskDuration(cost, 1.0), at_saturation);
}

TEST_P(CostModelTest, LaunchOverheadIsTheFloor) {
  SimExecutor exec(Model());
  TaskCost nothing;
  EXPECT_DOUBLE_EQ(exec.TaskDuration(nothing, 1.0), Model().launch_overhead_sec);
}

TEST_P(CostModelTest, RooflineSwitchesBetweenComputeAndMemory) {
  SimExecutor exec(Model());
  // Compute-bound: huge flops, tiny bytes.
  TaskCost compute_bound;
  compute_bound.flops = 1e12;
  compute_bound.bytes_read = 8;
  compute_bound.parallel_items = 1 << 22;
  // Memory-bound: tiny flops, huge bytes.
  TaskCost memory_bound;
  memory_bound.flops = 8;
  memory_bound.bytes_read = 1e12;
  memory_bound.parallel_items = 1 << 22;

  const ExecutorModel model = Model();
  const double compute_time = exec.TaskDuration(compute_bound, 1.0);
  const double memory_time = exec.TaskDuration(memory_bound, 1.0);
  EXPECT_NEAR(compute_time,
              model.launch_overhead_sec +
                  1e12 / (model.flops_per_unit * model.compute_units),
              compute_time * 0.01);
  EXPECT_NEAR(memory_time, model.launch_overhead_sec + 1e12 / model.mem_bandwidth,
              memory_time * 0.01);
}

INSTANTIATE_TEST_SUITE_P(BothPresets, CostModelTest,
                         ::testing::Values("gpu", "cpu"),
                         [](const auto& info) { return std::string(info.param); });

TEST(CostModelCrossTest, GpuBeatsCpuOnLargeParallelWork) {
  SimExecutor gpu(ExecutorModel::TeslaP100());
  SimExecutor cpu(ExecutorModel::XeonCpu(40));
  TaskCost big;
  big.flops = 1e12;
  big.bytes_read = 1e10;
  big.parallel_items = 1 << 22;
  EXPECT_LT(gpu.TaskDuration(big, 1.0), cpu.TaskDuration(big, 1.0));
}

TEST(CostModelCrossTest, CpuBeatsGpuOnTinySerialWork) {
  // Launch overhead makes the GPU lose on micro-tasks — the effect behind
  // the News20 baseline anomaly (Table 3, both here and in the paper).
  SimExecutor gpu(ExecutorModel::TeslaP100());
  SimExecutor cpu(ExecutorModel::XeonCpu(1));
  TaskCost tiny;
  tiny.flops = 100.0;
  tiny.parallel_items = 1;
  EXPECT_GT(gpu.TaskDuration(tiny, 1.0), cpu.TaskDuration(tiny, 1.0));
}

TEST(CostModelCrossTest, XeonThreadScalingIsSublinear) {
  // 40 threads on 20 cores must help, but by less than 40x (the paper's
  // LibSVM-with-OpenMP speedups are 4-10x).
  const ExecutorModel t1 = ExecutorModel::XeonCpu(1);
  const ExecutorModel t40 = ExecutorModel::XeonCpu(40);
  EXPECT_GT(t40.compute_units, 4.0 * t1.compute_units);
  EXPECT_LT(t40.compute_units, 20.0 * t1.compute_units);
}

}  // namespace
}  // namespace gmpsvm
