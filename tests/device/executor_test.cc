#include "device/executor.h"

#include <gtest/gtest.h>

#include "device/sim_model.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

ExecutorModel SimpleModel() {
  ExecutorModel m;
  m.name = "test";
  m.compute_units = 4;
  m.flops_per_unit = 100.0;   // 100 flops/sec per unit
  m.mem_bandwidth = 1000.0;   // bytes/sec
  m.min_bw_fraction = 0.25;
  m.launch_overhead_sec = 1.0;
  m.transfer_bandwidth = 10.0;
  m.transfers_are_free = false;
  m.memory_budget_bytes = 1000;
  m.block_size = 1;
  return m;
}

TEST(SimExecutorTest, StartsAtTimeZero) {
  SimExecutor exec(SimpleModel());
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 0.0);
}

TEST(SimExecutorTest, SubmitRunsBodyAndAdvancesClock) {
  SimExecutor exec(SimpleModel());
  bool ran = false;
  TaskCost cost;
  cost.flops = 400.0;  // 400 flops / (100 f/s * 4 units) = 1s compute
  cost.parallel_items = 100;
  exec.Submit(kDefaultStream, cost, [&ran] { ran = true; });
  EXPECT_TRUE(ran);
  // 1s launch overhead + 1s compute.
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 2.0);
  EXPECT_EQ(exec.counters().launches, 1);
  EXPECT_DOUBLE_EQ(exec.counters().flops, 400.0);
}

TEST(SimExecutorTest, RooflineTakesMaxOfComputeAndMemory) {
  SimExecutor exec(SimpleModel());
  TaskCost cost;
  cost.flops = 4.0;          // compute: 0.01 s on 4 units
  cost.bytes_read = 2000.0;  // memory: 2000/1000 = 2 s at full bandwidth
  cost.parallel_items = 100;
  exec.Charge(kDefaultStream, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 1.0 + 2.0);
}

TEST(SimExecutorTest, FewParallelItemsUnderutilize) {
  SimExecutor exec(SimpleModel());
  // One item can use only one of the 4 units: 400/100 = 4s.
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 1;
  exec.Charge(kDefaultStream, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 1.0 + 4.0);
}

TEST(SimExecutorTest, StreamsOverlapInSimulatedTime) {
  SimExecutor exec(SimpleModel());
  StreamId s1 = exec.CreateStream(0.5);  // 2 units each
  StreamId s2 = exec.CreateStream(0.5);
  TaskCost cost;
  cost.flops = 200.0;  // on 2 units: 1s compute
  cost.parallel_items = 100;
  exec.Charge(s1, cost);
  exec.Charge(s2, cost);
  // Both streams finish at 2.0 (overlap), not 4.0 (serial).
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 2.0);
}

TEST(SimExecutorTest, SequentialTasksOnOneStreamAccumulate) {
  SimExecutor exec(SimpleModel());
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  exec.Charge(kDefaultStream, cost);
  exec.Charge(kDefaultStream, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 4.0);
}

TEST(SimExecutorTest, ConcurrencyWinsWhenTasksUnderutilize) {
  // The MP-SVM-level claim: two small tasks run faster on two half-device
  // streams than serially on the whole device, because neither can use more
  // than one unit anyway.
  TaskCost small;
  small.flops = 100.0;
  small.parallel_items = 1;  // can occupy only 1 unit

  SimExecutor serial(SimpleModel());
  serial.Charge(kDefaultStream, small);
  serial.Charge(kDefaultStream, small);
  const double serial_time = serial.NowSeconds();

  SimExecutor concurrent(SimpleModel());
  StreamId s1 = concurrent.CreateStream(0.5);
  StreamId s2 = concurrent.CreateStream(0.5);
  concurrent.Charge(s1, small);
  concurrent.Charge(s2, small);
  const double concurrent_time = concurrent.NowSeconds();

  EXPECT_LT(concurrent_time, serial_time);
  EXPECT_DOUBLE_EQ(concurrent_time, serial_time / 2.0);
}

TEST(SimExecutorTest, NewStreamStartsAtCurrentMakespan) {
  SimExecutor exec(SimpleModel());
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  exec.Charge(kDefaultStream, cost);  // makespan 2.0
  StreamId s = exec.CreateStream(1.0);
  exec.Charge(s, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 4.0);  // not 2.0
}

TEST(SimExecutorTest, StreamWaitCreatesDependency) {
  SimExecutor exec(SimpleModel());
  StreamId s1 = exec.CreateStream(1.0);
  StreamId s2 = exec.CreateStream(1.0);
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  exec.Charge(s1, cost);    // s1 busy until 2.0
  exec.StreamWait(s2, s1);  // s2 must wait for s1
  exec.Charge(s2, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 4.0);
}

TEST(SimExecutorTest, TransferChargesPcie) {
  SimExecutor exec(SimpleModel());
  exec.Transfer(kDefaultStream, 100.0, TransferDirection::kHostToDevice);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 10.0);  // 100 B / 10 B/s
  EXPECT_DOUBLE_EQ(exec.counters().bytes_h2d, 100.0);
}

TEST(SimExecutorTest, TransfersFreeOnCpuModel) {
  ExecutorModel m = SimpleModel();
  m.transfers_are_free = true;
  SimExecutor exec(m);
  exec.Transfer(kDefaultStream, 1e9, TransferDirection::kDeviceToHost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(exec.counters().bytes_d2h, 1e9);
}

TEST(SimExecutorTest, AllocationBudgetEnforced) {
  SimExecutor exec(SimpleModel());  // 1000-byte budget
  auto a = exec.Allocate(600);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(exec.bytes_in_use(), 600u);

  auto b = exec.Allocate(600);
  EXPECT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsOutOfMemory());
  EXPECT_EQ(exec.counters().allocation_failures, 1);

  a->Release();
  EXPECT_EQ(exec.bytes_in_use(), 0u);
  auto c = exec.Allocate(600);
  EXPECT_TRUE(c.ok());
}

TEST(SimExecutorTest, AllocationRaiiReleasesOnDestruction) {
  SimExecutor exec(SimpleModel());
  {
    auto a = ValueOrDie(exec.Allocate(500));
    EXPECT_EQ(exec.bytes_in_use(), 500u);
  }
  EXPECT_EQ(exec.bytes_in_use(), 0u);
  EXPECT_EQ(exec.counters().peak_bytes_in_use, 500u);
}

TEST(SimExecutorTest, AllocationMoveTransfersOwnership) {
  SimExecutor exec(SimpleModel());
  auto a = ValueOrDie(exec.Allocate(300));
  DeviceAllocation b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(exec.bytes_in_use(), 300u);
  b.Release();
  EXPECT_EQ(exec.bytes_in_use(), 0u);
}

TEST(SimExecutorTest, SynchronizeAllJoinsStreams) {
  SimExecutor exec(SimpleModel());
  StreamId s1 = exec.CreateStream(1.0);
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  exec.Charge(s1, cost);
  exec.SynchronizeAll();
  // Default stream now also at makespan: serial work starts after sync.
  exec.Charge(kDefaultStream, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 4.0);
}

TEST(SimExecutorTest, BlockSizeGatesOccupancy) {
  ExecutorModel m = SimpleModel();
  m.block_size = 256;  // GPU-like
  SimExecutor exec(m);
  // 256 items = 1 block: only 1 of 4 units usable.
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 256;
  EXPECT_DOUBLE_EQ(exec.TaskDuration(cost, 1.0), 1.0 + 4.0);
  // 1024 items = 4 blocks: all 4 units usable.
  cost.parallel_items = 1024;
  EXPECT_DOUBLE_EQ(exec.TaskDuration(cost, 1.0), 1.0 + 1.0);
}

TEST(SimExecutorTest, MinBandwidthFractionFloor) {
  SimExecutor exec(SimpleModel());
  // 1 item on 4 units: usable share would be 1/4, min fraction is 0.25 — same.
  // Check a memory-bound single-item task gets the floor bandwidth.
  TaskCost cost;
  cost.bytes_read = 250.0;
  cost.parallel_items = 1;
  // bandwidth = 1000 * 0.25 = 250 B/s -> 1 s + launch 1 s.
  EXPECT_DOUBLE_EQ(exec.TaskDuration(cost, 1.0), 2.0);
}

TEST(SimExecutorTest, PresetsAreSane) {
  ExecutorModel gpu = ExecutorModel::TeslaP100();
  EXPECT_EQ(gpu.compute_units, 56);
  EXPECT_EQ(gpu.memory_budget_bytes, 12ull << 30);
  EXPECT_FALSE(gpu.transfers_are_free);

  ExecutorModel cpu1 = ExecutorModel::XeonCpu(1);
  EXPECT_DOUBLE_EQ(cpu1.compute_units, 1.0);
  EXPECT_TRUE(cpu1.transfers_are_free);

  ExecutorModel cpu40 = ExecutorModel::XeonCpu(40);
  EXPECT_GT(cpu40.compute_units, 5.0);
  EXPECT_LT(cpu40.compute_units, 20.0);

  // GPU has far more aggregate throughput than the 40-thread CPU.
  EXPECT_GT(gpu.compute_units * gpu.flops_per_unit,
            3.0 * cpu40.compute_units * cpu40.flops_per_unit);
}

TEST(SimExecutorFaultTest, TrySubmitWithoutInjectorRunsNormally) {
  SimExecutor exec(SimpleModel());
  bool ran = false;
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  GMP_CHECK_OK(exec.TrySubmit(kDefaultStream, cost, [&ran] { ran = true; }));
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 2.0);
}

TEST(SimExecutorFaultTest, InjectedSubmitFailureSkipsBodyButChargesStream) {
  SimExecutor exec(SimpleModel());
  fault::FaultPlan plan;
  plan.submit_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  exec.SetFaultInjector(&injector);

  bool ran = false;
  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  const Status status =
      exec.TrySubmit(kDefaultStream, cost, [&ran] { ran = true; });
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_FALSE(ran);  // the body never observes a failed launch
  // A failed launch still burns its slot on the simulated timeline.
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 2.0);
  EXPECT_EQ(injector.injected(fault::Site::kDeviceSubmit), 1);
}

TEST(SimExecutorFaultTest, InjectedTransferFailureStillChargesWire) {
  SimExecutor exec(SimpleModel());
  fault::FaultPlan plan;
  plan.transfer_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  exec.SetFaultInjector(&injector);

  const Status status =
      exec.TryTransfer(kDefaultStream, 100.0, TransferDirection::kHostToDevice);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 10.0);  // the wire was busy anyway
}

TEST(SimExecutorFaultTest, InjectedAllocFailureHealsAtConsecutiveCap) {
  SimExecutor exec(SimpleModel());
  fault::FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_consecutive_per_site = 2;
  fault::FaultInjector injector(plan);
  exec.SetFaultInjector(&injector);

  EXPECT_TRUE(exec.Allocate(100).status().IsUnavailable());
  EXPECT_TRUE(exec.Allocate(100).status().IsUnavailable());
  auto third = exec.Allocate(100);  // the cap forces this one through
  GMP_CHECK_OK(third.status());
  EXPECT_EQ(exec.bytes_in_use(), 100u);
}

TEST(SimExecutorFaultTest, LatencySpikeStallsTheStream) {
  SimExecutor exec(SimpleModel());
  fault::FaultPlan plan;
  plan.latency_spike_prob = 1.0;
  plan.latency_spike_seconds = 0.5;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  exec.SetFaultInjector(&injector);

  TaskCost cost;
  cost.flops = 400.0;
  cost.parallel_items = 100;
  exec.Charge(kDefaultStream, cost);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 2.0 + 0.5);
}

TEST(SimExecutorFaultTest, AdvanceStreamAddsIdleSimTime) {
  SimExecutor exec(SimpleModel());
  exec.AdvanceStream(kDefaultStream, 1.5, "retry_backoff");
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 1.5);
  exec.AdvanceStream(kDefaultStream, 0.0);
  EXPECT_DOUBLE_EQ(exec.NowSeconds(), 1.5);
}

TEST(SimExecutorFaultTest, DetachingInjectorRestoresCleanBehaviour) {
  SimExecutor exec(SimpleModel());
  fault::FaultPlan plan;
  plan.alloc_fail_prob = 1.0;
  plan.max_consecutive_per_site = 0;
  fault::FaultInjector injector(plan);
  exec.SetFaultInjector(&injector);
  EXPECT_TRUE(exec.Allocate(100).status().IsUnavailable());
  exec.SetFaultInjector(nullptr);
  GMP_CHECK_OK(exec.Allocate(100).status());
}

TEST(SubmitParallelForTest, ExecutesBodyOnceOverRange) {
  SimExecutor exec(SimpleModel());
  std::vector<int> hits(50, 0);
  SubmitParallelFor(&exec, kDefaultStream, 50, /*flops_per_item=*/2.0,
                    /*bytes_per_item=*/0.0, [&hits](int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
                    });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_DOUBLE_EQ(exec.counters().flops, 100.0);
}

TEST(SubmitParallelForTest, EmptyRangeIsNoop) {
  SimExecutor exec(SimpleModel());
  SubmitParallelFor(&exec, kDefaultStream, 0, 1.0, 1.0,
                    [](int64_t, int64_t) { FAIL() << "body should not run"; });
  EXPECT_EQ(exec.counters().launches, 0);
}

}  // namespace
}  // namespace gmpsvm
