// Distributed (intra-pair sharded) SMO: the solver's byte-identity contract
// against the single-device BatchSmoSolver — solution, f indicators, and
// SolverStats counters — for any shard count and placement, clean and under
// a chaos fault plan on the coordinator. Plus unit coverage for the network
// cost model (topology.h): link pricing, recursive-doubling allreduce
// rounds, and intra/inter byte classification.

#include "dist/dist_solver.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "dist/topology.h"
#include "fault/fault_injector.h"
#include "solver/batch_smo_solver.h"

namespace gmpsvm::dist {
namespace {

using ::gmpsvm::testing::BinaryBlobs;
using ::gmpsvm::testing::MakeBinaryBlobs;
using ::gmpsvm::testing::MakeProblem;

KernelParams Gaussian(double gamma) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.gamma = gamma;
  return p;
}

BatchSmoOptions SmallOptions(int ws = 32, int q = 16) {
  BatchSmoOptions opts;
  opts.working_set.ws_size = ws;
  opts.working_set.q = q;
  return opts;
}

// --- Topology unit tests ----------------------------------------------------

TEST(ClusterTopologyTest, ContiguousSpreadsRemainderToEarlyNodes) {
  const ClusterTopology topo = ClusterTopology::Contiguous(
      3, 8, NvlinkClassLink(), NetworkClassLink());
  ASSERT_TRUE(topo.Validate().ok());
  // 8 devices over 3 nodes: 3 + 3 + 2.
  EXPECT_EQ(topo.node_of_device,
            (std::vector<int>{0, 0, 0, 1, 1, 1, 2, 2}));
  EXPECT_TRUE(topo.SameNode(0, 2));
  EXPECT_FALSE(topo.SameNode(2, 3));
  EXPECT_EQ(topo.LinkBetween(0, 1).bandwidth_bytes_per_sec,
            NvlinkClassLink().bandwidth_bytes_per_sec);
  EXPECT_EQ(topo.LinkBetween(0, 7).bandwidth_bytes_per_sec,
            NetworkClassLink().bandwidth_bytes_per_sec);
}

TEST(ClusterTopologyTest, ValidateRejectsBadShapes) {
  ClusterTopology topo;
  topo.num_nodes = 0;
  EXPECT_FALSE(topo.Validate().ok());
  topo.num_nodes = 2;
  EXPECT_FALSE(topo.Validate().ok());  // no devices
  topo.node_of_device = {0, 5};
  EXPECT_FALSE(topo.Validate().ok());  // node out of range
  topo.node_of_device = {0, 1};
  ASSERT_TRUE(topo.Validate().ok());
  topo.intra_node.bandwidth_bytes_per_sec = 0.0;
  EXPECT_FALSE(topo.Validate().ok());
}

TEST(EstimateAllreduceTest, RecursiveDoublingRoundsAndByteClasses) {
  // 2 nodes x 2 devices: one all-intra round (0<->1, 2<->3 under stride 1)
  // and one all-inter round (0<->2, 1<->3 under stride 2).
  const ClusterTopology topo = ClusterTopology::Contiguous(
      2, 4, NvlinkClassLink(), NetworkClassLink());
  const std::vector<int> group = {0, 1, 2, 3};
  const double payload = 1e6;
  const AllreduceCost cost = EstimateAllreduce(topo, group, payload);
  EXPECT_EQ(cost.rounds, 2);
  // Two pairs per round, 2 * payload each.
  EXPECT_DOUBLE_EQ(cost.intra_node_bytes, 4.0 * payload);
  EXPECT_DOUBLE_EQ(cost.inter_node_bytes, 4.0 * payload);
  // Each round is priced at its slowest link.
  EXPECT_DOUBLE_EQ(cost.seconds,
                   NvlinkClassLink().TransferSeconds(payload) +
                       NetworkClassLink().TransferSeconds(payload));
  // Degenerate groups cost nothing.
  const std::vector<int> solo = {1};
  EXPECT_EQ(EstimateAllreduce(topo, solo, payload).rounds, 0);
}

TEST(ContiguousShardRangesTest, CoversWithoutOverlapForAwkwardSplits) {
  for (int64_t n : {1, 2, 7, 103}) {
    for (int shards : {1, 2, 3, 4}) {
      const auto ranges = ContiguousShardRanges(n, shards);
      ASSERT_EQ(static_cast<int>(ranges.size()), shards);
      EXPECT_EQ(ranges.front().first, 0);
      EXPECT_EQ(ranges.back().second, n);
      for (size_t j = 1; j < ranges.size(); ++j) {
        EXPECT_EQ(ranges[j].first, ranges[j - 1].second);
      }
    }
  }
}

// --- Byte-identity against the single-device solver -------------------------

struct Solved {
  BinarySolution solution;
  SolverStats stats;
  DistStats dist;
};

Solved SolveReference(const BinaryProblem& p, const BatchSmoOptions& opts,
                      fault::FaultInjector* injector) {
  KernelComputer kc(p.data, p.kernel);
  SimExecutor exec(ExecutorModel::TeslaP100());
  exec.SetFaultInjector(injector);
  Solved out;
  out.solution = ValueOrDie(BatchSmoSolver(opts).Solve(p, kc, &exec,
                                                       kDefaultStream,
                                                       &out.stats));
  return out;
}

Solved SolveSharded(const BinaryProblem& p, const BatchSmoOptions& opts,
                    const ClusterTopology& topo, int num_shards,
                    fault::FaultInjector* injector) {
  KernelComputer kc(p.data, p.kernel);
  cluster::SimCluster devices =
      cluster::SimCluster::Homogeneous(topo.num_devices(),
                                       ExecutorModel::TeslaP100());
  const auto ranges = ContiguousShardRanges(p.n(), num_shards);
  std::vector<Shard> shards(static_cast<size_t>(num_shards));
  for (int j = 0; j < num_shards; ++j) {
    // Spread shards over the topology's devices round-robin so multi-node
    // placements are exercised whenever the topology has several nodes.
    const int d = j % topo.num_devices();
    shards[static_cast<size_t>(j)] = Shard{devices.device(d), kDefaultStream,
                                           d, ranges[static_cast<size_t>(j)].first,
                                           ranges[static_cast<size_t>(j)].second};
  }
  shards[0].executor->SetFaultInjector(injector);
  Solved out;
  out.solution = ValueOrDie(DistSmoSolver(opts, &topo).Solve(
      p, kc, shards, &out.stats, &out.dist));
  return out;
}

void ExpectBitwiseEqual(const Solved& a, const Solved& b,
                        const std::string& what) {
  ASSERT_EQ(a.solution.alpha.size(), b.solution.alpha.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.solution.alpha.data(), b.solution.alpha.data(),
                           a.solution.alpha.size() * sizeof(double)))
      << what;
  ASSERT_EQ(a.solution.f.size(), b.solution.f.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.solution.f.data(), b.solution.f.data(),
                           a.solution.f.size() * sizeof(double)))
      << what;
  EXPECT_EQ(a.solution.bias, b.solution.bias) << what;
  EXPECT_EQ(a.solution.objective, b.solution.objective) << what;
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << what;
  EXPECT_EQ(a.stats.outer_rounds, b.stats.outer_rounds) << what;
  EXPECT_EQ(a.stats.kernel_rows_computed, b.stats.kernel_rows_computed) << what;
  EXPECT_EQ(a.stats.kernel_rows_reused, b.stats.kernel_rows_reused) << what;
  EXPECT_EQ(a.stats.kernel_row_retries, b.stats.kernel_row_retries) << what;
  EXPECT_EQ(a.stats.alloc_retries, b.stats.alloc_retries) << what;
  EXPECT_EQ(a.stats.rows_poisoned, b.stats.rows_poisoned) << what;
}

TEST(DistSmoSolverTest, CleanSolveBitwiseMatchesSingleDevice) {
  BinaryBlobs blobs = MakeBinaryBlobs(45, 5, 1.4, 17, /*noise=*/1.2);
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.3));
  const BatchSmoOptions opts = SmallOptions();
  const Solved ref = SolveReference(p, opts, nullptr);
  for (int shards : {1, 2, 3, 4}) {
    const ClusterTopology topo = ClusterTopology::Contiguous(
        2, 4, NvlinkClassLink(), NetworkClassLink());
    const Solved sharded = SolveSharded(p, opts, topo, shards, nullptr);
    ExpectBitwiseEqual(ref, sharded, "shards=" + std::to_string(shards));
    if (shards >= 2) {
      EXPECT_GT(sharded.dist.allreduces, 0) << shards;
      EXPECT_GT(sharded.dist.merge_seconds, 0.0) << shards;
    }
  }
}

TEST(DistSmoSolverTest, PlacementChangesOnlyTheLinkTraffic) {
  // Same shard count on a single node vs across two nodes: identical
  // numbers, different byte classification.
  BinaryBlobs blobs = MakeBinaryBlobs(30, 4, 1.5, 23);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.4));
  const BatchSmoOptions opts = SmallOptions();
  const ClusterTopology one_node = ClusterTopology::SingleNode(2);
  const ClusterTopology two_nodes = ClusterTopology::Contiguous(
      2, 2, NvlinkClassLink(), NetworkClassLink());
  const Solved local = SolveSharded(p, opts, one_node, 2, nullptr);
  const Solved spread = SolveSharded(p, opts, two_nodes, 2, nullptr);
  ExpectBitwiseEqual(local, spread, "one node vs two");
  EXPECT_GT(local.dist.intra_node_bytes, 0.0);
  EXPECT_EQ(local.dist.inter_node_bytes, 0.0);
  EXPECT_EQ(spread.dist.intra_node_bytes, 0.0);
  EXPECT_GT(spread.dist.inter_node_bytes, 0.0);
  // The slower inter-node link makes the same merges cost more sim time.
  EXPECT_GT(spread.dist.merge_seconds, local.dist.merge_seconds);
}

TEST(DistSmoSolverTest, ChaosOnCoordinatorBitwiseMatchesSingleDevice) {
  // The same chaos plan attached to the single device and to the shard
  // coordinator: identical fault consult sequence, identical recovery,
  // identical counters (retries included).
  BinaryBlobs blobs = MakeBinaryBlobs(40, 4, 1.2, 31, /*noise=*/1.4);
  BinaryProblem p = MakeProblem(blobs, 2.0, Gaussian(0.3));
  BatchSmoOptions opts = SmallOptions();
  fault::FaultPlan plan = fault::FaultPlan::Chaos(11);
  plan.device_loss_prob = 0.0;  // device/node loss is the trainer's concern
  plan.node_loss_prob = 0.0;

  fault::FaultInjector ref_injector(plan, nullptr);
  const Solved ref = SolveReference(p, opts, &ref_injector);
  ASSERT_GT(ref.stats.kernel_row_retries + ref.stats.alloc_retries +
                ref.stats.rows_poisoned,
            0)
      << "chaos plan injected nothing; the parity check would be vacuous";

  for (int shards : {2, 4}) {
    const ClusterTopology topo = ClusterTopology::Contiguous(
        2, 4, NvlinkClassLink(), NetworkClassLink());
    fault::FaultInjector injector(plan, nullptr);
    const Solved sharded = SolveSharded(p, opts, topo, shards, &injector);
    ExpectBitwiseEqual(ref, sharded, "chaos shards=" + std::to_string(shards));
  }
}

TEST(DistSmoSolverTest, RejectsInjectorOnSecondaryShard) {
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 2.0, 5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  const ClusterTopology topo = ClusterTopology::SingleNode(2);
  cluster::SimCluster devices =
      cluster::SimCluster::Homogeneous(2, ExecutorModel::TeslaP100());
  fault::FaultPlan plan = fault::FaultPlan::Chaos(3);
  fault::FaultInjector injector(plan, nullptr);
  devices.device(1)->SetFaultInjector(&injector);
  const auto ranges = ContiguousShardRanges(p.n(), 2);
  std::vector<Shard> shards = {
      Shard{devices.device(0), kDefaultStream, 0, ranges[0].first,
            ranges[0].second},
      Shard{devices.device(1), kDefaultStream, 1, ranges[1].first,
            ranges[1].second}};
  auto result = DistSmoSolver(SmallOptions(), &topo)
                    .Solve(p, kc, shards, nullptr, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST(DistSmoSolverTest, RejectsNonCoveringShards) {
  BinaryBlobs blobs = MakeBinaryBlobs(20, 3, 2.0, 5);
  BinaryProblem p = MakeProblem(blobs, 1.0, Gaussian(0.5));
  KernelComputer kc(p.data, p.kernel);
  const ClusterTopology topo = ClusterTopology::SingleNode(2);
  cluster::SimCluster devices =
      cluster::SimCluster::Homogeneous(2, ExecutorModel::TeslaP100());
  std::vector<Shard> shards = {
      Shard{devices.device(0), kDefaultStream, 0, 0, p.n() - 1}};  // gap
  auto result = DistSmoSolver(SmallOptions(), &topo)
                    .Solve(p, kc, shards, nullptr, nullptr);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace gmpsvm::dist
