#include "prob/pairwise_coupling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gmpsvm {
namespace {

// Builds the r matrix from a ground-truth probability vector:
// r_st = p_s / (p_s + p_t) — the consistent case where problem (14) has a
// zero-residual solution equal to p.
std::vector<double> ConsistentR(const std::vector<double>& p) {
  const int k = static_cast<int>(p.size());
  std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
  for (int s = 0; s < k; ++s) {
    for (int t = 0; t < k; ++t) {
      if (s == t) continue;
      r[static_cast<size_t>(s) * k + t] = p[s] / (p[s] + p[t]);
    }
  }
  return r;
}

TEST(CouplingTest, RejectsBadInput) {
  CouplingOptions opts;
  EXPECT_FALSE(CoupleProbabilities(std::vector<double>{1.0}, 1, opts).ok());
  EXPECT_FALSE(CoupleProbabilities(std::vector<double>{1, 2, 3}, 2, opts).ok());
}

class CouplingMethodTest : public ::testing::TestWithParam<CouplingMethod> {};

TEST_P(CouplingMethodTest, RecoversConsistentDistribution) {
  const std::vector<double> truth = {0.5, 0.3, 0.2};
  CouplingOptions opts;
  opts.method = GetParam();
  auto p = ValueOrDie(CoupleProbabilities(ConsistentR(truth), 3, opts));
  ASSERT_EQ(p.size(), 3u);
  for (int s = 0; s < 3; ++s) EXPECT_NEAR(p[s], truth[s], 5e-3) << "class " << s;
}

TEST_P(CouplingMethodTest, SumsToOneAndNonNegative) {
  Rng rng(5);
  CouplingOptions opts;
  opts.method = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 2 + static_cast<int>(rng.UniformInt(8));
    std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
    for (int s = 0; s < k; ++s) {
      for (int t = s + 1; t < k; ++t) {
        const double v = rng.Uniform(0.02, 0.98);
        r[static_cast<size_t>(s) * k + t] = v;
        r[static_cast<size_t>(t) * k + s] = 1.0 - v;
      }
    }
    auto p = ValueOrDie(CoupleProbabilities(r, k, opts));
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(CouplingMethodTest, UniformPairwiseGivesUniformP) {
  const int k = 4;
  std::vector<double> r(static_cast<size_t>(k) * k, 0.5);
  CouplingOptions opts;
  opts.method = GetParam();
  auto p = ValueOrDie(CoupleProbabilities(r, k, opts));
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST_P(CouplingMethodTest, TwoClassesReduceToDirectEstimate) {
  std::vector<double> r = {0.0, 0.7, 0.3, 0.0};
  CouplingOptions opts;
  opts.method = GetParam();
  auto p = ValueOrDie(CoupleProbabilities(r, 2, opts));
  EXPECT_NEAR(p[0], 0.7, 1e-6);
  EXPECT_NEAR(p[1], 0.3, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, CouplingMethodTest,
                         ::testing::Values(CouplingMethod::kGaussianElimination,
                                           CouplingMethod::kIterative));

TEST(CouplingCrossMethodTest, MethodsAgreeOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int k = 3 + static_cast<int>(rng.UniformInt(7));
    std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
    for (int s = 0; s < k; ++s) {
      for (int t = s + 1; t < k; ++t) {
        const double v = rng.Uniform(0.05, 0.95);
        r[static_cast<size_t>(s) * k + t] = v;
        r[static_cast<size_t>(t) * k + s] = 1.0 - v;
      }
    }
    CouplingOptions direct;
    direct.method = CouplingMethod::kGaussianElimination;
    CouplingOptions iterative;
    iterative.method = CouplingMethod::kIterative;
    auto pd = ValueOrDie(CoupleProbabilities(r, k, direct));
    auto pi = ValueOrDie(CoupleProbabilities(r, k, iterative));
    // Same argmax always; probabilities close.
    const int am_d = static_cast<int>(std::max_element(pd.begin(), pd.end()) -
                                      pd.begin());
    const int am_i = static_cast<int>(std::max_element(pi.begin(), pi.end()) -
                                      pi.begin());
    EXPECT_EQ(am_d, am_i) << "trial " << trial;
    for (int s = 0; s < k; ++s) EXPECT_NEAR(pd[s], pi[s], 0.02);
  }
}

TEST(CouplingTest, PaperExampleOneFavorsClassOne) {
  // Example 1 of the paper: SVM_{1,2} gives class 1 prob 0.8; SVM_{1,3}
  // gives class 3 prob 0.4 (so class 1 gets 0.6); SVM_{2,3} gives class 2
  // prob 0.4. Class 1 must win the coupled distribution.
  std::vector<double> r = {
      0.0, 0.8, 0.6,  // r_1,2 = 0.8, r_1,3 = 0.6
      0.2, 0.0, 0.4,  // r_2,3 = 0.4
      0.4, 0.6, 0.0,
  };
  CouplingOptions opts;
  auto p = ValueOrDie(CoupleProbabilities(r, 3, opts));
  EXPECT_GT(p[0], p[1]);
  EXPECT_GT(p[0], p[2]);
  EXPECT_GT(p[0], 0.4);
}

TEST(CouplingBatchTest, MatchesSingleInstancePath) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  const std::vector<double> t1 = {0.6, 0.25, 0.15};
  const std::vector<double> t2 = {0.1, 0.1, 0.8};
  auto r1 = ConsistentR(t1);
  auto r2 = ConsistentR(t2);
  std::vector<double> batch;
  batch.insert(batch.end(), r1.begin(), r1.end());
  batch.insert(batch.end(), r2.begin(), r2.end());
  std::vector<double> out(6);
  CouplingOptions opts;
  GMP_CHECK_OK(CoupleBatch(batch, 3, 2, opts, &exec, kDefaultStream, out.data()));
  auto p1 = ValueOrDie(CoupleProbabilities(r1, 3, opts));
  auto p2 = ValueOrDie(CoupleProbabilities(r2, 3, opts));
  for (int s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(out[s], p1[static_cast<size_t>(s)]);
    EXPECT_DOUBLE_EQ(out[3 + s], p2[static_cast<size_t>(s)]);
  }
  EXPECT_GT(exec.NowSeconds(), 0.0);
}

TEST(CouplingBatchTest, RejectsSizeMismatch) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  std::vector<double> r(9, 0.5);
  std::vector<double> out(3);
  CouplingOptions opts;
  EXPECT_FALSE(
      CoupleBatch(r, 3, 2, opts, &exec, kDefaultStream, out.data()).ok());
}

TEST(CouplingTest, NearDegenerateRStaysFinite) {
  // r values at the extreme ends stress the linear solve.
  std::vector<double> r = {
      0.0, 0.999, 0.999,
      0.001, 0.0, 0.5,
      0.001, 0.5, 0.0,
  };
  CouplingOptions opts;
  auto p = ValueOrDie(CoupleProbabilities(r, 3, opts));
  double sum = 0.0;
  for (double v : p) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(p[0], 0.9);
}

// Consistency sweep: for every class count and every random ground-truth
// distribution, both methods recover the distribution that generated the
// pairwise estimates.
class CouplingConsistencySweep : public ::testing::TestWithParam<int> {};

TEST_P(CouplingConsistencySweep, RecoversGroundTruthAcrossK) {
  const int k = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> truth(static_cast<size_t>(k));
    double sum = 0.0;
    for (double& v : truth) {
      v = rng.Uniform(0.05, 1.0);
      sum += v;
    }
    for (double& v : truth) v /= sum;
    for (CouplingMethod method : {CouplingMethod::kGaussianElimination,
                                  CouplingMethod::kIterative}) {
      CouplingOptions opts;
      opts.method = method;
      auto p = ValueOrDie(CoupleProbabilities(ConsistentR(truth), k, opts));
      for (int s = 0; s < k; ++s) {
        EXPECT_NEAR(p[static_cast<size_t>(s)], truth[static_cast<size_t>(s)],
                    0.02)
            << "k=" << k << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K2to20, CouplingConsistencySweep,
                         ::testing::Values(2, 3, 4, 5, 8, 10, 15, 20));

}  // namespace
}  // namespace gmpsvm
