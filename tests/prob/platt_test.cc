#include "prob/platt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "device/executor.h"

namespace gmpsvm {
namespace {

SimExecutor MakeExecutor() { return SimExecutor(ExecutorModel::TeslaP100()); }

// Draws labels from a known sigmoid P(y=1|v) = 1/(1+exp(a*v+b)).
void SampleFromSigmoid(double a, double b, int n, uint64_t seed,
                       std::vector<double>* dec, std::vector<int8_t>* labels) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(-4.0, 4.0);
    const double p = 1.0 / (1.0 + std::exp(a * v + b));
    dec->push_back(v);
    labels->push_back(rng.Bernoulli(p) ? 1 : -1);
  }
}

TEST(SigmoidParamsTest, ProbabilityStableBothBranches) {
  SigmoidParams s{-2.0, 0.0};
  EXPECT_NEAR(s.Probability(0.0), 0.5, 1e-12);
  EXPECT_GT(s.Probability(10.0), 0.99);
  EXPECT_LT(s.Probability(-10.0), 0.01);
  // Extreme inputs stay finite and in (0,1).
  EXPECT_GT(s.Probability(1000.0), 0.0);
  EXPECT_LE(s.Probability(1000.0), 1.0);
  EXPECT_GE(s.Probability(-1000.0), 0.0);
  EXPECT_LT(s.Probability(-1000.0), 1.0);
}

TEST(FitSigmoidTest, RejectsBadInput) {
  SimExecutor exec = MakeExecutor();
  std::vector<double> dec = {1.0};
  std::vector<int8_t> labels = {1, -1};
  EXPECT_FALSE(
      FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream).ok());
  EXPECT_FALSE(FitSigmoid(std::vector<double>{}, std::vector<int8_t>{},
                          PlattOptions{}, &exec, kDefaultStream)
                   .ok());
}

TEST(FitSigmoidTest, RecoversKnownParameters) {
  std::vector<double> dec;
  std::vector<int8_t> labels;
  SampleFromSigmoid(-2.0, 0.3, 20000, 42, &dec, &labels);
  SimExecutor exec = MakeExecutor();
  auto params =
      ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream));
  EXPECT_NEAR(params.a, -2.0, 0.15);
  EXPECT_NEAR(params.b, 0.3, 0.15);
}

TEST(FitSigmoidTest, ProbabilityMonotoneInDecisionValue) {
  std::vector<double> dec;
  std::vector<int8_t> labels;
  SampleFromSigmoid(-1.5, 0.0, 5000, 7, &dec, &labels);
  SimExecutor exec = MakeExecutor();
  auto params =
      ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream));
  // Larger decision value => larger probability of the positive class
  // (requires the fitted A to be negative, which it is for sane data).
  double prev = params.Probability(-5.0);
  for (double v = -4.5; v <= 5.0; v += 0.5) {
    const double p = params.Probability(v);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(FitSigmoidTest, SeparableDataGivesSteepSigmoid) {
  // Perfectly separated decision values: the fit drives A strongly negative.
  std::vector<double> dec;
  std::vector<int8_t> labels;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const bool pos = i % 2 == 0;
    dec.push_back(pos ? rng.Uniform(1.0, 2.0) : rng.Uniform(-2.0, -1.0));
    labels.push_back(pos ? 1 : -1);
  }
  SimExecutor exec = MakeExecutor();
  auto params =
      ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream));
  EXPECT_LT(params.a, -1.0);
  EXPECT_GT(params.Probability(1.5), 0.9);
  EXPECT_LT(params.Probability(-1.5), 0.1);
}

TEST(FitSigmoidTest, ImbalancedPriorsShiftB) {
  // 90% negative data with uninformative decision values: P(y=1) ~ 0.1
  // regardless of v.
  std::vector<double> dec;
  std::vector<int8_t> labels;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    dec.push_back(rng.Uniform(-1.0, 1.0));
    labels.push_back(i % 10 == 0 ? 1 : -1);
  }
  SimExecutor exec = MakeExecutor();
  auto params =
      ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream));
  EXPECT_NEAR(params.Probability(0.0), 0.1, 0.03);
}

TEST(FitSigmoidTest, DeterministicAndChargesWork) {
  std::vector<double> dec;
  std::vector<int8_t> labels;
  SampleFromSigmoid(-1.0, 0.0, 1000, 11, &dec, &labels);
  SimExecutor e1 = MakeExecutor(), e2 = MakeExecutor();
  auto p1 = ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &e1, kDefaultStream));
  auto p2 = ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &e2, kDefaultStream));
  EXPECT_DOUBLE_EQ(p1.a, p2.a);
  EXPECT_DOUBLE_EQ(p1.b, p2.b);
  EXPECT_GT(e1.NowSeconds(), 0.0);
  EXPECT_GT(e1.counters().launches, 0);
}

TEST(FitSigmoidTest, ParallelCandidatesSameFitLessSimTime) {
  std::vector<double> dec;
  std::vector<int8_t> labels;
  SampleFromSigmoid(-2.5, 1.0, 4000, 13, &dec, &labels);
  SimExecutor serial = MakeExecutor(), parallel = MakeExecutor();
  auto ps = ValueOrDie(
      FitSigmoid(dec, labels, PlattOptions{}, &serial, kDefaultStream, 1));
  auto pp = ValueOrDie(
      FitSigmoid(dec, labels, PlattOptions{}, &parallel, kDefaultStream, 8));
  EXPECT_DOUBLE_EQ(ps.a, pp.a);  // identical result
  EXPECT_DOUBLE_EQ(ps.b, pp.b);
  EXPECT_LE(parallel.NowSeconds(), serial.NowSeconds() + 1e-12);
}

// Parameter-recovery sweep: the fit recovers (A, B) across a grid of true
// sigmoids, and the recovered negative log likelihood never exceeds the
// truth's by more than sampling noise.
class SigmoidRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SigmoidRecoveryTest, RecoversParameters) {
  auto [a, b] = GetParam();
  std::vector<double> dec;
  std::vector<int8_t> labels;
  SampleFromSigmoid(a, b, 30000, 1234, &dec, &labels);
  SimExecutor exec = MakeExecutor();
  auto params =
      ValueOrDie(FitSigmoid(dec, labels, PlattOptions{}, &exec, kDefaultStream));
  EXPECT_NEAR(params.a, a, 0.25 * (1.0 + std::abs(a)));
  EXPECT_NEAR(params.b, b, 0.25 * (1.0 + std::abs(b)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SigmoidRecoveryTest,
    ::testing::Combine(::testing::Values(-0.5, -1.0, -2.0, -4.0),
                       ::testing::Values(-1.0, 0.0, 1.5)));

}  // namespace
}  // namespace gmpsvm
