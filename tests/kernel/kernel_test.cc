#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "kernel/kernel_function.h"

namespace gmpsvm {
namespace {

CsrMatrix RandomSparse(int64_t rows, int64_t cols, double density, uint64_t seed) {
  Rng rng(seed);
  CsrBuilder b(cols);
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<int32_t> idx;
    std::vector<double> val;
    for (int32_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.Normal());
      }
    }
    b.AddRow(idx, val);
  }
  return ValueOrDie(b.Finish());
}

SimExecutor MakeExecutor() { return SimExecutor(ExecutorModel::TeslaP100()); }

TEST(KernelFunctionTest, GaussianBasics) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.gamma = 0.5;
  KernelFunction fn(p);
  // K(x, x) = 1 for Gaussian.
  EXPECT_DOUBLE_EQ(fn.SelfKernel(3.7), 1.0);
  // ||xi - xj||^2 = 1+1-0 = 2 for orthonormal vectors.
  EXPECT_DOUBLE_EQ(fn.FromDot(0.0, 1.0, 1.0), std::exp(-1.0));
}

TEST(KernelFunctionTest, GaussianSymmetricAndBounded) {
  KernelParams p;
  p.gamma = 0.3;
  KernelFunction fn(p);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double ni = rng.Uniform(0, 5), nj = rng.Uniform(0, 5);
    double dot = rng.Uniform(-1, 1) * std::sqrt(ni * nj);
    double kij = fn.FromDot(dot, ni, nj);
    double kji = fn.FromDot(dot, nj, ni);
    EXPECT_DOUBLE_EQ(kij, kji);
    EXPECT_GT(kij, 0.0);
    EXPECT_LE(kij, 1.0 + 1e-12);
  }
}

TEST(KernelFunctionTest, Linear) {
  KernelParams p;
  p.type = KernelType::kLinear;
  KernelFunction fn(p);
  EXPECT_DOUBLE_EQ(fn.FromDot(2.5, 1, 1), 2.5);
  EXPECT_DOUBLE_EQ(fn.SelfKernel(4.0), 4.0);
}

TEST(KernelFunctionTest, Polynomial) {
  KernelParams p;
  p.type = KernelType::kPolynomial;
  p.gamma = 2.0;
  p.coef0 = 1.0;
  p.degree = 3;
  KernelFunction fn(p);
  EXPECT_DOUBLE_EQ(fn.FromDot(0.5, 1, 1), std::pow(2.0 * 0.5 + 1.0, 3));
}

TEST(KernelFunctionTest, Sigmoid) {
  KernelParams p;
  p.type = KernelType::kSigmoid;
  p.gamma = 0.5;
  p.coef0 = -1.0;
  KernelFunction fn(p);
  EXPECT_DOUBLE_EQ(fn.FromDot(2.0, 1, 1), std::tanh(0.0));
}

TEST(KernelTypeStringTest, RoundTrip) {
  for (KernelType t : {KernelType::kGaussian, KernelType::kLinear,
                       KernelType::kPolynomial, KernelType::kSigmoid}) {
    auto back = KernelTypeFromString(KernelTypeToString(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  EXPECT_TRUE(KernelTypeFromString("rbf").ok());
  EXPECT_FALSE(KernelTypeFromString("bogus").ok());
}

TEST(KernelComputerTest, BlockMatchesPointwise) {
  CsrMatrix x = RandomSparse(25, 10, 0.4, 5);
  KernelParams p;
  p.gamma = 0.25;
  KernelComputer kc(&x, p);
  SimExecutor exec = MakeExecutor();

  std::vector<int32_t> batch = {0, 10, 24};
  std::vector<int32_t> targets = {1, 2, 3, 4, 5};
  std::vector<double> out(batch.size() * targets.size());
  kc.ComputeBlock(batch, targets, &exec, kDefaultStream, out.data());

  for (size_t bi = 0; bi < batch.size(); ++bi) {
    for (size_t tj = 0; tj < targets.size(); ++tj) {
      EXPECT_NEAR(out[bi * targets.size() + tj], kc.Compute(batch[bi], targets[tj]),
                  1e-12);
    }
  }
}

TEST(KernelComputerTest, CountsKernelValuesAndAdvancesClock) {
  CsrMatrix x = RandomSparse(25, 10, 0.4, 5);
  KernelParams p;
  KernelComputer kc(&x, p);
  SimExecutor exec = MakeExecutor();
  std::vector<int32_t> batch = {0, 1};
  std::vector<int32_t> targets = {2, 3, 4};
  std::vector<double> out(6);
  kc.ComputeBlock(batch, targets, &exec, kDefaultStream, out.data());
  EXPECT_EQ(exec.counters().kernel_values_computed, 6);
  EXPECT_GT(exec.NowSeconds(), 0.0);
  EXPECT_EQ(exec.counters().launches, 1);
}

TEST(KernelComputerTest, CrossMatrixBlocks) {
  CsrMatrix train = RandomSparse(15, 12, 0.4, 1);
  CsrMatrix test = RandomSparse(6, 12, 0.4, 2);
  KernelParams p;
  p.gamma = 0.1;
  KernelComputer kc(&test, &train, p);
  SimExecutor exec = MakeExecutor();
  std::vector<int32_t> batch = {0, 5};
  std::vector<int32_t> targets = {0, 7, 14};
  std::vector<double> out(6);
  kc.ComputeBlock(batch, targets, &exec, kDefaultStream, out.data());
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    for (size_t tj = 0; tj < targets.size(); ++tj) {
      EXPECT_NEAR(out[bi * targets.size() + tj], kc.Compute(batch[bi], targets[tj]),
                  1e-12);
    }
  }
}

TEST(KernelComputerTest, GaussianDiagonalIsOne) {
  CsrMatrix x = RandomSparse(10, 8, 0.6, 9);
  KernelParams p;
  p.gamma = 0.7;
  KernelComputer kc(&x, p);
  for (int64_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(kc.Compute(i, i), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(kc.SelfKernelA(i), 1.0);
  }
}

TEST(KernelComputerTest, MercerSymmetry) {
  CsrMatrix x = RandomSparse(12, 6, 0.5, 17);
  for (KernelType t : {KernelType::kGaussian, KernelType::kLinear,
                       KernelType::kPolynomial, KernelType::kSigmoid}) {
    KernelParams p;
    p.type = t;
    p.gamma = 0.4;
    p.coef0 = 0.5;
    KernelComputer kc(&x, p);
    for (int64_t i = 0; i < 12; ++i) {
      for (int64_t j = i + 1; j < 12; ++j) {
        EXPECT_NEAR(kc.Compute(i, j), kc.Compute(j, i), 1e-12);
      }
    }
  }
}

TEST(DenseKernelComputerTest, AgreesWithSparse) {
  CsrMatrix x = RandomSparse(14, 9, 0.5, 23);
  DenseMatrix d(x.rows(), x.cols(), x.ToDense());
  KernelParams p;
  p.gamma = 0.2;
  KernelComputer sparse_kc(&x, p);
  DenseKernelComputer dense_kc(&d, p);
  SimExecutor exec = MakeExecutor();

  std::vector<int32_t> batch = {0, 7};
  std::vector<int32_t> targets = {1, 3, 13};
  std::vector<double> sparse_out(6), dense_out(6);
  sparse_kc.ComputeBlock(batch, targets, &exec, kDefaultStream, sparse_out.data());
  dense_kc.ComputeBlock(batch, targets, &exec, kDefaultStream, dense_out.data());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(sparse_out[i], dense_out[i], 1e-12);
}

TEST(DenseKernelComputerTest, ChargesMoreThanSparseOnSparseData) {
  CsrMatrix x = RandomSparse(40, 300, 0.03, 31);
  DenseMatrix d(x.rows(), x.cols(), x.ToDense());
  KernelParams p;
  KernelComputer sparse_kc(&x, p);
  DenseKernelComputer dense_kc(&d, p);

  std::vector<int32_t> batch = {0, 1, 2, 3};
  std::vector<int32_t> targets;
  for (int32_t t = 4; t < 40; ++t) targets.push_back(t);
  std::vector<double> out(batch.size() * targets.size());

  SimExecutor sparse_exec = MakeExecutor();
  sparse_kc.ComputeBlock(batch, targets, &sparse_exec, kDefaultStream, out.data());
  SimExecutor dense_exec = MakeExecutor();
  dense_kc.ComputeBlock(batch, targets, &dense_exec, kDefaultStream, out.data());

  EXPECT_GT(dense_exec.counters().flops, 3.0 * sparse_exec.counters().flops);
}

// Property sweep: batched block equals pointwise evaluation for every kernel
// type at several hyper-parameter settings.
class KernelBlockParamTest
    : public ::testing::TestWithParam<std::tuple<KernelType, double>> {};

TEST_P(KernelBlockParamTest, BlockEqualsPointwise) {
  auto [type, gamma] = GetParam();
  CsrMatrix x = RandomSparse(18, 7, 0.5, 77);
  KernelParams p;
  p.type = type;
  p.gamma = gamma;
  p.coef0 = 0.25;
  p.degree = 2;
  KernelComputer kc(&x, p);
  SimExecutor exec = MakeExecutor();

  std::vector<int32_t> batch = {2, 9, 17};
  std::vector<int32_t> targets = {0, 1, 5, 8, 16};
  std::vector<double> out(batch.size() * targets.size());
  kc.ComputeBlock(batch, targets, &exec, kDefaultStream, out.data());
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    for (size_t tj = 0; tj < targets.size(); ++tj) {
      EXPECT_NEAR(out[bi * targets.size() + tj], kc.Compute(batch[bi], targets[tj]),
                  1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelBlockParamTest,
    ::testing::Combine(::testing::Values(KernelType::kGaussian, KernelType::kLinear,
                                         KernelType::kPolynomial,
                                         KernelType::kSigmoid),
                       ::testing::Values(0.03, 0.5, 2.0)));

}  // namespace
}  // namespace gmpsvm
