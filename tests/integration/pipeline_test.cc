// End-to-end integration tests: every Table-2 proxy dataset (at a tiny
// scale) through generate -> train (GMP + baseline + LibSVM ref) -> predict
// -> serialize, asserting the cross-implementation invariants the paper's
// evaluation depends on.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/libsvm_ref.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "metrics/calibration.h"
#include "metrics/metrics.h"

namespace gmpsvm {
namespace {

constexpr double kTinyScale = 0.04;

MpTrainOptions GmpOptions(const SyntheticSpec& spec) {
  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.gamma = spec.gamma;
  options.batch.working_set.ws_size = 64;
  options.batch.working_set.q = 32;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

class PaperDatasetPipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperDatasetPipelineTest, EndToEnd) {
  auto spec = ValueOrDie(FindPaperSpec(GetParam(), kTinyScale));
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
  ASSERT_EQ(train.num_classes(), spec.num_classes);

  // GMP-SVM on the simulated GPU.
  SimExecutor gpu(ExecutorModel::TeslaP100());
  MpTrainReport report;
  MpSvmModel gmp =
      ValueOrDie(GmpSvmTrainer(GmpOptions(spec)).Train(train, &gpu, &report));
  EXPECT_EQ(gmp.num_pairs(), spec.num_classes * (spec.num_classes - 1) / 2);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_EQ(gpu.bytes_in_use(), 0u) << "device memory leaked";

  // LibSVM reference on the CPU model.
  SimExecutor cpu = MakeLibsvmExecutor(1);
  LibsvmRefTrainer libsvm(spec.c, gmp.kernel);
  MpSvmModel ref = ValueOrDie(libsvm.Train(train, &cpu, nullptr));

  // Table 4 invariant: same classifier.
  auto agreement = ValueOrDie(CompareModels(gmp, ref));
  EXPECT_LT(agreement.max_bias_diff, 0.1) << GetParam();

  // Predictions: probabilities are distributions; both models agree on
  // training-set error.
  PredictOptions popts;
  auto gmp_pred =
      ValueOrDie(MpSvmPredictor(&gmp).Predict(test.features(), &gpu, popts));
  for (int64_t i = 0; i < gmp_pred.num_instances; ++i) {
    double sum = 0.0;
    for (int c = 0; c < spec.num_classes; ++c) {
      const double p = gmp_pred.Probability(i, c);
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  auto ref_pred = ValueOrDie(
      MpSvmPredictor(&ref).Predict(train.features(), &cpu, LibsvmPredictOptions()));
  auto gmp_train_pred =
      ValueOrDie(MpSvmPredictor(&gmp).Predict(train.features(), &gpu, popts));
  const double gmp_err = ValueOrDie(ErrorRate(gmp_train_pred.labels, train.labels()));
  const double ref_err = ValueOrDie(ErrorRate(ref_pred.labels, train.labels()));
  EXPECT_NEAR(gmp_err, ref_err, 0.02) << GetParam();

  // Probability quality is sane (log loss clearly better than uniform).
  const double ll = ValueOrDie(
      LogLoss(gmp_pred.probabilities, test.labels(), spec.num_classes));
  EXPECT_LT(ll, std::log(static_cast<double>(spec.num_classes)) + 0.5);

  // Serialization round trip predicts identically.
  MpSvmModel restored = ValueOrDie(DeserializeModel(SerializeModel(gmp)));
  auto restored_pred = ValueOrDie(
      MpSvmPredictor(&restored).Predict(test.features(), &gpu, popts));
  EXPECT_EQ(restored_pred.labels, gmp_pred.labels);
}

INSTANTIATE_TEST_SUITE_P(AllPaperDatasets, PaperDatasetPipelineTest,
                         ::testing::Values("Adult", "RCV1", "Real-sim", "Webdata",
                                           "CIFAR-10", "Connect-4", "MNIST",
                                           "MNIST8M", "News20"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(PipelineInvariantsTest, BaselineAndGmpSameClassifierEverywhere) {
  auto spec = ValueOrDie(FindPaperSpec("Connect-4", kTinyScale));
  Dataset train = ValueOrDie(GenerateSynthetic(spec));

  SimExecutor e1(ExecutorModel::TeslaP100());
  auto gmp = ValueOrDie(GmpSvmTrainer(GmpOptions(spec)).Train(train, &e1, nullptr));

  MpTrainOptions baseline_options;
  baseline_options.c = spec.c;
  baseline_options.kernel.gamma = spec.gamma;
  baseline_options.smo.cache_on_device = true;
  SimExecutor e2(ExecutorModel::TeslaP100());
  auto baseline =
      ValueOrDie(SequentialMpTrainer(baseline_options).Train(train, &e2, nullptr));

  auto agreement = ValueOrDie(CompareModels(gmp, baseline));
  EXPECT_LT(agreement.max_bias_diff, 0.1);
}

TEST(PipelineInvariantsTest, SimTimeScalesWithData) {
  // Sanity on the cost model: 4x the data costs more simulated time.
  auto small_spec = ValueOrDie(FindPaperSpec("Webdata", 0.02));
  auto large_spec = ValueOrDie(FindPaperSpec("Webdata", 0.08));
  Dataset small = ValueOrDie(GenerateSynthetic(small_spec));
  Dataset large = ValueOrDie(GenerateSynthetic(large_spec));
  SimExecutor e1(ExecutorModel::TeslaP100()), e2(ExecutorModel::TeslaP100());
  MpTrainReport r1, r2;
  ValueOrDie(GmpSvmTrainer(GmpOptions(small_spec)).Train(small, &e1, &r1));
  ValueOrDie(GmpSvmTrainer(GmpOptions(large_spec)).Train(large, &e2, &r2));
  EXPECT_GT(r2.sim_seconds, r1.sim_seconds);
}

// Full-pipeline sweep over kernel types: training, identity vs the LibSVM
// reference, and probability sanity hold for every kernel, not just the
// Gaussian the paper evaluates.
class KernelTypePipelineTest : public ::testing::TestWithParam<KernelType> {};

TEST_P(KernelTypePipelineTest, TrainPredictIdentity) {
  SyntheticSpec spec = ValueOrDie(FindPaperSpec("Connect-4", kTinyScale));
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));

  MpTrainOptions options = GmpOptions(spec);
  options.c = 1.0;
  options.kernel.type = GetParam();
  options.kernel.gamma = 0.1;
  options.kernel.coef0 = GetParam() == KernelType::kSigmoid ? -1.0 : 1.0;
  options.kernel.degree = 2;
  options.batch.max_outer_rounds = 20000;

  SimExecutor gpu(ExecutorModel::TeslaP100());
  MpSvmModel gmp = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, nullptr));

  SimExecutor cpu = MakeLibsvmExecutor(1);
  MpTrainOptions ref_options = LibsvmTrainOptions(options.c, options.kernel);
  MpSvmModel ref =
      ValueOrDie(SequentialMpTrainer(ref_options).Train(train, &cpu, nullptr));
  auto agreement = ValueOrDie(CompareModels(gmp, ref));
  EXPECT_LT(agreement.max_bias_diff, 0.15)
      << KernelTypeToString(GetParam());

  auto pred = ValueOrDie(
      MpSvmPredictor(&gmp).Predict(test.features(), &gpu, PredictOptions{}));
  for (int64_t i = 0; i < pred.num_instances; ++i) {
    double sum = 0.0;
    for (int c = 0; c < spec.num_classes; ++c) sum += pred.Probability(i, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTypePipelineTest,
                         ::testing::Values(KernelType::kGaussian,
                                           KernelType::kLinear,
                                           KernelType::kPolynomial,
                                           KernelType::kSigmoid),
                         [](const auto& info) {
                           return std::string(KernelTypeToString(info.param));
                         });

}  // namespace
}  // namespace gmpsvm
