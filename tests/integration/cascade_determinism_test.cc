// The cascade determinism contract (docs/cascade.md): kEliminate prediction
// is a pure per-row function, so its probabilities, labels, AND cascade
// counters (pairs evaluated, classes eliminated, exact fallbacks) are
// byte-identical for devices=1 vs devices=N at any host_threads — on a
// cleanly trained model and on one trained under a chaos fault plan. kExact
// stays byte-for-byte the pre-cascade predictor at every topology.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

Dataset Proxy() {
  return ValueOrDie(MakeMulticlassBlobs(5, 20, 6, 2.5, 101));
}

Dataset Queries() {
  return ValueOrDie(MakeMulticlassBlobs(5, 8, 6, 2.5, 1101));
}

MpTrainOptions BaseOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  options.share_kernel_blocks = false;
  return options;
}

PredictOptions CascadeOptionsUnderTest() {
  PredictOptions options;
  options.cascade.mode = CascadeOptions::Mode::kEliminate;
  options.cascade.ambiguity_band = 0.05;  // a mix of pruned and fallback rows
  return options;
}

struct CascadeRun {
  std::string model_text;
  std::vector<double> probabilities;
  std::vector<int32_t> labels;
  int64_t pairs_evaluated = 0;
  int64_t classes_eliminated = 0;
  int64_t fallback_rows = 0;
};

CascadeRun RunCascade(const Dataset& train, const CsrMatrix& queries,
                      int devices, int host_threads,
                      std::optional<fault::FaultPlan> plan) {
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  cluster::SimCluster cluster = cluster::SimCluster::Homogeneous(devices, model);

  cluster::ClusterTrainOptions options;
  options.train = BaseOptions();
  options.fault = std::move(plan);
  auto svm =
      ValueOrDie(cluster::ClusterTrainer(options).Train(train, &cluster, nullptr));

  CascadeRun out;
  out.model_text = SerializeModel(svm);
  auto pred = ValueOrDie(cluster::ClusterPredict(svm, queries, &cluster,
                                                 CascadeOptionsUnderTest()));
  out.probabilities = std::move(pred.probabilities);
  out.labels = std::move(pred.labels);
  out.pairs_evaluated = pred.cascade_pairs_evaluated;
  out.classes_eliminated = pred.cascade_classes_eliminated;
  out.fallback_rows = pred.cascade_fallback_rows;
  return out;
}

void ExpectSameRun(const CascadeRun& base, const CascadeRun& other,
                   const std::string& what) {
  EXPECT_EQ(base.model_text, other.model_text) << what;
  ASSERT_EQ(base.probabilities.size(), other.probabilities.size()) << what;
  EXPECT_EQ(0, std::memcmp(base.probabilities.data(),
                           other.probabilities.data(),
                           base.probabilities.size() * sizeof(double)))
      << what;
  EXPECT_EQ(base.labels, other.labels) << what;
  EXPECT_EQ(base.pairs_evaluated, other.pairs_evaluated) << what;
  EXPECT_EQ(base.classes_eliminated, other.classes_eliminated) << what;
  EXPECT_EQ(base.fallback_rows, other.fallback_rows) << what;
}

struct Config {
  int devices;
  int host_threads;
};

TEST(CascadeDeterminismTest, CleanRunsInvariantAcrossTopologies) {
  Dataset train = Proxy();
  const CsrMatrix queries = Queries().features();
  const CascadeRun base = RunCascade(train, queries, 1, 1, std::nullopt);
  // The band should exercise both sides of the fallback split.
  EXPECT_GT(base.pairs_evaluated, 0);
  for (const Config& config :
       {Config{2, 1}, Config{4, 1}, Config{1, 8}, Config{4, 8}}) {
    const CascadeRun other = RunCascade(train, queries, config.devices,
                                        config.host_threads, std::nullopt);
    ExpectSameRun(base, other,
                  "devices=" + std::to_string(config.devices) +
                      " threads=" + std::to_string(config.host_threads));
  }
}

TEST(CascadeDeterminismTest, ChaosRunsInvariantAcrossTopologies) {
  Dataset train = Proxy();
  const CsrMatrix queries = Queries().features();
  const fault::FaultPlan plan = fault::FaultPlan::Chaos(11);
  const CascadeRun base = RunCascade(train, queries, 1, 1, plan);
  for (const Config& config : {Config{2, 1}, Config{4, 1}, Config{4, 8}}) {
    const CascadeRun other =
        RunCascade(train, queries, config.devices, config.host_threads, plan);
    ExpectSameRun(base, other,
                  "chaos devices=" + std::to_string(config.devices) +
                      " threads=" + std::to_string(config.host_threads));
  }
}

TEST(CascadeDeterminismTest, ChaosTrainingYieldsCleanCascadePredictions) {
  Dataset train = Proxy();
  const CsrMatrix queries = Queries().features();
  const CascadeRun clean = RunCascade(train, queries, 4, 8, std::nullopt);
  const CascadeRun chaos =
      RunCascade(train, queries, 4, 8, fault::FaultPlan::Chaos(11));
  ExpectSameRun(clean, chaos, "chaos vs clean");
}

TEST(CascadeDeterminismTest, ExactModeMatchesDefaultAtEveryTopology) {
  Dataset train = Proxy();
  const CsrMatrix queries = Queries().features();
  ExecutorModel model = ExecutorModel::TeslaP100();
  cluster::SimCluster reference_cluster =
      cluster::SimCluster::Homogeneous(1, model);
  cluster::ClusterTrainOptions options;
  options.train = BaseOptions();
  auto svm = ValueOrDie(
      cluster::ClusterTrainer(options).Train(train, &reference_cluster, nullptr));

  auto reference = ValueOrDie(cluster::ClusterPredict(
      svm, queries, &reference_cluster, PredictOptions{}));
  for (int devices : {1, 2, 4}) {
    cluster::SimCluster cluster = cluster::SimCluster::Homogeneous(devices, model);
    PredictOptions exact;
    exact.cascade.mode = CascadeOptions::Mode::kExact;
    auto result =
        ValueOrDie(cluster::ClusterPredict(svm, queries, &cluster, exact));
    ASSERT_EQ(result.probabilities.size(), reference.probabilities.size());
    EXPECT_EQ(0, std::memcmp(result.probabilities.data(),
                             reference.probabilities.data(),
                             result.probabilities.size() * sizeof(double)))
        << "exact devices=" << devices;
    EXPECT_EQ(result.labels, reference.labels) << "exact devices=" << devices;
    EXPECT_EQ(result.cascade_rows, 0);
  }
}

}  // namespace
}  // namespace gmpsvm
