// The cluster determinism contract (docs/scaling.md): trained models,
// predicted probabilities, and per-pair COUNTER statistics are byte-identical
// for devices=1 vs devices=N at any host_threads — clean and under a chaos
// fault plan that includes device loss. Only the simulated makespan and the
// wall clock may change.
//
// Counter comparisons run with share_kernel_blocks OFF: with sharing on,
// cache hit/miss counters depend on which pairs co-locate on a device (the
// documented schedule-dependent quantity). Models and probabilities are
// compared with sharing on AND off — those are invariant regardless.

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

Dataset Proxy() {
  return ValueOrDie(MakeMulticlassBlobs(4, 22, 6, 2.5, 42));
}

MpTrainOptions BaseOptions(bool share_kernel_blocks) {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  options.share_kernel_blocks = share_kernel_blocks;
  return options;
}

struct ClusterRun {
  std::string model_text;
  std::vector<double> probabilities;
  // Schedule-invariant per-pair counters, in ClassPairs() order.
  std::vector<int64_t> pair_iterations;
  std::vector<int64_t> pair_kernel_rows;
  std::vector<int64_t> pair_retries;
  double makespan = 0.0;
  int devices_lost = 0;
};

ClusterRun RunCluster(const Dataset& data, int devices, int host_threads,
                      bool share_kernel_blocks,
                      std::optional<fault::FaultPlan> plan) {
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  cluster::SimCluster cluster = cluster::SimCluster::Homogeneous(devices, model);

  cluster::ClusterTrainOptions options;
  options.train = BaseOptions(share_kernel_blocks);
  options.fault = std::move(plan);
  cluster::ClusterTrainReport report;
  auto svm =
      ValueOrDie(cluster::ClusterTrainer(options).Train(data, &cluster, &report));

  ClusterRun out;
  out.model_text = SerializeModel(svm);
  out.makespan = report.makespan_sim_seconds;
  out.devices_lost = report.devices_lost;
  for (const PairTrainOutcome& outcome : report.pair_outcomes) {
    out.pair_iterations.push_back(outcome.stats.iterations);
    out.pair_kernel_rows.push_back(outcome.stats.kernel_rows_computed +
                                   outcome.stats.kernel_rows_reused);
    out.pair_retries.push_back(outcome.retries);
  }
  auto pred = ValueOrDie(cluster::ClusterPredict(svm, data.features(), &cluster,
                                                 PredictOptions{}));
  out.probabilities = std::move(pred.probabilities);
  return out;
}

void ExpectSameOutputs(const ClusterRun& base, const ClusterRun& other,
                       const std::string& what, bool compare_counters) {
  EXPECT_EQ(base.model_text, other.model_text) << what;
  ASSERT_EQ(base.probabilities.size(), other.probabilities.size()) << what;
  EXPECT_EQ(0, std::memcmp(base.probabilities.data(),
                           other.probabilities.data(),
                           base.probabilities.size() * sizeof(double)))
      << what;
  if (!compare_counters) return;
  EXPECT_EQ(base.pair_iterations, other.pair_iterations) << what;
  EXPECT_EQ(base.pair_kernel_rows, other.pair_kernel_rows) << what;
  EXPECT_EQ(base.pair_retries, other.pair_retries) << what;
}

TEST(ClusterDeterminismTest, CleanRunsInvariantAcrossDeviceAndThreadCounts) {
  Dataset data = Proxy();
  const ClusterRun base = RunCluster(data, 1, 1, /*share_kernel_blocks=*/false,
                                     std::nullopt);
  struct Config {
    int devices;
    int host_threads;
  };
  for (const Config& config :
       {Config{2, 1}, Config{4, 1}, Config{1, 8}, Config{4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, std::nullopt);
    ExpectSameOutputs(base, other,
                      "devices=" + std::to_string(config.devices) +
                          " threads=" + std::to_string(config.host_threads),
                      /*compare_counters=*/true);
  }
}

TEST(ClusterDeterminismTest, SharedCacheRunsKeepModelAndProbabilities) {
  // With kernel-block sharing on, cache counters become co-location
  // dependent, but the model and probabilities must not.
  Dataset data = Proxy();
  const ClusterRun base = RunCluster(data, 1, 1, /*share_kernel_blocks=*/true,
                                     std::nullopt);
  for (int devices : {2, 4}) {
    const ClusterRun other = RunCluster(data, devices, 1,
                                        /*share_kernel_blocks=*/true,
                                        std::nullopt);
    ExpectSameOutputs(base, other, "shared devices=" + std::to_string(devices),
                      /*compare_counters=*/false);
  }
}

TEST(ClusterDeterminismTest, MatchesSingleDeviceTrainerAndPredictor) {
  Dataset data = Proxy();
  MpTrainOptions options = BaseOptions(/*share_kernel_blocks=*/false);
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto reference = ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
  auto reference_pred = ValueOrDie(MpSvmPredictor(&reference).Predict(
      data.features(), &exec, PredictOptions{}));

  const ClusterRun sharded = RunCluster(data, 4, 1,
                                        /*share_kernel_blocks=*/false,
                                        std::nullopt);
  EXPECT_EQ(sharded.model_text, SerializeModel(reference));
  ASSERT_EQ(sharded.probabilities.size(), reference_pred.probabilities.size());
  EXPECT_EQ(0, std::memcmp(sharded.probabilities.data(),
                           reference_pred.probabilities.data(),
                           sharded.probabilities.size() * sizeof(double)));
}

TEST(ClusterDeterminismTest, ChaosRunsInvariantAcrossDeviceAndThreadCounts) {
  // FaultPlan::Chaos exercises every transient site including device loss.
  // Per-pair injectors are seeded from (plan seed, pair index), so each pair
  // sees one fault sequence whatever device trains it — retries included.
  Dataset data = Proxy();
  const fault::FaultPlan plan = fault::FaultPlan::Chaos(7);
  const ClusterRun base =
      RunCluster(data, 1, 1, /*share_kernel_blocks=*/false, plan);
  struct Config {
    int devices;
    int host_threads;
  };
  for (const Config& config : {Config{2, 1}, Config{4, 1}, Config{4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, plan);
    ExpectSameOutputs(base, other,
                      "chaos devices=" + std::to_string(config.devices) +
                          " threads=" + std::to_string(config.host_threads),
                      /*compare_counters=*/true);
  }
}

TEST(ClusterDeterminismTest, ChaosRecoversToTheCleanModel) {
  Dataset data = Proxy();
  const ClusterRun clean = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                      std::nullopt);
  const ClusterRun chaos = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                      fault::FaultPlan::Chaos(7));
  EXPECT_EQ(chaos.model_text, clean.model_text);
  ASSERT_EQ(chaos.probabilities.size(), clean.probabilities.size());
  EXPECT_EQ(0, std::memcmp(chaos.probabilities.data(),
                           clean.probabilities.data(),
                           chaos.probabilities.size() * sizeof(double)));
}

TEST(ClusterDeterminismTest, OnlyTheMakespanChangesWithDeviceCount) {
  Dataset data = Proxy();
  const ClusterRun one = RunCluster(data, 1, 1, /*share_kernel_blocks=*/false,
                                    std::nullopt);
  const ClusterRun four = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                     std::nullopt);
  ExpectSameOutputs(one, four, "makespan check", /*compare_counters=*/true);
  EXPECT_LT(four.makespan, one.makespan);
}

}  // namespace
}  // namespace gmpsvm
