// The cluster determinism contract (docs/scaling.md): trained models,
// predicted probabilities, and per-pair COUNTER statistics are byte-identical
// for devices=1 vs devices=N at any host_threads — clean and under a chaos
// fault plan that includes device loss. Only the simulated makespan and the
// wall clock may change.
//
// Counter comparisons run with share_kernel_blocks OFF: with sharing on,
// cache hit/miss counters depend on which pairs co-locate on a device (the
// documented schedule-dependent quantity). Models and probabilities are
// compared with sharing on AND off — those are invariant regardless.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

Dataset Proxy() {
  return ValueOrDie(MakeMulticlassBlobs(4, 22, 6, 2.5, 42));
}

MpTrainOptions BaseOptions(bool share_kernel_blocks) {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  options.share_kernel_blocks = share_kernel_blocks;
  return options;
}

struct ClusterRun {
  std::string model_text;
  std::vector<double> probabilities;
  // Schedule-invariant per-pair counters, in ClassPairs() order.
  std::vector<int64_t> pair_iterations;
  std::vector<int64_t> pair_kernel_rows;
  std::vector<int64_t> pair_retries;
  double makespan = 0.0;
  int devices_lost = 0;
  int nodes_lost = 0;
  int pairs_sharded = 0;
};

ClusterRun RunCluster(const Dataset& data, int devices, int host_threads,
                      bool share_kernel_blocks,
                      std::optional<fault::FaultPlan> plan, int nodes = 1,
                      int max_shards = 1) {
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  cluster::SimCluster cluster =
      nodes > 1
          ? cluster::SimCluster::HomogeneousNodes(nodes, devices / nodes, model)
          : cluster::SimCluster::Homogeneous(devices, model);

  cluster::ClusterTrainOptions options;
  options.train = BaseOptions(share_kernel_blocks);
  options.schedule.max_shards_per_pair = max_shards;
  // Force the shard decision so the sharded path is actually exercised
  // (devices=1 can never shard, so the baseline stays a true single-device
  // run).
  if (max_shards > 1) options.schedule.shard_oversize_factor = 0.0;
  options.fault = std::move(plan);
  cluster::ClusterTrainReport report;
  auto svm =
      ValueOrDie(cluster::ClusterTrainer(options).Train(data, &cluster, &report));

  ClusterRun out;
  out.model_text = SerializeModel(svm);
  out.makespan = report.makespan_sim_seconds;
  out.devices_lost = report.devices_lost;
  out.nodes_lost = report.nodes_lost;
  out.pairs_sharded = report.pairs_sharded;
  for (const PairTrainOutcome& outcome : report.pair_outcomes) {
    out.pair_iterations.push_back(outcome.stats.iterations);
    out.pair_kernel_rows.push_back(outcome.stats.kernel_rows_computed +
                                   outcome.stats.kernel_rows_reused);
    out.pair_retries.push_back(outcome.retries);
  }
  auto pred = ValueOrDie(cluster::ClusterPredict(svm, data.features(), &cluster,
                                                 PredictOptions{}));
  out.probabilities = std::move(pred.probabilities);
  return out;
}

void ExpectSameOutputs(const ClusterRun& base, const ClusterRun& other,
                       const std::string& what, bool compare_counters) {
  EXPECT_EQ(base.model_text, other.model_text) << what;
  ASSERT_EQ(base.probabilities.size(), other.probabilities.size()) << what;
  EXPECT_EQ(0, std::memcmp(base.probabilities.data(),
                           other.probabilities.data(),
                           base.probabilities.size() * sizeof(double)))
      << what;
  if (!compare_counters) return;
  EXPECT_EQ(base.pair_iterations, other.pair_iterations) << what;
  EXPECT_EQ(base.pair_kernel_rows, other.pair_kernel_rows) << what;
  EXPECT_EQ(base.pair_retries, other.pair_retries) << what;
}

TEST(ClusterDeterminismTest, CleanRunsInvariantAcrossDeviceAndThreadCounts) {
  Dataset data = Proxy();
  const ClusterRun base = RunCluster(data, 1, 1, /*share_kernel_blocks=*/false,
                                     std::nullopt);
  struct Config {
    int devices;
    int host_threads;
  };
  for (const Config& config :
       {Config{2, 1}, Config{4, 1}, Config{1, 8}, Config{4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, std::nullopt);
    ExpectSameOutputs(base, other,
                      "devices=" + std::to_string(config.devices) +
                          " threads=" + std::to_string(config.host_threads),
                      /*compare_counters=*/true);
  }
}

TEST(ClusterDeterminismTest, SharedCacheRunsKeepModelAndProbabilities) {
  // With kernel-block sharing on, cache counters become co-location
  // dependent, but the model and probabilities must not.
  Dataset data = Proxy();
  const ClusterRun base = RunCluster(data, 1, 1, /*share_kernel_blocks=*/true,
                                     std::nullopt);
  for (int devices : {2, 4}) {
    const ClusterRun other = RunCluster(data, devices, 1,
                                        /*share_kernel_blocks=*/true,
                                        std::nullopt);
    ExpectSameOutputs(base, other, "shared devices=" + std::to_string(devices),
                      /*compare_counters=*/false);
  }
}

TEST(ClusterDeterminismTest, MatchesSingleDeviceTrainerAndPredictor) {
  Dataset data = Proxy();
  MpTrainOptions options = BaseOptions(/*share_kernel_blocks=*/false);
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto reference = ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, nullptr));
  auto reference_pred = ValueOrDie(MpSvmPredictor(&reference).Predict(
      data.features(), &exec, PredictOptions{}));

  const ClusterRun sharded = RunCluster(data, 4, 1,
                                        /*share_kernel_blocks=*/false,
                                        std::nullopt);
  EXPECT_EQ(sharded.model_text, SerializeModel(reference));
  ASSERT_EQ(sharded.probabilities.size(), reference_pred.probabilities.size());
  EXPECT_EQ(0, std::memcmp(sharded.probabilities.data(),
                           reference_pred.probabilities.data(),
                           sharded.probabilities.size() * sizeof(double)));
}

TEST(ClusterDeterminismTest, ChaosRunsInvariantAcrossDeviceAndThreadCounts) {
  // FaultPlan::Chaos exercises every transient site including device loss.
  // Per-pair injectors are seeded from (plan seed, pair index), so each pair
  // sees one fault sequence whatever device trains it — retries included.
  Dataset data = Proxy();
  const fault::FaultPlan plan = fault::FaultPlan::Chaos(7);
  const ClusterRun base =
      RunCluster(data, 1, 1, /*share_kernel_blocks=*/false, plan);
  struct Config {
    int devices;
    int host_threads;
  };
  for (const Config& config : {Config{2, 1}, Config{4, 1}, Config{4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, plan);
    ExpectSameOutputs(base, other,
                      "chaos devices=" + std::to_string(config.devices) +
                          " threads=" + std::to_string(config.host_threads),
                      /*compare_counters=*/true);
  }
}

TEST(ClusterDeterminismTest, ChaosRecoversToTheCleanModel) {
  Dataset data = Proxy();
  const ClusterRun clean = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                      std::nullopt);
  const ClusterRun chaos = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                      fault::FaultPlan::Chaos(7));
  EXPECT_EQ(chaos.model_text, clean.model_text);
  ASSERT_EQ(chaos.probabilities.size(), clean.probabilities.size());
  EXPECT_EQ(0, std::memcmp(chaos.probabilities.data(),
                           clean.probabilities.data(),
                           chaos.probabilities.size() * sizeof(double)));
}

// --- Multi-node / intra-pair sharding ---------------------------------------

TEST(ClusterDeterminismTest, ShardedRunsInvariantAcrossTopologies) {
  // The full matrix the contract promises: nodes x devices x host_threads,
  // with intra-pair sharding forced on every multi-device topology. The
  // devices=1 baseline cannot shard, so this checks sharded solves against
  // a genuine single-device run — counters included.
  Dataset data = Proxy();
  const ClusterRun base = RunCluster(data, 1, 1, /*share_kernel_blocks=*/false,
                                     std::nullopt);
  struct Config {
    int nodes;
    int devices;
    int host_threads;
  };
  for (const Config& config :
       {Config{1, 2, 1}, Config{1, 4, 1}, Config{1, 4, 8}, Config{2, 2, 1},
        Config{2, 4, 1}, Config{2, 4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, std::nullopt, config.nodes,
                   /*max_shards=*/config.devices);
    const std::string what = "nodes=" + std::to_string(config.nodes) +
                             " devices=" + std::to_string(config.devices) +
                             " threads=" + std::to_string(config.host_threads);
    EXPECT_GT(other.pairs_sharded, 0) << what;
    ExpectSameOutputs(base, other, what, /*compare_counters=*/true);
  }
}

TEST(ClusterDeterminismTest, ShardedChaosInvariantAndIncludesNodeLoss) {
  // Chaos plans include kNodeLoss; multi-node sharded runs must still match
  // the single-device baseline bit for bit, retries and all.
  Dataset data = Proxy();
  // Seed 3 is one whose per-node loss stream fells node 1 (out of 2) — the
  // draw is deterministic in (plan seed, node index), so the orphan-shard
  // path is exercised on every config below.
  const fault::FaultPlan plan = fault::FaultPlan::Chaos(3);
  ASSERT_GT(plan.node_loss_prob, 0.0);
  const ClusterRun base =
      RunCluster(data, 1, 1, /*share_kernel_blocks=*/false, plan);
  struct Config {
    int nodes;
    int devices;
    int host_threads;
  };
  bool saw_node_loss = false;
  for (const Config& config :
       {Config{2, 2, 1}, Config{2, 4, 1}, Config{2, 4, 8}}) {
    const ClusterRun other =
        RunCluster(data, config.devices, config.host_threads,
                   /*share_kernel_blocks=*/false, plan, config.nodes,
                   /*max_shards=*/config.devices);
    ExpectSameOutputs(base, other,
                      "chaos nodes=" + std::to_string(config.nodes) +
                          " devices=" + std::to_string(config.devices),
                      /*compare_counters=*/true);
    saw_node_loss = saw_node_loss || other.nodes_lost > 0;
  }
  // Chaos at 0.4/node must fell at least one node somewhere in the sweep;
  // if not, the orphan-shard path went untested.
  EXPECT_TRUE(saw_node_loss);
}

TEST(ClusterDeterminismTest, ShardedChaosRecoversTheCleanModel) {
  Dataset data = Proxy();
  const ClusterRun clean =
      RunCluster(data, 4, 1, /*share_kernel_blocks=*/false, std::nullopt,
                 /*nodes=*/2, /*max_shards=*/4);
  const ClusterRun chaos =
      RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                 fault::FaultPlan::Chaos(3), /*nodes=*/2, /*max_shards=*/4);
  EXPECT_EQ(chaos.model_text, clean.model_text);
  ASSERT_EQ(chaos.probabilities.size(), clean.probabilities.size());
  EXPECT_EQ(0, std::memcmp(chaos.probabilities.data(),
                           clean.probabilities.data(),
                           chaos.probabilities.size() * sizeof(double)));
}

TEST(ClusterDeterminismTest, OversizedPairMakespanDecreasesWithShards) {
  // One oversized pair (2 classes, one pair problem): whole-pair scheduling
  // cannot use extra devices at all, but intra-pair sharding must turn them
  // into a strictly shorter makespan as the group grows.
  //
  // Sharding divides the per-round VECTOR work; the per-round FIXED costs
  // (kernel-launch overhead, allreduce link latency) do not shrink, so the
  // scaling regime only exists where the divisible work dominates
  // (docs/scaling.md). The default P100 model's 5us launch overhead swamps
  // this small problem's per-round compute, so this test models
  // graph-captured launches (sub-us submission) and an on-package link —
  // isolating the property under test from the fixed-cost floor.
  Dataset big = ValueOrDie(MakeMulticlassBlobs(2, 600, 8, 2.0, 9));
  double prev = std::numeric_limits<double>::infinity();
  for (int devices : {1, 2, 4}) {
    ExecutorModel model = ExecutorModel::TeslaP100();
    model.launch_overhead_sec = 2e-7;
    cluster::SimCluster cluster = cluster::SimCluster::Homogeneous(devices, model);
    dist::LinkModel fast_intra;
    fast_intra.bandwidth_bytes_per_sec = 300e9;
    fast_intra.latency_seconds = 1e-7;
    ASSERT_TRUE(cluster
                    .SetTopology(dist::ClusterTopology::Contiguous(
                        1, devices, fast_intra, dist::NetworkClassLink()))
                    .ok());

    cluster::ClusterTrainOptions options;
    options.train = BaseOptions(/*share_kernel_blocks=*/false);
    options.schedule.max_shards_per_pair = devices;
    if (devices > 1) options.schedule.shard_oversize_factor = 0.0;
    cluster::ClusterTrainReport report;
    auto svm = ValueOrDie(
        cluster::ClusterTrainer(options).Train(big, &cluster, &report));
    (void)svm;
    if (devices > 1) {
      EXPECT_GT(report.pairs_sharded, 0);
    }
    EXPECT_LT(report.makespan_sim_seconds, prev) << "devices=" << devices;
    prev = report.makespan_sim_seconds;
  }
}

TEST(ClusterDeterminismTest, OnlyTheMakespanChangesWithDeviceCount) {
  Dataset data = Proxy();
  const ClusterRun one = RunCluster(data, 1, 1, /*share_kernel_blocks=*/false,
                                    std::nullopt);
  const ClusterRun four = RunCluster(data, 4, 1, /*share_kernel_blocks=*/false,
                                     std::nullopt);
  ExpectSameOutputs(one, four, "makespan check", /*compare_counters=*/true);
  EXPECT_LT(four.makespan, one.makespan);
}

}  // namespace
}  // namespace gmpsvm
