// Thread-count invariance: host_threads is a wall-clock knob ONLY. For every
// value, trained models, simulated times, phase attributions, device
// counters, traces, and predicted probabilities must be byte-identical to
// the single-threaded run — including under an injected fault plan, where
// the trainers fall back to serial pair orchestration but op-level bodies
// may still be distributed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "../test_util.h"
#include "common/string_util.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/ova_trainer.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"
#include "obs/span.h"
#include "simd/simd.h"

namespace gmpsvm {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

// Two small Table-2-style proxies with different shapes: a 4-class problem
// with pairwise groups wider than max_concurrent_svms, and a 3-class one
// with overlapping classes (more SMO iterations, shared SVs).
struct Proxy {
  const char* name;
  int k;
  int n_per_class;
  int dim;
  double separation;
  uint64_t seed;
};

constexpr Proxy kProxies[] = {
    {"proxy-a", 4, 22, 6, 2.5, 42},
    {"proxy-b", 3, 30, 5, 1.5, 11},
};

MpTrainOptions BaseOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

struct RunOutput {
  std::string model_text;
  double sim_seconds = 0.0;
  int64_t solver_iterations = 0;
  std::string phases_text;
  double counters_flops = 0.0;
  int64_t launches = 0;
  int64_t kernel_values_computed = 0;
  int64_t kernel_values_reused = 0;
  size_t peak_bytes = 0;
  size_t trace_spans = 0;
  std::vector<double> phase_values;  // phases in map (name) order
  std::vector<double> probabilities;
};

std::string PhasesText(const PhaseTimer& phases) {
  std::string text;
  for (const auto& [name, secs] : phases.phases()) {
    text += name + "=" + StrPrintf("%.17g", secs) + ";";
  }
  return text;
}

enum class Trainer { kGmp, kGmpUnsharedCache, kSequential };

// Trains + predicts one proxy at a given thread count. `via_options` routes
// the knob through MpTrainOptions::host_threads, otherwise through
// ExecutorModel::host_threads — both spellings must behave identically.
RunOutput TrainPredict(const Proxy& proxy, Trainer trainer, int host_threads,
              bool via_options, fault::FaultPlan* plan) {
  auto data = ValueOrDie(MakeMulticlassBlobs(proxy.k, proxy.n_per_class,
                                             proxy.dim, proxy.separation,
                                             proxy.seed));
  MpTrainOptions options = BaseOptions();
  if (trainer == Trainer::kGmpUnsharedCache) options.share_kernel_blocks = false;
  ExecutorModel model = ExecutorModel::TeslaP100();
  if (via_options) {
    options.host_threads = host_threads;
  } else {
    model.host_threads = host_threads;
  }
  SimExecutor exec(std::move(model));
  obs::TraceRecorder trace;
  exec.SetSpanRecorder(&trace);
  std::optional<fault::FaultInjector> injector;
  if (plan != nullptr) {
    injector.emplace(*plan);
    exec.SetFaultInjector(&*injector);
  }

  MpTrainReport report;
  MpSvmModel svm_model;
  if (trainer == Trainer::kSequential) {
    svm_model =
        ValueOrDie(SequentialMpTrainer(options).Train(data, &exec, &report));
  } else {
    svm_model = ValueOrDie(GmpSvmTrainer(options).Train(data, &exec, &report));
  }

  RunOutput out;
  out.model_text = SerializeModel(svm_model);
  out.sim_seconds = report.sim_seconds;
  out.solver_iterations = report.solver.iterations;
  out.phases_text = PhasesText(report.phases);
  for (const auto& [name, secs] : report.phases.phases()) {
    out.phase_values.push_back(secs);
  }
  out.counters_flops = exec.counters().flops;
  out.launches = exec.counters().launches;
  out.kernel_values_computed = exec.counters().kernel_values_computed;
  out.kernel_values_reused = exec.counters().kernel_values_reused;
  out.peak_bytes = exec.counters().peak_bytes_in_use;
  out.trace_spans = trace.size();

  MpSvmPredictor predictor(&svm_model);
  auto pred =
      ValueOrDie(predictor.Predict(data.features(), &exec, PredictOptions{}));
  out.probabilities = std::move(pred.probabilities);
  return out;
}

// `exact_phases`: the GMP trainer's satellites fork from each pair's own
// stream, so replayed phase brackets reproduce the serial absolute times and
// the phase attribution is byte-exact. The Sequential/OVA satellites all fork
// from the default stream's common base while a serial run starts pair p at
// the accumulated time T_{p-1}; the solver's endpoint-difference brackets
// then differ in the final ulp (and only there — documented in
// docs/performance.md), so those suites compare phases with ulp tolerance.
void ExpectSameRun(const RunOutput& base, const RunOutput& other,
                   const std::string& what, bool exact_phases = true) {
  EXPECT_EQ(base.model_text, other.model_text) << what;
  EXPECT_EQ(base.sim_seconds, other.sim_seconds) << what;
  EXPECT_EQ(base.solver_iterations, other.solver_iterations) << what;
  if (exact_phases) {
    EXPECT_EQ(base.phases_text, other.phases_text) << what;
  } else {
    ASSERT_EQ(base.phase_values.size(), other.phase_values.size()) << what;
    for (size_t i = 0; i < base.phase_values.size(); ++i) {
      EXPECT_NEAR(base.phase_values[i], other.phase_values[i],
                  1e-12 * std::abs(base.phase_values[i]))
          << what << " phase " << i;
    }
  }
  EXPECT_EQ(base.counters_flops, other.counters_flops) << what;
  EXPECT_EQ(base.launches, other.launches) << what;
  EXPECT_EQ(base.kernel_values_computed, other.kernel_values_computed) << what;
  EXPECT_EQ(base.kernel_values_reused, other.kernel_values_reused) << what;
  EXPECT_EQ(base.peak_bytes, other.peak_bytes) << what;
  EXPECT_EQ(base.trace_spans, other.trace_spans) << what;
  ASSERT_EQ(base.probabilities.size(), other.probabilities.size()) << what;
  EXPECT_EQ(0, std::memcmp(base.probabilities.data(),
                           other.probabilities.data(),
                           base.probabilities.size() * sizeof(double)))
      << what;
}

TEST(HostDeterminismTest, GmpTrainerInvariantAcrossThreadCounts) {
  for (const Proxy& proxy : kProxies) {
    RunOutput base = TrainPredict(proxy, Trainer::kGmp, 1, /*via_options=*/true, nullptr);
    for (int threads : {2, 8}) {
      ExpectSameRun(base,
                    TrainPredict(proxy, Trainer::kGmp, threads, /*via_options=*/true,
                        nullptr),
                    std::string(proxy.name) + " gmp threads=" +
                        std::to_string(threads));
    }
  }
}

TEST(HostDeterminismTest, GmpPairParallelInvariantAcrossThreadCounts) {
  // With kernel-block sharing off, the trainer engages true pair-level
  // parallelism (satellite executors + event replay), the strongest case.
  for (const Proxy& proxy : kProxies) {
    RunOutput base =
        TrainPredict(proxy, Trainer::kGmpUnsharedCache, 1, /*via_options=*/true, nullptr);
    for (int threads : {2, 8}) {
      ExpectSameRun(base,
                    TrainPredict(proxy, Trainer::kGmpUnsharedCache, threads,
                        /*via_options=*/true, nullptr),
                    std::string(proxy.name) + " gmp-nocache threads=" +
                        std::to_string(threads));
    }
  }
}

TEST(HostDeterminismTest, SequentialTrainerInvariantAcrossThreadCounts) {
  for (const Proxy& proxy : kProxies) {
    RunOutput base =
        TrainPredict(proxy, Trainer::kSequential, 1, /*via_options=*/true, nullptr);
    for (int threads : {2, 8}) {
      ExpectSameRun(base,
                    TrainPredict(proxy, Trainer::kSequential, threads,
                        /*via_options=*/true, nullptr),
                    std::string(proxy.name) + " seq threads=" +
                        std::to_string(threads),
                    /*exact_phases=*/false);
    }
  }
}

TEST(HostDeterminismTest, ExecutorModelKnobMatchesOptionsKnob) {
  const Proxy& proxy = kProxies[0];
  RunOutput via_options =
      TrainPredict(proxy, Trainer::kGmpUnsharedCache, 8, /*via_options=*/true, nullptr);
  RunOutput via_model =
      TrainPredict(proxy, Trainer::kGmpUnsharedCache, 8, /*via_options=*/false, nullptr);
  ExpectSameRun(via_options, via_model, "options-vs-model knob");
}

TEST(HostDeterminismTest, ChaosRunsInvariantAcrossThreadCounts) {
  // With a fault injector attached the trainers stay on the serial pair
  // path (fault/RNG draws are per-site and order-dependent), but op bodies
  // still fan out. The chaotic run itself must not see the thread count.
  fault::FaultPlan plan = fault::FaultPlan::Chaos(7);
  plan.alloc_fail_prob = 0.25;
  plan.kernel_row_fail_prob = 0.25;
  plan.latency_spike_prob = 0.25;
  const Proxy& proxy = kProxies[0];
  fault::FaultPlan p1 = plan, p2 = plan, p3 = plan;
  RunOutput base = TrainPredict(proxy, Trainer::kGmp, 1, /*via_options=*/true, &p1);
  ExpectSameRun(base, TrainPredict(proxy, Trainer::kGmp, 2, /*via_options=*/true, &p2),
                "chaos threads=2");
  ExpectSameRun(base, TrainPredict(proxy, Trainer::kGmp, 8, /*via_options=*/true, &p3),
                "chaos threads=8");
}

TEST(HostDeterminismTest, SimdTierInvariantEndToEnd) {
  // The SIMD kernel tier is a wall-clock knob only (src/simd/simd.h): the
  // whole train+predict pipeline must produce byte-identical models, sim
  // times, counters, traces and probabilities on the scalar reference and on
  // the best vector tier this CPU has — on top of the thread-count
  // invariance above (run at 2 threads to compose the two). On a scalar-only
  // CPU both runs resolve to the same tier and this degenerates to a
  // self-comparison.
  const Proxy& proxy = kProxies[0];
  ASSERT_TRUE(simd::SetActiveTier(simd::SimdTier::kScalar).ok());
  RunOutput scalar_run =
      TrainPredict(proxy, Trainer::kGmp, 2, /*via_options=*/true, nullptr);
  ASSERT_TRUE(simd::SetActiveTier(simd::DetectBestTier()).ok());
  RunOutput vector_run =
      TrainPredict(proxy, Trainer::kGmp, 2, /*via_options=*/true, nullptr);
  ASSERT_TRUE(simd::SetActiveTier(simd::SimdTier::kAuto).ok());
  ExpectSameRun(scalar_run, vector_run,
                std::string("simd scalar-vs-") +
                    simd::TierName(simd::DetectBestTier()));
}

TEST(HostDeterminismTest, OvaTrainerInvariantAcrossThreadCounts) {
  auto data = ValueOrDie(MakeMulticlassBlobs(3, 24, 5, 2.0, 29));
  auto run = [&](int threads) {
    MpTrainOptions options = BaseOptions();
    options.host_threads = threads;
    SimExecutor exec(ExecutorModel::TeslaP100());
    MpTrainReport report;
    auto model = ValueOrDie(OvaTrainer(options).Train(data, &exec, &report));
    auto pred = ValueOrDie(OvaPredict(model, data.features(), &exec));
    return std::make_tuple(report.sim_seconds, model.classes,
                           std::move(pred.probabilities),
                           exec.counters().flops);
  };
  auto [sim1, classes1, prob1, flops1] = run(1);
  for (int threads : {2, 8}) {
    auto [simN, classesN, probN, flopsN] = run(threads);
    EXPECT_EQ(sim1, simN) << threads;
    EXPECT_EQ(flops1, flopsN) << threads;
    ASSERT_EQ(classes1.size(), classesN.size());
    for (size_t c = 0; c < classes1.size(); ++c) {
      EXPECT_EQ(classes1[c].bias, classesN[c].bias) << threads << " class " << c;
      EXPECT_EQ(classes1[c].sigmoid.a, classesN[c].sigmoid.a) << threads;
      EXPECT_EQ(classes1[c].sigmoid.b, classesN[c].sigmoid.b) << threads;
      ASSERT_EQ(classes1[c].sv_coef.size(), classesN[c].sv_coef.size());
      EXPECT_EQ(0, std::memcmp(classes1[c].sv_coef.data(),
                               classesN[c].sv_coef.data(),
                               classes1[c].sv_coef.size() * sizeof(double)));
    }
    ASSERT_EQ(prob1.size(), probN.size());
    EXPECT_EQ(0, std::memcmp(prob1.data(), probN.data(),
                             prob1.size() * sizeof(double)));
  }
}

}  // namespace
}  // namespace gmpsvm
