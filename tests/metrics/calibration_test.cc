#include "metrics/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gmpsvm {
namespace {

TEST(LogLossTest, PerfectPredictionsScoreZero) {
  std::vector<double> p = {1.0, 0.0, 0.0, 1.0};
  std::vector<int32_t> y = {0, 1};
  EXPECT_NEAR(ValueOrDie(LogLoss(p, y, 2)), 0.0, 1e-9);
}

TEST(LogLossTest, UniformPredictionsScoreLogK) {
  std::vector<double> p(12, 1.0 / 3.0);
  std::vector<int32_t> y = {0, 1, 2, 0};
  EXPECT_NEAR(ValueOrDie(LogLoss(p, y, 3)), std::log(3.0), 1e-9);
}

TEST(LogLossTest, ZeroProbabilityIsClampedFinite) {
  std::vector<double> p = {0.0, 1.0};
  std::vector<int32_t> y = {0};
  const double loss = ValueOrDie(LogLoss(p, y, 2));
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);
}

TEST(LogLossTest, RejectsBadShapes) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<int32_t> y = {0, 1};
  EXPECT_FALSE(LogLoss(p, y, 2).ok());              // shape mismatch
  std::vector<int32_t> bad = {5};
  EXPECT_FALSE(LogLoss(p, bad, 2).ok());            // label out of range
  EXPECT_FALSE(LogLoss(p, std::vector<int32_t>{0}, 1).ok());  // k < 2
}

TEST(BrierScoreTest, PerfectIsZeroWorstIsTwo) {
  std::vector<double> perfect = {1.0, 0.0};
  std::vector<int32_t> y = {0};
  EXPECT_NEAR(ValueOrDie(BrierScore(perfect, y, 2)), 0.0, 1e-12);
  std::vector<double> worst = {0.0, 1.0};
  EXPECT_NEAR(ValueOrDie(BrierScore(worst, y, 2)), 2.0, 1e-12);
}

TEST(BrierScoreTest, UniformValue) {
  std::vector<double> p(4, 0.5);
  std::vector<int32_t> y = {0, 1};
  // Each instance: (0.5-1)^2 + (0.5-0)^2 = 0.5.
  EXPECT_NEAR(ValueOrDie(BrierScore(p, y, 2)), 0.5, 1e-12);
}

TEST(CalibrationTest, PerfectlyCalibratedHasLowEce) {
  // Confidence c on the top class and accuracy c, by construction.
  Rng rng(5);
  std::vector<double> p;
  std::vector<int32_t> y;
  for (int i = 0; i < 20000; ++i) {
    const double conf = rng.Uniform(0.5, 1.0);
    p.push_back(conf);
    p.push_back(1.0 - conf);
    y.push_back(rng.Bernoulli(conf) ? 0 : 1);
  }
  auto report = ValueOrDie(ComputeCalibration(p, y, 2, 10));
  EXPECT_LT(report.ece, 0.03);
}

TEST(CalibrationTest, OverconfidentModelHasHighEce) {
  // Always 99% confident, right only half the time.
  Rng rng(7);
  std::vector<double> p;
  std::vector<int32_t> y;
  for (int i = 0; i < 5000; ++i) {
    p.push_back(0.99);
    p.push_back(0.01);
    y.push_back(rng.Bernoulli(0.5) ? 0 : 1);
  }
  auto report = ValueOrDie(ComputeCalibration(p, y, 2, 10));
  EXPECT_GT(report.ece, 0.4);
}

TEST(CalibrationTest, BinDiagnosticsConsistent) {
  std::vector<double> p = {0.95, 0.05, 0.55, 0.45, 0.52, 0.48};
  std::vector<int32_t> y = {0, 1, 0};
  auto report = ValueOrDie(ComputeCalibration(p, y, 2, 10));
  int64_t total = 0;
  for (int64_t c : report.bin_counts) total += c;
  EXPECT_EQ(total, 3);
  // Bin 9 ([0.9, 1.0)) holds the 0.95-confidence instance, which was right.
  EXPECT_EQ(report.bin_counts[9], 1);
  EXPECT_DOUBLE_EQ(report.bin_accuracy[9], 1.0);
  EXPECT_NEAR(report.bin_confidence[9], 0.95, 1e-12);
}

TEST(CalibrationTest, RejectsBadBins) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<int32_t> y = {0};
  EXPECT_FALSE(ComputeCalibration(p, y, 2, 0).ok());
}

}  // namespace
}  // namespace gmpsvm
