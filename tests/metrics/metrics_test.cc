#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "metrics/report.h"

namespace gmpsvm {
namespace {

TEST(ErrorRateTest, Basic) {
  std::vector<int32_t> pred = {0, 1, 2, 1};
  std::vector<int32_t> truth = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(ValueOrDie(ErrorRate(pred, truth)), 0.25);
}

TEST(ErrorRateTest, PerfectAndWorst) {
  std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(ValueOrDie(ErrorRate(a, a)), 0.0);
  EXPECT_DOUBLE_EQ(ValueOrDie(ErrorRate(a, b)), 1.0);
}

TEST(ErrorRateTest, RejectsMismatchOrEmpty) {
  std::vector<int32_t> a = {1};
  std::vector<int32_t> b = {1, 2};
  EXPECT_FALSE(ErrorRate(a, b).ok());
  EXPECT_FALSE(ErrorRate(std::vector<int32_t>{}, std::vector<int32_t>{}).ok());
}

TEST(ConfusionMatrixTest, CountsByTruthRow) {
  std::vector<int32_t> pred = {0, 1, 1, 2, 0};
  std::vector<int32_t> truth = {0, 0, 1, 2, 2};
  auto m = ValueOrDie(ConfusionMatrix(pred, truth, 3));
  EXPECT_EQ(m[0 * 3 + 0], 1);
  EXPECT_EQ(m[0 * 3 + 1], 1);
  EXPECT_EQ(m[1 * 3 + 1], 1);
  EXPECT_EQ(m[2 * 3 + 2], 1);
  EXPECT_EQ(m[2 * 3 + 0], 1);
  int64_t total = 0;
  for (int64_t v : m) total += v;
  EXPECT_EQ(total, 5);
}

TEST(ConfusionMatrixTest, RejectsOutOfRange) {
  std::vector<int32_t> pred = {5};
  std::vector<int32_t> truth = {0};
  EXPECT_FALSE(ConfusionMatrix(pred, truth, 3).ok());
}

MpSvmModel TinyModel(double bias_last, double coef) {
  MpSvmModel m;
  m.num_classes = 3;
  for (int s = 0; s < 3; ++s) {
    for (int t = s + 1; t < 3; ++t) {
      BinarySvmEntry e;
      e.class_s = s;
      e.class_t = t;
      e.bias = (s == 1 && t == 2) ? bias_last : 0.1;
      e.sv_pool_index = {0};
      e.sv_coef = {coef};
      m.svms.push_back(e);
    }
  }
  return m;
}

TEST(CompareModelsTest, ReportsLastBiasAndDiffs) {
  MpSvmModel a = TinyModel(0.5, 1.0);
  MpSvmModel b = TinyModel(0.75, 1.5);
  auto agreement = ValueOrDie(CompareModels(a, b));
  EXPECT_DOUBLE_EQ(agreement.bias_a, 0.5);
  EXPECT_DOUBLE_EQ(agreement.bias_b, 0.75);
  EXPECT_DOUBLE_EQ(agreement.max_bias_diff, 0.25);
  EXPECT_DOUBLE_EQ(agreement.max_coef_sum_diff, 0.5);
}

TEST(CompareModelsTest, IdenticalModelsAgree) {
  MpSvmModel a = TinyModel(0.5, 1.0);
  auto agreement = ValueOrDie(CompareModels(a, a));
  EXPECT_DOUBLE_EQ(agreement.max_bias_diff, 0.0);
  EXPECT_DOUBLE_EQ(agreement.max_coef_sum_diff, 0.0);
}

TEST(CompareModelsTest, RejectsShapeMismatch) {
  MpSvmModel a = TinyModel(0.5, 1.0);
  MpSvmModel b;
  b.num_classes = 2;
  BinarySvmEntry e;
  b.svms.push_back(e);
  EXPECT_FALSE(CompareModels(a, b).ok());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Dataset", "train", "predict"});
  table.AddRow({"MNIST", "34.10", "4.62"});
  table.AddRow({"Adult-long-name", "2.43", "0.29"});
  const std::string out = table.ToString();
  // Header present, separator line present, rows aligned on column starts.
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  const size_t header_train = out.find("train");
  const size_t row2 = out.find("Adult-long-name");
  ASSERT_NE(row2, std::string::npos);
  const size_t row2_val = out.find("2.43", row2);
  const size_t line_start_header = out.rfind('\n', header_train);
  const size_t line_start_row2 = out.rfind('\n', row2_val);
  EXPECT_EQ(header_train - (line_start_header + 1),
            row2_val - (line_start_row2 + 1));
}

}  // namespace
}  // namespace gmpsvm
