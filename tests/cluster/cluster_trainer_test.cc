// ClusterTrainer: the sharded trainer must produce the exact single-device
// model at every device count, report a makespan that shrinks as devices are
// added, survive device loss by rescheduling orphaned pairs, and reject the
// single-device-only options up front.

#include "cluster/cluster_trainer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"

namespace gmpsvm::cluster {
namespace {

using ::gmpsvm::testing::MakeMulticlassBlobs;

MpTrainOptions BaseOptions() {
  MpTrainOptions options;
  options.kernel.gamma = 0.3;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  options.max_concurrent_svms = 4;
  options.shared_cache_bytes = 64ull << 20;
  return options;
}

Dataset SmallProxy() {
  return ValueOrDie(MakeMulticlassBlobs(4, 22, 6, 2.5, 42));
}

std::string SingleDeviceModelText(const Dataset& data) {
  SimExecutor exec(ExecutorModel::TeslaP100());
  auto model = ValueOrDie(GmpSvmTrainer(BaseOptions()).Train(data, &exec, nullptr));
  return SerializeModel(model);
}

TEST(ClusterTrainerTest, ModelMatchesSingleDeviceTrainer) {
  Dataset data = SmallProxy();
  const std::string reference = SingleDeviceModelText(data);

  SimCluster cluster = SimCluster::Homogeneous(3, ExecutorModel::TeslaP100());
  ClusterTrainOptions options;
  options.train = BaseOptions();
  ClusterTrainReport report;
  auto model = ValueOrDie(ClusterTrainer(options).Train(data, &cluster, &report));
  EXPECT_EQ(SerializeModel(model), reference);

  ASSERT_EQ(report.pair_outcomes.size(), 6u);
  ASSERT_EQ(report.pair_device.size(), 6u);
  for (int d : report.pair_device) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 3);
  }
}

TEST(ClusterTrainerTest, MakespanStrictlyDecreasesOneToFourDevices) {
  // 6 classes -> 15 pairs: enough parallel slack that each doubling of the
  // device count must strictly shorten the makespan.
  Dataset data = ValueOrDie(MakeMulticlassBlobs(6, 15, 5, 2.0, 11));
  std::vector<double> makespans;
  std::string reference;
  for (int n : {1, 2, 4}) {
    SimCluster cluster = SimCluster::Homogeneous(n, ExecutorModel::TeslaP100());
    ClusterTrainOptions options;
    options.train = BaseOptions();
    ClusterTrainReport report;
    auto model =
        ValueOrDie(ClusterTrainer(options).Train(data, &cluster, &report));
    if (reference.empty()) {
      reference = SerializeModel(model);
    } else {
      EXPECT_EQ(SerializeModel(model), reference) << n << " devices";
    }
    makespans.push_back(report.makespan_sim_seconds);

    // Utilization bookkeeping: the makespan device is fully utilized, every
    // device's share is in (0, 1], and the per-device pair counts cover all
    // 15 pairs.
    ASSERT_EQ(report.devices.size(), static_cast<size_t>(n));
    double max_util = 0.0;
    int pairs_total = 0;
    for (const DeviceUtilization& u : report.devices) {
      EXPECT_GT(u.utilization, 0.0);
      EXPECT_LE(u.utilization, 1.0 + 1e-12);
      max_util = std::max(max_util, u.utilization);
      pairs_total += u.pairs_trained;
      EXPECT_FALSE(u.lost);
    }
    EXPECT_NEAR(max_util, 1.0, 1e-12);
    EXPECT_EQ(pairs_total, 15);
  }
  EXPECT_LT(makespans[1], makespans[0]);
  EXPECT_LT(makespans[2], makespans[1]);
}

TEST(ClusterTrainerTest, DeviceLossReschedulesOrphansWithoutChangingModel) {
  Dataset data = SmallProxy();
  const std::string reference = SingleDeviceModelText(data);

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.device_loss_prob = 1.0;  // every non-primary device dies
  SimCluster cluster = SimCluster::Homogeneous(3, ExecutorModel::TeslaP100());
  ClusterTrainOptions options;
  options.train = BaseOptions();
  options.fault = plan;
  ClusterTrainReport report;
  auto model = ValueOrDie(ClusterTrainer(options).Train(data, &cluster, &report));

  EXPECT_EQ(SerializeModel(model), reference);
  EXPECT_EQ(report.devices_lost, 2);
  EXPECT_FALSE(report.devices[0].lost);
  EXPECT_TRUE(report.devices[1].lost);
  EXPECT_TRUE(report.devices[2].lost);
  EXPECT_GT(report.pairs_rescheduled, 0);
  int pairs_total = 0;
  for (const DeviceUtilization& u : report.devices) pairs_total += u.pairs_trained;
  EXPECT_EQ(pairs_total, 6);
}

TEST(ClusterTrainerTest, ChaosRunRecoversToTheCleanModel) {
  Dataset data = SmallProxy();
  const std::string reference = SingleDeviceModelText(data);

  SimCluster cluster = SimCluster::Homogeneous(4, ExecutorModel::TeslaP100());
  ClusterTrainOptions options;
  options.train = BaseOptions();
  options.fault = fault::FaultPlan::Chaos(7);
  ClusterTrainReport report;
  auto model = ValueOrDie(ClusterTrainer(options).Train(data, &cluster, &report));
  EXPECT_EQ(SerializeModel(model), reference);
}

TEST(ClusterTrainerTest, ValidateRejectsSingleDeviceOnlyOptions) {
  Dataset data = SmallProxy();
  SimCluster cluster = SimCluster::Homogeneous(2, ExecutorModel::TeslaP100());

  ClusterTrainOptions checkpoint;
  checkpoint.train = BaseOptions();
  checkpoint.train.checkpoint.dir = "/tmp/nope";
  EXPECT_FALSE(ClusterTrainer(checkpoint).Train(data, &cluster, nullptr).ok());

  ClusterTrainOptions resume;
  resume.train = BaseOptions();
  resume.train.checkpoint.resume = true;
  EXPECT_FALSE(ClusterTrainer(resume).Train(data, &cluster, nullptr).ok());

  ClusterTrainOptions interrupt;
  interrupt.train = BaseOptions();
  interrupt.fault = fault::FaultPlan{};
  interrupt.fault->interrupt_after_pairs = 1;
  EXPECT_FALSE(ClusterTrainer(interrupt).Train(data, &cluster, nullptr).ok());

  ClusterTrainOptions discount;
  discount.train = BaseOptions();
  discount.schedule.affinity_discount = 0.6;
  EXPECT_FALSE(ClusterTrainer(discount).Train(data, &cluster, nullptr).ok());
}

TEST(SimClusterTest, HomogeneousDevicesShareSpeedAndBandLanes) {
  SimCluster cluster = SimCluster::Homogeneous(3, ExecutorModel::TeslaP100());
  ASSERT_EQ(cluster.num_devices(), 3);
  EXPECT_GT(cluster.speed(0), 0.0);
  EXPECT_EQ(cluster.speed(0), cluster.speed(1));
  EXPECT_EQ(cluster.speed(1), cluster.speed(2));
  EXPECT_EQ(cluster.speeds().size(), 3u);

  // Lane banding: device d's spans land in [d*16, (d+1)*16).
  obs::TraceRecorder trace;
  cluster.SetSpanRecorder(&trace);
  Dataset data = ValueOrDie(MakeMulticlassBlobs(3, 12, 4, 2.5, 3));
  ClusterTrainOptions options;
  options.train = BaseOptions();
  ClusterTrainReport report;
  ValueOrDie(ClusterTrainer(options).Train(data, &cluster, &report));
  ASSERT_GT(trace.size(), 0u);
  bool saw_banded_lane = false;
  for (const obs::SpanEvent& event : trace.events()) {
    EXPECT_GE(event.lane, 0);
    EXPECT_LT(event.lane, 3 * kClusterLaneBand);
    if (event.lane >= kClusterLaneBand) saw_banded_lane = true;
  }
  EXPECT_TRUE(saw_banded_lane) << "no span landed on a non-primary device band";
}

}  // namespace
}  // namespace gmpsvm::cluster
