// Cost-model-aware pair scheduling: LPT balance, speed normalization,
// affinity discounts, lost-device exclusion, and determinism. Costs in these
// tests are hand-computable: equal class sizes make every pair cost
// (2n)^2 * (dim + 16), so the expected assignments can be traced on paper.

#include "cluster/pair_scheduler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "core/dataset.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm::cluster {
namespace {

// A dataset whose only scheduling-relevant property is its class sizes.
Dataset MakeDatasetWithClassSizes(const std::vector<int>& sizes, int dim = 4) {
  CsrBuilder builder(dim);
  std::vector<int32_t> labels;
  for (size_t c = 0; c < sizes.size(); ++c) {
    for (int i = 0; i < sizes[c]; ++i) {
      std::vector<int32_t> idx = {0};
      std::vector<double> val = {static_cast<double>(c + 1)};
      builder.AddRow(idx, val);
      labels.push_back(static_cast<int32_t>(c));
    }
  }
  return ValueOrDie(Dataset::Create(ValueOrDie(builder.Finish()),
                                    std::move(labels),
                                    static_cast<int>(sizes.size()), "sched"));
}

std::vector<size_t> AllPairs(const Dataset& dataset) {
  std::vector<size_t> indices(dataset.ClassPairs().size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return indices;
}

TEST(EstimatePairCostTest, QuadraticInRowsLinearInDim) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 20, 30}, /*dim=*/4);
  // n^2 * (dim + 16) with n the pair's total row count.
  EXPECT_DOUBLE_EQ(EstimatePairCost(dataset, 0, 1), 30.0 * 30.0 * 20.0);
  EXPECT_DOUBLE_EQ(EstimatePairCost(dataset, 0, 2), 40.0 * 40.0 * 20.0);
  EXPECT_DOUBLE_EQ(EstimatePairCost(dataset, 1, 2), 50.0 * 50.0 * 20.0);
}

TEST(PairSchedulerTest, SingleDeviceGetsEveryPairInOrder) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 20, 30});
  ScheduleOptions options;
  options.affinity_discount = 0.0;  // undiscounted load = plain cost sum
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset), {1.0}, {}, options);
  ASSERT_EQ(a.device_pairs.size(), 1u);
  EXPECT_EQ(a.device_pairs[0], (std::vector<size_t>{0, 1, 2}));
  const double total = EstimatePairCost(dataset, 0, 1) +
                       EstimatePairCost(dataset, 0, 2) +
                       EstimatePairCost(dataset, 1, 2);
  EXPECT_DOUBLE_EQ(a.device_load[0], total);
}

TEST(PairSchedulerTest, LptBalancesEqualCostsAcrossEqualDevices) {
  // 4 equal classes: 6 pairs of identical cost 8000 onto 2 equal devices.
  Dataset dataset = MakeDatasetWithClassSizes({10, 10, 10, 10});
  ScheduleOptions options;
  options.affinity_discount = 0.0;
  PairAssignment a =
      SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0}, {}, options);
  ASSERT_EQ(a.device_pairs.size(), 2u);
  EXPECT_EQ(a.device_pairs[0].size(), 3u);
  EXPECT_EQ(a.device_pairs[1].size(), 3u);
  EXPECT_DOUBLE_EQ(a.device_load[0], a.device_load[1]);
  EXPECT_DOUBLE_EQ(a.device_load[0], 3.0 * 20.0 * 20.0 * 20.0);
}

TEST(PairSchedulerTest, EveryPairAssignedExactlyOnce) {
  Dataset dataset = MakeDatasetWithClassSizes({8, 12, 16, 9, 11});
  const std::vector<size_t> all = AllPairs(dataset);  // 10 pairs
  PairAssignment a = SchedulePairs(dataset, all, {1.0, 2.0, 0.5});
  std::set<size_t> seen;
  for (const std::vector<size_t>& list : a.device_pairs) {
    for (size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1], list[i]) << "device lists must be ascending";
    }
    for (size_t p : list) EXPECT_TRUE(seen.insert(p).second) << "pair " << p;
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(PairSchedulerTest, FasterDeviceTakesMorePairs) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 10, 10, 10});
  ScheduleOptions options;
  options.affinity_discount = 0.0;
  PairAssignment a =
      SchedulePairs(dataset, AllPairs(dataset), {1.0, 3.0}, {}, options);
  // Normalized LPT: the 3x device absorbs most of the 6 equal-cost pairs.
  // (The exact 4/2 vs 5/1 split hinges on accumulated-division rounding, so
  // assert the robust property, not the tie direction.)
  EXPECT_GE(a.device_pairs[1].size(), 4u);
  EXPECT_GT(a.device_pairs[1].size(), a.device_pairs[0].size());
  EXPECT_EQ(a.device_pairs[0].size() + a.device_pairs[1].size(), 6u);
}

TEST(PairSchedulerTest, AffinityDiscountLowersModeledLoad) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 10, 10, 10});
  ScheduleOptions plain;
  plain.affinity_discount = 0.0;
  ScheduleOptions affine;
  affine.affinity_discount = 0.25;
  PairAssignment base =
      SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0}, {}, plain);
  PairAssignment discounted =
      SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0}, {}, affine);
  // Sharing a resident class discounts the pair's modeled cost, so the
  // balanced load under affinity is strictly below the undiscounted one.
  EXPECT_LT(discounted.device_load[0], base.device_load[0]);
  EXPECT_LT(discounted.device_load[1], base.device_load[1]);
  // Hand-traced with discount 0.25: device 0 ends up with the clique
  // {(0,1), (0,3), (1,3)} — three pairs over exactly three classes.
  ASSERT_EQ(discounted.device_pairs[0].size(), 3u);
  std::set<int> classes;
  const auto pairs = dataset.ClassPairs();
  for (size_t p : discounted.device_pairs[0]) {
    classes.insert(pairs[p].first);
    classes.insert(pairs[p].second);
  }
  EXPECT_EQ(classes.size(), 3u);
}

TEST(PairSchedulerTest, InfiniteInitialLoadExcludesLostDevice) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 10, 10, 10});
  const double inf = std::numeric_limits<double>::infinity();
  PairAssignment a =
      SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0, 1.0}, {0.0, inf, 0.0});
  EXPECT_TRUE(a.device_pairs[1].empty());
  EXPECT_EQ(a.device_pairs[0].size() + a.device_pairs[2].size(), 6u);
  EXPECT_TRUE(std::isinf(a.device_load[1]));
}

TEST(PairSchedulerTest, SchedulesOnlyTheRequestedSubset) {
  Dataset dataset = MakeDatasetWithClassSizes({8, 12, 16, 9, 11});
  const std::vector<size_t> subset = {1, 3, 5, 8};
  PairAssignment a = SchedulePairs(dataset, subset, {1.0, 1.0});
  std::set<size_t> seen;
  for (const std::vector<size_t>& list : a.device_pairs) {
    seen.insert(list.begin(), list.end());
  }
  EXPECT_EQ(seen, std::set<size_t>(subset.begin(), subset.end()));
}

TEST(PairSchedulerTest, DeterministicForFixedInputs) {
  Dataset dataset = MakeDatasetWithClassSizes({8, 12, 16, 9, 11});
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset), {1.0, 2.5});
  PairAssignment b = SchedulePairs(dataset, AllPairs(dataset), {1.0, 2.5});
  EXPECT_EQ(a.device_pairs, b.device_pairs);
  EXPECT_EQ(a.device_load, b.device_load);
}

// --- Intra-pair sharding ----------------------------------------------------

ScheduleOptions ShardingOptions(const dist::ClusterTopology* topology,
                                int max_shards) {
  ScheduleOptions options;
  options.affinity_discount = 0.0;
  options.max_shards_per_pair = max_shards;
  options.shard_oversize_factor = 0.0;  // every pair counts as oversized
  options.topology = topology;
  return options;
}

TEST(PairSchedulerTest, OversizedPairShardsAcrossDevices) {
  // A single dominant pair on idle equal devices: splitting halves the
  // bottleneck, so the scheduler shards it instead of placing it whole.
  Dataset dataset = MakeDatasetWithClassSizes({100, 100});
  const dist::ClusterTopology topology = dist::ClusterTopology::SingleNode(2);
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0}, {},
                                   ShardingOptions(&topology, 2));
  ASSERT_EQ(a.sharded_pairs.size(), 1u);
  EXPECT_EQ(a.sharded_pairs[0].pair, 0u);
  EXPECT_EQ(a.sharded_pairs[0].devices, (std::vector<int>{0, 1}));
  EXPECT_TRUE(a.device_pairs[0].empty());
  EXPECT_TRUE(a.device_pairs[1].empty());
  // Both members carry half the pair plus the merge estimate.
  EXPECT_GT(a.device_load[0], 0.0);
  EXPECT_NEAR(a.device_load[0], a.device_load[1], 1e-9);
}

TEST(PairSchedulerTest, DefaultOptionsNeverShard) {
  Dataset dataset = MakeDatasetWithClassSizes({100, 100});
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset), {1.0, 1.0});
  EXPECT_TRUE(a.sharded_pairs.empty());
  EXPECT_EQ(a.device_pairs[0].size() + a.device_pairs[1].size(), 1u);
}

TEST(PairSchedulerTest, ShardGroupPrefersOneNodeWhenInterLinkIsSlow) {
  // 2 nodes x 2 devices with a pathologically slow inter-node link. The
  // globally least-loaded pair of devices straddles the nodes (1 and 2), but
  // the merge estimate across the slow link makes node 1's {2, 3} cheaper.
  Dataset dataset = MakeDatasetWithClassSizes({200, 200});
  dist::LinkModel slow;
  slow.bandwidth_bytes_per_sec = 1e3;
  slow.latency_seconds = 1.0;
  const dist::ClusterTopology topology = dist::ClusterTopology::Contiguous(
      2, 4, dist::NvlinkClassLink(), slow);
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0},
                                   {0.5, 0.2, 0.3, 0.4},
                                   ShardingOptions(&topology, 2));
  ASSERT_EQ(a.sharded_pairs.size(), 1u);
  // Coordinator is the group's least-loaded member.
  EXPECT_EQ(a.sharded_pairs[0].devices, (std::vector<int>{2, 3}));
}

TEST(PairSchedulerTest, OneDevicePerNodeShardsAcrossNodes) {
  // Every node holds one device, so no single-node group exists; the global
  // group spans all nodes and merges are priced over inter-node links.
  Dataset dataset = MakeDatasetWithClassSizes({100, 100});
  const dist::ClusterTopology topology = dist::ClusterTopology::Contiguous(
      4, 4, dist::NvlinkClassLink(), dist::NetworkClassLink());
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0}, {},
                                   ShardingOptions(&topology, 4));
  ASSERT_EQ(a.sharded_pairs.size(), 1u);
  EXPECT_EQ(a.sharded_pairs[0].devices, (std::vector<int>{0, 1, 2, 3}));
}

TEST(PairSchedulerTest, EmptyNodeIsHarmless) {
  // Node 1 owns no devices; candidate groups just skip it.
  Dataset dataset = MakeDatasetWithClassSizes({100, 100});
  dist::ClusterTopology topology;
  topology.num_nodes = 3;
  topology.node_of_device = {0, 0, 2, 2};
  ASSERT_TRUE(topology.Validate().ok());
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0}, {},
                                   ShardingOptions(&topology, 2));
  ASSERT_EQ(a.sharded_pairs.size(), 1u);
  EXPECT_EQ(a.sharded_pairs[0].devices.size(), 2u);
}

TEST(PairSchedulerTest, LostDeviceExcludedFromShardGroupsAcrossNodes) {
  // Device 1 (node 0) is lost (+inf load). Node 0 then has a single usable
  // device, so with a slow inter-node link the group forms on node 1.
  Dataset dataset = MakeDatasetWithClassSizes({200, 200});
  dist::LinkModel slow;
  slow.bandwidth_bytes_per_sec = 1e3;
  slow.latency_seconds = 1.0;
  const dist::ClusterTopology topology = dist::ClusterTopology::Contiguous(
      2, 4, dist::NvlinkClassLink(), slow);
  const double inf = std::numeric_limits<double>::infinity();
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0}, {0.0, inf, 0.0, 0.0},
                                   ShardingOptions(&topology, 2));
  ASSERT_EQ(a.sharded_pairs.size(), 1u);
  EXPECT_EQ(a.sharded_pairs[0].devices, (std::vector<int>{2, 3}));
  EXPECT_TRUE(std::isinf(a.device_load[1]));
}

TEST(PairSchedulerTest, ShardingIsDeterministic) {
  Dataset dataset = MakeDatasetWithClassSizes({60, 60, 60});
  const dist::ClusterTopology topology = dist::ClusterTopology::Contiguous(
      2, 4, dist::NvlinkClassLink(), dist::NetworkClassLink());
  const ScheduleOptions options = ShardingOptions(&topology, 2);
  PairAssignment a = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0}, {}, options);
  PairAssignment b = SchedulePairs(dataset, AllPairs(dataset),
                                   {1.0, 1.0, 1.0, 1.0}, {}, options);
  EXPECT_EQ(a.device_pairs, b.device_pairs);
  ASSERT_EQ(a.sharded_pairs.size(), b.sharded_pairs.size());
  for (size_t i = 0; i < a.sharded_pairs.size(); ++i) {
    EXPECT_EQ(a.sharded_pairs[i].pair, b.sharded_pairs[i].pair);
    EXPECT_EQ(a.sharded_pairs[i].devices, b.sharded_pairs[i].devices);
  }
}

TEST(PairSchedulerTest, NoDevicesOrNoPairsIsEmpty) {
  Dataset dataset = MakeDatasetWithClassSizes({10, 10});
  PairAssignment none = SchedulePairs(dataset, {}, {1.0, 1.0});
  EXPECT_TRUE(none.device_pairs[0].empty());
  EXPECT_TRUE(none.device_pairs[1].empty());
  PairAssignment zero_devices = SchedulePairs(dataset, AllPairs(dataset), {});
  EXPECT_TRUE(zero_devices.device_pairs.empty());
}

}  // namespace
}  // namespace gmpsvm::cluster
