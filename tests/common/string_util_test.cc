#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gmpsvm {
namespace {

TEST(SplitTokensTest, BasicSplit) {
  auto tokens = SplitTokens("1:0.5 3:1.25 7:2", " ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "1:0.5");
  EXPECT_EQ(tokens[2], "7:2");
}

TEST(SplitTokensTest, MultipleDelimitersAndEmptyTokens) {
  auto tokens = SplitTokens("  a\t\tb  c ", " \t");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
}

TEST(SplitTokensTest, EmptyInput) {
  EXPECT_TRUE(SplitTokens("", " ").empty());
  EXPECT_TRUE(SplitTokens("   ", " ").empty());
}

TEST(SplitTokensTest, ColonSplit) {
  auto kv = SplitTokens("17:0.25", ":");
  ASSERT_EQ(kv.size(), 2u);
  EXPECT_EQ(kv[0], "17");
  EXPECT_EQ(kv[1], "0.25");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hello \r\n"), "hello");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("gaussian(gamma=1)", "gaussian"));
  EXPECT_FALSE(StartsWith("gauss", "gaussian"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(HumanSecondsTest, UnitSelection) {
  EXPECT_EQ(HumanSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(HumanSeconds(0.25), "250 ms");
  EXPECT_EQ(HumanSeconds(34.1), "34.10 s");
  EXPECT_EQ(HumanSeconds(600), "10.0 min");
  EXPECT_EQ(HumanSeconds(7200), "2.00 h");
}

TEST(HumanSecondsTest, Negative) { EXPECT_EQ(HumanSeconds(-2.0), "-2.00 s"); }

TEST(HumanBytesTest, UnitSelection) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(12.0 * (1ull << 30)), "12.00 GB");
}

TEST(StrPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

TEST(StrPrintfTest, LongOutput) {
  std::string long_arg(1000, 'a');
  std::string out = StrPrintf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace gmpsvm
