#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gmpsvm {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  // Each bucket should be within a loose band of the expected 1000.
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double z = rng.Normal();
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng c1a = parent1.Fork(1);
  Rng c1b = parent2.Fork(1);
  // Same parent seed + same stream id => identical child.
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1a.Uniform(), c1b.Uniform());

  Rng parent3(99);
  Rng c2 = parent3.Fork(2);
  Rng parent4(99);
  Rng c1 = parent4.Fork(1);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (c1.Uniform() != c2.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace gmpsvm
