// Deadline / monotonic-time arithmetic, in particular the saturating
// additions that keep infinite deadlines from overflowing wait machinery.

#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>

namespace gmpsvm {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

TEST(SafeTimeAddTest, NormalAdditionIsExact) {
  const MonotonicTime now = MonotonicNow();
  EXPECT_EQ(SafeTimeAdd(now, seconds(5)), now + seconds(5));
  EXPECT_EQ(SafeTimeAdd(now, MonotonicClock::duration::zero()), now);
}

TEST(SafeTimeAddTest, SaturatesInsteadOfOverflowing) {
  const MonotonicTime now = MonotonicNow();
  // Naive now + duration::max() is signed overflow (UB) and in practice a
  // time point in the past; the saturating add pins it to the far future.
  const MonotonicTime far = SafeTimeAdd(now, MonotonicClock::duration::max());
  EXPECT_EQ(far, MonotonicTime::max());
  EXPECT_GT(far, now);
  EXPECT_EQ(SafeTimeAdd(MonotonicTime::max(), seconds(1)),
            MonotonicTime::max());
}

TEST(SafeTimeAddTest, NegativeDurationsPassThrough) {
  const MonotonicTime now = MonotonicNow();
  EXPECT_EQ(SafeTimeAdd(now, -seconds(3)), now - seconds(3));
}

TEST(DeadlineTest, InfiniteDeadlineNeverExpires) {
  const Deadline deadline = Deadline::Infinite();
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), MonotonicClock::duration::max());
}

TEST(DeadlineTest, BoundedRemainingClampsInfiniteToSlice) {
  const Deadline infinite = Deadline::Infinite();
  // This is the form every waiter must feed to wait_for/wait_until: bounded,
  // so the implementation's now() + duration arithmetic cannot overflow.
  EXPECT_EQ(infinite.BoundedRemaining(seconds(1)), seconds(1));
  EXPECT_EQ(infinite.BoundedRemaining(milliseconds(50)), milliseconds(50));
}

TEST(DeadlineTest, BoundedRemainingUsesRealRemainingWhenSmaller) {
  const Deadline soon = Deadline::After(milliseconds(5));
  EXPECT_LE(soon.BoundedRemaining(seconds(10)), milliseconds(5));
  const Deadline past = Deadline::After(milliseconds(-5));
  EXPECT_EQ(past.BoundedRemaining(seconds(10)),
            MonotonicClock::duration::zero());
  EXPECT_TRUE(past.Expired());
}

TEST(DeadlineTest, AfterExpiresOnSchedule) {
  const Deadline deadline = Deadline::After(milliseconds(-1));
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), MonotonicClock::duration::zero());
}

}  // namespace
}  // namespace gmpsvm
