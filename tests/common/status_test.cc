#include "common/status.h"

#include <gtest/gtest.h>

namespace gmpsvm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad gamma");
}

TEST(StatusTest, AllFactoryMethods) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::IoError("file missing");
  Status b = a;
  EXPECT_EQ(b.ToString(), a.ToString());
  EXPECT_TRUE(b.IsIoError());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("open failed").WithContext("loading model");
  EXPECT_EQ(s.message(), "loading model: open failed");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusCodeTest, Names) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfMemory), "out-of-memory");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 5;
  EXPECT_EQ(r.ValueOr(-1), 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  GMP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GMP_ASSIGN_OR_RETURN(int h, Half(x));
  GMP_ASSIGN_OR_RETURN(h, Half(h));
  return h;
}

TEST(MacroTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace gmpsvm
