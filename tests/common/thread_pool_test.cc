#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace gmpsvm {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.ParallelFor(
      10000,
      [&touched](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
      },
      /*min_chunk=*/16);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(
      10,
      [&sum](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
      },
      /*min_chunk=*/1024);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ParallelForOnSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> touched(5000, 0);
  pool.ParallelFor(
      5000,
      [&touched](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
      },
      /*min_chunk=*/1);
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.ParallelFor(
      3,
      [&touched](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
      },
      /*min_chunk=*/1);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelFor) {
  // Pair-parallel training nests: the outer loop is pairs, the inner loop is
  // a satellite's data-parallel op body on the same pool. Callers participate
  // in their own range, so nesting must not deadlock even when every worker
  // is inside an outer chunk.
  ThreadPool pool(4);
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 1000;
  std::vector<std::atomic<int>> touched(kOuter * kInner);
  pool.ParallelFor(
      kOuter,
      [&pool, &touched](int64_t begin, int64_t end) {
        for (int64_t o = begin; o < end; ++o) {
          pool.ParallelFor(
              kInner,
              [o, &touched](int64_t ib, int64_t ie) {
                for (int64_t i = ib; i < ie; ++i) {
                  touched[static_cast<size_t>(o * kInner + i)]++;
                }
              },
              /*min_chunk=*/64);
        }
      },
      /*min_chunk=*/1);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForDoesNotWaitForUnrelatedTasks) {
  // A ParallelFor must only join its own chunks. A Schedule()d task that is
  // still blocked cannot be allowed to stall it (the serve path keeps
  // long-lived scheduled work on the same pool trainers borrow).
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Schedule([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(
      1000,
      [&sum](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
      },
      /*min_chunk=*/16);
  // Reaching here at all is the point; the blocked task is still parked.
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
}

TEST(ThreadPoolTest, ConcurrentParallelForCalls) {
  // Two external threads drive independent ParallelFors over one pool; each
  // must see exactly its own range covered once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(4000), b(4000);
  auto drive = [&pool](std::vector<std::atomic<int>>* out) {
    pool.ParallelFor(
        static_cast<int64_t>(out->size()),
        [out](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) (*out)[static_cast<size_t>(i)]++;
        },
        /*min_chunk=*/8);
  };
  std::thread ta(drive, &a), tb(drive, &b);
  ta.join();
  tb.join();
  for (const auto& t : a) EXPECT_EQ(t.load(), 1);
  for (const auto& t : b) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ScheduleDuringParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> scheduled{0};
  pool.ParallelFor(
      100,
      [&pool, &scheduled](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          if (i % 10 == 0) {
            pool.Schedule([&scheduled] { scheduled.fetch_add(1); });
          }
        }
      },
      /*min_chunk=*/4);
  pool.Wait();
  EXPECT_EQ(scheduled.load(), 10);
}

TEST(ThreadPoolTest, TasksScheduledFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 5; ++i) {
    pool.Schedule([&pool, &counter] {
      counter.fetch_add(1);
      pool.Schedule([&counter] { counter.fetch_add(10); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 55);
}

}  // namespace
}  // namespace gmpsvm
