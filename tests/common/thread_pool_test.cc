#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gmpsvm {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10000);
  pool.ParallelFor(
      10000,
      [&touched](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) touched[static_cast<size_t>(i)]++;
      },
      /*min_chunk=*/16);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(
      10,
      [&sum](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
      },
      /*min_chunk=*/1024);
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, TasksScheduledFromTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 5; ++i) {
    pool.Schedule([&pool, &counter] {
      counter.fetch_add(1);
      pool.Schedule([&counter] { counter.fetch_add(10); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 55);
}

}  // namespace
}  // namespace gmpsvm
