// Online-serving walkthrough: train a small multi-class model, stand up the
// micro-batching InferenceServer, push a burst of single-row requests
// through it, hot-swap the model under live traffic, and print the serving
// statistics table.
//
//   serve_demo [num_requests]          (default 200)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/mp_trainer.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "serve/server.h"

using namespace gmpsvm;  // NOLINT: example brevity

namespace {

MpSvmModel TrainDemoModel(uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "serve-demo";
  spec.num_classes = 4;
  spec.cardinality = 240;
  spec.dim = 12;
  spec.density = 0.8;
  spec.separation = 2.0;
  spec.seed = seed;
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  MpTrainOptions options;
  options.kernel.gamma = 0.25;
  options.batch.working_set.ws_size = 32;
  options.batch.working_set.q = 16;
  SimExecutor exec(ExecutorModel::TeslaP100());
  return ValueOrDie(GmpSvmTrainer(options).Train(train, &exec, nullptr));
}

}  // namespace

int main(int argc, char** argv) {
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 200;
  if (num_requests <= 0) {
    std::fprintf(stderr, "usage: serve_demo [num_requests > 0]\n");
    return 2;
  }

  // 1. A registry owns the served models; the server resolves "default"
  //    per batch, so Register() under the same name is a live hot-swap.
  ModelRegistry registry;
  ValueOrDie(registry.Register("default", TrainDemoModel(42)));

  ServeOptions options;
  options.num_workers = 2;
  options.batching.max_batch_size = 16;
  options.batching.max_queue_delay = std::chrono::milliseconds(2);
  InferenceServer server(&registry, options);
  GMP_CHECK_OK(server.Start());

  // 2. A burst of single-row requests. Submit() returns a future per
  //    request; the micro-batcher coalesces the backlog into shared-SV
  //    tiles behind the scenes.
  SyntheticSpec query_spec;
  query_spec.name = "serve-demo-queries";
  query_spec.num_classes = 4;
  query_spec.cardinality = std::max(num_requests, 1);
  query_spec.dim = 12;
  query_spec.density = 0.8;
  query_spec.separation = 2.0;
  query_spec.seed = 777;
  Dataset queries = ValueOrDie(GenerateSynthetic(query_spec));
  const CsrMatrix& rows = queries.features();

  std::vector<std::future<Result<PredictResponse>>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  auto submit_range = [&](int begin, int end) {
    for (int r = begin; r < end; ++r) {
      const int64_t row = r % rows.rows();
      futures.push_back(ValueOrDie(
          server.Submit(rows.RowIndices(row), rows.RowValues(row))));
    }
  };
  submit_range(0, num_requests / 2);
  for (auto& f : futures) f.wait();  // first half resolves on version 1

  // Live hot-swap: no restart, no draining — the next batch the workers
  // form resolves "default" to the new snapshot.
  ValueOrDie(registry.Register("default", TrainDemoModel(7)));
  std::printf("hot-swapped model after %d requests\n", num_requests / 2);
  submit_range(num_requests / 2, num_requests);

  int v1 = 0, v2 = 0, max_batch = 0;
  for (auto& f : futures) {
    PredictResponse response = ValueOrDie(f.get());
    (response.model_version == 1 ? v1 : v2)++;
    max_batch = std::max(max_batch, response.batch_size);
  }
  std::printf("served %d requests (%d on v1, %d on v2), largest batch %d\n\n",
              num_requests, v1, v2, max_batch);

  // 3. The stats table the serving layer exports.
  std::printf("%s\n", server.stats().Snapshot().ToTable().c_str());
  GMP_CHECK_OK(server.Shutdown());
  return 0;
}
