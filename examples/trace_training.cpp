// Exports a Chrome trace of GMP-SVM training on the simulated device so the
// MP-SVM-level concurrency (streams overlapping in simulated time) can be
// inspected in chrome://tracing or https://ui.perfetto.dev.
//
//   ./build/examples/trace_training [out.json]

#include <cstdio>
#include <fstream>

#include "core/mp_trainer.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "obs/span.h"

using namespace gmpsvm;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "/tmp/gmpsvm_trace.json";

  SyntheticSpec spec;
  spec.name = "trace";
  spec.num_classes = 5;
  spec.cardinality = 1000;
  spec.dim = 32;
  spec.density = 0.5;
  spec.separation = 1.5;
  spec.gamma = 0.2;
  spec.seed = 3;
  Dataset train = ValueOrDie(GenerateSynthetic(spec));

  SimExecutor gpu(ExecutorModel::TeslaP100());
  obs::TraceRecorder trace;
  gpu.SetSpanRecorder(&trace);

  MpTrainOptions options;
  options.c = 10.0;
  options.kernel.gamma = spec.gamma;
  options.max_concurrent_svms = 5;
  MpTrainReport report;
  ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));

  std::ofstream out(out_path);
  out << trace.ToChromeJson();
  out.close();

  const auto busy = trace.BusyTimePerStream();
  std::printf("trained %d pairs in %.4f sim-s; %zu spans over %zu streams\n",
              train.num_pairs(), report.sim_seconds, trace.size(), busy.size());
  for (size_t s = 0; s < busy.size(); ++s) {
    std::printf("  stream %zu busy %.4f sim-s (%.0f%% of makespan)\n", s, busy[s],
                100.0 * busy[s] / report.sim_seconds);
  }
  std::printf("chrome trace written to %s\n", out_path);
  return 0;
}
