// Model selection with cross-validation: grid-search C and gamma with
// stratified 3-fold CV (the workflow LibSVM users run via grid.py), then
// train the final model at the best setting and report accuracy AND
// probability quality — log loss, Brier score, expected calibration error —
// the metrics that justify probabilistic SVMs.
//
//   ./build/examples/model_selection

#include <cstdio>

#include "common/string_util.h"
#include "core/cross_validation.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "metrics/calibration.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

using namespace gmpsvm;  // NOLINT: example brevity

int main() {
  SyntheticSpec spec;
  spec.name = "model-selection";
  spec.num_classes = 4;
  spec.cardinality = 800;
  spec.dim = 32;
  spec.density = 0.6;
  spec.separation = 0.8;  // overlapping classes: hyper-parameters matter
  spec.gamma = 0.25;
  spec.seed = 7;
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));

  const double cs[] = {0.1, 1.0, 10.0};
  const double gammas[] = {0.05, 0.25, 1.0};

  SimExecutor gpu(ExecutorModel::TeslaP100());
  TablePrinter table({"C", "gamma", "cv error", "cv log loss", "cv brier"});
  double best_error = 1.0, best_c = 1.0, best_gamma = 0.25;
  for (double c : cs) {
    for (double gamma : gammas) {
      CrossValidationOptions options;
      options.folds = 3;
      options.train.c = c;
      options.train.kernel.gamma = gamma;
      CrossValidationResult cv = ValueOrDie(CrossValidate(train, options, &gpu));
      table.AddRow({StrPrintf("%g", c), StrPrintf("%g", gamma),
                    StrPrintf("%.2f%%", 100 * cv.error_rate),
                    StrPrintf("%.3f", cv.log_loss),
                    StrPrintf("%.3f", cv.brier_score)});
      if (cv.error_rate < best_error) {
        best_error = cv.error_rate;
        best_c = c;
        best_gamma = gamma;
      }
    }
  }
  std::printf("3-fold cross-validation grid:\n\n");
  table.Print();
  std::printf("\nbest: C=%g gamma=%g (cv error %.2f%%)\n\n", best_c, best_gamma,
              100 * best_error);

  // Final model at the winning setting.
  MpTrainOptions options;
  options.c = best_c;
  options.kernel.gamma = best_gamma;
  MpSvmModel model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, nullptr));
  PredictResult pred = ValueOrDie(
      MpSvmPredictor(&model).Predict(test.features(), &gpu, PredictOptions{}));

  const double err = ValueOrDie(ErrorRate(pred.labels, test.labels()));
  const double ll = ValueOrDie(
      LogLoss(pred.probabilities, test.labels(), test.num_classes()));
  const double brier = ValueOrDie(
      BrierScore(pred.probabilities, test.labels(), test.num_classes()));
  auto calibration = ValueOrDie(ComputeCalibration(
      pred.probabilities, test.labels(), test.num_classes(), 10));

  std::printf("held-out test: error %.2f%%, log loss %.3f, Brier %.3f, "
              "ECE %.3f\n\n", 100 * err, ll, brier, calibration.ece);
  std::printf("reliability diagram (confidence bin -> accuracy):\n");
  for (size_t b = 0; b < calibration.bin_counts.size(); ++b) {
    if (calibration.bin_counts[b] == 0) continue;
    std::printf("  [%.1f, %.1f): conf %.3f  acc %.3f  (n=%lld)\n", 0.1 * b,
                0.1 * (b + 1), calibration.bin_confidence[b],
                calibration.bin_accuracy[b],
                static_cast<long long>(calibration.bin_counts[b]));
  }
  return 0;
}
