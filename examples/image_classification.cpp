// Image classification scenario (the paper's MNIST motivation): train
// GMP-SVM on an MNIST-like 10-class problem, compare against the sequential
// GPU baseline on the same simulated device, and print the per-class
// confusion matrix.
//
//   ./build/examples/image_classification [scale]
//
// `scale` (default 0.25) multiplies the proxy dataset's cardinality.

#include <cstdio>
#include <cstdlib>

#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

using namespace gmpsvm;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  SyntheticSpec spec = ValueOrDie(FindPaperSpec("MNIST", scale));
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
  std::printf("MNIST proxy at scale %.2f: %lld train / %lld test, %d classes\n",
              scale, static_cast<long long>(train.size()),
              static_cast<long long>(test.size()), train.num_classes());

  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.gamma = spec.gamma;

  // GMP-SVM.
  SimExecutor gmp_gpu(ExecutorModel::TeslaP100());
  MpTrainReport gmp_report;
  MpSvmModel model =
      ValueOrDie(GmpSvmTrainer(options).Train(train, &gmp_gpu, &gmp_report));

  // Sequential GPU baseline, for the comparison the paper's Table 3 makes.
  MpTrainOptions baseline_options = options;
  baseline_options.smo.cache_bytes = 4ull << 30;
  baseline_options.smo.cache_on_device = true;
  SimExecutor base_gpu(ExecutorModel::TeslaP100());
  MpTrainReport base_report;
  ValueOrDie(SequentialMpTrainer(baseline_options).Train(train, &base_gpu,
                                                         &base_report));

  std::printf("training: GMP-SVM %.2f sim-s vs GPU baseline %.2f sim-s (%.1fx)\n",
              gmp_report.sim_seconds, base_report.sim_seconds,
              base_report.sim_seconds / gmp_report.sim_seconds);

  SimExecutor pred_gpu(ExecutorModel::TeslaP100());
  PredictResult pred = ValueOrDie(
      MpSvmPredictor(&model).Predict(test.features(), &pred_gpu, PredictOptions{}));
  const double err = ValueOrDie(ErrorRate(pred.labels, test.labels()));
  std::printf("test error: %.2f%% (prediction took %.3f sim-s)\n\n", 100.0 * err,
              pred.sim_seconds);

  auto confusion = ValueOrDie(ConfusionMatrix(pred.labels, test.labels(),
                                              train.num_classes()));
  std::vector<std::string> headers = {"truth\\pred"};
  for (int c = 0; c < train.num_classes(); ++c) headers.push_back(std::to_string(c));
  TablePrinter table(headers);
  for (int r = 0; r < train.num_classes(); ++r) {
    std::vector<std::string> row = {std::to_string(r)};
    for (int c = 0; c < train.num_classes(); ++c) {
      row.push_back(std::to_string(
          confusion[static_cast<size_t>(r) * train.num_classes() + c]));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
