// Probabilistic retrieval scenario (the paper's medical-image-retrieval
// motivation, Rahman et al.): the point of MP-SVMs over plain multi-class
// SVMs is the calibrated per-class probability, which lets a retrieval
// system rank candidate categories and defer low-confidence queries to a
// human.
//
// This example trains an MP-SVM over synthetic "imaging modality" classes,
// then for each query prints the top-3 categories with probabilities and
// flags queries whose top probability falls under a confidence threshold.
//
//   ./build/examples/medical_retrieval [threshold]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"

using namespace gmpsvm;  // NOLINT: example brevity

namespace {
const char* kCategories[] = {"x-ray", "ct", "mri", "ultrasound", "pet", "histology"};
}  // namespace

int main(int argc, char** argv) {
  const double threshold = argc > 1 ? std::atof(argv[1]) : 0.55;

  SyntheticSpec spec;
  spec.name = "medical";
  spec.num_classes = 6;
  spec.cardinality = 1200;
  spec.dim = 64;
  spec.density = 0.6;
  spec.separation = 1.3;  // overlapping modalities: probabilities matter
  spec.c = 10.0;
  spec.gamma = 0.1;
  spec.seed = 2026;
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  spec.test_cardinality = 12;
  Dataset queries = ValueOrDie(GenerateSyntheticTest(spec));

  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.gamma = spec.gamma;
  SimExecutor gpu(ExecutorModel::TeslaP100());
  MpSvmModel model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, nullptr));
  std::printf("retrieval index trained: %d categories, %lld pooled SVs\n\n",
              model.num_classes, static_cast<long long>(model.pool_size()));

  PredictResult pred = ValueOrDie(
      MpSvmPredictor(&model).Predict(queries.features(), &gpu, PredictOptions{}));

  int deferred = 0;
  for (int64_t q = 0; q < pred.num_instances; ++q) {
    std::vector<int> order(static_cast<size_t>(model.num_classes));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return pred.Probability(q, a) > pred.Probability(q, b);
    });
    const double top = pred.Probability(q, order[0]);
    std::printf("query %2lld (truth %-10s): ", static_cast<long long>(q),
                kCategories[queries.labels()[static_cast<size_t>(q)]]);
    for (int r = 0; r < 3; ++r) {
      std::printf("%s %.2f%s", kCategories[order[static_cast<size_t>(r)]],
                  pred.Probability(q, order[static_cast<size_t>(r)]),
                  r < 2 ? ", " : "");
    }
    if (top < threshold) {
      std::printf("  -> LOW CONFIDENCE, defer to radiologist");
      ++deferred;
    }
    std::printf("\n");
  }
  std::printf("\n%d of %lld queries deferred at threshold %.2f\n", deferred,
              static_cast<long long>(pred.num_instances), threshold);
  return 0;
}
