// Command-line tool in the spirit of LibSVM's svm-train / svm-predict,
// backed by GMP-SVM on the simulated device. Works on LibSVM-format files.
//
//   svm_tool train [-c C] [-g gamma] [-e eps] [-b cv_folds] [--devices N]
//       [--nodes N] [--max-shards M] [--link-gbps X] [--link-latency-us Y]
//       [--metrics-out m.prom] [--trace-out t.json]
//       [--checkpoint-dir d] [--resume] [--chaos-seed s] [--skip-degraded]
//       <train> <model>
//   svm_tool predict [--devices N] <test.libsvm> <model.in> [predictions.out]
//   svm_tool scale <in.libsvm> <out.libsvm>        (min-max to [-1, 1])
//   svm_tool cv [-c C] [-g gamma] [-v folds] [--devices N] <train.libsvm>
//   svm_tool grid [-v folds] [--devices N] <train.libsvm>  (C/gamma grid)
//   svm_tool serve [-n N] [-w workers] [-b max_batch] [--chaos-seed s]
//       [--devices N] [--metrics-out m.prom] [--trace-out t.json] <model.in>
//       (micro-batching inference-server smoke: N synthetic requests)
//   svm_tool serve --fleet-config fleet.cfg [--verify] [...same flags...]
//       (multi-tenant fleet smoke: tenants/models/quotas come from the
//       config file — see src/fleet/fleet_config.h; --verify checks every
//       response byte-for-byte against a direct clean-executor prediction)
//
// --metrics-out dumps the observability registry as Prometheus text;
// --trace-out dumps the merged Chrome trace (open in chrome://tracing or
// https://ui.perfetto.dev). Both work on train and serve.
//
// --chaos-seed attaches a seeded FaultPlan::Chaos to the simulated device:
// training retries/recovers through the injected faults and still produces
// the byte-identical model; serve answers every accepted request.
// --checkpoint-dir/--resume persist per-pair training progress so an
// interrupted run picks up where it left off.
//
// --devices N runs on a simulated N-device cluster (docs/scaling.md):
// train shards the pairwise problems across devices (same model bytes at any
// N), predict shards the test rows, and serve routes requests across N
// replicas. cv/grid run their fold training on device 0 — the flag is
// validated but the results are identical at any N by construction.
// Checkpoint/resume are single-device concepts; combining them with
// --devices > 1 is a usage error. Unknown flags are usage errors (exit 2).
//
// --nodes N (train only) groups the devices into N simulated nodes
// (contiguous groups; 1 <= N <= devices). --max-shards M lets the scheduler
// split an oversized pair's instances across up to M devices
// (dist/dist_solver.h); --link-gbps / --link-latency-us configure the
// inter-node link the allreduce cost model prices (docs/cost_model.md).
// Models and probabilities stay byte-identical for every topology; only the
// simulated makespan moves. Out-of-range values are usage errors (exit 2).
//
// Exit codes: 0 success; 1 fatal error; 2 usage; 3 degraded completion (the
// run finished but some pairs were skipped as degraded, or some chaos serve
// requests received failure responses).
//
// Predict prints the test error when the file has labels, and writes one
// line per instance: "<label> <p_class0> <p_class1> ...".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "online/delta.h"
#include "online/retrain_daemon.h"
#include "common/rng.h"
#include "core/cross_validation.h"
#include "core/grid_search.h"
#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/libsvm_io.h"
#include "data/scale.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "fault/fault_injector.h"
#include "fleet/fleet_config.h"
#include "fleet/fleet_server.h"
#include "metrics/metrics.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/replica_router.h"
#include "serve/server.h"
#include "simd/simd.h"

using namespace gmpsvm;  // NOLINT: example brevity

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  svm_tool train [-c C] [-g gamma] [-e eps] [-b folds]\n"
               "      [--host-threads N] [--devices N] [--nodes N]\n"
               "      [--max-shards M] [--link-gbps X] [--link-latency-us Y]\n"
               "      [--metrics-out m.prom]\n"
               "      [--trace-out t.json] [--checkpoint-dir d] [--resume]\n"
               "      [--chaos-seed s] [--skip-degraded] <data> <model>\n"
               "  svm_tool predict [--host-threads N] [--devices N]\n"
               "      [--cascade exact|eliminate] [--cascade-budget N]\n"
               "      [--cascade-threshold T] [--cascade-band B]\n"
               "      <data> <model> [out]\n"
               "  svm_tool scale <in> <out>\n"
               "  svm_tool cv [-c C] [-g gamma] [-v folds] [--devices N] <data>\n"
               "  svm_tool grid [-v folds] [--devices N] <data>\n"
               "  svm_tool serve [-n requests] [-w workers] [-b max_batch]\n"
               "      [--host-threads N] [--devices N] [--chaos-seed s]\n"
               "      [--cascade ...same predict flags...]\n"
               "      [--metrics-out m.prom] [--trace-out t.json] <model>\n"
               "  svm_tool serve --fleet-config fleet.cfg [--verify]\n"
               "      [...same serve flags, no positional model...]\n"
               "  svm_tool make-delta [--relabel N] [--add N] [--from C]\n"
               "      [--to C] [--seed S] <data> <out.delta>\n"
               "  svm_tool retrain-daemon --delta-dir d [--requests N]\n"
               "      [--brier-threshold T] [--canary-fraction F]\n"
               "      [--canary-tolerance L]\n"
               "      [--host-threads N] [--devices N] [--chaos-seed s]\n"
               "      [--metrics-out m.prom] [--model-out model.out]\n"
               "      <data> <model>\n"
               "  svm_tool bench-env      (print detected ISA / SIMD tier)\n"
               "--simd auto|scalar|avx2|neon selects the host SIMD tier for\n"
               "every command (global flag, any position; default auto =\n"
               "best supported). All tiers are byte-identical — docs/\n"
               "performance.md — so the flag is a speed knob only; asking\n"
               "for an unsupported tier is a usage error.\n"
               "--host-threads sets real worker threads for the hot paths;\n"
               "outputs are byte-identical for every value (wall clock only)\n"
               "--devices shards train/predict/serve across a simulated\n"
               "cluster; models and probabilities are byte-identical for\n"
               "every device count (docs/scaling.md). --devices must be >= 1\n"
               "and excludes --checkpoint-dir/--resume when > 1.\n"
               "--nodes groups train's devices into simulated nodes\n"
               "(1 <= nodes <= devices); --max-shards >= 1 bounds intra-pair\n"
               "instance sharding; --link-gbps > 0 and --link-latency-us >= 0\n"
               "set the inter-node link (defaults 12.5 GB/s, 5 us). Models\n"
               "are byte-identical for every topology (docs/scaling.md).\n"
               "--cascade eliminate enables the class-elimination prediction\n"
               "cascade (docs/cascade.md); --cascade exact (the default) is\n"
               "byte-identical to the pre-cascade predictor.\n"
               "Unknown flags are rejected.\n"
               "exit codes: 0 ok, 1 fatal, 2 usage, 3 degraded completion\n");
  return 2;
}

// Parses the shared --devices flag inside a command's argument loop. Returns
// false (a usage error) when the value is missing, not a number, or < 1 —
// "--devices 0" is explicitly rejected rather than clamped.
bool ParseDevicesFlag(int argc, char** argv, int* arg, int* devices) {
  if (*arg + 1 >= argc) return false;
  *devices = std::atoi(argv[++*arg]);
  return *devices >= 1;
}

// Parses the cascade flags shared by predict and serve. Returns 1 when the
// token (plus any value) was consumed, 0 when it is not a cascade flag, and
// -1 on a missing or malformed value ("--cascade=eliminate" is accepted as a
// spelling of "--cascade eliminate"). Range checking is left to
// PredictOptions::Validate(), which names the offending field.
int ParseCascadeArg(int argc, char** argv, int* arg, CascadeOptions* cascade) {
  const char* token = argv[*arg];
  const auto set_mode = [cascade](const char* value) {
    if (std::strcmp(value, "exact") == 0) {
      cascade->mode = CascadeOptions::Mode::kExact;
      return true;
    }
    if (std::strcmp(value, "eliminate") == 0) {
      cascade->mode = CascadeOptions::Mode::kEliminate;
      return true;
    }
    std::fprintf(stderr, "error: --cascade must be exact|eliminate, got %s\n",
                 value);
    return false;
  };
  if (std::strncmp(token, "--cascade=", 10) == 0) {
    return set_mode(token + 10) ? 1 : -1;
  }
  if (std::strcmp(token, "--cascade") == 0) {
    if (*arg + 1 >= argc) return -1;
    return set_mode(argv[++*arg]) ? 1 : -1;
  }
  if (std::strcmp(token, "--cascade-budget") == 0) {
    if (*arg + 1 >= argc) return -1;
    cascade->budget = std::atoi(argv[++*arg]);
    return 1;
  }
  if (std::strcmp(token, "--cascade-threshold") == 0) {
    if (*arg + 1 >= argc) return -1;
    cascade->elimination_threshold = std::atof(argv[++*arg]);
    return 1;
  }
  if (std::strcmp(token, "--cascade-band") == 0) {
    if (*arg + 1 >= argc) return -1;
    cascade->ambiguity_band = std::atof(argv[++*arg]);
    return 1;
  }
  return 0;
}

// Writes `content` to `path`; returns false (with a message) on failure.
bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// Dumps the observability registry as Prometheus text, publishing the SIMD
// dispatch counters first so every metrics dump carries the gmpsvm_simd_*
// series (active tier, per-path call/flop counters, effective GFLOP/s).
bool WriteMetricsFile(obs::MetricsRegistry* metrics, const std::string& path) {
  simd::PublishMetrics(metrics);
  return WriteTextFile(path, metrics->ToPrometheusText());
}

int ScaleCommand(int argc, char** argv) {
  if (argc != 2) return Usage();
  if (argv[0][0] == '-' || argv[1][0] == '-') return Usage();
  auto file = ReadLibsvmFile(argv[0]);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  auto scaler = FeatureScaler::Fit(file->dataset.features(),
                                   FeatureScaler::Mode::kMinMax);
  if (!scaler.ok()) {
    std::fprintf(stderr, "error: %s\n", scaler.status().ToString().c_str());
    return 1;
  }
  auto scaled_data = Dataset::Create(scaler->Apply(file->dataset.features()),
                                     file->dataset.labels(),
                                     file->dataset.num_classes());
  GMP_CHECK_OK(scaled_data.status());
  GMP_CHECK_OK(WriteLibsvmFile(argv[1], *scaled_data, file->label_values));
  std::printf("scaled %lld instances to [-1, 1], written to %s\n",
              static_cast<long long>(file->dataset.size()), argv[1]);
  return 0;
}

int CvCommand(int argc, char** argv) {
  double c = 1.0, gamma = 0.5;
  int folds = 5, devices = 1;
  std::string data_path;
  for (int arg = 0; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "-c") == 0 && arg + 1 < argc) {
      c = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-g") == 0 && arg + 1 < argc) {
      gamma = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-v") == 0 && arg + 1 < argc) {
      folds = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (data_path.empty()) {
      data_path = argv[arg];
    } else {
      return Usage();
    }
  }
  if (data_path.empty()) return Usage();
  auto file = ReadLibsvmFile(data_path);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  CrossValidationOptions options;
  options.folds = folds;
  options.train.c = c;
  options.train.kernel.gamma = gamma;
  // Fold training runs on device 0: CV results are identical at any device
  // count (models are schedule-invariant), so extra devices add nothing here.
  cluster::SimCluster cluster_devices =
      cluster::SimCluster::Homogeneous(devices, ExecutorModel::TeslaP100());
  if (devices > 1) {
    std::printf("note: cv trains folds on device 0 of %d\n", devices);
  }
  auto cv = CrossValidate(file->dataset, options, cluster_devices.device(0));
  if (!cv.ok()) {
    std::fprintf(stderr, "error: %s\n", cv.status().ToString().c_str());
    return 1;
  }
  std::printf("%d-fold CV: error %.4f%%  log-loss %.4f  brier %.4f "
              "(%.3f sim-s)\n",
              folds, 100.0 * cv->error_rate, cv->log_loss, cv->brier_score,
              cv->sim_seconds);
  return 0;
}

int GridCommand(int argc, char** argv) {
  int folds = 3, devices = 1;
  std::string data_path;
  for (int arg = 0; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "-v") == 0 && arg + 1 < argc) {
      folds = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (data_path.empty()) {
      data_path = argv[arg];
    } else {
      return Usage();
    }
  }
  if (data_path.empty()) return Usage();
  auto file = ReadLibsvmFile(data_path);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  GridSearchOptions options;
  options.folds = folds;
  // Same device-0 semantics as cv: grid cells are schedule-invariant.
  cluster::SimCluster cluster_devices =
      cluster::SimCluster::Homogeneous(devices, ExecutorModel::TeslaP100());
  if (devices > 1) {
    std::printf("note: grid trains folds on device 0 of %d\n", devices);
  }
  auto grid = GridSearch(file->dataset, options, cluster_devices.device(0));
  if (!grid.ok()) {
    std::fprintf(stderr, "error: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  for (const auto& cell : grid->cells) {
    std::printf("C=%-8g gamma=%-8g cv-error=%.4f%%  log-loss=%.4f\n", cell.c,
                cell.gamma, 100.0 * cell.error_rate, cell.log_loss);
  }
  std::printf("best: C=%g gamma=%g (cv-error %.4f%%)\n", grid->best.c,
              grid->best.gamma, 100.0 * grid->best.error_rate);
  return 0;
}

int TrainCommand(int argc, char** argv) {
  double c = 1.0, gamma = 0.5, eps = 1e-3;
  int cv_folds = 0, host_threads = 1, devices = 1;
  int nodes = 1, max_shards = 1;
  double link_gbps = 12.5, link_latency_us = 5.0;
  bool resume = false, skip_degraded = false, chaos = false;
  uint64_t chaos_seed = 0;
  std::string metrics_out, trace_out, checkpoint_dir;
  int arg = 0;
  std::string positional[2];
  int npos = 0;
  while (arg < argc) {
    if (std::strcmp(argv[arg], "-c") == 0 && arg + 1 < argc) {
      c = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-g") == 0 && arg + 1 < argc) {
      gamma = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-e") == 0 && arg + 1 < argc) {
      eps = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-b") == 0 && arg + 1 < argc) {
      cv_folds = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--host-threads") == 0 && arg + 1 < argc) {
      host_threads = std::atoi(argv[++arg]);
      if (host_threads < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--metrics-out") == 0 && arg + 1 < argc) {
      metrics_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "--trace-out") == 0 && arg + 1 < argc) {
      trace_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "--checkpoint-dir") == 0 && arg + 1 < argc) {
      checkpoint_dir = argv[++arg];
    } else if (std::strcmp(argv[arg], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[arg], "--skip-degraded") == 0) {
      skip_degraded = true;
    } else if (std::strcmp(argv[arg], "--chaos-seed") == 0 && arg + 1 < argc) {
      chaos = true;
      chaos_seed = static_cast<uint64_t>(std::atoll(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (std::strcmp(argv[arg], "--nodes") == 0 && arg + 1 < argc) {
      nodes = std::atoi(argv[++arg]);
      if (nodes < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--max-shards") == 0 && arg + 1 < argc) {
      max_shards = std::atoi(argv[++arg]);
      if (max_shards < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--link-gbps") == 0 && arg + 1 < argc) {
      link_gbps = std::atof(argv[++arg]);
      if (!(link_gbps > 0.0)) return Usage();
    } else if (std::strcmp(argv[arg], "--link-latency-us") == 0 &&
               arg + 1 < argc) {
      link_latency_us = std::atof(argv[++arg]);
      if (!(link_latency_us >= 0.0)) return Usage();
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (npos < 2) {
      positional[npos++] = argv[arg];
    } else {
      return Usage();
    }
    ++arg;
  }
  if (npos != 2) return Usage();
  if (resume && checkpoint_dir.empty()) return Usage();
  // Checkpoint/resume are single-device session concepts (the cluster
  // trainer's Validate rejects them too); fail fast as a usage error.
  if (devices > 1 && (resume || !checkpoint_dir.empty())) return Usage();
  // Node topology constraints: nodes group devices, so a run cannot have
  // more nodes than devices, and a shard group never exceeds the device
  // count. Rejecting here (exit 2) beats a late InvalidArgument.
  if (nodes > devices || max_shards > devices) return Usage();

  auto file = ReadLibsvmFile(positional[0]);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld instances, %lld features, %d classes\n",
              static_cast<long long>(file->dataset.size()),
              static_cast<long long>(file->dataset.dim()),
              file->dataset.num_classes());

  MpTrainOptions options;
  options.c = c;
  options.kernel.gamma = gamma;
  options.batch.eps = eps;
  options.sigmoid_cv_folds = cv_folds;
  options.checkpoint.dir = checkpoint_dir;
  options.checkpoint.resume = resume;
  if (skip_degraded) {
    options.pair_failure_policy = PairFailurePolicy::kSkipDegraded;
  }

  options.host_threads = host_threads;

  obs::MetricsRegistry metrics;
  ExecutorModel device_model = ExecutorModel::TeslaP100();
  device_model.host_threads = host_threads;

  if (devices > 1) {
    cluster::SimCluster cluster_devices =
        cluster::SimCluster::Homogeneous(devices, device_model);
    dist::LinkModel inter = dist::NetworkClassLink();
    inter.bandwidth_bytes_per_sec = link_gbps * 1e9;
    inter.latency_seconds = link_latency_us * 1e-6;
    GMP_CHECK_OK(cluster_devices.SetTopology(dist::ClusterTopology::Contiguous(
        nodes, devices, dist::NvlinkClassLink(), inter)));
    if (nodes > 1 || max_shards > 1) {
      std::printf(
          "topology: %d node%s x %d devices, inter-node link %.1f GB/s + "
          "%.1f us, max %d shard%s/pair\n",
          nodes, nodes == 1 ? "" : "s", devices, link_gbps, link_latency_us,
          max_shards, max_shards == 1 ? "" : "s");
    }
    obs::TraceRecorder recorder;
    if (!trace_out.empty()) cluster_devices.SetSpanRecorder(&recorder);
    cluster::ClusterTrainOptions cluster_options;
    cluster_options.train = options;
    cluster_options.schedule.max_shards_per_pair = max_shards;
    // The flag is an explicit request to exercise the sharded path, so skip
    // the oversize cost comparison (factor 0 forces the shard decision).
    if (max_shards > 1) cluster_options.schedule.shard_oversize_factor = 0.0;
    if (chaos) {
      cluster_options.fault = fault::FaultPlan::Chaos(chaos_seed);
      cluster_options.fault_metrics = &metrics;
      std::printf("chaos enabled (seed %llu)\n",
                  static_cast<unsigned long long>(chaos_seed));
    }
    cluster::ClusterTrainReport report;
    auto model = cluster::ClusterTrainer(cluster_options)
                     .Train(file->dataset, &cluster_devices, &report);
    if (!model.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   model.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "trained %d binary SVMs on %d devices in %.3f sim-s makespan "
        "(%.3f s wall), %lld SVs\n",
        model->num_pairs(), devices, report.makespan_sim_seconds,
        report.wall_seconds, static_cast<long long>(model->pool_size()));
    for (int d = 0; d < cluster_devices.num_devices(); ++d) {
      const cluster::DeviceUtilization& u =
          report.devices[static_cast<size_t>(d)];
      std::printf("  device %d: %d pairs, %.3f sim-s (%.0f%% utilization)%s\n",
                  d, u.pairs_trained, u.sim_seconds, 100.0 * u.utilization,
                  u.lost ? " [lost]" : "");
    }
    if (report.pairs_sharded > 0) {
      std::printf(
          "sharding: %d pairs sharded, %lld allreduces (%.3f sim-s merge, "
          "%lld intra + %lld inter bytes)\n",
          report.pairs_sharded, static_cast<long long>(report.dist.allreduces),
          report.dist.merge_seconds,
          static_cast<long long>(report.dist.intra_node_bytes),
          static_cast<long long>(report.dist.inter_node_bytes));
    }
    if (report.devices_lost > 0 || report.nodes_lost > 0) {
      std::printf(
          "recovery: %d nodes lost, %d devices lost, %lld pairs rescheduled, "
          "%lld shards rescheduled\n",
          report.nodes_lost, report.devices_lost,
          static_cast<long long>(report.pairs_rescheduled),
          static_cast<long long>(report.shards_rescheduled));
    }
    if (report.merged.pair_retries > 0 || report.merged.pairs_degraded > 0) {
      std::printf("recovery: %lld pair retries, %lld pairs degraded\n",
                  static_cast<long long>(report.merged.pair_retries),
                  static_cast<long long>(report.merged.pairs_degraded));
    }
    GMP_CHECK_OK(SaveModel(*model, positional[1]));
    std::printf("model written to %s\n", positional[1].c_str());
    if (!metrics_out.empty()) {
      report.PublishTo(&metrics);
      for (int d = 0; d < cluster_devices.num_devices(); ++d) {
        cluster_devices.device(d)->counters().PublishTo(
            &metrics, {{"device", std::to_string(d)}});
      }
      if (!WriteMetricsFile(&metrics, metrics_out)) return 1;
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      if (!WriteTextFile(trace_out, recorder.ToChromeJson())) return 1;
      std::printf("trace written to %s (%zu spans)\n", trace_out.c_str(),
                  recorder.size());
    }
    return report.merged.pairs_degraded > 0 ? 3 : 0;
  }

  SimExecutor gpu(device_model);
  std::unique_ptr<fault::FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::Chaos(chaos_seed), &metrics);
    gpu.SetFaultInjector(injector.get());
    std::printf("chaos enabled (seed %llu)\n",
                static_cast<unsigned long long>(chaos_seed));
  }
  obs::TraceRecorder recorder;
  if (!trace_out.empty()) gpu.SetSpanRecorder(&recorder);
  MpTrainReport report;
  auto model = GmpSvmTrainer(options).Train(file->dataset, &gpu, &report);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %d binary SVMs in %.3f sim-s (%.3f s wall), %lld SVs\n",
              model->num_pairs(), report.sim_seconds, report.wall_seconds,
              static_cast<long long>(model->pool_size()));
  if (report.pairs_resumed > 0 || report.pair_retries > 0 ||
      report.pairs_degraded > 0) {
    std::printf("recovery: %lld pairs resumed, %lld pair retries, "
                "%lld pairs degraded\n",
                static_cast<long long>(report.pairs_resumed),
                static_cast<long long>(report.pair_retries),
                static_cast<long long>(report.pairs_degraded));
  }
  if (injector != nullptr) {
    std::printf("faults injected: %lld\n",
                static_cast<long long>(injector->total_injected()));
  }
  GMP_CHECK_OK(SaveModel(*model, positional[1]));
  std::printf("model written to %s\n", positional[1].c_str());
  if (!metrics_out.empty()) {
    gpu.counters().PublishTo(&metrics);
    report.PublishTo(&metrics);
    if (!WriteMetricsFile(&metrics, metrics_out)) return 1;
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!WriteTextFile(trace_out, recorder.ToChromeJson())) return 1;
    std::printf("trace written to %s (%zu spans)\n", trace_out.c_str(),
                recorder.size());
  }
  return report.pairs_degraded > 0 ? 3 : 0;
}

int PredictCommand(int argc, char** argv) {
  int host_threads = 1, devices = 1;
  PredictOptions predict;
  std::string positional[3];
  int npos = 0;
  for (int arg = 0; arg < argc; ++arg) {
    const int cascade_arg = ParseCascadeArg(argc, argv, &arg, &predict.cascade);
    if (cascade_arg != 0) {
      if (cascade_arg < 0) return Usage();
    } else if (std::strcmp(argv[arg], "--host-threads") == 0 && arg + 1 < argc) {
      host_threads = std::atoi(argv[++arg]);
      if (host_threads < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (npos < 3) {
      positional[npos++] = argv[arg];
    } else {
      return Usage();
    }
  }
  if (npos < 2) return Usage();
  if (Status valid = predict.Validate(); !valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 2;
  }
  auto model = LoadModel(positional[1]);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto file = ReadLibsvmFile(positional[0], model->support_vectors.cols());
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }

  ExecutorModel device_model = ExecutorModel::TeslaP100();
  device_model.host_threads = host_threads;
  Result<PredictResult> pred = Status::Internal("unreachable");
  if (devices > 1) {
    // Shard the test rows speed-weighted across the cluster; the merged
    // probabilities are bit-identical to the single-device path.
    cluster::SimCluster cluster_devices =
        cluster::SimCluster::Homogeneous(devices, device_model);
    pred = cluster::ClusterPredict(*model, file->dataset.features(),
                                   &cluster_devices, predict);
  } else {
    SimExecutor gpu(device_model);
    pred = MpSvmPredictor(&*model).Predict(file->dataset.features(), &gpu,
                                           predict);
  }
  if (!pred.ok()) {
    std::fprintf(stderr, "prediction failed: %s\n",
                 pred.status().ToString().c_str());
    return 1;
  }
  auto err = ErrorRate(pred->labels, file->dataset.labels());
  if (err.ok()) {
    std::printf("error rate: %.4f%% over %lld instances (%.3f sim-s)\n",
                100.0 * *err, static_cast<long long>(pred->num_instances),
                pred->sim_seconds);
  }
  if (predict.cascade.mode == CascadeOptions::Mode::kEliminate) {
    std::printf("cascade: %lld rows, %lld pair evals, %lld classes "
                "eliminated, %lld exact fallbacks\n",
                static_cast<long long>(pred->cascade_rows),
                static_cast<long long>(pred->cascade_pairs_evaluated),
                static_cast<long long>(pred->cascade_classes_eliminated),
                static_cast<long long>(pred->cascade_fallback_rows));
  }
  if (npos == 3) {
    std::ofstream out(positional[2]);
    for (int64_t i = 0; i < pred->num_instances; ++i) {
      out << pred->labels[static_cast<size_t>(i)];
      for (int c2 = 0; c2 < model->num_classes; ++c2) {
        out << ' ' << pred->Probability(i, c2);
      }
      out << '\n';
    }
    std::printf("probabilities written to %s\n", positional[2].c_str());
  }
  return 0;
}

// Multi-tenant fleet smoke (`serve --fleet-config`): load every tenant's
// model into a FleetServer, replay a weighted synthetic workload through the
// quota/overload gates, tick the autoscaler on a fixed cadence, and print
// the per-tenant fleet table. With --verify, every successful response is
// compared byte-for-byte against a direct single-model prediction computed
// on a clean (fault-free) executor — shared SV store, chaos retries, and
// replica count must not change a single probability bit.
int FleetServeCommand(const std::string& config_path, int num_requests,
                      ServeOptions options, bool chaos, uint64_t chaos_seed,
                      int devices, const std::string& metrics_out,
                      const std::string& trace_out, bool verify) {
  auto config = fleet::LoadFleetConfigFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 1;
  }

  obs::MetricsRegistry metrics;
  obs::TraceRecorder recorder;
  if (!trace_out.empty()) options.trace = &recorder;
  std::unique_ptr<fault::FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::Chaos(chaos_seed), &metrics);
    options.fault = injector.get();
    options.max_request_retries = 4;
    std::printf("chaos enabled (seed %llu)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  fleet::FleetOptions fleet_options;
  fleet_options.serve = options;
  fleet_options.initial_replicas = config->replicas;
  fleet_options.autoscale = config->autoscale;
  fleet_options.share_support_vectors = config->share_support_vectors;
  fleet_options.sv_cache_capacity = config->sv_cache_capacity;
  fleet_options.shed_start_fraction = config->shed_start_fraction;
  fleet_options.metrics = &metrics;
  if (devices > 1) {
    fleet_options.devices.assign(static_cast<size_t>(devices),
                                 options.executor_model);
  }

  fleet::FleetServer fleet_server(fleet_options);
  if (Status started = fleet_server.Start(); !started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }

  // Per-tenant query set plus (under --verify) the reference answers.
  struct TenantWorkload {
    std::string name;
    double weight = 1.0;
    CsrMatrix rows;
    int num_classes = 0;
    std::vector<double> ref_probs;   // row-major [row][class]
    std::vector<int32_t> ref_labels;
    int64_t next_row = 0;
  };
  std::vector<TenantWorkload> workloads;
  workloads.reserve(config->tenants.size());
  for (size_t t = 0; t < config->tenants.size(); ++t) {
    const fleet::FleetConfigTenant& tenant = config->tenants[t];
    auto model = LoadModel(tenant.model_path);
    if (!model.ok()) {
      std::fprintf(stderr, "error: tenant %s: %s\n", tenant.spec.name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    std::printf("tenant %s: %s (%d classes, %lld SVs) priority=%d rate=%g "
                "weight=%g\n",
                tenant.spec.name.c_str(), tenant.model_path.c_str(),
                model->num_classes,
                static_cast<long long>(model->support_vectors.rows()),
                tenant.spec.priority, tenant.spec.quota.rate_per_sec,
                tenant.spec.weight);

    SyntheticSpec spec;
    spec.name = "svm_tool-fleet-" + tenant.spec.name;
    spec.num_classes = model->num_classes;
    spec.cardinality = 64;
    spec.dim = std::max<int64_t>(model->support_vectors.cols(), 1);
    spec.density = 0.5;
    spec.seed = 99 + static_cast<uint64_t>(t);
    auto queries = GenerateSynthetic(spec);
    if (!queries.ok()) {
      std::fprintf(stderr, "error: %s\n", queries.status().ToString().c_str());
      return 1;
    }

    TenantWorkload workload;
    workload.name = tenant.spec.name;
    workload.weight = tenant.spec.weight > 0.0 ? tenant.spec.weight : 1.0;
    workload.rows = queries->features();
    workload.num_classes = model->num_classes;
    if (verify) {
      // Reference path: the plain predictor on a clean executor, no fault
      // injector, no SV store — what every fleet answer must match exactly.
      // The tenant's effective options (its override, else the fleet-wide
      // serve options) decide the reference too, so cascade/voting tenants
      // verify against the same pipeline their batches run.
      SimExecutor reference_gpu(options.executor_model);
      const PredictOptions reference_options =
          tenant.spec.predict.has_value() ? *tenant.spec.predict
                                          : options.predict;
      auto reference = MpSvmPredictor(&*model).Predict(
          workload.rows, &reference_gpu, reference_options);
      if (!reference.ok()) {
        std::fprintf(stderr, "error: reference prediction for %s: %s\n",
                     tenant.spec.name.c_str(),
                     reference.status().ToString().c_str());
        return 1;
      }
      workload.ref_labels = reference->labels;
      workload.ref_probs.reserve(
          static_cast<size_t>(reference->num_instances) *
          static_cast<size_t>(model->num_classes));
      for (int64_t i = 0; i < reference->num_instances; ++i) {
        for (int c = 0; c < model->num_classes; ++c) {
          workload.ref_probs.push_back(reference->Probability(i, c));
        }
      }
    }
    workloads.push_back(std::move(workload));

    auto version = fleet_server.AddTenant(tenant.spec, std::move(*model));
    if (!version.ok()) {
      std::fprintf(stderr, "error: %s\n", version.status().ToString().c_str());
      return 1;
    }
  }

  double total_weight = 0.0;
  for (const TenantWorkload& w : workloads) total_weight += w.weight;

  // Weighted-random tenant sampling with a fixed seed: the request sequence
  // is a pure function of the config, so reruns are comparable.
  Rng rng(99);
  struct PendingReply {
    size_t tenant;
    int64_t row;
    std::future<Result<PredictResponse>> future;
  };
  std::vector<PendingReply> pending;
  pending.reserve(static_cast<size_t>(num_requests));
  uint64_t shed = 0, rejected = 0;
  for (int r = 0; r < num_requests; ++r) {
    if (r % 32 == 0) fleet_server.ScaleTick();
    double pick = rng.Uniform() * total_weight;
    size_t t = 0;
    for (; t + 1 < workloads.size(); ++t) {
      pick -= workloads[t].weight;
      if (pick < 0.0) break;
    }
    TenantWorkload& w = workloads[t];
    const int64_t row = w.next_row++ % w.rows.rows();
    auto submitted =
        fleet_server.Submit(w.name, w.rows.RowIndices(row), w.rows.RowValues(row));
    if (!submitted.ok()) {
      if (submitted.status().code() == StatusCode::kUnavailable) {
        ++shed;
        continue;
      }
      if (submitted.status().code() == StatusCode::kResourceExhausted) {
        ++rejected;
        continue;
      }
      std::fprintf(stderr, "error: %s\n",
                   submitted.status().ToString().c_str());
      return 1;
    }
    pending.push_back(PendingReply{t, row, std::move(*submitted)});
  }

  int answered = 0, failed = 0, wrong = 0;
  for (PendingReply& p : pending) {
    auto response = p.future.get();
    ++answered;
    if (!response.ok()) {
      ++failed;
      if (!chaos) {
        std::fprintf(stderr, "request failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      continue;
    }
    if (verify) {
      const TenantWorkload& w = workloads[p.tenant];
      const size_t base =
          static_cast<size_t>(p.row) * static_cast<size_t>(w.num_classes);
      const bool probs_match =
          response->probabilities.size() ==
              static_cast<size_t>(w.num_classes) &&
          std::memcmp(response->probabilities.data(), w.ref_probs.data() + base,
                      static_cast<size_t>(w.num_classes) * sizeof(double)) == 0;
      if (!probs_match ||
          response->label != w.ref_labels[static_cast<size_t>(p.row)]) {
        ++wrong;
        std::fprintf(stderr,
                     "wrong answer: tenant %s row %lld diverges from the "
                     "reference prediction\n",
                     w.name.c_str(), static_cast<long long>(p.row));
      }
    }
  }
  fleet_server.ScaleTick();

  std::printf("answered %d requests (%llu shed, %llu rejected, %d failed "
              "responses)\n",
              answered, static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(rejected), failed);
  if (verify) {
    std::printf("verified %d responses, %d wrong answers\n", answered - failed,
                wrong);
  }
  if (injector != nullptr) {
    std::printf("faults injected: %lld\n",
                static_cast<long long>(injector->total_injected()));
  }

  fleet::FleetStatsSnapshot snapshot = fleet_server.Snapshot();
  uint64_t shed_quota = 0, shed_overload = 0;
  for (const fleet::TenantStatsSnapshot& tenant : snapshot.tenants) {
    shed_quota += tenant.shed_quota;
    shed_overload += tenant.shed_overload;
  }
  std::printf("%s\n", snapshot.ToTable().c_str());
  std::printf("fleet shed total: %llu (quota %llu, overload %llu)\n",
              static_cast<unsigned long long>(shed_quota + shed_overload),
              static_cast<unsigned long long>(shed_quota),
              static_cast<unsigned long long>(shed_overload));

  GMP_CHECK_OK(fleet_server.Shutdown());
  if (!metrics_out.empty()) {
    if (!WriteMetricsFile(&metrics, metrics_out)) return 1;
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!WriteTextFile(trace_out, recorder.ToChromeJson())) return 1;
    std::printf("trace written to %s (%zu spans)\n", trace_out.c_str(),
                recorder.size());
  }
  if (wrong > 0) return 1;
  return failed > 0 ? 3 : 0;
}

// Smoke the serving path against a saved model: load it into a registry,
// start the micro-batching server, push synthetic single-row requests, and
// print the ServeStats table.
int ServeCommand(int argc, char** argv) {
  int num_requests = 200, devices = 1;
  bool chaos = false, verify = false;
  uint64_t chaos_seed = 0;
  ServeOptions options;
  std::string model_path, metrics_out, trace_out, fleet_config;
  for (int arg = 0; arg < argc; ++arg) {
    const int cascade_arg =
        ParseCascadeArg(argc, argv, &arg, &options.predict.cascade);
    if (cascade_arg != 0) {
      if (cascade_arg < 0) return Usage();
    } else if (std::strcmp(argv[arg], "-n") == 0 && arg + 1 < argc) {
      num_requests = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-w") == 0 && arg + 1 < argc) {
      options.num_workers = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-b") == 0 && arg + 1 < argc) {
      options.batching.max_batch_size = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--host-threads") == 0 && arg + 1 < argc) {
      const int host_threads = std::atoi(argv[++arg]);
      if (host_threads < 1) return Usage();
      options.executor_model.host_threads = host_threads;
    } else if (std::strcmp(argv[arg], "--chaos-seed") == 0 && arg + 1 < argc) {
      chaos = true;
      chaos_seed = static_cast<uint64_t>(std::atoll(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (std::strcmp(argv[arg], "--metrics-out") == 0 && arg + 1 < argc) {
      metrics_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "--trace-out") == 0 && arg + 1 < argc) {
      trace_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "--fleet-config") == 0 && arg + 1 < argc) {
      fleet_config = argv[++arg];
    } else if (std::strcmp(argv[arg], "--verify") == 0) {
      verify = true;
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (model_path.empty()) {
      model_path = argv[arg];
    } else {
      return Usage();
    }
  }
  if (num_requests <= 0) return Usage();
  if (!fleet_config.empty()) {
    // Fleet mode takes its models from the config file; a positional model
    // (and --verify outside fleet mode) is a usage error.
    if (!model_path.empty()) return Usage();
    return FleetServeCommand(fleet_config, num_requests, options, chaos,
                             chaos_seed, devices, metrics_out, trace_out,
                             verify);
  }
  if (model_path.empty() || verify) return Usage();

  ModelRegistry registry;
  auto version = registry.LoadFromFile("default", model_path);
  if (!version.ok()) {
    std::fprintf(stderr, "error: %s\n", version.status().ToString().c_str());
    return 1;
  }
  auto handle = registry.Get("default");
  GMP_CHECK_OK(handle.status());
  const MpSvmModel& model = *handle->model;
  std::printf("serving %s: %d classes, %lld SVMs, %lld pooled SVs\n",
              model_path.c_str(), model.num_classes,
              static_cast<long long>(model.svms.size()),
              static_cast<long long>(model.support_vectors.rows()));

  // Synthetic queries in the model's own feature space.
  SyntheticSpec spec;
  spec.name = "svm_tool-serve";
  spec.num_classes = model.num_classes;
  spec.cardinality = num_requests;
  spec.dim = std::max<int64_t>(model.support_vectors.cols(), 1);
  spec.density = 0.5;
  spec.seed = 99;
  auto queries = GenerateSynthetic(spec);
  if (!queries.ok()) {
    std::fprintf(stderr, "error: %s\n", queries.status().ToString().c_str());
    return 1;
  }
  const CsrMatrix& rows = queries->features();

  obs::MetricsRegistry metrics;
  obs::TraceRecorder recorder;
  options.metrics = &metrics;
  if (!trace_out.empty()) options.trace = &recorder;
  std::unique_ptr<fault::FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::Chaos(chaos_seed), &metrics);
    options.fault = injector.get();
    options.max_request_retries = 3;
    registry.SetFaultInjector(injector.get());
    std::printf("chaos enabled (seed %llu)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  // --devices > 1 serves through the replica router (one InferenceServer per
  // device, least-loaded dispatch); --devices 1 keeps the direct server.
  std::unique_ptr<InferenceServer> server;
  std::unique_ptr<ReplicaRouter> router;
  if (devices > 1) {
    RouterOptions router_options;
    router_options.serve = options;
    router_options.devices.assign(static_cast<size_t>(devices),
                                  options.executor_model);
    router_options.metrics = &metrics;
    router = std::make_unique<ReplicaRouter>(&registry, router_options);
    GMP_CHECK_OK(router->Start());
    std::printf("routing across %d replicas (%d workers each)\n", devices,
                options.num_workers);
  } else {
    server = std::make_unique<InferenceServer>(&registry, options);
    GMP_CHECK_OK(server->Start());
  }
  std::vector<std::future<Result<PredictResponse>>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  for (int r = 0; r < num_requests; ++r) {
    const int64_t row = r % rows.rows();
    auto submitted =
        router != nullptr
            ? router->Submit(rows.RowIndices(row), rows.RowValues(row))
            : server->Submit(rows.RowIndices(row), rows.RowValues(row));
    if (!submitted.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   submitted.status().ToString().c_str());
      return 1;
    }
    futures.push_back(std::move(*submitted));
  }
  // Every accepted request must resolve to a terminal Result; under chaos
  // some may carry failure statuses (counted, not fatal), but a future that
  // never resolves would hang right here — that is the regression this
  // command exists to catch.
  int answered = 0, failed = 0;
  for (auto& f : futures) {
    auto response = f.get();
    ++answered;
    if (!response.ok()) {
      ++failed;
      if (!chaos) {
        std::fprintf(stderr, "request failed: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
    }
  }
  std::printf("answered %d/%d requests (%d failed responses)\n", answered,
              static_cast<int>(futures.size()), failed);
  if (injector != nullptr) {
    std::printf("faults injected: %lld\n",
                static_cast<long long>(injector->total_injected()));
  }
  if (router != nullptr) {
    for (int r = 0; r < router->num_replicas(); ++r) {
      std::printf("replica %d: %lld requests routed\n%s\n", r,
                  static_cast<long long>(router->routed(r)),
                  router->replica(r)->stats().Snapshot().ToTable().c_str());
    }
    GMP_CHECK_OK(router->Shutdown());
  } else {
    std::printf("%s\n", server->stats().Snapshot().ToTable().c_str());
    GMP_CHECK_OK(server->Shutdown());
  }
  if (!metrics_out.empty()) {
    if (!WriteMetricsFile(&metrics, metrics_out)) return 1;
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    if (!WriteTextFile(trace_out, recorder.ToChromeJson())) return 1;
    std::printf("trace written to %s (%zu spans)\n", trace_out.c_str(),
                recorder.size());
  }
  return failed > 0 ? 3 : 0;
}

// Writes a drift delta against a LibSVM base: relabels N rows of class
// --from to class --to (the incumbent model keeps predicting the old label on
// those rows, so serving them drives the Brier window up) and optionally
// appends N copies of class --to rows labeled --from. Row choices come from a
// seeded Rng, so the same flags always produce the same delta bytes.
int MakeDeltaCommand(int argc, char** argv) {
  int relabel = 32, add = 0, from = 0, to = 1;
  uint64_t seed = 1;
  std::string positional[2];
  int npos = 0;
  for (int arg = 0; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--relabel") == 0 && arg + 1 < argc) {
      relabel = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--add") == 0 && arg + 1 < argc) {
      add = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--from") == 0 && arg + 1 < argc) {
      from = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--to") == 0 && arg + 1 < argc) {
      to = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--seed") == 0 && arg + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++arg]));
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (npos < 2) {
      positional[npos++] = argv[arg];
    } else {
      return Usage();
    }
  }
  if (npos != 2 || relabel < 0 || add < 0 || relabel + add == 0) return Usage();
  auto file = ReadLibsvmFile(positional[0]);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  const Dataset& base = file->dataset;
  if (from < 0 || from >= base.num_classes() || to < 0 ||
      to >= base.num_classes() || from == to) {
    std::fprintf(stderr, "error: --from/--to must be distinct classes in "
                 "[0, %d)\n", base.num_classes());
    return 2;
  }

  online::DatasetDelta delta;
  delta.base_fingerprint = online::DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  Rng rng(seed);

  const std::vector<int32_t>& from_rows = base.ClassRows(from);
  if (relabel > static_cast<int>(from_rows.size())) {
    std::fprintf(stderr, "error: class %d has only %zu rows to relabel\n",
                 from, from_rows.size());
    return 1;
  }
  // Sample without replacement: shuffle a copy, take a prefix, keep ops in
  // ascending row order so the delta text is canonical.
  std::vector<int32_t> shuffled = from_rows;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
  }
  shuffled.resize(static_cast<size_t>(relabel));
  std::sort(shuffled.begin(), shuffled.end());
  for (int32_t row : shuffled) {
    online::DeltaOp op;
    op.kind = online::DeltaOp::Kind::kRelabel;
    op.row = row;
    op.old_label = from;
    op.new_label = to;
    delta.ops.push_back(std::move(op));
  }

  const std::vector<int32_t>& to_rows = base.ClassRows(to);
  for (int a = 0; a < add; ++a) {
    const int32_t source =
        to_rows[static_cast<size_t>(rng.UniformInt(to_rows.size()))];
    online::DeltaOp op;
    op.kind = online::DeltaOp::Kind::kAdd;
    op.label = from;
    const auto idx = base.features().RowIndices(source);
    const auto val = base.features().RowValues(source);
    op.indices.assign(idx.begin(), idx.end());
    op.values.assign(val.begin(), val.end());
    delta.ops.push_back(std::move(op));
  }

  if (Status saved = online::SaveDelta(delta, positional[1]); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("delta written to %s: %d relabels %d->%d, %d adds, base "
              "fingerprint %llu\n",
              positional[1].c_str(), relabel, from, to, add,
              static_cast<unsigned long long>(delta.base_fingerprint));
  return 0;
}

// The continual-learning loop end to end (docs/online.md): register the
// model, process every *.delta in --delta-dir in sorted filename order,
// serve seeded traffic, and when the drift window arms, warm-retrain the
// affected pairs across the cluster, canary the candidate, and hot-swap it
// through the registry's validator/fault gate. --chaos-seed injects faults
// into every phase; the swapped model bytes are identical to the clean run's
// at any --devices / --host-threads combination.
int RetrainDaemonCommand(int argc, char** argv) {
  int host_threads = 1, devices = 1;
  int64_t requests = 96;
  double brier_threshold = 0.3, canary_fraction = 0.25;
  // A retrain absorbing real drift legitimately moves probabilities all the
  // way on the relabeled rows, so the tool's default disagreement gate is
  // wide open and the candidate-vs-incumbent Brier check does the guarding;
  // tighten with --canary-tolerance to gate on raw disagreement too.
  double canary_tolerance = 1.0;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  std::string delta_dir, metrics_out, model_out;
  std::string positional[2];
  int npos = 0;
  for (int arg = 0; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--delta-dir") == 0 && arg + 1 < argc) {
      delta_dir = argv[++arg];
    } else if (std::strcmp(argv[arg], "--requests") == 0 && arg + 1 < argc) {
      requests = std::atoll(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--brier-threshold") == 0 &&
               arg + 1 < argc) {
      brier_threshold = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--canary-fraction") == 0 &&
               arg + 1 < argc) {
      canary_fraction = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--canary-tolerance") == 0 &&
               arg + 1 < argc) {
      canary_tolerance = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--host-threads") == 0 && arg + 1 < argc) {
      host_threads = std::atoi(argv[++arg]);
      if (host_threads < 1) return Usage();
    } else if (std::strcmp(argv[arg], "--devices") == 0) {
      if (!ParseDevicesFlag(argc, argv, &arg, &devices)) return Usage();
    } else if (std::strcmp(argv[arg], "--chaos-seed") == 0 && arg + 1 < argc) {
      chaos = true;
      chaos_seed = static_cast<uint64_t>(std::atoll(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--metrics-out") == 0 && arg + 1 < argc) {
      metrics_out = argv[++arg];
    } else if (std::strcmp(argv[arg], "--model-out") == 0 && arg + 1 < argc) {
      model_out = argv[++arg];
    } else if (argv[arg][0] == '-') {
      return Usage();
    } else if (npos < 2) {
      positional[npos++] = argv[arg];
    } else {
      return Usage();
    }
  }
  if (npos != 2 || delta_dir.empty()) return Usage();

  auto file = ReadLibsvmFile(positional[0]);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
    return 1;
  }
  auto model = LoadModel(positional[1]);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  if (model->num_classes != file->dataset.num_classes()) {
    std::fprintf(stderr, "error: model has %d classes, data has %d\n",
                 model->num_classes, file->dataset.num_classes());
    return 1;
  }

  obs::MetricsRegistry metrics;
  ExecutorModel device_model = ExecutorModel::TeslaP100();
  device_model.host_threads = host_threads;
  cluster::SimCluster cluster_devices =
      cluster::SimCluster::Homogeneous(devices, device_model);
  ModelRegistry registry;

  online::RetrainDaemonOptions options;
  options.delta_dir = delta_dir;
  options.requests_per_round = requests;
  options.drift.brier_threshold = brier_threshold;
  options.drift.metrics = &metrics;
  options.canary.traffic_fraction = canary_fraction;
  options.canary.tolerance = canary_tolerance;
  options.metrics = &metrics;
  // Warm retraining reuses the solver configuration the saved model carries;
  // everything else (eps, working set) stays at the defaults, identically on
  // every run, which is all byte-identity needs.
  options.retrain.train.c = model->c;
  options.retrain.train.kernel = model->kernel;
  options.retrain.train.host_threads = host_threads;
  if (chaos) {
    options.fault = fault::FaultPlan::Chaos(chaos_seed);
    options.retrain.fault = fault::FaultPlan::Chaos(chaos_seed);
    options.retrain.fault_metrics = &metrics;
    std::printf("chaos enabled (seed %llu)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  online::RetrainDaemon daemon(options, &registry, &cluster_devices);
  auto report = daemon.Run(file->dataset, std::move(*model));
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "deltas: %lld applied, %lld skipped\n"
      "served: %lld requests (%lld dropped), %lld canary-sampled\n"
      "drift: %lld arms (window brier %.4f), %lld retrains\n"
      "pairs: %lld retrained, %lld carried, %lld retries\n"
      "swaps: %lld committed, %lld rollbacks (final version %lld)\n",
      static_cast<long long>(report->deltas_applied),
      static_cast<long long>(report->deltas_skipped),
      static_cast<long long>(report->requests_served),
      static_cast<long long>(report->requests_dropped),
      static_cast<long long>(report->canary_sampled),
      static_cast<long long>(report->drift_arms), report->final_window_brier,
      static_cast<long long>(report->retrains),
      static_cast<long long>(report->pairs_retrained),
      static_cast<long long>(report->pairs_carried),
      static_cast<long long>(report->pair_retries),
      static_cast<long long>(report->swaps_committed),
      static_cast<long long>(report->rollbacks),
      static_cast<long long>(report->final_model_version));
  if (report->delta_parse_retries + report->canary_retries +
          report->swap_retries > 0) {
    std::printf("recovery: %lld delta-parse retries, %lld canary retries, "
                "%lld swap retries\n",
                static_cast<long long>(report->delta_parse_retries),
                static_cast<long long>(report->canary_retries),
                static_cast<long long>(report->swap_retries));
  }
  if (!model_out.empty()) {
    auto handle = registry.Get("online");
    GMP_CHECK_OK(handle.status());
    GMP_CHECK_OK(SaveModel(*handle->model, model_out));
    std::printf("final model written to %s\n", model_out.c_str());
  }
  if (!metrics_out.empty()) {
    if (!WriteMetricsFile(&metrics, metrics_out)) return 1;
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return report->requests_dropped > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global --simd flag: accepted anywhere on the command line (before or
  // after the subcommand), stripped from argv before subcommand parsing so
  // the per-command loops never see it. Sets the process-wide active tier.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strncmp(argv[i], "--simd=", 7) == 0) {
      value = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --simd needs a value\n");
        return 2;
      }
      value = argv[++i];
    } else {
      argv[kept++] = argv[i];
      continue;
    }
    Result<simd::SimdTier> tier = simd::TierFromString(value);
    if (!tier.ok()) {
      std::fprintf(stderr, "error: %s\n", tier.status().message().c_str());
      return 2;
    }
    Status set = simd::SetActiveTier(*tier);
    if (!set.ok()) {
      std::fprintf(stderr, "error: %s\n", set.message().c_str());
      return 2;
    }
  }
  argc = kept;

  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "bench-env") == 0) {
    if (argc != 2) return Usage();
    std::printf("%s\n", simd::DescribeEnvironment().c_str());
    const dist::LinkModel intra = dist::NvlinkClassLink();
    const dist::LinkModel inter = dist::NetworkClassLink();
    std::printf(
        "node topology: single node by default; train --nodes N groups\n"
        "  --devices into N contiguous nodes (docs/cost_model.md)\n"
        "  intra-node link: %.1f GB/s, %.1f us latency (NVLink class)\n"
        "  inter-node link: %.1f GB/s, %.1f us latency (network class;\n"
        "  override with --link-gbps / --link-latency-us)\n",
        intra.bandwidth_bytes_per_sec / 1e9, intra.latency_seconds * 1e6,
        inter.bandwidth_bytes_per_sec / 1e9, inter.latency_seconds * 1e6);
    return 0;
  }
  if (std::strcmp(argv[1], "train") == 0) return TrainCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "predict") == 0) return PredictCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "scale") == 0) return ScaleCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "cv") == 0) return CvCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "grid") == 0) return GridCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "serve") == 0) return ServeCommand(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "make-delta") == 0) {
    return MakeDeltaCommand(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "retrain-daemon") == 0) {
    return RetrainDaemonCommand(argc - 2, argv + 2);
  }
  return Usage();
}
