// Imbalanced classification with class-weighted C and probability
// thresholds: a fraud-detection-style scenario (4% positive class) where
// the probabilistic output is what makes the classifier usable — the
// operating point is chosen on P(fraud | x), not on the raw sign.
//
// Shows: (1) unweighted training collapses recall on the minority class;
// (2) LibSVM-style -wi class weights recover it; (3) sweeping the decision
// threshold on the calibrated probability trades precision for recall.
//
//   ./build/examples/imbalanced_fraud

#include <cstdio>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "device/executor.h"
#include "metrics/report.h"

using namespace gmpsvm;  // NOLINT: example brevity

namespace {

Dataset MakeTransactions(int64_t n, double fraud_rate, uint64_t seed) {
  Rng rng(seed);
  CsrBuilder builder(16);
  std::vector<int32_t> labels;
  for (int64_t i = 0; i < n; ++i) {
    const bool fraud = rng.Bernoulli(fraud_rate);
    std::vector<int32_t> idx(16);
    std::vector<double> val(16);
    for (int d = 0; d < 16; ++d) {
      idx[static_cast<size_t>(d)] = d;
      // Fraud shifts a few behavioural features, heavily overlapped.
      const double center = fraud && d < 5 ? 1.1 : 0.0;
      val[static_cast<size_t>(d)] = rng.Normal(center, 1.0);
    }
    builder.AddRow(idx, val);
    labels.push_back(fraud ? 1 : 0);
  }
  return ValueOrDie(Dataset::Create(ValueOrDie(builder.Finish()), labels, 2,
                                    "transactions"));
}

struct Rates {
  double recall;
  double precision;
};

Rates RatesAtThreshold(const PredictResult& pred, const Dataset& truth,
                       double threshold) {
  int64_t tp = 0, fp = 0, fn = 0;
  for (int64_t i = 0; i < pred.num_instances; ++i) {
    const bool flagged = pred.Probability(i, 1) >= threshold;
    const bool fraud = truth.labels()[static_cast<size_t>(i)] == 1;
    if (flagged && fraud) ++tp;
    if (flagged && !fraud) ++fp;
    if (!flagged && fraud) ++fn;
  }
  return Rates{tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0,
               tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0};
}

}  // namespace

int main() {
  Dataset train = MakeTransactions(3000, 0.04, 11);
  Dataset test = MakeTransactions(1500, 0.04, 12);
  std::printf("transactions: %lld train / %lld test, %zu train frauds (%.1f%%)\n\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(test.size()), train.ClassRows(1).size(),
              100.0 * static_cast<double>(train.ClassRows(1).size()) /
                  static_cast<double>(train.size()));

  // Class weights move the decision BOUNDARY (the raw SVM sign); the Platt
  // sigmoid is refit afterwards, so compare the sign rule here and use the
  // calibrated probabilities for threshold tuning below.
  SimExecutor gpu(ExecutorModel::TeslaP100());
  TablePrinter table({"weights", "recall (sign rule)", "precision (sign rule)"});
  MpSvmModel weighted_model;
  PredictOptions sign_rule;
  sign_rule.decision = PredictOptions::Decision::kVoting;
  for (bool weighted : {false, true}) {
    MpTrainOptions options;
    options.c = 0.5;          // low C: the majority class dominates unweighted
    options.kernel.gamma = 0.04;
    if (weighted) options.class_weights = {1.0, 20.0};  // upweight fraud
    auto model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, nullptr));
    auto pred = ValueOrDie(
        MpSvmPredictor(&model).Predict(test.features(), &gpu, sign_rule));
    const Rates r = RatesAtThreshold(pred, test, 0.5);
    table.AddRow({weighted ? "fraud x20" : "none",
                  StrPrintf("%.1f%%", 100 * r.recall),
                  StrPrintf("%.1f%%", 100 * r.precision)});
    if (weighted) weighted_model = std::move(model);
  }
  table.Print();

  std::printf("\noperating curve on P(fraud | x) with the weighted model:\n");
  auto pred = ValueOrDie(MpSvmPredictor(&weighted_model)
                             .Predict(test.features(), &gpu, PredictOptions{}));
  TablePrinter curve({"threshold", "recall", "precision"});
  for (double threshold : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const Rates r = RatesAtThreshold(pred, test, threshold);
    curve.AddRow({StrPrintf("%.2f", threshold), StrPrintf("%.1f%%", 100 * r.recall),
                  StrPrintf("%.1f%%", 100 * r.precision)});
  }
  curve.Print();
  return 0;
}
