// Quickstart: train a multi-class probabilistic SVM with GMP-SVM on the
// simulated GPU, predict class probabilities, and round-trip the model
// through its file format.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/model_io.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "metrics/metrics.h"

using namespace gmpsvm;  // NOLINT: example brevity

int main() {
  // 1. Data: a small 3-class synthetic problem (use ReadLibsvmFile() for
  //    your own data in LibSVM format).
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.num_classes = 3;
  spec.cardinality = 600;
  spec.dim = 24;
  spec.density = 0.5;
  spec.separation = 1.8;
  spec.c = 10.0;
  spec.gamma = 0.2;
  spec.seed = 42;
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
  std::printf("train: %lld instances, %lld features, %d classes\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(train.dim()), train.num_classes());

  // 2. The execution substrate: a simulated Tesla P100.
  SimExecutor gpu(ExecutorModel::TeslaP100());

  // 3. Train. MpTrainOptions exposes the paper's knobs (working-set size,
  //    q, sharing toggles); the defaults follow the paper's settings.
  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.type = KernelType::kGaussian;
  options.kernel.gamma = spec.gamma;
  MpTrainReport report;
  MpSvmModel model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
  std::printf("trained %d binary SVMs in %.3f sim-seconds (%.3f wall)\n",
              model.num_pairs(), report.sim_seconds, report.wall_seconds);
  std::printf("support vectors: %lld pooled (%lld references shared)\n",
              static_cast<long long>(model.pool_size()),
              static_cast<long long>(model.total_sv_references()));

  // 4. Predict probabilities.
  MpSvmPredictor predictor(&model);
  PredictResult pred =
      ValueOrDie(predictor.Predict(test.features(), &gpu, PredictOptions{}));
  const double err = ValueOrDie(ErrorRate(pred.labels, test.labels()));
  std::printf("test error: %.2f%% over %lld instances (%.3f sim-seconds)\n",
              100.0 * err, static_cast<long long>(pred.num_instances),
              pred.sim_seconds);
  std::printf("first 3 instances, P(class | x):\n");
  for (int64_t i = 0; i < 3 && i < pred.num_instances; ++i) {
    std::printf("  #%lld ->", static_cast<long long>(i));
    for (int c = 0; c < model.num_classes; ++c) {
      std::printf(" %.3f", pred.Probability(i, c));
    }
    std::printf("  (predicted %d, truth %d)\n", pred.labels[static_cast<size_t>(i)],
                test.labels()[static_cast<size_t>(i)]);
  }

  // 5. Save / load.
  const std::string path = "/tmp/gmpsvm_quickstart.model";
  GMP_CHECK_OK(SaveModel(model, path));
  MpSvmModel restored = ValueOrDie(LoadModel(path));
  std::printf("model round-tripped through %s (%d SVMs)\n", path.c_str(),
              restored.num_pairs());
  return 0;
}
