// Internal: per-tier op-table accessors wired together by simd.cc.
// Tables not compiled for this architecture return nullptr.

#ifndef GMPSVM_SIMD_SIMD_TIERS_H_
#define GMPSVM_SIMD_SIMD_TIERS_H_

#include "simd/simd.h"

namespace gmpsvm::simd {

const SimdOps* ScalarOpsTable();  // always available
const SimdOps* Avx2OpsTable();    // nullptr unless built for x86-64
const SimdOps* NeonOpsTable();    // nullptr unless built for aarch64

}  // namespace gmpsvm::simd

#endif  // GMPSVM_SIMD_SIMD_TIERS_H_
