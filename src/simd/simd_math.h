// Deterministic elementwise math for the SIMD kernel tier.
//
// The vectorized hot paths (docs/performance.md, "SIMD tier") must produce
// results byte-identical to the scalar fallback, which rules out libm:
// std::exp / std::tanh / std::pow have no vector-lane twins with the same
// rounding. Instead every transcendental the kernel transforms need is
// implemented here as a fixed sequence of IEEE-754 double operations
// (+, -, *, /, floor, abs, exponent-bit scaling). Elementwise IEEE ops are
// exact per lane, so a vector tier that applies the *same op sequence* to
// each lane reproduces these scalar results bit for bit automatically —
// the vector implementations in simd_avx2.cc / simd_neon.cc mirror each
// function below operation by operation, and tests/simd/simd_test.cc holds
// them to memcmp equality.
//
// Accuracy: the exp core is the Cephes rational approximation (~1-2 ulp over
// the full range); tanh is derived from it (a few ulp). That is far inside
// every tolerance the calibration and solver tests use. Inputs are assumed
// finite (kernel dot products and norms always are).
//
// These functions are also the *scalar* kernel-transform implementation:
// KernelFunction::FromDot routes through the FromDot helpers at the bottom,
// so single-value kernel evaluations, lazily computed cascade rows and
// batched vector transforms all share one arithmetic definition.
//
// NOTE: translation units using vector twins of these functions must be
// compiled with -ffp-contract=off (see src/CMakeLists.txt); a contracted
// fma in just one tier would break cross-tier identity.

#ifndef GMPSVM_SIMD_SIMD_MATH_H_
#define GMPSVM_SIMD_SIMD_MATH_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace gmpsvm::simd {

// Cephes exp constants. The argument is reduced as x = n*ln2 + r via the
// two-part Cody-Waite ln2 (kLn2Hi + kLn2Lo) so r is exact to ~1e-22, then
// e^r is evaluated as 1 + 2*P(r^2)*r / (Q(r^2) - P(r^2)*r) and scaled by
// 2^n through exponent-bit construction.
inline constexpr double kExpHi = 709.78271289338397;   // overflow threshold
inline constexpr double kExpLo = -708.39641853226408;  // underflow (to 0)
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
inline constexpr double kExpP0 = 1.26177193074810590878e-4;
inline constexpr double kExpP1 = 3.02994407707441961300e-2;
inline constexpr double kExpP2 = 9.99999999999999999910e-1;
inline constexpr double kExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kExpQ3 = 2.00000000000000000005e0;

// 2^e for an integer exponent known to fit a normal double (|e| <= 1023).
inline double Pow2(int64_t e) {
  return std::bit_cast<double>(static_cast<uint64_t>(e + 1023) << 52);
}

// Deterministic e^x. Clamps to [kExpLo, kExpHi]: inputs above return +inf,
// inputs below return exactly 0 (gradual denormals in (-745, -708.4) are
// flushed — a deliberate, documented deviation from libm that every tier
// shares). The unclamped core and the final blend mirror the vector
// implementations step for step.
inline double Exp(double x) {
  const double xc = x < kExpLo ? kExpLo : (x > kExpHi ? kExpHi : x);

  // n = round-to-nearest-ish integer via floor(x*log2e + 0.5), matching the
  // vector tiers' floor instruction (round toward -inf after the +0.5).
  const double nf = std::floor(xc * kLog2E + 0.5);
  // r = xc - n*ln2, Cody-Waite.
  double r = xc - nf * kLn2Hi;
  r = r - nf * kLn2Lo;

  const double r2 = r * r;
  const double p = ((kExpP0 * r2 + kExpP1) * r2 + kExpP2) * r;
  const double q = ((kExpQ0 * r2 + kExpQ1) * r2 + kExpQ2) * r2 + kExpQ3;
  const double core = 1.0 + 2.0 * (p / (q - p));

  // 2^n in two steps so both factors stay normal for n in [-1075, 1025].
  const int64_t n = static_cast<int64_t>(nf);
  const int64_t n1 = n >> 1;  // arithmetic shift: floor(n/2)
  const double scaled = (core * Pow2(n1)) * Pow2(n - n1);

  if (x > kExpHi) return std::numeric_limits<double>::infinity();
  if (x < kExpLo) return 0.0;
  return scaled;
}

// Deterministic tanh, defined through Exp:
//   tanh(x) = sign(x) * (1 - 2 / (e^{2|x|} + 1)).
// For 2|x| past the exp overflow threshold the arithmetic saturates to
// exactly +/-1 on its own (2/inf == 0), so no extra branch is needed and
// the vector tiers run branch-free.
inline double Tanh(double x) {
  const double ax = std::fabs(x);
  const double e = Exp(2.0 * ax);
  const double t = 1.0 - 2.0 / (e + 1.0);
  return std::copysign(t, x);
}

// base^degree for small non-negative integer degrees (the polynomial
// kernel's d) by left-to-right repeated squaring. The multiply sequence
// depends only on `degree`, which is uniform across a transform, so the
// vector tiers execute the identical sequence per lane.
inline double PowInt(double base, int degree) {
  if (degree <= 0) return 1.0;
  double result = 1.0;
  double b = base;
  int e = degree;
  while (true) {
    if ((e & 1) != 0) result *= b;
    e >>= 1;
    if (e == 0) break;
    b *= b;
  }
  return result;
}

// Canonical dot -> kernel-value transforms. All call sites — scalar
// single-value evaluation, lazy cascade rows, batched vector transforms —
// must use exactly these operation orders.
inline double GaussianFromDot(double dot, double norm_i, double norm_j,
                              double gamma) {
  const double arg = (norm_i + norm_j) - (2.0 * dot);
  return Exp((-gamma) * arg);
}

inline double PolynomialFromDot(double dot, double gamma, double coef0,
                                int degree) {
  return PowInt((gamma * dot) + coef0, degree);
}

inline double SigmoidFromDot(double dot, double gamma, double coef0) {
  return Tanh((gamma * dot) + coef0);
}

}  // namespace gmpsvm::simd

#endif  // GMPSVM_SIMD_SIMD_MATH_H_
