// NEON tier (aarch64, 2 doubles per register). NEON is baseline on aarch64
// so no runtime probe is needed; elsewhere this TU provides the nullptr
// table. Compiled with -ffp-contract=off like every tier (no fma — see
// simd.h).
//
// The block-8 reduction tree is reached with four 2-lane vectors:
//   va=[c0,c1] vb=[c2,c3] vc=[c4,c5] vd=[c6,c7]
//   s01 = va+vc = [s0,s1], s23 = vb+vd = [s2,s3]
//   u = s01+s23 = [s0+s2, s1+s3],  block = u[0] + u[1]
// — exactly the scalar tier's (s0+s2) + (s1+s3). Lacking a gather
// instruction, indexed loads are assembled scalar-wise; the arithmetic
// order is what the contract fixes, not the load schedule.

#include "simd/simd_tiers.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <limits>

#include "simd/simd_math.h"

namespace gmpsvm::simd {
namespace {

inline float64x2_t Pow2Vec(int64x2_t e) {
  return vreinterpretq_f64_s64(
      vshlq_n_s64(vaddq_s64(e, vdupq_n_s64(1023)), 52));
}

// Vector twin of simd::Exp — identical IEEE op sequence per lane.
inline float64x2_t ExpVec(float64x2_t x) {
  const float64x2_t lo = vdupq_n_f64(kExpLo);
  const float64x2_t hi = vdupq_n_f64(kExpHi);
  const float64x2_t xc = vminq_f64(vmaxq_f64(x, lo), hi);

  const float64x2_t nf = vrndmq_f64(
      vaddq_f64(vmulq_f64(xc, vdupq_n_f64(kLog2E)), vdupq_n_f64(0.5)));
  float64x2_t r = vsubq_f64(xc, vmulq_f64(nf, vdupq_n_f64(kLn2Hi)));
  r = vsubq_f64(r, vmulq_f64(nf, vdupq_n_f64(kLn2Lo)));

  const float64x2_t r2 = vmulq_f64(r, r);
  const float64x2_t p = vmulq_f64(
      vaddq_f64(vmulq_f64(vaddq_f64(vmulq_f64(vdupq_n_f64(kExpP0), r2),
                                    vdupq_n_f64(kExpP1)),
                          r2),
                vdupq_n_f64(kExpP2)),
      r);
  const float64x2_t q = vaddq_f64(
      vmulq_f64(
          vaddq_f64(vmulq_f64(vaddq_f64(vmulq_f64(vdupq_n_f64(kExpQ0), r2),
                                        vdupq_n_f64(kExpQ1)),
                              r2),
                    vdupq_n_f64(kExpQ2)),
          r2),
      vdupq_n_f64(kExpQ3));
  const float64x2_t core =
      vaddq_f64(vdupq_n_f64(1.0),
                vmulq_f64(vdupq_n_f64(2.0), vdivq_f64(p, vsubq_f64(q, p))));

  // nf is integral, so the toward-zero cvt is exact.
  const int64x2_t n = vcvtq_s64_f64(nf);
  const int64x2_t n1 = vshrq_n_s64(n, 1);  // arithmetic: floor(n/2)
  const int64x2_t n2 = vsubq_s64(n, n1);
  float64x2_t scaled = vmulq_f64(vmulq_f64(core, Pow2Vec(n1)), Pow2Vec(n2));

  const float64x2_t inf =
      vdupq_n_f64(std::numeric_limits<double>::infinity());
  scaled = vbslq_f64(vcgtq_f64(x, hi), inf, scaled);
  scaled = vbslq_f64(vcltq_f64(x, lo), vdupq_n_f64(0.0), scaled);
  return scaled;
}

inline float64x2_t TanhVec(float64x2_t x) {
  const float64x2_t ax = vabsq_f64(x);
  const float64x2_t e = ExpVec(vmulq_f64(vdupq_n_f64(2.0), ax));
  const float64x2_t t =
      vsubq_f64(vdupq_n_f64(1.0),
                vdivq_f64(vdupq_n_f64(2.0), vaddq_f64(e, vdupq_n_f64(1.0))));
  // t >= +0, so copysign is an OR of x's sign bit.
  const uint64x2_t sign =
      vandq_u64(vreinterpretq_u64_f64(x), vdupq_n_u64(0x8000000000000000ULL));
  return vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(t), sign));
}

inline double Block8(float64x2_t va, float64x2_t vb, float64x2_t vc,
                     float64x2_t vd) {
  const float64x2_t s01 = vaddq_f64(va, vc);
  const float64x2_t s23 = vaddq_f64(vb, vd);
  const float64x2_t u = vaddq_f64(s01, s23);
  return vgetq_lane_f64(u, 0) + vgetq_lane_f64(u, 1);
}

inline float64x2_t GatherPair(const double* dense, const int32_t* idx) {
  const double g[2] = {dense[idx[0]], dense[idx[1]]};
  return vld1q_f64(g);
}

double GatherDotNeon(const double* vals, const int32_t* idx, int64_t n,
                     const double* dense) {
  double acc = 0.0;
  int64_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const float64x2_t va =
        vmulq_f64(vld1q_f64(vals + p), GatherPair(dense, idx + p));
    const float64x2_t vb =
        vmulq_f64(vld1q_f64(vals + p + 2), GatherPair(dense, idx + p + 2));
    const float64x2_t vc =
        vmulq_f64(vld1q_f64(vals + p + 4), GatherPair(dense, idx + p + 4));
    const float64x2_t vd =
        vmulq_f64(vld1q_f64(vals + p + 6), GatherPair(dense, idx + p + 6));
    acc += Block8(va, vb, vc, vd);
  }
  for (; p < n; ++p) acc += vals[p] * dense[idx[p]];
  return acc;
}

double DotNeon(const double* a, const double* b, int64_t n) {
  double acc = 0.0;
  int64_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const float64x2_t va = vmulq_f64(vld1q_f64(a + p), vld1q_f64(b + p));
    const float64x2_t vb =
        vmulq_f64(vld1q_f64(a + p + 2), vld1q_f64(b + p + 2));
    const float64x2_t vc =
        vmulq_f64(vld1q_f64(a + p + 4), vld1q_f64(b + p + 4));
    const float64x2_t vd =
        vmulq_f64(vld1q_f64(a + p + 6), vld1q_f64(b + p + 6));
    acc += Block8(va, vb, vc, vd);
  }
  for (; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

void GaussianTransformNeon(double* out, const double* norms,
                           const int32_t* targets, int64_t n, double norm_row,
                           double gamma) {
  const float64x2_t vnr = vdupq_n_f64(norm_row);
  const float64x2_t vtwo = vdupq_n_f64(2.0);
  const float64x2_t vng = vdupq_n_f64(-gamma);
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t nj = GatherPair(norms, targets + j);
    const float64x2_t dot = vld1q_f64(out + j);
    const float64x2_t arg =
        vsubq_f64(vaddq_f64(vnr, nj), vmulq_f64(vtwo, dot));
    vst1q_f64(out + j, ExpVec(vmulq_f64(vng, arg)));
  }
  for (; j < n; ++j) {
    out[j] = GaussianFromDot(out[j], norm_row, norms[targets[j]], gamma);
  }
}

void PolyTransformNeon(double* out, int64_t n, double gamma, double coef0,
                       int degree) {
  const float64x2_t vg = vdupq_n_f64(gamma);
  const float64x2_t vc0 = vdupq_n_f64(coef0);
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t base =
        vaddq_f64(vmulq_f64(vg, vld1q_f64(out + j)), vc0);
    float64x2_t result = vdupq_n_f64(1.0);
    if (degree > 0) {
      float64x2_t b = base;
      int e = degree;
      while (true) {
        if ((e & 1) != 0) result = vmulq_f64(result, b);
        e >>= 1;
        if (e == 0) break;
        b = vmulq_f64(b, b);
      }
    }
    vst1q_f64(out + j, result);
  }
  for (; j < n; ++j) out[j] = PolynomialFromDot(out[j], gamma, coef0, degree);
}

void SigmoidTransformNeon(double* out, int64_t n, double gamma, double coef0) {
  const float64x2_t vg = vdupq_n_f64(gamma);
  const float64x2_t vc0 = vdupq_n_f64(coef0);
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t t =
        vaddq_f64(vmulq_f64(vg, vld1q_f64(out + j)), vc0);
    vst1q_f64(out + j, TanhVec(t));
  }
  for (; j < n; ++j) out[j] = SigmoidFromDot(out[j], gamma, coef0);
}

void CouplingUpdateNeon(double* qp, double* p, const double* qrow, int64_t n,
                        double diff) {
  const double inv = 1.0 / (1.0 + diff);
  const float64x2_t vd = vdupq_n_f64(diff);
  const float64x2_t vinv = vdupq_n_f64(inv);
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t nqp = vmulq_f64(
        vaddq_f64(vld1q_f64(qp + j), vmulq_f64(vd, vld1q_f64(qrow + j))),
        vinv);
    vst1q_f64(qp + j, nqp);
    vst1q_f64(p + j, vmulq_f64(vld1q_f64(p + j), vinv));
  }
  for (; j < n; ++j) {
    qp[j] = (qp[j] + diff * qrow[j]) * inv;
    p[j] = p[j] * inv;
  }
}

void MulNegNeon(double* out, const double* a, const double* b, int64_t n) {
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(out + j, vnegq_f64(vmulq_f64(vld1q_f64(a + j),
                                           vld1q_f64(b + j))));
  }
  for (; j < n; ++j) out[j] = -(a[j] * b[j]);
}

void AxpyNegNeon(double* y, const double* x, int64_t n, double factor) {
  const float64x2_t vf = vdupq_n_f64(factor);
  int64_t j = 0;
  for (; j + 2 <= n; j += 2) {
    vst1q_f64(y + j, vsubq_f64(vld1q_f64(y + j),
                               vmulq_f64(vf, vld1q_f64(x + j))));
  }
  for (; j < n; ++j) y[j] = y[j] - factor * x[j];
}

}  // namespace

const SimdOps* NeonOpsTable() {
  static const SimdOps table = {
      /*name=*/"neon",
      /*lane_width=*/2,
      GatherDotNeon,
      DotNeon,
      GaussianTransformNeon,
      PolyTransformNeon,
      SigmoidTransformNeon,
      CouplingUpdateNeon,
      AxpyNegNeon,
      MulNegNeon,
  };
  return &table;
}

}  // namespace gmpsvm::simd

#else  // !aarch64

namespace gmpsvm::simd {
const SimdOps* NeonOpsTable() { return nullptr; }
}  // namespace gmpsvm::simd

#endif
