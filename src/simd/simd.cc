#include "simd/simd.h"

#include <atomic>
#include <chrono>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "simd/simd_tiers.h"

namespace gmpsvm::simd {
namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__aarch64__)
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

const SimdOps* TableFor(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return ScalarOpsTable();
    case SimdTier::kAvx2:
      return Avx2OpsTable();
    case SimdTier::kNeon:
      return NeonOpsTable();
    case SimdTier::kAuto:
      break;
  }
  return nullptr;
}

// The process-wide tier. kAuto means "not yet overridden": reads resolve it
// through DetectBestTier() without writing, so an explicit SetActiveTier
// always wins regardless of initialization order.
std::atomic<SimdTier> g_active{SimdTier::kAuto};

struct PathCounters {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> elements{0};
  std::atomic<double> flops{0.0};
  std::atomic<int64_t> nanos{0};
};

PathCounters g_paths[static_cast<int>(SimdPath::kNumPaths)];

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

bool TierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return CpuHasAvx2() && Avx2OpsTable() != nullptr;
    case SimdTier::kNeon:
      return CpuHasNeon() && NeonOpsTable() != nullptr;
  }
  return false;
}

SimdTier DetectBestTier() {
  static const SimdTier best = [] {
    if (TierSupported(SimdTier::kAvx2)) return SimdTier::kAvx2;
    if (TierSupported(SimdTier::kNeon)) return SimdTier::kNeon;
    return SimdTier::kScalar;
  }();
  return best;
}

SimdTier ActiveTier() {
  const SimdTier tier = g_active.load(std::memory_order_relaxed);
  return tier == SimdTier::kAuto ? DetectBestTier() : tier;
}

Status SetActiveTier(SimdTier tier) {
  if (!TierSupported(tier)) {
    return Status::InvalidArgument(
        StrPrintf("simd tier '%s' is not supported on this CPU (detected %s)",
                  TierName(tier), TierName(DetectBestTier())));
  }
  g_active.store(tier, std::memory_order_relaxed);
  return Status::OK();
}

const SimdOps& OpsFor(SimdTier tier) {
  if (tier == SimdTier::kAuto) tier = ActiveTier();
  const SimdOps* table = TableFor(tier);
  return table != nullptr ? *table : *ScalarOpsTable();
}

Result<SimdTier> TierFromString(const std::string& name) {
  if (name == "auto") return SimdTier::kAuto;
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "neon") return SimdTier::kNeon;
  return Status::InvalidArgument(StrPrintf(
      "unknown simd tier '%s' (expected auto|scalar|avx2|neon)", name.c_str()));
}

const char* TierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAuto:
      return "auto";
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
  }
  return "?";
}

std::string DescribeEnvironment() {
#if defined(__x86_64__) || defined(_M_X64)
  const char* isa = "x86-64";
#elif defined(__aarch64__)
  const char* isa = "aarch64";
#else
  const char* isa = "unknown";
#endif
  std::string tiers = "scalar";
  if (TierSupported(SimdTier::kAvx2)) tiers += ",avx2";
  if (TierSupported(SimdTier::kNeon)) tiers += ",neon";
  const SimdOps& ops = OpsFor(SimdTier::kAuto);
  return StrPrintf("isa=%s supported=%s active=%s lanes=%d", isa,
                   tiers.c_str(), ops.name, ops.lane_width);
}

const char* SimdPathName(SimdPath path) {
  switch (path) {
    case SimdPath::kBatchRowDots:
      return "batch_row_dots";
    case SimdPath::kScatterRowDots:
      return "scatter_row_dots";
    case SimdPath::kSpMV:
      return "spmv";
    case SimdPath::kKernelTransform:
      return "kernel_transform";
    case SimdPath::kCoupling:
      return "coupling";
    case SimdPath::kNumPaths:
      break;
  }
  return "?";
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecordPath(SimdPath path, int64_t elements, double flops, int64_t nanos) {
  PathCounters& c = g_paths[static_cast<int>(path)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.elements.fetch_add(elements, std::memory_order_relaxed);
  AtomicAddDouble(&c.flops, flops);
  if (nanos > 0) c.nanos.fetch_add(nanos, std::memory_order_relaxed);
}

void RecordPathNanos(SimdPath path, int64_t nanos) {
  if (nanos > 0) {
    g_paths[static_cast<int>(path)].nanos.fetch_add(nanos,
                                                    std::memory_order_relaxed);
  }
}

PathStatsSnapshot PathStats(SimdPath path) {
  const PathCounters& c = g_paths[static_cast<int>(path)];
  PathStatsSnapshot snap;
  snap.calls = c.calls.load(std::memory_order_relaxed);
  snap.elements = c.elements.load(std::memory_order_relaxed);
  snap.flops = c.flops.load(std::memory_order_relaxed);
  snap.nanos = c.nanos.load(std::memory_order_relaxed);
  return snap;
}

void ResetPathStats() {
  for (PathCounters& c : g_paths) {
    c.calls.store(0, std::memory_order_relaxed);
    c.elements.store(0, std::memory_order_relaxed);
    c.flops.store(0.0, std::memory_order_relaxed);
    c.nanos.store(0, std::memory_order_relaxed);
  }
}

void PublishMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int i = 0; i < static_cast<int>(SimdPath::kNumPaths); ++i) {
    const SimdPath path = static_cast<SimdPath>(i);
    const PathStatsSnapshot snap = PathStats(path);
    const obs::Labels labels = {{"path", SimdPathName(path)}};
    // Counters publish absolute totals idempotently: add only the delta
    // beyond what the registry already holds, so repeated dumps do not
    // double count.
    const struct {
      const char* name;
      const char* help;
      double total;
    } counters[] = {
        {"gmpsvm_simd_calls_total", "Dispatched SIMD-tier ops per hot path",
         static_cast<double>(snap.calls)},
        {"gmpsvm_simd_elements_total",
         "Elements processed by SIMD-tier ops per hot path",
         static_cast<double>(snap.elements)},
        {"gmpsvm_simd_flops_total",
         "Estimated flops executed by SIMD-tier ops per hot path",
         snap.flops},
    };
    for (const auto& def : counters) {
      obs::Counter* counter = registry->GetCounter(def.name, def.help, labels);
      const double delta = def.total - counter->Value();
      if (delta > 0.0) counter->Add(delta);
    }
    // Effective throughput over the timed calls (flops/ns == GFLOP/s). A
    // wall-clock diagnostic, not part of the determinism contract; paths
    // timed only at coarse granularity report 0 until timed ops run.
    registry
        ->GetGauge("gmpsvm_simd_gflops",
                   "Effective GFLOP/s over timed SIMD-tier calls", labels)
        ->Set(snap.nanos > 0 ? snap.flops / static_cast<double>(snap.nanos)
                             : 0.0);
  }
  const SimdOps& ops = OpsFor(SimdTier::kAuto);
  registry
      ->GetGauge("gmpsvm_simd_active_tier",
                 "Active SIMD tier (info gauge; value is always 1)",
                 {{"tier", ops.name}})
      ->Set(1.0);
  registry
      ->GetGauge("gmpsvm_simd_lane_width",
                 "Doubles per vector register of the active SIMD tier")
      ->Set(static_cast<double>(ops.lane_width));
}

}  // namespace gmpsvm::simd
