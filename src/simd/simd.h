// SIMD kernel tier: runtime-dispatched vector implementations of the host
// hot paths (sparse scatter/gather dots, SpMV, kernel-value transforms, the
// coupling fixed-point update) with a bitwise-reproducibility contract.
//
// Determinism contract (docs/performance.md, "SIMD tier"):
//   * Every reduction uses one canonical blocked-tree order with block size
//     8, independent of the executing tier's lane width. For a block of
//     products c0..c7:
//         s_j = c_j + c_{j+4}   (j = 0..3)
//         block = (s0 + s2) + (s1 + s3)
//     and block sums are accumulated left to right into a scalar; the
//     trailing <8 elements are added sequentially. The scalar tier computes
//     this exact tree with explicit temporaries; AVX2 (4-lane) and NEON
//     (2-lane) reach the same tree with vector adds + a fixed horizontal
//     schedule. No fused multiply-add anywhere, in any tier.
//   * Elementwise transforms use the deterministic math in simd_math.h —
//     identical per-lane IEEE op sequences in every tier.
// Consequence: models, executor counters, charges and traces are
// byte-identical across tiers, on top of the existing identity at any
// --host-threads x --devices topology.
//
// Selection: DetectBestTier() probes the CPU once (AVX2 on x86-64, NEON on
// aarch64, scalar otherwise); the process-wide active tier defaults to it
// and can be overridden with SetActiveTier (the `--simd=` tool flag).
// Per-request overrides (PredictOptions::simd, fleet tenant config) resolve
// through OpsFor(tier) without touching the global.

#ifndef GMPSVM_SIMD_SIMD_H_
#define GMPSVM_SIMD_SIMD_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace gmpsvm::obs {
class MetricsRegistry;
}  // namespace gmpsvm::obs

namespace gmpsvm::simd {

enum class SimdTier {
  kAuto = 0,    // resolve to the process-wide active tier
  kScalar = 1,  // portable reference (the canonical arithmetic definition)
  kAvx2 = 2,    // x86-64 AVX2, 4 doubles per vector
  kNeon = 3,    // aarch64 NEON, 2 doubles per vector
};

// Function table for one tier. All routines are pure host computation; the
// caller owns cost accounting. Pointers are always non-null within a
// supported tier's table.
struct SimdOps {
  const char* name = "scalar";
  int lane_width = 1;  // doubles per vector register

  // sum_p vals[p] * dense[idx[p]] in the canonical blocked-tree order.
  double (*gather_dot)(const double* vals, const int32_t* idx, int64_t n,
                       const double* dense) = nullptr;

  // Contiguous sum_p a[p] * b[p], same reduction tree as gather_dot (the
  // two agree bitwise when idx is the identity).
  double (*dot)(const double* a, const double* b, int64_t n) = nullptr;

  // In-place Gaussian transform over one kernel row:
  //   out[j] = Exp(-gamma * ((norm_row + norms[targets[j]]) - 2*out[j]))
  void (*gaussian_transform)(double* out, const double* norms,
                             const int32_t* targets, int64_t n,
                             double norm_row, double gamma) = nullptr;

  // out[j] = PowInt(gamma*out[j] + coef0, degree)
  void (*poly_transform)(double* out, int64_t n, double gamma, double coef0,
                         int degree) = nullptr;

  // out[j] = Tanh(gamma*out[j] + coef0)
  void (*sigmoid_transform)(double* out, int64_t n, double gamma,
                            double coef0) = nullptr;

  // Coupling fixed-point elementwise update (LibSVM iteration). The divide
  // by (1 + diff) is computed as one scalar reciprocal followed by per-lane
  // multiplies — divider throughput does not scale with vector width, so a
  // per-lane divide would cap this op at scalar speed:
  //   inv = 1 / (1 + diff);  qp[j] = (qp[j] + diff*qrow[j]) * inv;
  //   p[j] *= inv
  void (*coupling_update)(double* qp, double* p, const double* qrow,
                          int64_t n, double diff) = nullptr;

  // y[j] -= factor * x[j] (Gaussian-elimination row update).
  void (*axpy_neg)(double* y, const double* x, int64_t n,
                   double factor) = nullptr;

  // out[j] = -(a[j] * b[j]) (coupling Q-matrix off-diagonal row fill).
  void (*mul_neg)(double* out, const double* a, const double* b,
                  int64_t n) = nullptr;
};

// True if `tier` can execute on this CPU (kAuto and kScalar always can).
bool TierSupported(SimdTier tier);

// Best tier this CPU supports (never kAuto; probed once, then cached).
SimdTier DetectBestTier();

// Process-wide active tier, resolved (never kAuto). Defaults to
// DetectBestTier() on first use.
SimdTier ActiveTier();

// Overrides the active tier; kAuto restores hardware detection.
// kInvalidArgument if the CPU cannot execute `tier`.
Status SetActiveTier(SimdTier tier);

// The ops table for `tier`; kAuto resolves through ActiveTier(). The
// returned reference has static storage duration. Requesting an unsupported
// tier falls back to scalar (callers that must reject instead use
// TierSupported / SetActiveTier, which validate).
const SimdOps& OpsFor(SimdTier tier);

// Flag-value parsing: "auto", "scalar", "avx2", "neon".
Result<SimdTier> TierFromString(const std::string& name);
const char* TierName(SimdTier tier);

// Short human-readable CPU/tier description for `svm_tool bench-env` and
// bench JSON attribution, e.g. "isa=x86-64(avx2) active=avx2 lanes=4".
std::string DescribeEnvironment();

// ---------------------------------------------------------------------------
// Per-path dispatch accounting. The five instrumented paths:
enum class SimdPath {
  kBatchRowDots = 0,   // batched scatter-dot kernel rows (SpMM)
  kScatterRowDots,     // lazy cascade kernel rows
  kSpMV,               // selected-row sparse matrix-vector product
  kKernelTransform,    // RBF/poly/sigmoid elementwise transforms
  kCoupling,           // pairwise-coupling solves
  kNumPaths,
};

const char* SimdPathName(SimdPath path);

// Monotonic wall-clock nanoseconds (steady_clock) for the nanos argument of
// RecordPath.
int64_t NowNanos();

// Records one dispatched op: element count, flop estimate, and (optionally)
// wall nanoseconds. Wall time is only recorded at coarse call granularity
// (whole batched ops); fine-grained paths pass 0 and publish counters only.
// Thread-safe (relaxed atomics); counter values are deterministic, the
// nanosecond totals are wall-clock diagnostics.
void RecordPath(SimdPath path, int64_t elements, double flops,
                int64_t nanos = 0);

// Adds wall time to a path without counting a call — for wrappers (e.g. the
// batched coupling entry point) timing work whose per-item counters were
// already recorded by an inner routine.
void RecordPathNanos(SimdPath path, int64_t nanos);

struct PathStatsSnapshot {
  int64_t calls = 0;
  int64_t elements = 0;
  double flops = 0.0;
  int64_t nanos = 0;
};
PathStatsSnapshot PathStats(SimdPath path);

// Resets all path counters (tests and benches).
void ResetPathStats();

// Publishes the per-path counters and effective-GFLOP/s gauges into
// `registry` under gmpsvm_simd_*, plus a gmpsvm_simd_active_tier info
// gauge. Counters are published as absolute totals (call once per dump).
void PublishMetrics(obs::MetricsRegistry* registry);

}  // namespace gmpsvm::simd

#endif  // GMPSVM_SIMD_SIMD_H_
