// Scalar reference tier: the canonical arithmetic definition every vector
// tier must reproduce bit for bit. Reductions spell out the blocked-tree
// order (block 8) with explicit temporaries so the compiler cannot
// re-associate them, and transforms call the deterministic math in
// simd_math.h. Compiled with -ffp-contract=off (src/CMakeLists.txt) so no
// silent fma can diverge from a tier that has none.

#include "simd/simd_math.h"
#include "simd/simd_tiers.h"

namespace gmpsvm::simd {
namespace {

// One canonical 8-product block: s_j = c_j + c_{j+4}, then
// (s0 + s2) + (s1 + s3). Matches one AVX2 lo+hi vector add followed by the
// fixed horizontal schedule, and the NEON pairwise equivalent.
inline double BlockTree(const double c[8]) {
  const double s0 = c[0] + c[4];
  const double s1 = c[1] + c[5];
  const double s2 = c[2] + c[6];
  const double s3 = c[3] + c[7];
  return (s0 + s2) + (s1 + s3);
}

double GatherDotScalar(const double* vals, const int32_t* idx, int64_t n,
                       const double* dense) {
  double acc = 0.0;
  int64_t p = 0;
  double c[8];
  for (; p + 8 <= n; p += 8) {
    for (int j = 0; j < 8; ++j) c[j] = vals[p + j] * dense[idx[p + j]];
    acc += BlockTree(c);
  }
  for (; p < n; ++p) acc += vals[p] * dense[idx[p]];
  return acc;
}

double DotScalar(const double* a, const double* b, int64_t n) {
  double acc = 0.0;
  int64_t p = 0;
  double c[8];
  for (; p + 8 <= n; p += 8) {
    for (int j = 0; j < 8; ++j) c[j] = a[p + j] * b[p + j];
    acc += BlockTree(c);
  }
  for (; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

void GaussianTransformScalar(double* out, const double* norms,
                             const int32_t* targets, int64_t n,
                             double norm_row, double gamma) {
  for (int64_t j = 0; j < n; ++j) {
    out[j] = GaussianFromDot(out[j], norm_row, norms[targets[j]], gamma);
  }
}

void PolyTransformScalar(double* out, int64_t n, double gamma, double coef0,
                         int degree) {
  for (int64_t j = 0; j < n; ++j) {
    out[j] = PolynomialFromDot(out[j], gamma, coef0, degree);
  }
}

void SigmoidTransformScalar(double* out, int64_t n, double gamma,
                            double coef0) {
  for (int64_t j = 0; j < n; ++j) {
    out[j] = SigmoidFromDot(out[j], gamma, coef0);
  }
}

void CouplingUpdateScalar(double* qp, double* p, const double* qrow, int64_t n,
                          double diff) {
  const double inv = 1.0 / (1.0 + diff);
  for (int64_t j = 0; j < n; ++j) {
    qp[j] = (qp[j] + diff * qrow[j]) * inv;
    p[j] = p[j] * inv;
  }
}

void AxpyNegScalar(double* y, const double* x, int64_t n, double factor) {
  for (int64_t j = 0; j < n; ++j) y[j] = y[j] - factor * x[j];
}

void MulNegScalar(double* out, const double* a, const double* b, int64_t n) {
  for (int64_t j = 0; j < n; ++j) out[j] = -(a[j] * b[j]);
}

}  // namespace

const SimdOps* ScalarOpsTable() {
  static const SimdOps table = {
      /*name=*/"scalar",
      /*lane_width=*/1,
      GatherDotScalar,
      DotScalar,
      GaussianTransformScalar,
      PolyTransformScalar,
      SigmoidTransformScalar,
      CouplingUpdateScalar,
      AxpyNegScalar,
      MulNegScalar,
  };
  return &table;
}

}  // namespace gmpsvm::simd
