// AVX2 tier (4 doubles per register). Compiled with -mavx2 -ffp-contract=off
// on x86-64 only (src/CMakeLists.txt); on other architectures this TU
// provides the nullptr table.
//
// Every routine reproduces the scalar tier bit for bit:
//   * reductions execute the canonical block-8 tree — c_lo/c_hi vector
//     multiply, one vector add (s_j = c_j + c_{j+4}), then the fixed
//     horizontal schedule (s0+s2) + (s1+s3) — with <8-element tails summed
//     sequentially in scalar code;
//   * transforms mirror simd_math.h operation by operation per lane (see
//     the ExpVec comment trail against simd::Exp);
//   * no FMA intrinsics anywhere, matching the contract in simd.h.

#include "simd/simd_tiers.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <limits>

#include "simd/simd_math.h"

namespace gmpsvm::simd {
namespace {

// 2^e per lane for int32 exponents with |e + 1023| fitting the exponent
// field (guaranteed by ExpVec's clamping): widen to int64, bias, shift into
// the exponent bits. Mirrors simd::Pow2.
inline __m256d Pow2Vec(__m128i e32) {
  const __m256i e64 = _mm256_cvtepi32_epi64(e32);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(e64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_castsi256_pd(bits);
}

// Vector twin of simd::Exp — identical IEEE op sequence per lane.
inline __m256d ExpVec(__m256d x) {
  const __m256d lo = _mm256_set1_pd(kExpLo);
  const __m256d hi = _mm256_set1_pd(kExpHi);
  const __m256d xc = _mm256_min_pd(_mm256_max_pd(x, lo), hi);

  const __m256d nf = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(xc, _mm256_set1_pd(kLog2E)), _mm256_set1_pd(0.5)));
  __m256d r = _mm256_sub_pd(xc, _mm256_mul_pd(nf, _mm256_set1_pd(kLn2Hi)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(nf, _mm256_set1_pd(kLn2Lo)));

  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d p = _mm256_mul_pd(
      _mm256_add_pd(
          _mm256_mul_pd(
              _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), r2),
                            _mm256_set1_pd(kExpP1)),
              r2),
          _mm256_set1_pd(kExpP2)),
      r);
  const __m256d q = _mm256_add_pd(
      _mm256_mul_pd(
          _mm256_add_pd(
              _mm256_mul_pd(
                  _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), r2),
                                _mm256_set1_pd(kExpQ1)),
                  r2),
              _mm256_set1_pd(kExpQ2)),
          r2),
      _mm256_set1_pd(kExpQ3));
  const __m256d core = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0),
                    _mm256_div_pd(p, _mm256_sub_pd(q, p))));

  // nf is integral and within int32 range after clamping, so the
  // round-to-nearest cvt is exact. n1 = n >> 1 (arithmetic), n2 = n - n1.
  const __m128i n32 = _mm256_cvtpd_epi32(nf);
  const __m128i n1 = _mm_srai_epi32(n32, 1);
  const __m128i n2 = _mm_sub_epi32(n32, n1);
  __m256d scaled =
      _mm256_mul_pd(_mm256_mul_pd(core, Pow2Vec(n1)), Pow2Vec(n2));

  const __m256d inf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  scaled = _mm256_blendv_pd(scaled, inf, _mm256_cmp_pd(x, hi, _CMP_GT_OQ));
  scaled = _mm256_blendv_pd(scaled, _mm256_setzero_pd(),
                            _mm256_cmp_pd(x, lo, _CMP_LT_OQ));
  return scaled;
}

// Vector twin of simd::Tanh. t = 1 - 2/(e^{2|x|}+1) is always >= +0, so
// copysign reduces to OR-ing x's sign bit back in.
inline __m256d TanhVec(__m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d ax = _mm256_andnot_pd(sign_mask, x);
  const __m256d e = ExpVec(_mm256_mul_pd(_mm256_set1_pd(2.0), ax));
  const __m256d t = _mm256_sub_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_set1_pd(2.0),
                    _mm256_add_pd(e, _mm256_set1_pd(1.0))));
  return _mm256_or_pd(t, _mm256_and_pd(sign_mask, x));
}

// [dense[idx[0]], ..., dense[idx[3]]] via four scalar loads. Measured faster
// than _mm256_i32gather_pd on every tested part — hardware gathers are
// microcoded on many server cores (and penalized further by the Downfall
// mitigation) — and bit-identical by construction: a load is a load.
inline __m256d Gather4(const double* dense, const int32_t* idx) {
  return _mm256_set_pd(dense[idx[3]], dense[idx[2]], dense[idx[1]],
                       dense[idx[0]]);
}

// (s0+s2) + (s1+s3) for s = [s0,s1,s2,s3] — the canonical horizontal tail
// of the block-8 tree.
inline double HorizontalTree(__m256d s) {
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d u = _mm_add_pd(lo, hi);  // [s0+s2, s1+s3]
  return _mm_cvtsd_f64(_mm_add_sd(u, _mm_unpackhi_pd(u, u)));
}

double GatherDotAvx2(const double* vals, const int32_t* idx, int64_t n,
                     const double* dense) {
  double acc = 0.0;
  int64_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m256d c_lo = _mm256_mul_pd(_mm256_loadu_pd(vals + p),
                                       Gather4(dense, idx + p));
    const __m256d c_hi = _mm256_mul_pd(_mm256_loadu_pd(vals + p + 4),
                                       Gather4(dense, idx + p + 4));
    acc += HorizontalTree(_mm256_add_pd(c_lo, c_hi));
  }
  for (; p < n; ++p) acc += vals[p] * dense[idx[p]];
  return acc;
}

double DotAvx2(const double* a, const double* b, int64_t n) {
  double acc = 0.0;
  int64_t p = 0;
  for (; p + 8 <= n; p += 8) {
    const __m256d c_lo =
        _mm256_mul_pd(_mm256_loadu_pd(a + p), _mm256_loadu_pd(b + p));
    const __m256d c_hi =
        _mm256_mul_pd(_mm256_loadu_pd(a + p + 4), _mm256_loadu_pd(b + p + 4));
    acc += HorizontalTree(_mm256_add_pd(c_lo, c_hi));
  }
  for (; p < n; ++p) acc += a[p] * b[p];
  return acc;
}

void GaussianTransformAvx2(double* out, const double* norms,
                           const int32_t* targets, int64_t n, double norm_row,
                           double gamma) {
  const __m256d vnr = _mm256_set1_pd(norm_row);
  const __m256d vtwo = _mm256_set1_pd(2.0);
  const __m256d vng = _mm256_set1_pd(-gamma);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d nj = Gather4(norms, targets + j);
    const __m256d dot = _mm256_loadu_pd(out + j);
    const __m256d arg =
        _mm256_sub_pd(_mm256_add_pd(vnr, nj), _mm256_mul_pd(vtwo, dot));
    _mm256_storeu_pd(out + j, ExpVec(_mm256_mul_pd(vng, arg)));
  }
  for (; j < n; ++j) {
    out[j] = GaussianFromDot(out[j], norm_row, norms[targets[j]], gamma);
  }
}

void PolyTransformAvx2(double* out, int64_t n, double gamma, double coef0,
                       int degree) {
  const __m256d vg = _mm256_set1_pd(gamma);
  const __m256d vc0 = _mm256_set1_pd(coef0);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d base = _mm256_add_pd(
        _mm256_mul_pd(vg, _mm256_loadu_pd(out + j)), vc0);
    // Repeated squaring, same multiply sequence as simd::PowInt (degree is
    // uniform across the row).
    __m256d result = _mm256_set1_pd(1.0);
    if (degree > 0) {
      __m256d b = base;
      int e = degree;
      while (true) {
        if ((e & 1) != 0) result = _mm256_mul_pd(result, b);
        e >>= 1;
        if (e == 0) break;
        b = _mm256_mul_pd(b, b);
      }
    }
    _mm256_storeu_pd(out + j, result);
  }
  for (; j < n; ++j) out[j] = PolynomialFromDot(out[j], gamma, coef0, degree);
}

void SigmoidTransformAvx2(double* out, int64_t n, double gamma, double coef0) {
  const __m256d vg = _mm256_set1_pd(gamma);
  const __m256d vc0 = _mm256_set1_pd(coef0);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d t =
        _mm256_add_pd(_mm256_mul_pd(vg, _mm256_loadu_pd(out + j)), vc0);
    _mm256_storeu_pd(out + j, TanhVec(t));
  }
  for (; j < n; ++j) out[j] = SigmoidFromDot(out[j], gamma, coef0);
}

void CouplingUpdateAvx2(double* qp, double* p, const double* qrow, int64_t n,
                        double diff) {
  const double inv = 1.0 / (1.0 + diff);
  const __m256d vd = _mm256_set1_pd(diff);
  const __m256d vinv = _mm256_set1_pd(inv);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d nqp = _mm256_mul_pd(
        _mm256_add_pd(_mm256_loadu_pd(qp + j),
                      _mm256_mul_pd(vd, _mm256_loadu_pd(qrow + j))),
        vinv);
    _mm256_storeu_pd(qp + j, nqp);
    _mm256_storeu_pd(p + j, _mm256_mul_pd(_mm256_loadu_pd(p + j), vinv));
  }
  for (; j < n; ++j) {
    qp[j] = (qp[j] + diff * qrow[j]) * inv;
    p[j] = p[j] * inv;
  }
}

void MulNegAvx2(double* out, const double* a, const double* b, int64_t n) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j));
    _mm256_storeu_pd(out + j, _mm256_xor_pd(prod, sign_mask));
  }
  for (; j < n; ++j) out[j] = -(a[j] * b[j]);
}

void AxpyNegAvx2(double* y, const double* x, int64_t n, double factor) {
  const __m256d vf = _mm256_set1_pd(factor);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_sub_pd(_mm256_loadu_pd(y + j),
                             _mm256_mul_pd(vf, _mm256_loadu_pd(x + j))));
  }
  for (; j < n; ++j) y[j] = y[j] - factor * x[j];
}

}  // namespace

const SimdOps* Avx2OpsTable() {
  static const SimdOps table = {
      /*name=*/"avx2",
      /*lane_width=*/4,
      GatherDotAvx2,
      DotAvx2,
      GaussianTransformAvx2,
      PolyTransformAvx2,
      SigmoidTransformAvx2,
      CouplingUpdateAvx2,
      AxpyNegAvx2,
      MulNegAvx2,
  };
  return &table;
}

}  // namespace gmpsvm::simd

#else  // !x86-64

namespace gmpsvm::simd {
const SimdOps* Avx2OpsTable() { return nullptr; }
}  // namespace gmpsvm::simd

#endif
