#include "cluster/pair_scheduler.h"

#include <algorithm>
#include <limits>
#include <set>

namespace gmpsvm::cluster {

double EstimatePairCost(const Dataset& dataset, int s, int t) {
  const double n = static_cast<double>(dataset.ClassRows(s).size() +
                                       dataset.ClassRows(t).size());
  return n * n * (static_cast<double>(dataset.dim()) + 16.0);
}

PairAssignment SchedulePairs(const Dataset& dataset,
                             const std::vector<size_t>& pair_indices,
                             const std::vector<double>& device_speeds,
                             std::vector<double> initial_load,
                             const ScheduleOptions& options) {
  const size_t n_devices = device_speeds.size();
  PairAssignment out;
  out.device_pairs.resize(n_devices);
  out.device_load = std::move(initial_load);
  out.device_load.resize(n_devices, 0.0);
  if (n_devices == 0 || pair_indices.empty()) return out;

  const std::vector<std::pair<int, int>> pairs = dataset.ClassPairs();

  struct Ranked {
    size_t pair;
    double cost;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(pair_indices.size());
  for (size_t p : pair_indices) {
    ranked.push_back(
        {p, EstimatePairCost(dataset, pairs[p].first, pairs[p].second)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.pair < b.pair;
  });

  // Classes whose kernel blocks each device would hold given the pairs
  // assigned so far.
  std::vector<std::set<int>> resident(n_devices);

  for (const Ranked& r : ranked) {
    const int s = pairs[r.pair].first;
    const int t = pairs[r.pair].second;
    size_t best = 0;
    double best_load = std::numeric_limits<double>::infinity();
    for (size_t d = 0; d < n_devices; ++d) {
      const double speed = device_speeds[d] > 0.0 ? device_speeds[d] : 1.0;
      const int shared = static_cast<int>(resident[d].count(s)) +
                         static_cast<int>(resident[d].count(t));
      const double effective =
          r.cost * (1.0 - options.affinity_discount * shared);
      const double load = out.device_load[d] + effective / speed;
      // Strict < keeps ties on the lowest device index.
      if (load < best_load) {
        best_load = load;
        best = d;
      }
    }
    out.device_pairs[best].push_back(r.pair);
    out.device_load[best] = best_load;
    resident[best].insert(s);
    resident[best].insert(t);
  }

  for (std::vector<size_t>& list : out.device_pairs) {
    std::sort(list.begin(), list.end());
  }
  return out;
}

}  // namespace gmpsvm::cluster
