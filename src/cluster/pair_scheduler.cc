#include "cluster/pair_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace gmpsvm::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Crude merge-volume model for the shard decision: the distributed solver
// performs a handful of small allreduces per outer round, and outer rounds
// scale with the pair's row count over the working-set drain rate. The
// constants only steer the whole-vs-sharded choice; actual merge time is
// charged exactly by dist::DistSmoSolver.
constexpr double kRowsPerMergeRound = 256.0;
constexpr double kMergePayloadBytes = 32.0 * 1024.0;

double SpeedOf(const std::vector<double>& speeds, size_t d) {
  return speeds[d] > 0.0 ? speeds[d] : 1.0;
}

// Estimated seconds of allreduce traffic for one sharded solve of an n-row
// pair across `devices` under `topology`.
double EstimateMergeSeconds(const dist::ClusterTopology& topology,
                            const std::vector<int>& devices, double n_rows) {
  const double rounds = std::ceil(n_rows / kRowsPerMergeRound);
  const dist::AllreduceCost cost = dist::EstimateAllreduce(
      topology, devices, static_cast<int64_t>(kMergePayloadBytes));
  return rounds * cost.seconds;
}

}  // namespace

double EstimatePairCost(const Dataset& dataset, int s, int t) {
  const double n = static_cast<double>(dataset.ClassRows(s).size() +
                                       dataset.ClassRows(t).size());
  return n * n * (static_cast<double>(dataset.dim()) + 16.0);
}

PairAssignment SchedulePairs(const Dataset& dataset,
                             const std::vector<size_t>& pair_indices,
                             const std::vector<double>& device_speeds,
                             std::vector<double> initial_load,
                             const ScheduleOptions& options) {
  const size_t n_devices = device_speeds.size();
  PairAssignment out;
  out.device_pairs.resize(n_devices);
  out.device_load = std::move(initial_load);
  out.device_load.resize(n_devices, 0.0);
  if (n_devices == 0 || pair_indices.empty()) return out;

  const std::vector<std::pair<int, int>> pairs = dataset.ClassPairs();

  struct Ranked {
    size_t pair;
    double cost;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(pair_indices.size());
  for (size_t p : pair_indices) {
    ranked.push_back(
        {p, EstimatePairCost(dataset, pairs[p].first, pairs[p].second)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.pair < b.pair;
  });

  // Classes whose kernel blocks each device would hold given the pairs
  // assigned so far.
  std::vector<std::set<int>> resident(n_devices);

  // Devices eligible for new work (a +inf initial load marks a lost device).
  std::vector<size_t> usable;
  for (size_t d = 0; d < n_devices; ++d) {
    if (out.device_load[d] != kInf) usable.push_back(d);
  }

  // Oversize threshold: cost on the fastest usable device vs the perfectly
  // balanced mean load.
  double total_cost = 0.0;
  for (const Ranked& r : ranked) total_cost += r.cost;
  double total_speed = 0.0;
  double max_speed = 1.0;
  for (size_t d : usable) {
    total_speed += SpeedOf(device_speeds, d);
    max_speed = std::max(max_speed, SpeedOf(device_speeds, d));
  }
  const double mean_load = total_speed > 0.0 ? total_cost / total_speed : 0.0;

  const bool may_shard = options.max_shards_per_pair > 1 &&
                         options.topology != nullptr && usable.size() >= 2 &&
                         options.topology->num_devices() >=
                             static_cast<int>(n_devices);

  // Picks the `count` least-loaded devices from `from` (ties on the lowest
  // index; `from` is ascending, so a stable sort by load suffices).
  const auto least_loaded = [&](const std::vector<size_t>& from, size_t count) {
    std::vector<size_t> group = from;
    std::stable_sort(group.begin(), group.end(), [&](size_t a, size_t b) {
      return out.device_load[a] < out.device_load[b];
    });
    group.resize(count);
    return group;
  };

  for (const Ranked& r : ranked) {
    const int s = pairs[r.pair].first;
    const int t = pairs[r.pair].second;

    // Whole-pair LPT placement candidate.
    size_t best = 0;
    double best_load = kInf;
    for (size_t d = 0; d < n_devices; ++d) {
      const double speed = SpeedOf(device_speeds, d);
      const int shared = static_cast<int>(resident[d].count(s)) +
                         static_cast<int>(resident[d].count(t));
      const double effective =
          r.cost * (1.0 - options.affinity_discount * shared);
      const double load = out.device_load[d] + effective / speed;
      // Strict < keeps ties on the lowest device index.
      if (load < best_load) {
        best_load = load;
        best = d;
      }
    }

    // Intra-pair sharding candidate, when the pair is oversized: the
    // globally least-loaded S usable devices, and the least-loaded S inside
    // each node that has that many — whichever group's makespan contribution
    // (max member load + merge estimate) is lowest. Whole-pair placement
    // still wins unless the sharded score beats it strictly.
    const double n_rows = static_cast<double>(dataset.ClassRows(s).size() +
                                              dataset.ClassRows(t).size());
    const bool oversized =
        r.cost / max_speed > options.shard_oversize_factor * mean_load;
    if (may_shard && oversized && n_rows >= 2.0) {
      const size_t want = std::min<size_t>(
          {static_cast<size_t>(options.max_shards_per_pair), usable.size(),
           static_cast<size_t>(n_rows)});
      std::vector<std::vector<size_t>> candidates;
      candidates.push_back(least_loaded(usable, want));
      for (const dist::SimNode& node : options.topology->Nodes()) {
        std::vector<size_t> on_node;
        for (int d : node.devices) {
          const size_t ds = static_cast<size_t>(d);
          if (ds < n_devices && out.device_load[ds] != kInf) {
            on_node.push_back(ds);
          }
        }
        if (on_node.size() >= want) {
          candidates.push_back(least_loaded(on_node, want));
        }
      }

      std::vector<size_t> best_group;
      double best_score = kInf;
      double best_merge = 0.0;
      for (const std::vector<size_t>& group : candidates) {
        std::vector<int> group_devices(group.begin(), group.end());
        const double merge =
            EstimateMergeSeconds(*options.topology, group_devices, n_rows);
        double score = 0.0;
        for (size_t d : group) {
          const double slice =
              r.cost / static_cast<double>(group.size()) /
              SpeedOf(device_speeds, d);
          score = std::max(score, out.device_load[d] + slice + merge);
        }
        // Strict < keeps ties on the earlier candidate (global group first,
        // then nodes in index order).
        if (score < best_score) {
          best_score = score;
          best_group = group;
          best_merge = merge;
        }
      }

      // factor == 0 forces the shard decision (the oversize test already
      // passed trivially); otherwise sharding must beat whole placement.
      const bool forced = options.shard_oversize_factor == 0.0;
      if ((best_score < best_load || forced) && !best_group.empty()) {
        ShardedPair sp;
        sp.pair = r.pair;
        for (size_t d : best_group) {
          sp.devices.push_back(static_cast<int>(d));
          out.device_load[d] +=
              r.cost / static_cast<double>(best_group.size()) /
                  SpeedOf(device_speeds, d) +
              best_merge;
          resident[d].insert(s);
          resident[d].insert(t);
        }
        out.sharded_pairs.push_back(std::move(sp));
        continue;
      }
    }

    out.device_pairs[best].push_back(r.pair);
    out.device_load[best] = best_load;
    resident[best].insert(s);
    resident[best].insert(t);
  }

  for (std::vector<size_t>& list : out.device_pairs) {
    std::sort(list.begin(), list.end());
  }
  std::sort(out.sharded_pairs.begin(), out.sharded_pairs.end(),
            [](const ShardedPair& a, const ShardedPair& b) {
              return a.pair < b.pair;
            });
  return out;
}

}  // namespace gmpsvm::cluster
