#include "cluster/cluster_predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stopwatch.h"

namespace gmpsvm::cluster {

std::vector<int64_t> ShardRows(int64_t num_rows,
                               const std::vector<double>& device_speeds) {
  const size_t n_devices = device_speeds.size();
  std::vector<int64_t> bounds(n_devices + 1, 0);
  if (n_devices == 0) return bounds;
  double total = 0.0;
  for (double s : device_speeds) total += s > 0.0 ? s : 1.0;
  double cumulative = 0.0;
  for (size_t d = 0; d < n_devices; ++d) {
    cumulative += device_speeds[d] > 0.0 ? device_speeds[d] : 1.0;
    bounds[d + 1] = static_cast<int64_t>(
        std::llround(static_cast<double>(num_rows) * cumulative / total));
    // Rounding of a non-decreasing sequence is non-decreasing, but guard
    // against pathological speed ratios anyway.
    bounds[d + 1] = std::clamp(bounds[d + 1], bounds[d], num_rows);
  }
  bounds[n_devices] = num_rows;
  return bounds;
}

Result<PredictResult> ClusterPredict(const MpSvmModel& model,
                                     const CsrMatrix& test,
                                     SimCluster* cluster,
                                     const PredictOptions& options,
                                     ClusterPredictReport* report) {
  if (cluster == nullptr || cluster->num_devices() < 1) {
    return Status::InvalidArgument("cluster must have at least one device");
  }
  Stopwatch wall;
  const int n_devices = cluster->num_devices();
  const std::vector<int64_t> bounds = ShardRows(test.rows(), cluster->speeds());

  MpSvmPredictor predictor(&model);
  PredictResult merged;
  merged.num_instances = test.rows();
  merged.num_classes = model.num_classes;
  merged.probabilities.reserve(static_cast<size_t>(test.rows()) *
                               static_cast<size_t>(model.num_classes));
  merged.labels.reserve(static_cast<size_t>(test.rows()));
  if (report != nullptr) {
    report->device_rows.assign(static_cast<size_t>(n_devices), 0);
    report->device_sim_seconds.assign(static_cast<size_t>(n_devices), 0.0);
  }

  // Devices run serially in index order (each device's simulated clock is
  // independent, so the makespan is unaffected), and chunks are contiguous,
  // so concatenation preserves row order.
  double makespan = 0.0;
  for (int d = 0; d < n_devices; ++d) {
    const int64_t begin = bounds[static_cast<size_t>(d)];
    const int64_t end = bounds[static_cast<size_t>(d) + 1];
    if (report != nullptr) report->device_rows[static_cast<size_t>(d)] = end - begin;
    if (begin == end) continue;
    std::vector<int32_t> rows(static_cast<size_t>(end - begin));
    std::iota(rows.begin(), rows.end(), static_cast<int32_t>(begin));
    const CsrMatrix chunk = test.SelectRows(rows);
    GMP_ASSIGN_OR_RETURN(PredictResult part,
                         predictor.Predict(chunk, cluster->device(d), options));
    merged.probabilities.insert(merged.probabilities.end(),
                                part.probabilities.begin(),
                                part.probabilities.end());
    merged.labels.insert(merged.labels.end(), part.labels.begin(),
                         part.labels.end());
    merged.phases.Merge(part.phases);
    merged.cascade_rows += part.cascade_rows;
    merged.cascade_fallback_rows += part.cascade_fallback_rows;
    merged.cascade_pairs_evaluated += part.cascade_pairs_evaluated;
    merged.cascade_classes_eliminated += part.cascade_classes_eliminated;
    makespan = std::max(makespan, part.sim_seconds);
    if (report != nullptr) {
      report->device_sim_seconds[static_cast<size_t>(d)] = part.sim_seconds;
    }
  }
  merged.sim_seconds = makespan;
  merged.wall_seconds = wall.ElapsedSeconds();
  return merged;
}

}  // namespace gmpsvm::cluster
