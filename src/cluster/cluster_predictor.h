// Sharded batch prediction across cluster devices.
//
// Prediction rows are independent (MpSvmPredictor::PredictRows' bit-identity
// guarantee), so the cluster path simply splits the test matrix into
// contiguous row chunks sized by relative device speed, predicts each chunk
// on its device, and concatenates the per-row outputs. Probabilities and
// labels are bit-identical to a single-device Predict over the same rows;
// the simulated cost becomes a makespan — the max over the per-device chunk
// times — instead of one device's total.

#ifndef GMPSVM_CLUSTER_CLUSTER_PREDICTOR_H_
#define GMPSVM_CLUSTER_CLUSTER_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "core/model.h"
#include "core/predictor.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm::cluster {

struct ClusterPredictReport {
  // Per device: rows predicted and simulated seconds for its chunk.
  std::vector<int64_t> device_rows;
  std::vector<double> device_sim_seconds;
};

// Row boundaries of the per-device chunks: device d predicts rows
// [bounds[d], bounds[d+1]). Chunk sizes are proportional to device speeds
// (cumulative rounding), so faster devices take more rows and the
// per-device simulated times stay balanced. Deterministic.
std::vector<int64_t> ShardRows(int64_t num_rows,
                               const std::vector<double>& device_speeds);

// Predicts every row of `test` across the cluster. The returned
// PredictResult matches a single-device Predict bit-for-bit in
// probabilities/labels; sim_seconds is the cluster makespan and phases are
// merged across devices. `report` may be null.
Result<PredictResult> ClusterPredict(const MpSvmModel& model,
                                     const CsrMatrix& test,
                                     SimCluster* cluster,
                                     const PredictOptions& options,
                                     ClusterPredictReport* report = nullptr);

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_CLUSTER_PREDICTOR_H_
