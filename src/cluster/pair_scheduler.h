// Cost-model-aware scheduling of binary-SVM pair problems onto cluster
// devices.
//
// The k(k-1)/2 pairwise problems are independent (Section 3.3.2 caps SMs per
// pair on ONE device; the cluster layer instead spreads whole pairs across
// devices). Pair cost is estimated from the class sizes — kernel work is
// quadratic in the pair's row count — and pairs are placed LPT-style
// (longest processing time first) onto the device with the lowest resulting
// normalized load. Devices that already hold one of a pair's class blocks get
// an affinity discount: co-located pairs sharing a class turn kernel-block
// recomputation into reuse through the device's shared block cache
// (Figure 3), so the scheduler prefers keeping a class's pairs together when
// it does not hurt balance.
//
// Oversized pairs can instead be SHARDED across several devices: their
// instances split into contiguous ranges solved by dist::DistSmoSolver. The
// scheduler decides between whole-pair placement and intra-pair sharding by
// comparing the LPT placement's load against the sharded group's per-member
// load plus an allreduce merge estimate priced under the node topology's
// link model — a pair only shards when the network cost model says the
// split wins, and shard groups prefer staying inside one node when the
// intra-node link makes that cheaper.
//
// The schedule affects only WHERE a pair trains, never its solution: pair
// solutions are schedule-invariant whole or sharded (see mp_trainer.h and
// dist/dist_solver.h), so any assignment yields the same model. Everything
// here is deterministic — ties break on the lowest pair index / device index.

#ifndef GMPSVM_CLUSTER_PAIR_SCHEDULER_H_
#define GMPSVM_CLUSTER_PAIR_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "dist/topology.h"

namespace gmpsvm::cluster {

struct ScheduleOptions {
  // Per resident class shared with the candidate device, the pair's cost is
  // discounted by this fraction when ranking devices (0 disables affinity;
  // a pair can share at most its two classes).
  double affinity_discount = 0.15;

  // Maximum devices an oversized pair's instances may be sharded across.
  // 1 disables intra-pair sharding (the default); sharding also requires
  // `topology` so merges can be priced.
  int max_shards_per_pair = 1;

  // A pair is "oversized" when its cost on the fastest usable device exceeds
  // this factor times the perfectly-balanced mean load. Oversized pairs
  // shard only when the modeled sharded makespan beats whole placement —
  // except at 0, which FORCES every pair onto the sharded path regardless of
  // the cost comparison (for tests and experiments).
  double shard_oversize_factor = 2.0;

  // Node topology used to price shard-merge allreduces. Must cover at least
  // device_speeds.size() devices and outlive the call. When null, sharding
  // is disabled regardless of max_shards_per_pair.
  const dist::ClusterTopology* topology = nullptr;
};

// Estimated relative cost of training pair (s, t): quadratic in the pair's
// row count, linear in the feature dimension (plus a constant term for the
// per-row work that does not scale with dim).
double EstimatePairCost(const Dataset& dataset, int s, int t);

// A pair whose instances are sharded across `devices` (coordinator first,
// then the remaining shard owners; order is the shard order).
struct ShardedPair {
  size_t pair = 0;
  std::vector<int> devices;
};

struct PairAssignment {
  // Per device, the assigned whole-pair indices (into dataset.ClassPairs()),
  // sorted ascending — each device trains its pairs in global pair order.
  std::vector<std::vector<size_t>> device_pairs;

  // Per device, the estimated load in cost units normalized by device speed
  // (including any initial load passed in, and shard slices of sharded
  // pairs plus their merge estimates).
  std::vector<double> device_load;

  // Pairs placed as instance shards instead of whole (sorted by pair index).
  // Empty unless ScheduleOptions enables sharding.
  std::vector<ShardedPair> sharded_pairs;
};

// Assigns `pair_indices` to devices. `device_speeds` are relative
// throughputs (e.g. compute_units * flops_per_unit); non-positive entries
// are treated as 1. `initial_load` (resized with zeros if shorter than the
// device count) lets a rescheduling pass account for work devices already
// carry — pass +infinity for a device that must not receive new work (a lost
// one). Deterministic for fixed inputs.
PairAssignment SchedulePairs(const Dataset& dataset,
                             const std::vector<size_t>& pair_indices,
                             const std::vector<double>& device_speeds,
                             std::vector<double> initial_load = {},
                             const ScheduleOptions& options = {});

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_PAIR_SCHEDULER_H_
