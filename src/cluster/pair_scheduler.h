// Cost-model-aware scheduling of binary-SVM pair problems onto cluster
// devices.
//
// The k(k-1)/2 pairwise problems are independent (Section 3.3.2 caps SMs per
// pair on ONE device; the cluster layer instead spreads whole pairs across
// devices). Pair cost is estimated from the class sizes — kernel work is
// quadratic in the pair's row count — and pairs are placed LPT-style
// (longest processing time first) onto the device with the lowest resulting
// normalized load. Devices that already hold one of a pair's class blocks get
// an affinity discount: co-located pairs sharing a class turn kernel-block
// recomputation into reuse through the device's shared block cache
// (Figure 3), so the scheduler prefers keeping a class's pairs together when
// it does not hurt balance.
//
// The schedule affects only WHERE a pair trains, never its solution: pair
// solutions are schedule-invariant (see mp_trainer.h), so any assignment
// yields the same model. Everything here is deterministic — ties break on the
// lowest pair index / device index.

#ifndef GMPSVM_CLUSTER_PAIR_SCHEDULER_H_
#define GMPSVM_CLUSTER_PAIR_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"

namespace gmpsvm::cluster {

struct ScheduleOptions {
  // Per resident class shared with the candidate device, the pair's cost is
  // discounted by this fraction when ranking devices (0 disables affinity;
  // a pair can share at most its two classes).
  double affinity_discount = 0.15;
};

// Estimated relative cost of training pair (s, t): quadratic in the pair's
// row count, linear in the feature dimension (plus a constant term for the
// per-row work that does not scale with dim).
double EstimatePairCost(const Dataset& dataset, int s, int t);

struct PairAssignment {
  // Per device, the assigned pair indices (into dataset.ClassPairs()),
  // sorted ascending — each device trains its pairs in global pair order.
  std::vector<std::vector<size_t>> device_pairs;

  // Per device, the estimated load in cost units normalized by device speed
  // (including any initial load passed in).
  std::vector<double> device_load;
};

// Assigns `pair_indices` to devices. `device_speeds` are relative
// throughputs (e.g. compute_units * flops_per_unit); non-positive entries
// are treated as 1. `initial_load` (resized with zeros if shorter than the
// device count) lets a rescheduling pass account for work devices already
// carry — pass +infinity for a device that must not receive new work (a lost
// one). Deterministic for fixed inputs.
PairAssignment SchedulePairs(const Dataset& dataset,
                             const std::vector<size_t>& pair_indices,
                             const std::vector<double>& device_speeds,
                             std::vector<double> initial_load = {},
                             const ScheduleOptions& options = {});

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_PAIR_SCHEDULER_H_
