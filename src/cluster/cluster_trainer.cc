#include "cluster/cluster_trainer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace gmpsvm::cluster {
namespace {

// SplitMix64 finalizer: the standard seed-spreading step (same construction
// Rng::Fork uses internally). Used directly here because per-pair fault
// injectors need a derived SEED, not a forked Rng object.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Seed for pair p's injector: a function of the plan seed and the pair index
// only, never of the device assignment — this is what makes chaos runs
// device-count invariant.
uint64_t PairFaultSeed(uint64_t plan_seed, size_t pair_index) {
  return SplitMix64(plan_seed ^ SplitMix64(0x70A1Bull + pair_index));
}

// Seed for device d's loss draw (independent of the pair streams).
uint64_t DeviceFaultSeed(uint64_t plan_seed, int device) {
  return SplitMix64(plan_seed ^ SplitMix64(0xD00Dull + static_cast<uint64_t>(device)));
}

}  // namespace

Status ClusterTrainOptions::Validate(int num_classes) const {
  GMP_RETURN_NOT_OK(train.Validate(num_classes));
  if (!train.checkpoint.dir.empty() || train.checkpoint.resume) {
    return Status::InvalidArgument(
        "cluster training does not support checkpoint/resume; use a single "
        "device (GmpSvmTrainer) for checkpointed sessions");
  }
  if (!(schedule.affinity_discount >= 0.0 && schedule.affinity_discount < 0.5)) {
    return Status::InvalidArgument(
        StrPrintf("affinity_discount must be in [0, 0.5), got %g",
                  schedule.affinity_discount));
  }
  if (fault.has_value()) {
    GMP_RETURN_NOT_OK(fault->Validate());
    if (fault->interrupt_after_pairs > 0) {
      return Status::InvalidArgument(
          "cluster training does not support interrupt_after_pairs (a "
          "single-device checkpoint/resume concept)");
    }
  }
  return Status::OK();
}

void ClusterTrainReport::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  merged.PublishTo(registry);
  registry
      ->GetGauge("gmpsvm_cluster_devices",
                 "Devices in the training cluster.")
      ->Set(static_cast<double>(devices.size()));
  registry
      ->GetGauge("gmpsvm_cluster_makespan_sim_seconds",
                 "Cluster training makespan in simulated seconds.")
      ->Set(makespan_sim_seconds);
  registry
      ->GetCounter("gmpsvm_cluster_pairs_rescheduled_total",
                   "Pairs rescheduled onto surviving devices after a "
                   "device loss.")
      ->Add(static_cast<double>(pairs_rescheduled));
  registry
      ->GetCounter("gmpsvm_cluster_devices_lost_total",
                   "Cluster devices lost to injected device-loss faults.")
      ->Add(static_cast<double>(devices_lost));
  for (size_t d = 0; d < devices.size(); ++d) {
    const obs::Labels labels = {{"device", std::to_string(d)}};
    registry
        ->GetGauge("gmpsvm_cluster_device_sim_seconds",
                   "Simulated seconds a device spent on its pair subset.",
                   labels)
        ->Set(devices[d].sim_seconds);
    registry
        ->GetGauge("gmpsvm_cluster_device_utilization",
                   "Device busy fraction of the cluster makespan.", labels)
        ->Set(devices[d].utilization);
    registry
        ->GetGauge("gmpsvm_cluster_device_pairs_trained",
                   "Binary pairs trained on a device.", labels)
        ->Set(static_cast<double>(devices[d].pairs_trained));
  }
}

Result<MpSvmModel> ClusterTrainer::Train(const Dataset& dataset,
                                         SimCluster* cluster,
                                         ClusterTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  if (cluster == nullptr || cluster->num_devices() < 1) {
    return Status::InvalidArgument("cluster must have at least one device");
  }
  Stopwatch wall;
  const int n_devices = cluster->num_devices();
  const std::vector<std::pair<int, int>> pairs = dataset.ClassPairs();

  std::vector<size_t> all_pairs(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) all_pairs[p] = p;

  // Device-loss draws: once per non-primary device, from a stream that
  // depends only on the plan seed and the device index. Device 0 never dies.
  std::vector<bool> lost(static_cast<size_t>(n_devices), false);
  int devices_lost = 0;
  if (options_.fault.has_value() && options_.fault->device_loss_prob > 0.0) {
    for (int d = 1; d < n_devices; ++d) {
      fault::FaultPlan device_plan = *options_.fault;
      device_plan.seed = DeviceFaultSeed(options_.fault->seed, d);
      fault::FaultInjector device_injector(device_plan,
                                           options_.fault_metrics);
      if (device_injector.ShouldInject(fault::Site::kDeviceLoss)) {
        lost[static_cast<size_t>(d)] = true;
        ++devices_lost;
      }
    }
  }

  PairAssignment assignment = SchedulePairs(
      dataset, all_pairs, cluster->speeds(), {}, options_.schedule);

  // A lost device fails at a pair boundary after completing the first half
  // of its queue; it keeps the completed pairs and the orphaned remainder is
  // rescheduled LPT onto the survivors, on top of the load they already
  // carry.
  int64_t pairs_rescheduled = 0;
  {
    std::vector<size_t> orphans;
    for (int d = 1; d < n_devices; ++d) {
      if (!lost[static_cast<size_t>(d)]) continue;
      std::vector<size_t>& queue = assignment.device_pairs[static_cast<size_t>(d)];
      const size_t keep = queue.size() / 2;
      orphans.insert(orphans.end(), queue.begin() + static_cast<long>(keep),
                     queue.end());
      queue.resize(keep);
    }
    if (!orphans.empty()) {
      pairs_rescheduled = static_cast<int64_t>(orphans.size());
      std::vector<double> initial = assignment.device_load;
      for (int d = 0; d < n_devices; ++d) {
        if (lost[static_cast<size_t>(d)]) {
          initial[static_cast<size_t>(d)] =
              std::numeric_limits<double>::infinity();
        }
      }
      const PairAssignment resched =
          SchedulePairs(dataset, orphans, cluster->speeds(),
                        std::move(initial), options_.schedule);
      for (int d = 0; d < n_devices; ++d) {
        if (lost[static_cast<size_t>(d)]) continue;
        std::vector<size_t>& queue =
            assignment.device_pairs[static_cast<size_t>(d)];
        const std::vector<size_t>& extra =
            resched.device_pairs[static_cast<size_t>(d)];
        queue.insert(queue.end(), extra.begin(), extra.end());
        std::sort(queue.begin(), queue.end());
        assignment.device_load[static_cast<size_t>(d)] =
            resched.device_load[static_cast<size_t>(d)];
      }
    }
  }

  // Per-pair injector factory: injectors depend on the pair index only, so
  // the fault sequence a pair experiences is the same on any device.
  PairFaultInjectorFactory injector_factory;
  if (options_.fault.has_value()) {
    const fault::FaultPlan base_plan = *options_.fault;
    obs::MetricsRegistry* fault_metrics = options_.fault_metrics;
    injector_factory =
        [base_plan, fault_metrics](size_t pair_index)
        -> std::unique_ptr<fault::FaultInjector> {
      fault::FaultPlan plan = base_plan;
      plan.seed = PairFaultSeed(base_plan.seed, pair_index);
      // Pair injectors never consult kDeviceLoss (the trainer draws losses
      // separately above), so the probability staying set is harmless.
      return std::make_unique<fault::FaultInjector>(plan, fault_metrics);
    };
  }

  // Baselines so elapsed sim time / counter deltas are attributable to this
  // run even on reused executors.
  std::vector<double> base_seconds(static_cast<size_t>(n_devices), 0.0);
  std::vector<int64_t> base_kernel_computed(static_cast<size_t>(n_devices), 0);
  std::vector<int64_t> base_kernel_reused(static_cast<size_t>(n_devices), 0);
  for (int d = 0; d < n_devices; ++d) {
    SimExecutor* dev = cluster->device(d);
    dev->SynchronizeAll();
    base_seconds[static_cast<size_t>(d)] = dev->NowSeconds();
    base_kernel_computed[static_cast<size_t>(d)] =
        dev->counters().kernel_values_computed;
    base_kernel_reused[static_cast<size_t>(d)] =
        dev->counters().kernel_values_reused;
  }

  // One thread per device: each device is an independent simulator, so this
  // is wall-clock parallelism only — simulated results are identical to
  // running the devices one after another.
  using DeviceResult = Result<std::vector<PairTrainOutcome>>;
  std::vector<DeviceResult> device_results(
      static_cast<size_t>(n_devices), DeviceResult(std::vector<PairTrainOutcome>{}));
  const auto run_device = [&](int d) {
    device_results[static_cast<size_t>(d)] = TrainGmpPairSubset(
        dataset, options_.train, cluster->device(d),
        assignment.device_pairs[static_cast<size_t>(d)], injector_factory);
  };
  if (n_devices == 1) {
    run_device(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n_devices));
    for (int d = 0; d < n_devices; ++d) threads.emplace_back(run_device, d);
    for (std::thread& th : threads) th.join();
  }

  // Propagate failures in device-index order for a deterministic error.
  for (int d = 0; d < n_devices; ++d) {
    if (!device_results[static_cast<size_t>(d)].ok()) {
      return device_results[static_cast<size_t>(d)].status();
    }
  }

  // Re-key outcomes by global pair index.
  std::vector<PairTrainOutcome> by_pair(pairs.size());
  std::vector<int> pair_device(pairs.size(), -1);
  for (int d = 0; d < n_devices; ++d) {
    for (PairTrainOutcome& outcome : *device_results[static_cast<size_t>(d)]) {
      pair_device[outcome.pair_index] = d;
      by_pair[outcome.pair_index] = std::move(outcome);
    }
  }
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (pair_device[p] < 0) {
      return Status::Internal(
          StrPrintf("pair %zu was scheduled on no device", p));
    }
  }

  std::vector<PairCheckpoint> checkpoints;
  checkpoints.reserve(pairs.size());
  for (const PairTrainOutcome& outcome : by_pair) {
    checkpoints.push_back(outcome.checkpoint);
  }

  std::vector<double> elapsed(static_cast<size_t>(n_devices), 0.0);
  double makespan = 0.0;
  for (int d = 0; d < n_devices; ++d) {
    elapsed[static_cast<size_t>(d)] = cluster->device(d)->NowSeconds() -
                                      base_seconds[static_cast<size_t>(d)];
    makespan = std::max(makespan, elapsed[static_cast<size_t>(d)]);
  }

  if (report != nullptr) {
    report->makespan_sim_seconds = makespan;
    report->wall_seconds = wall.ElapsedSeconds();
    report->pairs_rescheduled = pairs_rescheduled;
    report->devices_lost = devices_lost;
    report->pair_device = std::move(pair_device);

    // Merge per-pair statistics in global ClassPairs() order — the same
    // order (and sigmoid-before-solver sequence) the single-device trainer
    // uses, so merged reports line up across device counts.
    MpTrainReport& merged = report->merged;
    for (const PairTrainOutcome& outcome : by_pair) {
      if (outcome.sigmoid_done) {
        merged.phases.Add("sigmoid", outcome.sigmoid_seconds);
      }
      merged.solver.Merge(outcome.stats);
      merged.phases.Merge(outcome.stats.phases);
      merged.pair_retries += outcome.retries;
      if (outcome.degraded) ++merged.pairs_degraded;
    }
    merged.sim_seconds = makespan;
    merged.wall_seconds = report->wall_seconds;
    for (int d = 0; d < n_devices; ++d) {
      const ExecutorCounters& counters = cluster->device(d)->counters();
      merged.kernel_values_computed +=
          counters.kernel_values_computed -
          base_kernel_computed[static_cast<size_t>(d)];
      merged.kernel_values_reused += counters.kernel_values_reused -
                                     base_kernel_reused[static_cast<size_t>(d)];
      merged.peak_device_bytes =
          std::max(merged.peak_device_bytes, counters.peak_bytes_in_use);
    }

    report->devices.resize(static_cast<size_t>(n_devices));
    for (int d = 0; d < n_devices; ++d) {
      DeviceUtilization& util = report->devices[static_cast<size_t>(d)];
      util.model_name = cluster->model(d).name;
      util.pairs_trained = static_cast<int>(
          assignment.device_pairs[static_cast<size_t>(d)].size());
      util.lost = lost[static_cast<size_t>(d)];
      util.sim_seconds = elapsed[static_cast<size_t>(d)];
      util.utilization = makespan > 0.0
                             ? elapsed[static_cast<size_t>(d)] / makespan
                             : 0.0;
    }
    report->pair_outcomes = std::move(by_pair);
  }

  return AssembleModelFromPairs(dataset, options_.train, checkpoints);
}

}  // namespace gmpsvm::cluster
