#include "cluster/cluster_trainer.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/sigmoid_cv.h"
#include "fault/retry.h"
#include "prob/platt.h"

namespace gmpsvm::cluster {
namespace {

// SplitMix64 finalizer: the standard seed-spreading step (same construction
// Rng::Fork uses internally). Used directly here because per-pair fault
// injectors need a derived SEED, not a forked Rng object.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Seed for pair p's injector: a function of the plan seed and the pair index
// only, never of the device assignment — this is what makes chaos runs
// device-count invariant.
uint64_t PairFaultSeed(uint64_t plan_seed, size_t pair_index) {
  return SplitMix64(plan_seed ^ SplitMix64(0x70A1Bull + pair_index));
}

// Seed for device d's loss draw (independent of the pair streams).
uint64_t DeviceFaultSeed(uint64_t plan_seed, int device) {
  return SplitMix64(plan_seed ^ SplitMix64(0xD00Dull + static_cast<uint64_t>(device)));
}

// Seed for node m's loss draw (independent of the pair and device streams).
uint64_t NodeFaultSeed(uint64_t plan_seed, int node) {
  return SplitMix64(plan_seed ^ SplitMix64(0x40DEull + static_cast<uint64_t>(node)));
}

// Device-origin phase span helper (same shape mp_trainer.cc uses for its
// pair phases; kept local because both copies are file-scope details).
void RecordPhaseSpan(SimExecutor* executor, StreamId stream, std::string name,
                     double start, double end) {
  obs::SpanRecorder* recorder = executor->span_recorder();
  if (recorder == nullptr || end <= start) return;
  obs::SpanEvent span;
  span.name = std::move(name);
  span.origin = obs::SpanEvent::Origin::kDevice;
  span.lane = executor->lane_base() + stream;
  span.start_seconds = start;
  span.end_seconds = end;
  span.is_phase = true;
  recorder->RecordSpan(span);
}

// Phase A: train one sharded pair across its shard group with the
// distributed solver, then fit the sigmoid on the coordinator. Mirrors the
// whole-pair path (SolveGmpPairImpl + RunPairWithRetry in mp_trainer.cc)
// step for step so the outcome — checkpoint, stats, retry/degrade behaviour
// — is byte-identical to training the pair whole on one device.
Result<PairTrainOutcome> TrainShardedPair(
    const Dataset& dataset, const MpTrainOptions& options,
    const dist::ClusterTopology& topology, SimCluster* cluster,
    const ShardedPair& sharded,
    const PairFaultInjectorFactory& injector_factory,
    dist::DistStats* dist_stats) {
  const auto pairs = dataset.ClassPairs();
  const int s = pairs[sharded.pair].first;
  const int t = pairs[sharded.pair].second;

  BinaryProblem problem = dataset.MakePairProblem(s, t, options.c, options.kernel);
  if (!options.class_weights.empty()) {
    problem.weight_pos = options.class_weights[static_cast<size_t>(s)];
    problem.weight_neg = options.class_weights[static_cast<size_t>(t)];
  }
  const int64_t n = problem.n();

  // Never more shards than rows; the scheduler already caps this, but loss
  // re-forming may have shrunk the group below the cap it was built for.
  const size_t n_shards =
      std::min(sharded.devices.size(), static_cast<size_t>(std::max<int64_t>(n, 1)));
  const std::vector<std::pair<int64_t, int64_t>> ranges =
      dist::ContiguousShardRanges(n, static_cast<int>(n_shards));

  std::vector<dist::Shard> shards(n_shards);
  for (size_t j = 0; j < n_shards; ++j) {
    const int d = sharded.devices[j];
    shards[j].executor = cluster->device(d);
    shards[j].stream = kDefaultStream;
    shards[j].device = d;
    shards[j].begin = ranges[j].first;
    shards[j].end = ranges[j].second;
    shards[j].executor->SynchronizeAll();
  }
  SimExecutor* const coord = shards[0].executor;
  const StreamId coord_stream = shards[0].stream;

  // Each shard pays host->device transfer for its instance slice: the
  // slice's share of the full feature matrix (pair rows are dataset rows).
  const double dataset_rows = static_cast<double>(std::max<int64_t>(
      static_cast<int64_t>(dataset.size()), 1));
  for (const dist::Shard& shard : shards) {
    const double fraction =
        static_cast<double>(shard.end - shard.begin) / dataset_rows;
    const double load_t0 = shard.executor->StreamTime(shard.stream);
    shard.executor->Transfer(
        shard.stream,
        static_cast<double>(dataset.features().ByteSize()) * fraction,
        TransferDirection::kHostToDevice);
    RecordPhaseSpan(shard.executor, shard.stream, "data_load", load_t0,
                    shard.executor->StreamTime(shard.stream));
  }

  KernelComputer computer(&dataset.features(), options.kernel);
  const dist::DistSmoSolver dist_solver(options.batch, &topology);

  // The pair's injector lives on the coordinator only — exactly the
  // single-device consult sequence (dist_solver.h).
  fault::FaultInjector* const base_injector = coord->fault_injector();
  std::unique_ptr<fault::FaultInjector> pair_injector;
  if (injector_factory != nullptr) {
    pair_injector = injector_factory(sharded.pair);
    coord->SetFaultInjector(pair_injector.get());
  }

  PairTrainOutcome outcome;
  outcome.pair_index = sharded.pair;

  const auto attempt = [&]() -> Result<PairCheckpoint> {
    SolverStats stats;
    dist::DistStats attempt_dist;
    const double smo_t0 = coord->StreamTime(coord_stream);
    Result<BinarySolution> solved =
        dist_solver.Solve(problem, computer, shards, &stats, &attempt_dist);
    // Work done by failed attempts still counts toward the pair.
    outcome.stats.Merge(stats);
    dist_stats->Merge(attempt_dist);
    if (!solved.ok()) return solved.status();
    const BinarySolution& solution = *solved;
    RecordPhaseSpan(coord, coord_stream, StrPrintf("smo %dv%d", s, t), smo_t0,
                    coord->StreamTime(coord_stream));

    std::vector<double> v;
    if (options.sigmoid_cv_folds >= 2) {
      // CV folds re-solve sub-problems; those run whole on the coordinator
      // through a plain solver — the same calls the whole-pair path makes.
      BatchSmoSolver plain(options.batch);
      GMP_ASSIGN_OR_RETURN(
          v, CrossValidatedDecisionValues(
                 problem, computer,
                 [&](const BinaryProblem& sub, SimExecutor* e, StreamId str) {
                   return plain.Solve(sub, computer, e, str, nullptr);
                 },
                 options.sigmoid_cv_folds, /*seed=*/1u, coord, coord_stream));
    } else {
      // v_i = f_i + y_i + b (Equation 3 vs Equation 11).
      v.resize(solution.f.size());
      for (size_t i = 0; i < v.size(); ++i) {
        v[i] = solution.f[i] + static_cast<double>(problem.y[i]) +
               solution.bias;
      }
    }
    const double sigmoid_t0 = coord->StreamTime(coord_stream);
    GMP_ASSIGN_OR_RETURN(
        SigmoidParams sigmoid,
        FitSigmoid(v, problem.y, options.platt, coord, coord_stream,
                   options.platt_parallel_candidates));
    RecordPhaseSpan(coord, coord_stream, StrPrintf("sigmoid %dv%d", s, t),
                    sigmoid_t0, coord->StreamTime(coord_stream));
    outcome.sigmoid_seconds +=
        coord->StreamTime(coord_stream) - sigmoid_t0;
    outcome.sigmoid_done = true;

    PairCheckpoint pair;
    pair.class_s = s;
    pair.class_t = t;
    pair.bias = solution.bias;
    pair.sigmoid = sigmoid;
    for (int64_t i = 0; i < problem.n(); ++i) {
      const double a = solution.alpha[static_cast<size_t>(i)];
      if (a <= 0.0) continue;
      pair.sv_rows.push_back(problem.rows[static_cast<size_t>(i)]);
      pair.sv_coef.push_back(
          a * static_cast<double>(problem.y[static_cast<size_t>(i)]));
    }
    return pair;
  };

  // Same retry/degrade policy as RunPairWithRetry, backoff charged to the
  // coordinator with the same (s, t) seed.
  const fault::RetryPolicy& policy = options.pair_retry;
  Status failure = Status::OK();
  for (int att = 1;; ++att) {
    Result<PairCheckpoint> result = attempt();
    if (result.ok()) {
      outcome.checkpoint = std::move(result).value();
      break;
    }
    if (!fault::IsTransientFault(result.status())) {
      failure = result.status();
      break;
    }
    if (att >= policy.max_attempts) {
      if (options.pair_failure_policy == PairFailurePolicy::kFailFast) {
        failure = Status::Unavailable(StrPrintf(
            "pair %dv%d failed after %d attempts: %s", s, t, att,
            result.status().message().c_str()));
        break;
      }
      GMP_LOG(Warning) << "pair " << s << "v" << t << " degraded after "
                       << att << " attempts: " << result.status().message();
      outcome.checkpoint.class_s = s;
      outcome.checkpoint.class_t = t;
      outcome.checkpoint.degraded = true;
      break;
    }
    ++outcome.retries;
    const uint64_t seed =
        (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(t);
    coord->AdvanceStream(coord_stream, fault::BackoffSeconds(policy, att, seed),
                         "retry_backoff");
  }

  if (injector_factory != nullptr) coord->SetFaultInjector(base_injector);
  for (const dist::Shard& shard : shards) shard.executor->SynchronizeAll();
  if (!failure.ok()) return failure;
  outcome.degraded = outcome.checkpoint.degraded;
  return outcome;
}

}  // namespace

Status ClusterTrainOptions::Validate(int num_classes) const {
  GMP_RETURN_NOT_OK(train.Validate(num_classes));
  if (!train.checkpoint.dir.empty() || train.checkpoint.resume) {
    return Status::InvalidArgument(
        "cluster training does not support checkpoint/resume; use a single "
        "device (GmpSvmTrainer) for checkpointed sessions");
  }
  if (!(schedule.affinity_discount >= 0.0 && schedule.affinity_discount < 0.5)) {
    return Status::InvalidArgument(
        StrPrintf("affinity_discount must be in [0, 0.5), got %g",
                  schedule.affinity_discount));
  }
  if (schedule.max_shards_per_pair < 1) {
    return Status::InvalidArgument(
        StrPrintf("max_shards_per_pair must be >= 1, got %d",
                  schedule.max_shards_per_pair));
  }
  if (!(schedule.shard_oversize_factor >= 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("shard_oversize_factor must be >= 0, got %g",
                  schedule.shard_oversize_factor));
  }
  if (schedule.max_shards_per_pair > 1 &&
      train.batch.working_set.drop_policy !=
          WorkingSetConfig::DropPolicy::kOldest) {
    return Status::InvalidArgument(
        "intra-pair sharding requires the kOldest working-set drop policy "
        "(the distributed refresh cannot reproduce kLeastViolating)");
  }
  if (fault.has_value()) {
    GMP_RETURN_NOT_OK(fault->Validate());
    if (fault->interrupt_after_pairs > 0) {
      return Status::InvalidArgument(
          "cluster training does not support interrupt_after_pairs (a "
          "single-device checkpoint/resume concept)");
    }
  }
  return Status::OK();
}

void ClusterTrainReport::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  merged.PublishTo(registry);
  registry
      ->GetGauge("gmpsvm_cluster_devices",
                 "Devices in the training cluster.")
      ->Set(static_cast<double>(devices.size()));
  registry
      ->GetGauge("gmpsvm_cluster_makespan_sim_seconds",
                 "Cluster training makespan in simulated seconds.")
      ->Set(makespan_sim_seconds);
  registry
      ->GetCounter("gmpsvm_cluster_pairs_rescheduled_total",
                   "Pairs rescheduled onto surviving devices after a "
                   "device loss.")
      ->Add(static_cast<double>(pairs_rescheduled));
  registry
      ->GetCounter("gmpsvm_cluster_devices_lost_total",
                   "Cluster devices lost to injected device-loss faults.")
      ->Add(static_cast<double>(devices_lost));
  registry
      ->GetGauge("gmpsvm_cluster_nodes", "Nodes in the training cluster.")
      ->Set(static_cast<double>(nodes));
  registry
      ->GetCounter("gmpsvm_cluster_nodes_lost_total",
                   "Cluster nodes lost to injected node-loss faults.")
      ->Add(static_cast<double>(nodes_lost));
  registry
      ->GetGauge("gmpsvm_cluster_pairs_sharded",
                 "Pairs trained via intra-pair instance sharding.")
      ->Set(static_cast<double>(pairs_sharded));
  registry
      ->GetCounter("gmpsvm_cluster_shards_rescheduled_total",
                   "Shard slots vacated by lost devices/nodes whose pairs "
                   "re-formed on the survivors.")
      ->Add(static_cast<double>(shards_rescheduled));
  registry
      ->GetCounter("gmpsvm_dist_allreduces_total",
                   "Allreduce merges performed by sharded pair solves.")
      ->Add(static_cast<double>(dist.allreduces));
  registry
      ->GetCounter("gmpsvm_dist_allreduce_rounds_total",
                   "Total recursive-doubling rounds across allreduce merges.")
      ->Add(static_cast<double>(dist.allreduce_rounds));
  registry
      ->GetGauge("gmpsvm_dist_merge_sim_seconds",
                 "Simulated seconds sharded solves spent in merges.")
      ->Set(dist.merge_seconds);
  registry
      ->GetCounter("gmpsvm_dist_link_bytes_total",
                   "Bytes moved by shard merges, per link class.",
                   {{"link", "intra_node"}})
      ->Add(dist.intra_node_bytes);
  registry
      ->GetCounter("gmpsvm_dist_link_bytes_total",
                   "Bytes moved by shard merges, per link class.",
                   {{"link", "inter_node"}})
      ->Add(dist.inter_node_bytes);
  for (size_t d = 0; d < devices.size(); ++d) {
    const obs::Labels labels = {{"device", std::to_string(d)}};
    registry
        ->GetGauge("gmpsvm_cluster_device_sim_seconds",
                   "Simulated seconds a device spent on its pair subset.",
                   labels)
        ->Set(devices[d].sim_seconds);
    registry
        ->GetGauge("gmpsvm_cluster_device_utilization",
                   "Device busy fraction of the cluster makespan.", labels)
        ->Set(devices[d].utilization);
    registry
        ->GetGauge("gmpsvm_cluster_device_pairs_trained",
                   "Binary pairs trained on a device.", labels)
        ->Set(static_cast<double>(devices[d].pairs_trained));
  }
}

Result<MpSvmModel> ClusterTrainer::Train(const Dataset& dataset,
                                         SimCluster* cluster,
                                         ClusterTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  if (cluster == nullptr || cluster->num_devices() < 1) {
    return Status::InvalidArgument("cluster must have at least one device");
  }
  Stopwatch wall;
  const int n_devices = cluster->num_devices();
  const dist::ClusterTopology& topology = cluster->topology();
  const std::vector<std::pair<int, int>> pairs = dataset.ClassPairs();

  std::vector<size_t> all_pairs(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) all_pairs[p] = p;

  // Node-loss draws: once per non-primary node, from a stream that depends
  // only on the plan seed and the node index. Node 0 never dies; losing a
  // node loses every device on it.
  std::vector<bool> node_lost(static_cast<size_t>(topology.num_nodes), false);
  int nodes_lost = 0;
  if (options_.fault.has_value() && options_.fault->node_loss_prob > 0.0) {
    for (int m = 1; m < topology.num_nodes; ++m) {
      fault::FaultPlan node_plan = *options_.fault;
      node_plan.seed = NodeFaultSeed(options_.fault->seed, m);
      fault::FaultInjector node_injector(node_plan, options_.fault_metrics);
      if (node_injector.ShouldInject(fault::Site::kNodeLoss)) {
        node_lost[static_cast<size_t>(m)] = true;
        ++nodes_lost;
      }
    }
  }

  // Device-loss draws: once per non-primary device, from a stream that
  // depends only on the plan seed and the device index (never the node
  // grouping, so draws match across topologies). Device 0 never dies.
  std::vector<bool> lost(static_cast<size_t>(n_devices), false);
  if (options_.fault.has_value() && options_.fault->device_loss_prob > 0.0) {
    for (int d = 1; d < n_devices; ++d) {
      fault::FaultPlan device_plan = *options_.fault;
      device_plan.seed = DeviceFaultSeed(options_.fault->seed, d);
      fault::FaultInjector device_injector(device_plan,
                                           options_.fault_metrics);
      if (device_injector.ShouldInject(fault::Site::kDeviceLoss)) {
        lost[static_cast<size_t>(d)] = true;
      }
    }
  }
  int devices_lost = 0;
  for (int d = 1; d < n_devices; ++d) {
    if (node_lost[static_cast<size_t>(topology.node_of(d))]) {
      lost[static_cast<size_t>(d)] = true;
    }
    if (lost[static_cast<size_t>(d)]) ++devices_lost;
  }

  ScheduleOptions schedule = options_.schedule;
  schedule.topology = &topology;
  PairAssignment assignment =
      SchedulePairs(dataset, all_pairs, cluster->speeds(), {}, schedule);

  // Shard groups re-form on the survivors of any lost devices/nodes: with
  // >= 2 members left the pair stays sharded; with one it trains whole
  // there; with none it falls back to device 0 (which never dies). The
  // re-formed solve is byte-identical, so losses never perturb the model.
  int64_t shards_rescheduled = 0;
  {
    std::vector<ShardedPair> kept;
    for (ShardedPair& sp : assignment.sharded_pairs) {
      std::vector<int> survivors;
      for (int d : sp.devices) {
        if (!lost[static_cast<size_t>(d)]) survivors.push_back(d);
      }
      shards_rescheduled +=
          static_cast<int64_t>(sp.devices.size() - survivors.size());
      if (survivors.size() >= 2) {
        sp.devices = std::move(survivors);
        kept.push_back(std::move(sp));
        continue;
      }
      const int target = survivors.size() == 1 ? survivors[0] : 0;
      std::vector<size_t>& queue =
          assignment.device_pairs[static_cast<size_t>(target)];
      queue.insert(std::upper_bound(queue.begin(), queue.end(), sp.pair),
                   sp.pair);
      const int ps = pairs[sp.pair].first;
      const int pt = pairs[sp.pair].second;
      const double speed = cluster->speed(target);
      assignment.device_load[static_cast<size_t>(target)] +=
          EstimatePairCost(dataset, ps, pt) / (speed > 0.0 ? speed : 1.0);
    }
    assignment.sharded_pairs = std::move(kept);
  }

  // A lost device fails at a pair boundary after completing the first half
  // of its queue; it keeps the completed pairs and the orphaned remainder is
  // rescheduled LPT onto the survivors, on top of the load they already
  // carry.
  int64_t pairs_rescheduled = 0;
  {
    std::vector<size_t> orphans;
    for (int d = 1; d < n_devices; ++d) {
      if (!lost[static_cast<size_t>(d)]) continue;
      std::vector<size_t>& queue = assignment.device_pairs[static_cast<size_t>(d)];
      const size_t keep = queue.size() / 2;
      orphans.insert(orphans.end(), queue.begin() + static_cast<long>(keep),
                     queue.end());
      queue.resize(keep);
    }
    if (!orphans.empty()) {
      pairs_rescheduled = static_cast<int64_t>(orphans.size());
      std::vector<double> initial = assignment.device_load;
      for (int d = 0; d < n_devices; ++d) {
        if (lost[static_cast<size_t>(d)]) {
          initial[static_cast<size_t>(d)] =
              std::numeric_limits<double>::infinity();
        }
      }
      // Orphans reschedule whole — no second-guessing the shard decision
      // mid-recovery.
      ScheduleOptions resched_options = schedule;
      resched_options.max_shards_per_pair = 1;
      const PairAssignment resched =
          SchedulePairs(dataset, orphans, cluster->speeds(),
                        std::move(initial), resched_options);
      for (int d = 0; d < n_devices; ++d) {
        if (lost[static_cast<size_t>(d)]) continue;
        std::vector<size_t>& queue =
            assignment.device_pairs[static_cast<size_t>(d)];
        const std::vector<size_t>& extra =
            resched.device_pairs[static_cast<size_t>(d)];
        queue.insert(queue.end(), extra.begin(), extra.end());
        std::sort(queue.begin(), queue.end());
        assignment.device_load[static_cast<size_t>(d)] =
            resched.device_load[static_cast<size_t>(d)];
      }
    }
  }

  // Per-pair injector factory: injectors depend on the pair index only, so
  // the fault sequence a pair experiences is the same on any device.
  PairFaultInjectorFactory injector_factory;
  if (options_.fault.has_value()) {
    const fault::FaultPlan base_plan = *options_.fault;
    obs::MetricsRegistry* fault_metrics = options_.fault_metrics;
    injector_factory =
        [base_plan, fault_metrics](size_t pair_index)
        -> std::unique_ptr<fault::FaultInjector> {
      fault::FaultPlan plan = base_plan;
      plan.seed = PairFaultSeed(base_plan.seed, pair_index);
      // Pair injectors never consult kDeviceLoss (the trainer draws losses
      // separately above), so the probability staying set is harmless.
      return std::make_unique<fault::FaultInjector>(plan, fault_metrics);
    };
  }

  // Baselines so elapsed sim time / counter deltas are attributable to this
  // run even on reused executors.
  std::vector<double> base_seconds(static_cast<size_t>(n_devices), 0.0);
  std::vector<int64_t> base_kernel_computed(static_cast<size_t>(n_devices), 0);
  std::vector<int64_t> base_kernel_reused(static_cast<size_t>(n_devices), 0);
  for (int d = 0; d < n_devices; ++d) {
    SimExecutor* dev = cluster->device(d);
    dev->SynchronizeAll();
    base_seconds[static_cast<size_t>(d)] = dev->NowSeconds();
    base_kernel_computed[static_cast<size_t>(d)] =
        dev->counters().kernel_values_computed;
    base_kernel_reused[static_cast<size_t>(d)] =
        dev->counters().kernel_values_reused;
  }

  // Phase A: sharded pairs, sequentially in pair order. Each solve spans
  // several devices, so these cannot overlap the per-device threads below;
  // they run first and leave every participant synchronized.
  dist::DistStats dist_stats;
  std::vector<PairTrainOutcome> sharded_outcomes;
  sharded_outcomes.reserve(assignment.sharded_pairs.size());
  for (const ShardedPair& sp : assignment.sharded_pairs) {
    GMP_ASSIGN_OR_RETURN(
        PairTrainOutcome outcome,
        TrainShardedPair(dataset, options_.train, topology, cluster, sp,
                         injector_factory, &dist_stats));
    sharded_outcomes.push_back(std::move(outcome));
  }

  // Phase B — one thread per device: each device is an independent
  // simulator, so this is wall-clock parallelism only — simulated results
  // are identical to running the devices one after another.
  using DeviceResult = Result<std::vector<PairTrainOutcome>>;
  std::vector<DeviceResult> device_results(
      static_cast<size_t>(n_devices), DeviceResult(std::vector<PairTrainOutcome>{}));
  const auto run_device = [&](int d) {
    device_results[static_cast<size_t>(d)] = TrainGmpPairSubset(
        dataset, options_.train, cluster->device(d),
        assignment.device_pairs[static_cast<size_t>(d)], injector_factory);
  };
  if (n_devices == 1) {
    run_device(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n_devices));
    for (int d = 0; d < n_devices; ++d) threads.emplace_back(run_device, d);
    for (std::thread& th : threads) th.join();
  }

  // Propagate failures in device-index order for a deterministic error.
  for (int d = 0; d < n_devices; ++d) {
    if (!device_results[static_cast<size_t>(d)].ok()) {
      return device_results[static_cast<size_t>(d)].status();
    }
  }

  // Re-key outcomes by global pair index. Sharded pairs report their
  // coordinator as the training device.
  std::vector<PairTrainOutcome> by_pair(pairs.size());
  std::vector<int> pair_device(pairs.size(), -1);
  for (int d = 0; d < n_devices; ++d) {
    for (PairTrainOutcome& outcome : *device_results[static_cast<size_t>(d)]) {
      pair_device[outcome.pair_index] = d;
      by_pair[outcome.pair_index] = std::move(outcome);
    }
  }
  for (size_t i = 0; i < sharded_outcomes.size(); ++i) {
    PairTrainOutcome& outcome = sharded_outcomes[i];
    pair_device[outcome.pair_index] = assignment.sharded_pairs[i].devices[0];
    by_pair[outcome.pair_index] = std::move(outcome);
  }
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (pair_device[p] < 0) {
      return Status::Internal(
          StrPrintf("pair %zu was scheduled on no device", p));
    }
  }

  std::vector<PairCheckpoint> checkpoints;
  checkpoints.reserve(pairs.size());
  for (const PairTrainOutcome& outcome : by_pair) {
    checkpoints.push_back(outcome.checkpoint);
  }

  std::vector<double> elapsed(static_cast<size_t>(n_devices), 0.0);
  double makespan = 0.0;
  for (int d = 0; d < n_devices; ++d) {
    elapsed[static_cast<size_t>(d)] = cluster->device(d)->NowSeconds() -
                                      base_seconds[static_cast<size_t>(d)];
    makespan = std::max(makespan, elapsed[static_cast<size_t>(d)]);
  }

  if (report != nullptr) {
    report->makespan_sim_seconds = makespan;
    report->wall_seconds = wall.ElapsedSeconds();
    report->pairs_rescheduled = pairs_rescheduled;
    report->devices_lost = devices_lost;
    report->nodes = topology.num_nodes;
    report->nodes_lost = nodes_lost;
    report->pairs_sharded = static_cast<int>(assignment.sharded_pairs.size());
    report->shards_rescheduled = shards_rescheduled;
    report->dist = dist_stats;
    report->pair_device = std::move(pair_device);

    // Merge per-pair statistics in global ClassPairs() order — the same
    // order (and sigmoid-before-solver sequence) the single-device trainer
    // uses, so merged reports line up across device counts.
    MpTrainReport& merged = report->merged;
    for (const PairTrainOutcome& outcome : by_pair) {
      if (outcome.sigmoid_done) {
        merged.phases.Add("sigmoid", outcome.sigmoid_seconds);
      }
      merged.solver.Merge(outcome.stats);
      merged.phases.Merge(outcome.stats.phases);
      merged.pair_retries += outcome.retries;
      if (outcome.degraded) ++merged.pairs_degraded;
    }
    merged.sim_seconds = makespan;
    merged.wall_seconds = report->wall_seconds;
    for (int d = 0; d < n_devices; ++d) {
      const ExecutorCounters& counters = cluster->device(d)->counters();
      merged.kernel_values_computed +=
          counters.kernel_values_computed -
          base_kernel_computed[static_cast<size_t>(d)];
      merged.kernel_values_reused += counters.kernel_values_reused -
                                     base_kernel_reused[static_cast<size_t>(d)];
      merged.peak_device_bytes =
          std::max(merged.peak_device_bytes, counters.peak_bytes_in_use);
    }

    report->devices.resize(static_cast<size_t>(n_devices));
    for (int d = 0; d < n_devices; ++d) {
      DeviceUtilization& util = report->devices[static_cast<size_t>(d)];
      util.model_name = cluster->model(d).name;
      util.pairs_trained = static_cast<int>(
          assignment.device_pairs[static_cast<size_t>(d)].size());
      util.lost = lost[static_cast<size_t>(d)];
      util.sim_seconds = elapsed[static_cast<size_t>(d)];
      util.utilization = makespan > 0.0
                             ? elapsed[static_cast<size_t>(d)] / makespan
                             : 0.0;
    }
    report->pair_outcomes = std::move(by_pair);
  }

  return AssembleModelFromPairs(dataset, options_.train, checkpoints);
}

}  // namespace gmpsvm::cluster
