#include "cluster/cluster.h"

#include <algorithm>

namespace gmpsvm::cluster {

SimCluster::SimCluster(std::vector<ExecutorModel> models) {
  devices_.reserve(models.size());
  for (ExecutorModel& model : models) {
    devices_.push_back(std::make_unique<SimExecutor>(std::move(model)));
  }
  topology_ = dist::ClusterTopology::SingleNode(num_devices());
}

SimCluster SimCluster::Homogeneous(int n, const ExecutorModel& model) {
  std::vector<ExecutorModel> models(static_cast<size_t>(std::max(n, 0)),
                                    model);
  return SimCluster(std::move(models));
}

SimCluster SimCluster::HomogeneousNodes(int nodes, int devices_per_node,
                                        const ExecutorModel& model,
                                        dist::LinkModel intra,
                                        dist::LinkModel inter) {
  SimCluster cluster =
      Homogeneous(std::max(nodes, 1) * std::max(devices_per_node, 1), model);
  cluster.topology_ = dist::ClusterTopology::Contiguous(
      std::max(nodes, 1), cluster.num_devices(), intra, inter);
  return cluster;
}

Status SimCluster::SetTopology(dist::ClusterTopology topology) {
  GMP_RETURN_NOT_OK(topology.Validate());
  if (topology.num_devices() != num_devices()) {
    return Status::InvalidArgument(
        "topology maps a different number of devices than the cluster has");
  }
  topology_ = std::move(topology);
  return Status::OK();
}

double SimCluster::speed(int d) const {
  const ExecutorModel& m = model(d);
  const double s = m.compute_units * m.flops_per_unit;
  return s > 0.0 ? s : 1.0;
}

std::vector<double> SimCluster::speeds() const {
  std::vector<double> out(devices_.size());
  for (int d = 0; d < num_devices(); ++d) out[static_cast<size_t>(d)] = speed(d);
  return out;
}

void SimCluster::SetSpanRecorder(obs::SpanRecorder* recorder, int lane_band) {
  for (int d = 0; d < num_devices(); ++d) {
    device(d)->SetSpanRecorder(recorder, d * lane_band, lane_band);
  }
}

void SimCluster::SynchronizeAll() {
  for (std::unique_ptr<SimExecutor>& dev : devices_) dev->SynchronizeAll();
}

double SimCluster::MaxNowSeconds() const {
  double now = 0.0;
  for (const std::unique_ptr<SimExecutor>& dev : devices_) {
    now = std::max(now, dev->NowSeconds());
  }
  return now;
}

}  // namespace gmpsvm::cluster
