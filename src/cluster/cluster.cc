#include "cluster/cluster.h"

#include <algorithm>

namespace gmpsvm::cluster {

SimCluster::SimCluster(std::vector<ExecutorModel> models) {
  devices_.reserve(models.size());
  for (ExecutorModel& model : models) {
    devices_.push_back(std::make_unique<SimExecutor>(std::move(model)));
  }
}

SimCluster SimCluster::Homogeneous(int n, const ExecutorModel& model) {
  std::vector<ExecutorModel> models(static_cast<size_t>(std::max(n, 0)),
                                    model);
  return SimCluster(std::move(models));
}

double SimCluster::speed(int d) const {
  const ExecutorModel& m = model(d);
  const double s = m.compute_units * m.flops_per_unit;
  return s > 0.0 ? s : 1.0;
}

std::vector<double> SimCluster::speeds() const {
  std::vector<double> out(devices_.size());
  for (int d = 0; d < num_devices(); ++d) out[static_cast<size_t>(d)] = speed(d);
  return out;
}

void SimCluster::SetSpanRecorder(obs::SpanRecorder* recorder, int lane_band) {
  for (int d = 0; d < num_devices(); ++d) {
    device(d)->SetSpanRecorder(recorder, d * lane_band, lane_band);
  }
}

void SimCluster::SynchronizeAll() {
  for (std::unique_ptr<SimExecutor>& dev : devices_) dev->SynchronizeAll();
}

double SimCluster::MaxNowSeconds() const {
  double now = 0.0;
  for (const std::unique_ptr<SimExecutor>& dev : devices_) {
    now = std::max(now, dev->NowSeconds());
  }
  return now;
}

}  // namespace gmpsvm::cluster
