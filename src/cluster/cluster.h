// SimCluster: N independent simulated devices behind one handle, grouped
// into simulated nodes by a dist::ClusterTopology.
//
// Each device is a full SimExecutor with its own clock, counters, memory
// budget, streams, and (when the trainer attaches one) its own shared
// kernel-block cache — exactly the single-device substrate, multiplied.
// Whole-pair training never moves data between devices: a pair problem
// trains entirely on one device, and every device pays for its own
// host->device copy of the data it touches over its own PCIe link. The
// topology's per-link bandwidth/latency model only enters when the trainer
// shards a pair's instances across devices: the distributed solver's merges
// are priced over intra-node and inter-node links (docs/cost_model.md).
// The default topology is a single node holding every device.
//
// Tracing: one recorder can observe all devices. Lanes are banded per device
// — device d's stream spans land in [d * band, (d + 1) * band) — so a merged
// Perfetto trace shows one row group per device.

#ifndef GMPSVM_CLUSTER_CLUSTER_H_
#define GMPSVM_CLUSTER_CLUSTER_H_

#include <memory>
#include <utility>
#include <vector>

#include "device/executor.h"
#include "device/sim_model.h"
#include "dist/topology.h"
#include "obs/span.h"

namespace gmpsvm::cluster {

// Trace lanes reserved per device in a merged recording.
inline constexpr int kClusterLaneBand = 16;

class SimCluster {
 public:
  // One device per model; heterogeneous clusters are allowed (e.g. a P100
  // next to a CPU substrate) — the pair scheduler normalizes by speed().
  explicit SimCluster(std::vector<ExecutorModel> models);

  // n identical devices on one node.
  static SimCluster Homogeneous(int n, const ExecutorModel& model);

  // nodes * devices_per_node identical devices split contiguously across
  // `nodes` SimNodes, with the given link models (defaults: NVLink-class
  // within a node, 100 Gb/s network between nodes).
  static SimCluster HomogeneousNodes(
      int nodes, int devices_per_node, const ExecutorModel& model,
      dist::LinkModel intra = dist::NvlinkClassLink(),
      dist::LinkModel inter = dist::NetworkClassLink());

  SimCluster(SimCluster&&) noexcept = default;
  SimCluster& operator=(SimCluster&&) noexcept = default;

  int num_devices() const { return static_cast<int>(devices_.size()); }

  // --- Node topology --------------------------------------------------------

  const dist::ClusterTopology& topology() const { return topology_; }

  // Replaces the topology; it must validate and map exactly this cluster's
  // devices.
  Status SetTopology(dist::ClusterTopology topology);

  int num_nodes() const { return topology_.num_nodes; }
  int node_of(int device) const { return topology_.node_of(device); }

  SimExecutor* device(int d) { return devices_[static_cast<size_t>(d)].get(); }
  const SimExecutor* device(int d) const {
    return devices_[static_cast<size_t>(d)].get();
  }
  const ExecutorModel& model(int d) const { return device(d)->model(); }

  // Relative throughput of device d (compute_units * flops_per_unit), used
  // by the pair scheduler to normalize load across heterogeneous devices.
  double speed(int d) const;
  std::vector<double> speeds() const;

  // Attaches `recorder` to every device with a lane band per device, or
  // detaches (nullptr). The recorder must outlive the attachment.
  void SetSpanRecorder(obs::SpanRecorder* recorder,
                       int lane_band = kClusterLaneBand);

  // Joins every stream on every device.
  void SynchronizeAll();

  // Max simulated time across devices. Devices tick independent clocks, so
  // this is only meaningful as a makespan when all started from a common
  // baseline (the cluster trainer snapshots per-device baselines itself).
  double MaxNowSeconds() const;

 private:
  std::vector<std::unique_ptr<SimExecutor>> devices_;
  dist::ClusterTopology topology_;
};

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_CLUSTER_H_
