// Cluster training: shard the k(k-1)/2 pair problems across devices.
//
// The trainer schedules pairs with the cost-model-aware pair scheduler,
// trains each device's subset through TrainGmpPairSubset (one std::thread
// per device — devices are independent simulators, so this is pure
// wall-clock parallelism), and stitches the per-pair results back together
// in global ClassPairs() order with AssembleModelFromPairs.
//
// Determinism contract (extends PR 4): the model, predicted probabilities,
// and per-pair COUNTER statistics are byte-identical for devices=1 vs
// devices=N at any host_threads, clean or under a fault plan; only the
// simulated makespan and wall clock change. Two mechanisms make that hold:
//   * pair solutions are schedule-invariant (exact kernel math — see
//     mp_trainer.h), so the assignment never changes the numbers;
//   * chaos runs use one fault injector PER PAIR, seeded from the plan seed
//     and the pair index, so a pair sees the same fault sequence whatever
//     device trains it. (Per-pair sim-time attribution still depends on the
//     stream shares of the run, and with share_kernel_blocks on, cache
//     hit/miss counters depend on co-location — those are the documented
//     schedule-dependent quantities.)
//
// Device loss (fault.device_loss_prob / Site::kDeviceLoss): each non-primary
// device draws once at the start of the run; a lost device completes the
// first half of its queue at a pair boundary, keeps those pairs, and its
// orphaned remainder is rescheduled LPT onto the survivors. Device 0 never
// dies, so progress is always possible. Every pair still trains exactly once
// with its own injector, which is why loss does not perturb the model.
//
// Out of scope (rejected by Validate): checkpoint/resume and
// interrupt_after_pairs — both are single-device session concepts; train on
// one device if you need them.

#ifndef GMPSVM_CLUSTER_CLUSTER_TRAINER_H_
#define GMPSVM_CLUSTER_CLUSTER_TRAINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/pair_scheduler.h"
#include "core/mp_trainer.h"
#include "fault/fault_injector.h"

namespace gmpsvm::cluster {

struct ClusterTrainOptions {
  MpTrainOptions train;
  ScheduleOptions schedule;

  // Optional chaos plan; see the header comment for how it is split into
  // per-pair injectors and per-device loss draws.
  std::optional<fault::FaultPlan> fault;

  // When set, per-pair fault injectors publish
  // gmpsvm_fault_injected_total{site=...} here (the registry is thread-safe;
  // device threads share it). Null disables fault metrics.
  obs::MetricsRegistry* fault_metrics = nullptr;

  Status Validate(int num_classes) const;
};

struct DeviceUtilization {
  std::string model_name;
  int pairs_trained = 0;
  bool lost = false;
  // Simulated seconds this device spent on its subset (its own clock).
  double sim_seconds = 0.0;
  // sim_seconds / cluster makespan, in [0, 1].
  double utilization = 0.0;
};

struct ClusterTrainReport {
  // Cluster makespan: the max per-device simulated time. This is the
  // headline scaling number bench_cluster_scaling sweeps.
  double makespan_sim_seconds = 0.0;
  double wall_seconds = 0.0;

  // Per-pair statistics merged in global ClassPairs() order — the same merge
  // order a single-device GmpSvmTrainer report uses. merged.sim_seconds is
  // the makespan.
  MpTrainReport merged;

  std::vector<DeviceUtilization> devices;

  // Per-pair outcomes in ClassPairs() order (counter fields are
  // schedule-invariant when share_kernel_blocks is off; see mp_trainer.h).
  std::vector<PairTrainOutcome> pair_outcomes;

  // Which device each pair trained on, in ClassPairs() order.
  std::vector<int> pair_device;

  int64_t pairs_rescheduled = 0;
  int devices_lost = 0;

  // Publishes merged (gmpsvm_train_*) plus gmpsvm_cluster_* gauges, the
  // per-device series labeled {device=...}.
  void PublishTo(obs::MetricsRegistry* registry) const;
};

class ClusterTrainer {
 public:
  explicit ClusterTrainer(ClusterTrainOptions options)
      : options_(std::move(options)) {}

  // Trains the full MP-SVM model across the cluster's devices. `report` may
  // be null. The model is byte-identical to a single-device GmpSvmTrainer
  // run for any device count.
  Result<MpSvmModel> Train(const Dataset& dataset, SimCluster* cluster,
                           ClusterTrainReport* report) const;

 private:
  ClusterTrainOptions options_;
};

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_CLUSTER_TRAINER_H_
