// Cluster training: shard the k(k-1)/2 pair problems across devices and, for
// oversized pairs, shard a single pair's instances across several devices.
//
// The trainer schedules pairs with the cost-model-aware pair scheduler.
// Pairs the scheduler marked for intra-pair sharding train first (Phase A):
// each runs once through dist::DistSmoSolver across its shard group, merges
// priced by the cluster's node topology. The remaining whole pairs then
// train through TrainGmpPairSubset (one std::thread per device — devices are
// independent simulators, so this is pure wall-clock parallelism; Phase B).
// Results are stitched back together in global ClassPairs() order with
// AssembleModelFromPairs.
//
// Determinism contract (extends PR 4): the model, predicted probabilities,
// and per-pair COUNTER statistics are byte-identical for nodes=1/devices=1
// vs any nodes x devices topology at any host_threads, clean or under a
// fault plan; only the simulated makespan and wall clock change. Three
// mechanisms make that hold:
//   * pair solutions are schedule-invariant (exact kernel math — see
//     mp_trainer.h), so the assignment never changes the numbers;
//   * a sharded pair's solve is byte-identical to the single-device solve —
//     solution AND counters — for any shard count or placement
//     (dist/dist_solver.h), so sharding never changes the numbers either;
//   * chaos runs use one fault injector PER PAIR, seeded from the plan seed
//     and the pair index, so a pair sees the same fault sequence whatever
//     device (or shard group, via the coordinator) trains it. (Per-pair
//     sim-time attribution still depends on the stream shares of the run,
//     and with share_kernel_blocks on, cache hit/miss counters depend on
//     co-location — those are the documented schedule-dependent quantities.
//     Sharded pairs always solve through the direct row source, never the
//     shared block cache.)
//
// Device loss (fault.device_loss_prob / Site::kDeviceLoss): each non-primary
// device draws once at the start of the run; a lost device completes the
// first half of its whole-pair queue at a pair boundary, keeps those pairs,
// and its orphaned remainder is rescheduled LPT onto the survivors. Device 0
// never dies, so progress is always possible. Every pair still trains
// exactly once with its own injector, which is why loss does not perturb the
// model.
//
// Node loss (fault.node_loss_prob / Site::kNodeLoss): each non-primary node
// draws once at the start of the run; losing a node loses every device on
// it. Shard groups that lose members re-form on the survivors — still ≥2
// left: the pair stays sharded on them; exactly 1: it trains whole there;
// none: it trains whole on device 0. Node 0 never dies. Orphaned shards are
// counted in shards_rescheduled, and because the re-formed solve is still
// byte-identical, chaos runs recover the exact clean model.
//
// Out of scope (rejected by Validate): checkpoint/resume and
// interrupt_after_pairs — both are single-device session concepts; train on
// one device if you need them.

#ifndef GMPSVM_CLUSTER_CLUSTER_TRAINER_H_
#define GMPSVM_CLUSTER_CLUSTER_TRAINER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/pair_scheduler.h"
#include "core/mp_trainer.h"
#include "dist/dist_solver.h"
#include "fault/fault_injector.h"

namespace gmpsvm::cluster {

struct ClusterTrainOptions {
  MpTrainOptions train;

  // schedule.topology is ignored — the trainer always prices merges with the
  // cluster's own topology. Intra-pair sharding (max_shards_per_pair > 1)
  // requires the working set's kOldest drop policy (see dist_solver.h).
  ScheduleOptions schedule;

  // Optional chaos plan; see the header comment for how it is split into
  // per-pair injectors and per-device loss draws.
  std::optional<fault::FaultPlan> fault;

  // When set, per-pair fault injectors publish
  // gmpsvm_fault_injected_total{site=...} here (the registry is thread-safe;
  // device threads share it). Null disables fault metrics.
  obs::MetricsRegistry* fault_metrics = nullptr;

  Status Validate(int num_classes) const;
};

struct DeviceUtilization {
  std::string model_name;
  int pairs_trained = 0;
  bool lost = false;
  // Simulated seconds this device spent on its subset (its own clock).
  double sim_seconds = 0.0;
  // sim_seconds / cluster makespan, in [0, 1].
  double utilization = 0.0;
};

struct ClusterTrainReport {
  // Cluster makespan: the max per-device simulated time. This is the
  // headline scaling number bench_cluster_scaling sweeps.
  double makespan_sim_seconds = 0.0;
  double wall_seconds = 0.0;

  // Per-pair statistics merged in global ClassPairs() order — the same merge
  // order a single-device GmpSvmTrainer report uses. merged.sim_seconds is
  // the makespan.
  MpTrainReport merged;

  std::vector<DeviceUtilization> devices;

  // Per-pair outcomes in ClassPairs() order (counter fields are
  // schedule-invariant when share_kernel_blocks is off; see mp_trainer.h).
  std::vector<PairTrainOutcome> pair_outcomes;

  // Which device each pair trained on (the coordinator, for sharded pairs),
  // in ClassPairs() order.
  std::vector<int> pair_device;

  int64_t pairs_rescheduled = 0;
  int devices_lost = 0;

  // Node topology and intra-pair sharding.
  int nodes = 1;
  int nodes_lost = 0;
  int pairs_sharded = 0;
  // Shard slots vacated by lost devices/nodes whose pairs re-formed on the
  // survivors.
  int64_t shards_rescheduled = 0;
  // Communication accounting summed over every sharded solve.
  dist::DistStats dist;

  // Publishes merged (gmpsvm_train_*) plus gmpsvm_cluster_* gauges (the
  // per-device series labeled {device=...}) and the gmpsvm_dist_* transfer
  // series (per-link byte counters labeled {link=intra_node|inter_node}).
  void PublishTo(obs::MetricsRegistry* registry) const;
};

class ClusterTrainer {
 public:
  explicit ClusterTrainer(ClusterTrainOptions options)
      : options_(std::move(options)) {}

  // Trains the full MP-SVM model across the cluster's devices. `report` may
  // be null. The model is byte-identical to a single-device GmpSvmTrainer
  // run for any device count.
  Result<MpSvmModel> Train(const Dataset& dataset, SimCluster* cluster,
                           ClusterTrainReport* report) const;

 private:
  ClusterTrainOptions options_;
};

}  // namespace gmpsvm::cluster

#endif  // GMPSVM_CLUSTER_CLUSTER_TRAINER_H_
