// Kernel functions (Section 2.1 of the paper): Gaussian, Linear, Polynomial,
// Sigmoid. Each is expressed as a transform of the dot product x_i·x_j (plus
// the squared row norms for the Gaussian), which is what lets batched kernel
// rows be computed as one sparse matrix product followed by an elementwise
// map — the schedule GMP-SVM uses on the GPU.

#ifndef GMPSVM_KERNEL_KERNEL_FUNCTION_H_
#define GMPSVM_KERNEL_KERNEL_FUNCTION_H_

#include <cmath>
#include <string>

#include "common/status.h"
#include "simd/simd_math.h"

namespace gmpsvm {

enum class KernelType { kGaussian, kLinear, kPolynomial, kSigmoid };

const char* KernelTypeToString(KernelType type);
Result<KernelType> KernelTypeFromString(const std::string& name);

struct KernelParams {
  KernelType type = KernelType::kGaussian;
  double gamma = 1.0;   // γ for Gaussian; `a` for polynomial/sigmoid
  double coef0 = 0.0;   // `r` for polynomial/sigmoid
  int degree = 3;       // `d` for polynomial

  std::string ToString() const;
};

// Stateless evaluator mapping (dot, ||x_i||², ||x_j||²) -> K(x_i, x_j).
class KernelFunction {
 public:
  explicit KernelFunction(const KernelParams& params) : params_(params) {}

  const KernelParams& params() const { return params_; }

  // Uses the deterministic transforms from simd/simd_math.h, so a scalar
  // FromDot is bit-identical to the vectorized row transforms in every tier.
  double FromDot(double dot, double norm_i, double norm_j) const {
    switch (params_.type) {
      case KernelType::kGaussian:
        return simd::GaussianFromDot(dot, norm_i, norm_j, params_.gamma);
      case KernelType::kLinear:
        return dot;
      case KernelType::kPolynomial:
        return simd::PolynomialFromDot(dot, params_.gamma, params_.coef0,
                                       params_.degree);
      case KernelType::kSigmoid:
        return simd::SigmoidFromDot(dot, params_.gamma, params_.coef0);
    }
    return 0.0;
  }

  // K(x, x) given ||x||².
  double SelfKernel(double norm) const { return FromDot(norm, norm, norm); }

  // Arithmetic ops per transformed value, for cost accounting (exp/tanh count
  // as several flops on both substrates).
  double FlopsPerValue() const {
    switch (params_.type) {
      case KernelType::kGaussian:
        return 8.0;
      case KernelType::kLinear:
        return 0.0;
      case KernelType::kPolynomial:
        return 2.0 + static_cast<double>(params_.degree);
      case KernelType::kSigmoid:
        return 10.0;
    }
    return 0.0;
  }

 private:
  KernelParams params_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_KERNEL_KERNEL_FUNCTION_H_
