#include "kernel/kernel_function.h"

#include "common/string_util.h"

namespace gmpsvm {

const char* KernelTypeToString(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return "polynomial";
    case KernelType::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

Result<KernelType> KernelTypeFromString(const std::string& name) {
  if (name == "gaussian" || name == "rbf") return KernelType::kGaussian;
  if (name == "linear") return KernelType::kLinear;
  if (name == "polynomial" || name == "poly") return KernelType::kPolynomial;
  if (name == "sigmoid") return KernelType::kSigmoid;
  return Status::InvalidArgument("unknown kernel type: " + name);
}

std::string KernelParams::ToString() const {
  switch (type) {
    case KernelType::kGaussian:
      return StrPrintf("gaussian(gamma=%g)", gamma);
    case KernelType::kLinear:
      return "linear";
    case KernelType::kPolynomial:
      return StrPrintf("polynomial(a=%g, r=%g, d=%d)", gamma, coef0, degree);
    case KernelType::kSigmoid:
      return StrPrintf("sigmoid(a=%g, r=%g)", gamma, coef0);
  }
  return "unknown";
}

}  // namespace gmpsvm
