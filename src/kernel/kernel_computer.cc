#include "kernel/kernel_computer.h"

#include "common/thread_pool.h"

namespace gmpsvm {
namespace {

// Applies the dot->kernel transform of one row in place through the SIMD
// tier. The vector transforms replay FromDot's exact per-lane op sequence
// (simd/simd_math.h), so every tier — and the scalar FromDot itself — agrees
// bitwise.
void TransformRow(const KernelFunction& fn, const simd::SimdOps& ops,
                  double norm_row, std::span<const double> norms_b,
                  std::span<const int32_t> targets, double* row) {
  const KernelParams& p = fn.params();
  const int64_t n = static_cast<int64_t>(targets.size());
  switch (p.type) {
    case KernelType::kGaussian:
      ops.gaussian_transform(row, norms_b.data(), targets.data(), n, norm_row,
                             p.gamma);
      break;
    case KernelType::kLinear:
      break;  // K = dot; nothing to transform
    case KernelType::kPolynomial:
      ops.poly_transform(row, n, p.gamma, p.coef0, p.degree);
      break;
    case KernelType::kSigmoid:
      ops.sigmoid_transform(row, n, p.gamma, p.coef0);
      break;
  }
}

// Applies the dot->kernel transform in place and returns the flops charged
// (a closed form, so the host-parallel row partition cannot perturb it).
// Records the batched transform on the kernel_transform dispatch path.
double TransformBlock(const KernelFunction& fn, const simd::SimdOps& ops,
                      std::span<const double> norms_a,
                      std::span<const int32_t> batch,
                      std::span<const double> norms_b,
                      std::span<const int32_t> targets, double* out,
                      ThreadPool* pool) {
  const size_t num_targets = targets.size();
  const int64_t t_start = simd::NowNanos();
  const auto rows_body = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const double norm_i = norms_a[static_cast<size_t>(batch[static_cast<size_t>(i)])];
      TransformRow(fn, ops, norm_i, norms_b, targets,
                   out + i * static_cast<int64_t>(num_targets));
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(static_cast<int64_t>(batch.size()), rows_body,
                      /*min_chunk=*/1);
  } else {
    rows_body(0, static_cast<int64_t>(batch.size()));
  }
  const double flops =
      fn.FlopsPerValue() * static_cast<double>(batch.size() * num_targets);
  simd::RecordPath(simd::SimdPath::kKernelTransform,
                   static_cast<int64_t>(batch.size() * num_targets), flops,
                   simd::NowNanos() - t_start);
  return flops;
}

}  // namespace

KernelComputer::KernelComputer(const CsrMatrix* a, const CsrMatrix* b,
                               KernelParams params, simd::SimdTier simd_tier)
    : a_(a),
      b_(b),
      function_(params),
      ops_(&simd::OpsFor(simd_tier)),
      symmetric_(a == b) {
  norms_a_ = a_->AllRowSquaredNorms();
  norms_b_ = symmetric_ ? norms_a_ : b_->AllRowSquaredNorms();
}

void KernelComputer::ComputeBlock(std::span<const int32_t> batch,
                                  std::span<const int32_t> targets,
                                  SimExecutor* executor, StreamId stream,
                                  double* out) const {
  if (batch.empty() || targets.empty()) return;
  ThreadPool* pool = executor->host_pool();
  OpStats stats = BatchRowDots2(*a_, batch, *b_, targets, out, pool, ops_);
  stats.flops += TransformBlock(function_, *ops_, norms_a_, batch, norms_b_,
                                targets, out, pool);

  TaskCost cost;
  cost.flops = stats.flops;
  cost.bytes_read = stats.bytes_read;
  cost.bytes_written = stats.bytes_written;
  cost.parallel_items = static_cast<int64_t>(batch.size() * targets.size());
  executor->Charge(stream, cost);
  executor->counters().kernel_values_computed +=
      static_cast<int64_t>(batch.size() * targets.size());
}

OpStats KernelComputer::ComputeRowTargetsHost(int64_t row,
                                              std::span<const int32_t> targets,
                                              double* out) const {
  if (targets.empty()) return OpStats{};
  OpStats stats = ScatterRowDots(*a_, row, *b_, targets, out, ops_);
  const double norm_row = norms_a_[static_cast<size_t>(row)];
  TransformRow(function_, *ops_, norm_row, norms_b_, targets, out);
  // Counters only for the transform: this runs inside parallel per-row
  // cascade loops, so no wall time is recorded (see RecordPath's contract).
  const double transform_flops =
      function_.FlopsPerValue() * static_cast<double>(targets.size());
  simd::RecordPath(simd::SimdPath::kKernelTransform,
                   static_cast<int64_t>(targets.size()), transform_flops);
  stats.flops += transform_flops;
  return stats;
}

double KernelComputer::Compute(int64_t row_a, int64_t row_b) const {
  double dot;
  if (symmetric_) {
    dot = a_->RowDot(row_a, row_b);
  } else {
    // Merge-join over the two sorted rows.
    const auto ia = a_->RowIndices(row_a), ib = b_->RowIndices(row_b);
    const auto va = a_->RowValues(row_a), vb = b_->RowValues(row_b);
    dot = 0.0;
    size_t pa = 0, pb = 0;
    while (pa < ia.size() && pb < ib.size()) {
      if (ia[pa] == ib[pb]) {
        dot += va[pa] * vb[pb];
        ++pa;
        ++pb;
      } else if (ia[pa] < ib[pb]) {
        ++pa;
      } else {
        ++pb;
      }
    }
  }
  return function_.FromDot(dot, norms_a_[static_cast<size_t>(row_a)],
                           norms_b_[static_cast<size_t>(row_b)]);
}

DenseKernelComputer::DenseKernelComputer(const DenseMatrix* x, KernelParams params)
    : x_(x), function_(params) {
  norms_.resize(static_cast<size_t>(x_->rows()));
  for (int64_t r = 0; r < x_->rows(); ++r) {
    norms_[static_cast<size_t>(r)] = x_->RowSquaredNorm(r);
  }
}

void DenseKernelComputer::ComputeBlock(std::span<const int32_t> batch,
                                       std::span<const int32_t> targets,
                                       SimExecutor* executor, StreamId stream,
                                       double* out) const {
  if (batch.empty() || targets.empty()) return;
  ThreadPool* pool = executor->host_pool();
  OpStats stats = DenseBatchRowDots(*x_, batch, targets, out, pool);
  // Dense dots stay scalar (not one of the five tier paths), but the
  // transform shares the vector path — it is bit-identical to FromDot.
  stats.flops += TransformBlock(function_, simd::OpsFor(simd::SimdTier::kAuto),
                                norms_, batch, norms_, targets, out, pool);

  TaskCost cost;
  cost.flops = stats.flops;
  cost.bytes_read = stats.bytes_read;
  cost.bytes_written = stats.bytes_written;
  cost.parallel_items = static_cast<int64_t>(batch.size() * targets.size());
  executor->Charge(stream, cost);
  executor->counters().kernel_values_computed +=
      static_cast<int64_t>(batch.size() * targets.size());
}

double DenseKernelComputer::Compute(int64_t row_a, int64_t row_b) const {
  return function_.FromDot(x_->RowDot(row_a, row_b),
                           norms_[static_cast<size_t>(row_a)],
                           norms_[static_cast<size_t>(row_b)]);
}

}  // namespace gmpsvm
