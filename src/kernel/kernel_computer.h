// Batched kernel-row computation on the simulated device.
//
// A KernelComputer owns references to the row matrices and their precomputed
// squared norms and produces blocks K(batch, targets) — the q-rows-at-a-time
// computation of Section 3.3.1. All work is charged to the executor, and
// every produced value increments the executor's kernel_values_computed
// counter (the quantity the buffer/sharing techniques exist to reduce).

#ifndef GMPSVM_KERNEL_KERNEL_COMPUTER_H_
#define GMPSVM_KERNEL_KERNEL_COMPUTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "device/executor.h"
#include "kernel/kernel_function.h"
#include "simd/simd.h"
#include "sparse/dense_matrix.h"
#include "sparse/ops.h"

namespace gmpsvm {

class KernelComputer {
 public:
  // Kernel values between rows of `a` and rows of `b`. The matrices must
  // outlive the computer. `a` and `b` may be the same object (training).
  // `simd_tier` selects the SIMD kernel tier for dots and transforms
  // (kAuto = the process-wide active tier, resolved at construction); every
  // tier produces byte-identical values, so this is a speed knob only.
  KernelComputer(const CsrMatrix* a, const CsrMatrix* b, KernelParams params,
                 simd::SimdTier simd_tier = simd::SimdTier::kAuto);

  // Convenience for the symmetric (training) case.
  KernelComputer(const CsrMatrix* x, KernelParams params,
                 simd::SimdTier simd_tier = simd::SimdTier::kAuto)
      : KernelComputer(x, x, params, simd_tier) {}

  const KernelFunction& function() const { return function_; }

  // Computes out[i * targets.size() + j] = K(a.row(batch[i]), b.row(targets[j]))
  // as one batched product, charging `executor` on `stream`.
  void ComputeBlock(std::span<const int32_t> batch, std::span<const int32_t> targets,
                    SimExecutor* executor, StreamId stream, double* out) const;

  // Single kernel value (host-side, uncharged). For tests and reference code.
  double Compute(int64_t row_a, int64_t row_b) const;

  // Kernel values K(a.row(row), b.row(targets[j])) for an arbitrary target
  // subset, computed on the host without charging the executor. Each value is
  // bit-identical to the corresponding entry of a ComputeBlock block (same
  // scatter-gather accumulation order and transform arithmetic), which is
  // what lets lazy per-row consumers — the prediction cascade — stay
  // byte-compatible with the batched path. Returns the OpStats for the row
  // (the ScatterRowDots charge plus FlopsPerValue() per transformed target),
  // so callers account lazy rows exactly like one batch row of ComputeBlock.
  OpStats ComputeRowTargetsHost(int64_t row, std::span<const int32_t> targets,
                                double* out) const;

  // K(x_i, x_i) for a row of `a`.
  double SelfKernelA(int64_t row) const {
    return function_.SelfKernel(norms_a_[static_cast<size_t>(row)]);
  }
  // K(x_j, x_j) for a row of `b`.
  double SelfKernelB(int64_t row) const {
    return function_.SelfKernel(norms_b_[static_cast<size_t>(row)]);
  }

 private:
  const CsrMatrix* a_;
  const CsrMatrix* b_;
  KernelFunction function_;
  const simd::SimdOps* ops_;  // resolved tier table; static storage duration
  std::vector<double> norms_a_;
  std::vector<double> norms_b_;
  bool symmetric_;
};

// Dense-representation counterpart used by the GPUSVM-like baseline. Same
// contract as KernelComputer but dot products cost O(dim) regardless of
// sparsity.
class DenseKernelComputer {
 public:
  DenseKernelComputer(const DenseMatrix* x, KernelParams params);

  void ComputeBlock(std::span<const int32_t> batch, std::span<const int32_t> targets,
                    SimExecutor* executor, StreamId stream, double* out) const;

  double Compute(int64_t row_a, int64_t row_b) const;

  double SelfKernel(int64_t row) const {
    return function_.SelfKernel(norms_[static_cast<size_t>(row)]);
  }

 private:
  const DenseMatrix* x_;
  KernelFunction function_;
  std::vector<double> norms_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_KERNEL_KERNEL_COMPUTER_H_
