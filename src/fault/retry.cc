#include "fault/retry.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gmpsvm::fault {
namespace {

// SplitMix64 finalizer — the same mixing common/rng.h uses for Fork().
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        StrPrintf("max_attempts must be >= 1, got %d", max_attempts));
  }
  if (!(initial_backoff_seconds >= 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("initial_backoff_seconds must be >= 0, got %g",
                  initial_backoff_seconds));
  }
  if (!(backoff_multiplier >= 1.0)) {
    return Status::InvalidArgument(StrPrintf(
        "backoff_multiplier must be >= 1, got %g", backoff_multiplier));
  }
  if (!(max_backoff_seconds >= initial_backoff_seconds)) {
    return Status::InvalidArgument(
        StrPrintf("max_backoff_seconds (%g) must be >= "
                  "initial_backoff_seconds (%g)",
                  max_backoff_seconds, initial_backoff_seconds));
  }
  if (!(jitter_fraction >= 0.0 && jitter_fraction < 1.0)) {
    return Status::InvalidArgument(StrPrintf(
        "jitter_fraction must be in [0, 1), got %g", jitter_fraction));
  }
  return Status::OK();
}

double BackoffSeconds(const RetryPolicy& policy, int attempt, uint64_t seed) {
  if (attempt < 1) attempt = 1;
  const double base =
      std::min(policy.max_backoff_seconds,
               policy.initial_backoff_seconds *
                   std::pow(policy.backoff_multiplier, attempt - 1));
  const uint64_t bits =
      Mix64(seed ^ (static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ull));
  const double unit =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor =
      1.0 + policy.jitter_fraction * (2.0 * unit - 1.0);
  return base * factor;
}

bool IsTransientFault(const Status& status) { return status.IsUnavailable(); }

}  // namespace gmpsvm::fault
