#include "fault/fault_injector.h"

#include "common/string_util.h"

namespace gmpsvm::fault {
namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "device_submit",  "device_transfer", "device_alloc",  "kernel_row_batch",
    "buffer_evict",   "model_swap",      "latency_spike", "train_interrupt",
    "device_loss",    "delta_parse",     "canary",        "node_loss",
};

Status CheckProb(const char* field, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        StrPrintf("%s must be in [0, 1], got %g", field, p));
  }
  return Status::OK();
}

}  // namespace

const char* SiteName(Site site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kNumFaultSites) return "unknown";
  return kSiteNames[i];
}

double FaultPlan::ProbFor(Site site) const {
  switch (site) {
    case Site::kDeviceSubmit:
      return submit_fail_prob;
    case Site::kDeviceTransfer:
      return transfer_fail_prob;
    case Site::kDeviceAlloc:
      return alloc_fail_prob;
    case Site::kKernelRowBatch:
      return kernel_row_fail_prob;
    case Site::kBufferEvict:
      return evict_poison_prob;
    case Site::kModelSwap:
      return swap_fail_prob;
    case Site::kLatencySpike:
      return latency_spike_prob;
    case Site::kTrainInterrupt:
      return interrupt_after_pairs > 0 ? 1.0 : 0.0;
    case Site::kDeviceLoss:
      return device_loss_prob;
    case Site::kDeltaParse:
      return delta_parse_fail_prob;
    case Site::kCanary:
      return canary_fail_prob;
    case Site::kNodeLoss:
      return node_loss_prob;
  }
  return 0.0;
}

Status FaultPlan::Validate() const {
  GMP_RETURN_NOT_OK(CheckProb("submit_fail_prob", submit_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("transfer_fail_prob", transfer_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("alloc_fail_prob", alloc_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("kernel_row_fail_prob", kernel_row_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("evict_poison_prob", evict_poison_prob));
  GMP_RETURN_NOT_OK(CheckProb("swap_fail_prob", swap_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("latency_spike_prob", latency_spike_prob));
  GMP_RETURN_NOT_OK(CheckProb("device_loss_prob", device_loss_prob));
  GMP_RETURN_NOT_OK(CheckProb("delta_parse_fail_prob", delta_parse_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("canary_fail_prob", canary_fail_prob));
  GMP_RETURN_NOT_OK(CheckProb("node_loss_prob", node_loss_prob));
  if (!(latency_spike_seconds >= 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("latency_spike_seconds must be >= 0, got %g",
                  latency_spike_seconds));
  }
  if (interrupt_after_pairs < 0) {
    return Status::InvalidArgument(
        StrPrintf("interrupt_after_pairs must be >= 0, got %lld",
                  static_cast<long long>(interrupt_after_pairs)));
  }
  return Status::OK();
}

FaultPlan FaultPlan::Chaos(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.submit_fail_prob = 0.05;
  plan.transfer_fail_prob = 0.05;
  plan.alloc_fail_prob = 0.15;
  plan.kernel_row_fail_prob = 0.2;
  plan.evict_poison_prob = 0.25;
  plan.latency_spike_prob = 0.05;
  // High enough that a 4-device chaos run usually loses a device; the cluster
  // trainer consults it once per non-primary device, never for device 0.
  plan.device_loss_prob = 0.4;
  plan.delta_parse_fail_prob = 0.2;
  plan.canary_fail_prob = 0.2;
  // One non-primary node in a 2-node chaos run dies often enough to exercise
  // orphan-shard rescheduling; node 0 is never consulted.
  plan.node_loss_prob = 0.4;
  plan.max_consecutive_per_site = 2;
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             obs::MetricsRegistry* metrics)
    : plan_(plan) {
  Rng root(plan_.seed);
  rngs_.reserve(kNumFaultSites);
  for (int s = 0; s < kNumFaultSites; ++s) {
    rngs_.push_back(root.Fork(static_cast<uint64_t>(s) + 1));
  }
  if (metrics != nullptr) {
    for (int s = 0; s < kNumFaultSites; ++s) {
      counters_[static_cast<size_t>(s)] = metrics->GetCounter(
          "gmpsvm_fault_injected_total", "Faults injected, by site.",
          {{"site", kSiteNames[s]}});
    }
  }
}

bool FaultInjector::ShouldInject(Site site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kNumFaultSites) return false;
  const double p = plan_.ProbFor(site);
  if (p <= 0.0) return false;

  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.max_faults_per_site >= 0 &&
      injected_[static_cast<size_t>(i)] >= plan_.max_faults_per_site) {
    return false;
  }
  if (plan_.max_consecutive_per_site > 0 &&
      consecutive_[static_cast<size_t>(i)] >= plan_.max_consecutive_per_site) {
    consecutive_[static_cast<size_t>(i)] = 0;
    return false;
  }
  if (!rngs_[static_cast<size_t>(i)].Bernoulli(p)) {
    consecutive_[static_cast<size_t>(i)] = 0;
    return false;
  }
  ++injected_[static_cast<size_t>(i)];
  ++consecutive_[static_cast<size_t>(i)];
  if (counters_[static_cast<size_t>(i)] != nullptr) {
    counters_[static_cast<size_t>(i)]->Increment();
  }
  return true;
}

double FaultInjector::MaybeLatencySpike() {
  return ShouldInject(Site::kLatencySpike) ? plan_.latency_spike_seconds : 0.0;
}

bool FaultInjector::ShouldInterruptTraining(int64_t pairs_completed_this_run) {
  if (plan_.interrupt_after_pairs <= 0 ||
      pairs_completed_this_run < plan_.interrupt_after_pairs) {
    return false;
  }
  const auto i = static_cast<size_t>(Site::kTrainInterrupt);
  std::lock_guard<std::mutex> lock(mu_);
  ++injected_[i];
  if (counters_[i] != nullptr) counters_[i]->Increment();
  return true;
}

int64_t FaultInjector::injected(Site site) const {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kNumFaultSites) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<size_t>(i)];
}

int64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (int64_t n : injected_) total += n;
  return total;
}

}  // namespace gmpsvm::fault
