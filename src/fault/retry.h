// Bounded exponential backoff with deterministic jitter, shared by the
// trainers (per-pair retries) and anything else that retries transient
// faults. Backoff here is *simulated* time: trainers charge it to the failed
// pair's stream, so retried runs cost more sim-seconds but stay
// deterministic and produce byte-identical models.

#ifndef GMPSVM_FAULT_RETRY_H_
#define GMPSVM_FAULT_RETRY_H_

#include <cstdint>

#include "common/status.h"

namespace gmpsvm::fault {

struct RetryPolicy {
  // Total attempts including the first; 1 disables retrying.
  int max_attempts = 5;

  // Backoff before retry k (k = 1, 2, ...) is
  //   initial_backoff_seconds * backoff_multiplier^(k-1)
  // clamped to max_backoff_seconds, then scaled by a deterministic jitter
  // factor uniform in [1 - jitter_fraction, 1 + jitter_fraction].
  double initial_backoff_seconds = 1e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
  double jitter_fraction = 0.2;

  Status Validate() const;
};

// Backoff (simulated seconds) before retry `attempt` (1-based). The jitter is
// a pure function of (seed, attempt), so two runs with the same seed wait the
// same simulated time.
double BackoffSeconds(const RetryPolicy& policy, int attempt, uint64_t seed);

// Whether `status` is a transient fault worth retrying (kUnavailable — the
// code every injected transient fault carries).
bool IsTransientFault(const Status& status);

}  // namespace gmpsvm::fault

#endif  // GMPSVM_FAULT_RETRY_H_
