// Deterministic, seeded fault injection for the simulated-device stack.
//
// A FaultPlan declares per-site failure probabilities; a FaultInjector draws
// from per-site forked Rng streams, so consuming decisions at one site never
// perturbs the sequence another site observes. Everything is derived from the
// plan's seed: the same plan against the same workload injects the same
// faults on every run, which is what makes chaos tests reproducible and lets
// the recovery machinery claim byte-identical models under retries.
//
// Two knobs bound the chaos so recovery can always converge:
//   * max_consecutive_per_site forces a success after k consecutive
//     injections at one site, so any retry loop with >= k+1 attempts is
//     guaranteed to get through;
//   * max_faults_per_site caps the total injections at a site (useful for
//     "fail the first N allocations, then heal" serve scenarios).
//
// Sites are consulted by the components they belong to: SimExecutor
// (submit/transfer/alloc/latency), KernelBuffer (eviction poisoning),
// BatchSmoSolver (kernel-row batches), ModelRegistry (swap failures), and
// the trainers (mid-run interrupt for checkpoint/resume testing).

#ifndef GMPSVM_FAULT_FAULT_INJECTOR_H_
#define GMPSVM_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace gmpsvm::fault {

// Where a fault can be injected.
enum class Site : int {
  kDeviceSubmit = 0,   // SimExecutor::TrySubmit fails transiently
  kDeviceTransfer,     // SimExecutor::TryTransfer fails transiently
  kDeviceAlloc,        // SimExecutor::Allocate fails transiently
  kKernelRowBatch,     // BatchSmoSolver's batched row computation fails
  kBufferEvict,        // KernelBuffer poisons a resident row on eviction
  kModelSwap,          // ModelRegistry::Register of an existing name fails
  kLatencySpike,       // a charged task additionally stalls its stream
  kTrainInterrupt,     // training aborts after N completed pairs
  kDeviceLoss,         // a cluster device dies; its unfinished pairs are
                       // rescheduled onto the surviving devices
  kDeltaParse,         // reading a dataset delta file fails transiently
  kCanary,             // a canary comparison batch fails transiently
  kNodeLoss,           // a whole simulated node dies; every device on it is
                       // lost and its pairs/shards are rescheduled
};
inline constexpr int kNumFaultSites = 12;

// Stable lowercase name for `site`, used as the {site=...} metric label.
const char* SiteName(Site site);

struct FaultPlan {
  uint64_t seed = 1;

  // Per-site injection probability in [0, 1]. 0 disables the site.
  double submit_fail_prob = 0.0;
  double transfer_fail_prob = 0.0;
  double alloc_fail_prob = 0.0;
  double kernel_row_fail_prob = 0.0;
  double evict_poison_prob = 0.0;
  double swap_fail_prob = 0.0;
  double latency_spike_prob = 0.0;
  // Consulted once per non-primary cluster device at the start of a cluster
  // training run (device 0 never dies, so progress is always possible).
  double device_loss_prob = 0.0;
  // Online-pipeline sites: delta-file reads and canary comparison batches
  // fail transiently (kUnavailable); both are retried under RetryPolicy.
  double delta_parse_fail_prob = 0.0;
  double canary_fail_prob = 0.0;
  // Consulted once per non-primary node at the start of a multi-node cluster
  // training run (node 0 never dies, so progress is always possible). Losing
  // a node loses every device on it.
  double node_loss_prob = 0.0;

  // Simulated seconds a latency spike adds to the stream it hits.
  double latency_spike_seconds = 1e-4;

  // After this many consecutive injections at one site the next decision is
  // forced to succeed (and the streak resets). <= 0 disables the bound —
  // only safe with probabilities < 1 or tests that expect failure.
  int max_consecutive_per_site = 2;

  // Total injections allowed per site; < 0 means unbounded.
  int64_t max_faults_per_site = -1;

  // > 0: trainers abort with kUnavailable after completing this many pairs
  // in the current run (simulated kill for checkpoint/resume tests).
  int64_t interrupt_after_pairs = 0;

  // The probability configured for `site`.
  double ProbFor(Site site) const;

  // Rejects probabilities outside [0, 1] and negative spike durations.
  Status Validate() const;

  // A ready-made plan exercising every transient site at moderate rates,
  // bounded so retrying components always converge.
  static FaultPlan Chaos(uint64_t seed);
};

class FaultInjector {
 public:
  // When `metrics` is non-null, a gmpsvm_fault_injected_total{site=...}
  // counter is created eagerly for every site (so the series exist in the
  // export even at zero) and incremented on each injection. The registry
  // must outlive the injector.
  explicit FaultInjector(const FaultPlan& plan,
                         obs::MetricsRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Draws the next decision for `site`. Thread-safe; decisions at different
  // sites come from independent Rng streams.
  bool ShouldInject(Site site);

  // Convenience for Site::kLatencySpike: seconds to add to the stream, or 0.
  double MaybeLatencySpike();

  // Whether training should abort now, given how many pairs the current run
  // has completed. Counts as a kTrainInterrupt injection when it fires.
  bool ShouldInterruptTraining(int64_t pairs_completed_this_run);

  // Injections so far, per site and total.
  int64_t injected(Site site) const;
  int64_t total_injected() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  std::vector<Rng> rngs_;  // one per site, forked from the plan seed
  std::array<int64_t, kNumFaultSites> injected_{};
  std::array<int, kNumFaultSites> consecutive_{};
  std::array<obs::Counter*, kNumFaultSites> counters_{};
};

}  // namespace gmpsvm::fault

#endif  // GMPSVM_FAULT_FAULT_INJECTOR_H_
