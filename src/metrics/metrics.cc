#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gmpsvm {

Result<double> ErrorRate(std::span<const int32_t> predicted,
                         std::span<const int32_t> truth) {
  if (predicted.size() != truth.size() || predicted.empty()) {
    return Status::InvalidArgument("prediction/truth size mismatch or empty");
  }
  int64_t errors = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != truth[i]) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(predicted.size());
}

Result<std::vector<int64_t>> ConfusionMatrix(std::span<const int32_t> predicted,
                                             std::span<const int32_t> truth,
                                             int k) {
  if (predicted.size() != truth.size()) {
    return Status::InvalidArgument("prediction/truth size mismatch");
  }
  std::vector<int64_t> confusion(static_cast<size_t>(k) * k, 0);
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] < 0 || truth[i] >= k || predicted[i] < 0 || predicted[i] >= k) {
      return Status::InvalidArgument("label out of range for confusion matrix");
    }
    ++confusion[static_cast<size_t>(truth[i]) * k + predicted[i]];
  }
  return confusion;
}

Result<ModelAgreement> CompareModels(const MpSvmModel& a, const MpSvmModel& b) {
  if (a.num_pairs() != b.num_pairs() || a.num_classes != b.num_classes) {
    return Status::InvalidArgument("models have different shapes");
  }
  if (a.svms.empty()) return Status::InvalidArgument("empty models");

  ModelAgreement agreement;
  agreement.bias_a = a.svms.back().bias;
  agreement.bias_b = b.svms.back().bias;
  for (int p = 0; p < a.num_pairs(); ++p) {
    const auto& sa = a.svms[static_cast<size_t>(p)];
    const auto& sb = b.svms[static_cast<size_t>(p)];
    agreement.max_bias_diff =
        std::max(agreement.max_bias_diff, std::abs(sa.bias - sb.bias));
    const double coef_a =
        std::accumulate(sa.sv_coef.begin(), sa.sv_coef.end(), 0.0,
                        [](double acc, double v) { return acc + std::abs(v); });
    const double coef_b =
        std::accumulate(sb.sv_coef.begin(), sb.sv_coef.end(), 0.0,
                        [](double acc, double v) { return acc + std::abs(v); });
    agreement.max_coef_sum_diff =
        std::max(agreement.max_coef_sum_diff, std::abs(coef_a - coef_b));
  }
  return agreement;
}

}  // namespace gmpsvm
