#include "metrics/report.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace gmpsvm {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GMP_DCHECK(cells.size() == headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      if (c + 1 < cells.size()) {
        line.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace gmpsvm
