// Evaluation metrics: error rates, classifier-agreement checks (Table 4),
// and the speedup arithmetic used by the figure benches.

#ifndef GMPSVM_METRICS_METRICS_H_
#define GMPSVM_METRICS_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace gmpsvm {

// Fraction of mismatched labels in [0, 1].
Result<double> ErrorRate(std::span<const int32_t> predicted,
                         std::span<const int32_t> truth);

// k x k confusion matrix, row = truth, column = predicted.
Result<std::vector<int64_t>> ConfusionMatrix(std::span<const int32_t> predicted,
                                             std::span<const int32_t> truth, int k);

// Comparison between two trained MP-SVM models over the same dataset
// (the Table 4 "classifier comparison" columns).
struct ModelAgreement {
  // Bias of the last binary SVM in each model (the paper's reported bias).
  double bias_a = 0.0;
  double bias_b = 0.0;

  // Largest |bias difference| across all pairs.
  double max_bias_diff = 0.0;

  // Largest |sv-coefficient-sum difference| across pairs (a cheap proxy for
  // alpha-vector agreement that is invariant to SV ordering).
  double max_coef_sum_diff = 0.0;
};

Result<ModelAgreement> CompareModels(const MpSvmModel& a, const MpSvmModel& b);

}  // namespace gmpsvm

#endif  // GMPSVM_METRICS_METRICS_H_
