// Aligned-column table printer used by every benchmark binary to print the
// paper's tables and figure series.

#ifndef GMPSVM_METRICS_REPORT_H_
#define GMPSVM_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace gmpsvm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header separator.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_METRICS_REPORT_H_
