#include "metrics/calibration.h"

#include <algorithm>
#include <cmath>

namespace gmpsvm {
namespace {

Status ValidateShape(std::span<const double> probabilities,
                     std::span<const int32_t> truth, int num_classes) {
  if (num_classes < 2) return Status::InvalidArgument("need >= 2 classes");
  if (truth.empty() ||
      probabilities.size() != truth.size() * static_cast<size_t>(num_classes)) {
    return Status::InvalidArgument("probabilities/truth shape mismatch");
  }
  for (int32_t y : truth) {
    if (y < 0 || y >= num_classes) {
      return Status::InvalidArgument("truth label out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<double> LogLoss(std::span<const double> probabilities,
                       std::span<const int32_t> truth, int num_classes) {
  GMP_RETURN_NOT_OK(ValidateShape(probabilities, truth, num_classes));
  constexpr double kFloor = 1e-15;
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double p = probabilities[i * static_cast<size_t>(num_classes) +
                                   static_cast<size_t>(truth[i])];
    total -= std::log(std::max(p, kFloor));
  }
  return total / static_cast<double>(truth.size());
}

Result<double> BrierScore(std::span<const double> probabilities,
                          std::span<const int32_t> truth, int num_classes) {
  GMP_RETURN_NOT_OK(ValidateShape(probabilities, truth, num_classes));
  double total = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    const double* row = probabilities.data() + i * static_cast<size_t>(num_classes);
    for (int c = 0; c < num_classes; ++c) {
      const double target = (c == truth[i]) ? 1.0 : 0.0;
      const double diff = row[c] - target;
      total += diff * diff;
    }
  }
  return total / static_cast<double>(truth.size());
}

Result<CalibrationReport> ComputeCalibration(std::span<const double> probabilities,
                                             std::span<const int32_t> truth,
                                             int num_classes, int bins) {
  GMP_RETURN_NOT_OK(ValidateShape(probabilities, truth, num_classes));
  if (bins < 1) return Status::InvalidArgument("need >= 1 bin");

  CalibrationReport report;
  report.bin_counts.assign(static_cast<size_t>(bins), 0);
  report.bin_confidence.assign(static_cast<size_t>(bins), 0.0);
  report.bin_accuracy.assign(static_cast<size_t>(bins), 0.0);

  for (size_t i = 0; i < truth.size(); ++i) {
    const double* row = probabilities.data() + i * static_cast<size_t>(num_classes);
    const int top = static_cast<int>(std::max_element(row, row + num_classes) - row);
    const double confidence = row[top];
    int bin = static_cast<int>(confidence * bins);
    bin = std::clamp(bin, 0, bins - 1);
    report.bin_counts[static_cast<size_t>(bin)] += 1;
    report.bin_confidence[static_cast<size_t>(bin)] += confidence;
    report.bin_accuracy[static_cast<size_t>(bin)] += (top == truth[i]) ? 1.0 : 0.0;
  }

  const double n = static_cast<double>(truth.size());
  for (int b = 0; b < bins; ++b) {
    const int64_t count = report.bin_counts[static_cast<size_t>(b)];
    if (count == 0) continue;
    report.bin_confidence[static_cast<size_t>(b)] /= static_cast<double>(count);
    report.bin_accuracy[static_cast<size_t>(b)] /= static_cast<double>(count);
    report.ece += (static_cast<double>(count) / n) *
                  std::abs(report.bin_accuracy[static_cast<size_t>(b)] -
                           report.bin_confidence[static_cast<size_t>(b)]);
  }
  return report;
}

}  // namespace gmpsvm
