// Probability-quality metrics for the MP-SVM's calibrated outputs: log loss,
// Brier score, and expected calibration error (ECE). These quantify what the
// probabilistic output adds over a plain multi-class SVM — the reason
// MP-SVMs exist (Section 1 of the paper).

#ifndef GMPSVM_METRICS_CALIBRATION_H_
#define GMPSVM_METRICS_CALIBRATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace gmpsvm {

// Multi-class negative log likelihood: mean over instances of
// -log(p[truth]). Probabilities are clamped away from 0 for stability.
Result<double> LogLoss(std::span<const double> probabilities,
                       std::span<const int32_t> truth, int num_classes);

// Multi-class Brier score: mean over instances of sum_c (p_c - 1[c=y])^2.
// Ranges [0, 2]; 0 is perfect.
Result<double> BrierScore(std::span<const double> probabilities,
                          std::span<const int32_t> truth, int num_classes);

struct CalibrationReport {
  // Expected calibration error over top-class confidence, `bins` equal-width
  // confidence bins: sum_b (n_b / n) * |accuracy_b - confidence_b|.
  double ece = 0.0;

  // Per-bin diagnostics (reliability diagram data).
  std::vector<int64_t> bin_counts;
  std::vector<double> bin_confidence;  // mean top-class probability
  std::vector<double> bin_accuracy;    // fraction where top class == truth
};

Result<CalibrationReport> ComputeCalibration(std::span<const double> probabilities,
                                             std::span<const int32_t> truth,
                                             int num_classes, int bins = 10);

}  // namespace gmpsvm

#endif  // GMPSVM_METRICS_CALIBRATION_H_
