// MetricsRegistry: the one observability substrate behind every resource-
// accounting number this repository reports. The paper's claims are all
// resource claims — kernel values computed vs. reused (Table 3), per-phase
// time (Figures 11/12), serve latency distributions — and before this layer
// each producer (ExecutorCounters, MpTrainReport, SolverStats, ServeStats)
// kept its own ad-hoc struct and printer. Now they all publish into one
// thread-safe registry of counters, gauges and histograms, exportable as
// Prometheus text (scrapeable) or JSON, while the legacy structs remain as
// thin views over registry state with byte-identical printed output.
//
// Model (a deliberately small subset of the Prometheus data model):
//   * Counter   — monotonically increasing double (Add >= 0).
//   * Gauge     — settable double; SetMax keeps a high-water mark.
//   * Histogram — fixed cumulative buckets for export, plus retained raw
//     samples so exact nearest-rank percentiles (p50/p95/p99) match what the
//     pre-registry reporters computed from their sample vectors.
//   * Families  — one name+help+type, many children distinguished by labels.
//
// Thread safety: all mutating entry points are safe for concurrent use.
// Counters and gauges are lock-free atomics; histograms take a per-instance
// mutex; registry lookups take the registry mutex. Pointers returned by
// Get* are stable for the registry's lifetime.

#ifndef GMPSVM_OBS_METRICS_H_
#define GMPSVM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gmpsvm::obs {

// Ordered label key/value pairs, e.g. {{"phase", "sigmoid"}}. Order is
// preserved in the exported text.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  // Negative deltas are ignored (counters are monotonic).
  void Add(double delta) {
    if (delta <= 0.0) return;
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  // Keeps the maximum of the current value and `value` (high-water marks,
  // e.g. peak queue depth / peak device memory).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Consistent copy of a histogram's state. `bucket_counts` is cumulative
// (Prometheus `le` semantics) with one entry per configured bound plus the
// trailing +Inf bucket; `samples` is every observed value in observation
// order.
struct HistogramSnapshot {
  std::vector<double> bounds;          // upper bounds, ascending (no +Inf)
  std::vector<uint64_t> bucket_counts; // cumulative; size = bounds.size() + 1
  uint64_t count = 0;
  double sum = 0.0;

  std::vector<double> samples;

  // Exact nearest-rank percentile over the retained samples — the same
  // semantics ServeStats always used (PercentileSorted), not a bucket
  // interpolation. 0 for an empty histogram.
  double Percentile(double pct) const;
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  double Max() const;
};

class Histogram {
 public:
  // `bounds` are inclusive upper bounds, strictly ascending; a +Inf bucket
  // is always appended. An empty list still yields a usable single-bucket
  // histogram.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;

  void Reset();

  // Default latency bucket bounds: 100us .. ~100s, roughly 1-2-5 per decade.
  static std::vector<double> LatencyBuckets();
  // Default size buckets: powers of two 1 .. 4096.
  static std::vector<double> SizeBuckets();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> bucket_counts_;  // non-cumulative, per bucket
  uint64_t count_ = 0;
  double sum_ = 0.0;
  std::vector<double> samples_;
};

// Thread-safe registry of metric families. Looking up an existing
// (name, labels) pair returns the same instance, so producers in different
// modules can share a series. Registering the same name with a different
// type is a programming error (asserted in debug, first registration wins in
// release).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const Labels& labels = {});
  // `bounds` is only consulted when the family is first created.
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, const Labels& labels = {});

  // Prometheus text exposition format, families sorted by name, with
  // # HELP / # TYPE headers and escaped label values. Histograms export
  // cumulative `_bucket{le=...}`, `_sum` and `_count` series.
  std::string ToPrometheusText() const;

  // JSON export: {"metrics":[{name, type, help, series:[{labels, value |
  // histogram fields incl. exact p50/p95/p99}]}]}.
  std::string ToJson() const;

  // Number of registered series across all families (for tests).
  size_t NumSeries() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> bounds;              // histograms only
    std::map<std::string, Series> children;  // keyed by serialized labels
  };

  Family* GetFamily(std::string_view name, std::string_view help, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// Escapes a Prometheus label value: backslash, double-quote and newline.
std::string EscapeLabelValue(std::string_view value);

// Formats a metric value the way Prometheus text expects: integers without
// a decimal point, everything else in shortest round-trip form.
std::string FormatMetricValue(double value);

}  // namespace gmpsvm::obs

#endif  // GMPSVM_OBS_METRICS_H_
