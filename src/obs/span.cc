#include "obs/span.h"

#include <algorithm>

#include "common/string_util.h"

namespace gmpsvm::obs {
namespace {

std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::RecordSpan(const SpanEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<SpanEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<double> TraceRecorder::BusyTimePerStream() const {
  std::lock_guard<std::mutex> lock(mu_);
  int max_lane = -1;
  for (const SpanEvent& e : events_) {
    if (e.origin == SpanEvent::Origin::kDevice && !e.is_phase) {
      max_lane = std::max(max_lane, e.lane);
    }
  }
  std::vector<double> busy(static_cast<size_t>(max_lane + 1), 0.0);
  for (const SpanEvent& e : events_) {
    if (e.origin == SpanEvent::Origin::kDevice && !e.is_phase) {
      busy[static_cast<size_t>(e.lane)] += e.end_seconds - e.start_seconds;
    }
  }
  return busy;
}

std::string TraceRecorder::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& record) {
    if (!first) out += ",";
    first = false;
    out += record;
  };

  // Process metadata so Perfetto labels the two clock domains, plus one
  // thread-name record per lane actually used.
  bool have_device = false, have_host = false;
  std::vector<int> device_lanes, host_lanes;
  for (const SpanEvent& e : events_) {
    const bool device = e.origin == SpanEvent::Origin::kDevice;
    (device ? have_device : have_host) = true;
    std::vector<int>& lanes = device ? device_lanes : host_lanes;
    if (std::find(lanes.begin(), lanes.end(), e.lane) == lanes.end()) {
      lanes.push_back(e.lane);
    }
  }
  std::sort(device_lanes.begin(), device_lanes.end());
  std::sort(host_lanes.begin(), host_lanes.end());
  if (have_device) {
    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"args\":{\"name\":\"simulated device (sim time)\"}}");
    for (int lane : device_lanes) {
      append(StrPrintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                       "\"tid\":%d,\"args\":{\"name\":\"stream %d\"}}",
                       lane, lane));
    }
  }
  if (have_host) {
    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"host (wall time)\"}}");
    for (int lane : host_lanes) {
      append(StrPrintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"tid\":%d,\"args\":{\"name\":\"worker %d\"}}",
                       lane, lane));
    }
  }

  for (const SpanEvent& e : events_) {
    const int pid = e.origin == SpanEvent::Origin::kDevice ? 0 : 1;
    std::string name = e.name;
    if (name.empty()) name = e.is_transfer ? "transfer" : "kernel";
    append(StrPrintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"flops\":%.3e,\"bytes\":%.3e}}",
        EscapeName(name).c_str(), pid, e.lane, e.start_seconds * 1e6,
        (e.end_seconds - e.start_seconds) * 1e6, e.flops, e.bytes));
  }
  out += "]}";
  return out;
}

}  // namespace gmpsvm::obs
