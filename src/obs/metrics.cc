#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace gmpsvm::obs {
namespace {

// Nearest-rank percentile over an ascending-sorted vector; mirrors
// PercentileSorted in serve/serve_stats.h (duplicated here to keep obs/ a
// leaf dependency).
double NearestRank(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  const size_t index = static_cast<size_t>(std::ceil(rank));
  return sorted[std::min(sorted.size() - 1, index == 0 ? 0 : index - 1)];
}

std::string SerializeLabels(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Like RenderLabels but with an extra `le` label appended (histogram buckets).
std::string RenderBucketLabels(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

std::string EscapeJson(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatMetricValue(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    return StrPrintf("%lld", static_cast<long long>(value));
  }
  return StrPrintf("%.17g", value);
}

double HistogramSnapshot::Percentile(double pct) const {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, pct);
}

double HistogramSnapshot::Max() const {
  double max = 0.0;
  for (double s : samples) max = std::max(max, s);
  return max;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // Inclusive upper bounds (Prometheus `le`): the first bound >= value.
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                          bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++bucket_counts_[bucket];
  ++count_;
  sum_ += value;
  samples_.push_back(value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.count = count_;
    snap.sum = sum_;
    snap.samples = samples_;
    snap.bucket_counts = bucket_counts_;
  }
  // Convert per-bucket counts to cumulative (Prometheus `le`).
  uint64_t running = 0;
  for (uint64_t& c : snap.bucket_counts) {
    running += c;
    c = running;
  }
  return snap;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(bucket_counts_.begin(), bucket_counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  samples_.clear();
}

std::vector<double> Histogram::LatencyBuckets() {
  return {1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
          1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0, 30.0, 100.0};
}

std::vector<double> Histogram::SizeBuckets() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(std::string_view name,
                                                    std::string_view help,
                                                    Type type) {
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = std::string(help);
  }
  assert(family.type == type && "metric re-registered with a different type");
  if (family.type != type) return nullptr;
  return &family;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kCounter);
  if (family == nullptr) return nullptr;
  auto [it, inserted] = family->children.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.counter = std::make_unique<Counter>();
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kGauge);
  if (family == nullptr) return nullptr;
  auto [it, inserted] = family->children.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kHistogram);
  if (family == nullptr) return nullptr;
  if (family->children.empty()) family->bounds = bounds;
  auto [it, inserted] = family->children.try_emplace(SerializeLabels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.histogram = std::make_unique<Histogram>(family->bounds);
  }
  return it->second.histogram.get();
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.children.size();
  return n;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    const char* type_name = family.type == Type::kCounter   ? "counter"
                            : family.type == Type::kGauge   ? "gauge"
                                                            : "histogram";
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " " + type_name + "\n";
    for (const auto& [key, series] : family.children) {
      switch (family.type) {
        case Type::kCounter:
          out += name + RenderLabels(series.labels) + " " +
                 FormatMetricValue(series.counter->Value()) + "\n";
          break;
        case Type::kGauge:
          out += name + RenderLabels(series.labels) + " " +
                 FormatMetricValue(series.gauge->Value()) + "\n";
          break;
        case Type::kHistogram: {
          const HistogramSnapshot snap = series.histogram->Snapshot();
          for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
            const std::string le = b < snap.bounds.size()
                                       ? FormatMetricValue(snap.bounds[b])
                                       : "+Inf";
            out += name + "_bucket" + RenderBucketLabels(series.labels, le) +
                   " " + FormatMetricValue(static_cast<double>(snap.bucket_counts[b])) +
                   "\n";
          }
          out += name + "_sum" + RenderLabels(series.labels) + " " +
                 FormatMetricValue(snap.sum) + "\n";
          out += name + "_count" + RenderLabels(series.labels) + " " +
                 FormatMetricValue(static_cast<double>(snap.count)) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    const char* type_name = family.type == Type::kCounter   ? "counter"
                            : family.type == Type::kGauge   ? "gauge"
                                                            : "histogram";
    out += "{\"name\":\"" + EscapeJson(name) + "\",\"type\":\"" + type_name +
           "\",\"help\":\"" + EscapeJson(family.help) + "\",\"series\":[";
    bool first_series = true;
    for (const auto& [key, series] : family.children) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":{";
      for (size_t i = 0; i < series.labels.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + EscapeJson(series.labels[i].first) + "\":\"" +
               EscapeJson(series.labels[i].second) + "\"";
      }
      out += "}";
      switch (family.type) {
        case Type::kCounter:
          out += StrPrintf(",\"value\":%.17g", series.counter->Value());
          break;
        case Type::kGauge:
          out += StrPrintf(",\"value\":%.17g", series.gauge->Value());
          break;
        case Type::kHistogram: {
          const HistogramSnapshot snap = series.histogram->Snapshot();
          out += StrPrintf(",\"count\":%llu,\"sum\":%.17g",
                           static_cast<unsigned long long>(snap.count), snap.sum);
          out += StrPrintf(",\"p50\":%.17g,\"p95\":%.17g,\"p99\":%.17g",
                           snap.Percentile(50.0), snap.Percentile(95.0),
                           snap.Percentile(99.0));
          out += ",\"buckets\":[";
          for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
            if (b > 0) out += ",";
            const std::string le = b < snap.bounds.size()
                                       ? StrPrintf("%.17g", snap.bounds[b])
                                       : "\"+Inf\"";
            out += StrPrintf("{\"le\":%s,\"count\":%llu}", le.c_str(),
                             static_cast<unsigned long long>(snap.bucket_counts[b]));
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace gmpsvm::obs
