// Span recording: one sink for every timeline in the system.
//
// The simulated device emits per-task trace events; the serving layer used
// to time requests with ad-hoc MonotonicNow() arithmetic. This header
// generalizes both into named spans pushed at a SpanRecorder:
//
//   * device spans — simulated-time intervals on a stream lane. SimExecutor
//     emits one leaf span per charged task/transfer, and the trainers wrap
//     them in named phase spans (data_load, smo <s>v<t>, sigmoid <s>v<t>)
//     on the same lane, which trace viewers render as nesting.
//   * host spans — wall-clock intervals relative to the recorder's epoch.
//     The inference server emits per-batch queue_wait / predict / respond
//     spans on a per-worker lane.
//
// TraceRecorder collects both and exports one merged Chrome trace-event
// JSON (chrome://tracing or https://ui.perfetto.dev): process 0 holds the
// simulated-device stream rows, process 1 the wall-clock serve rows. The
// two processes tick different clocks (simulated vs. wall); rows within a
// process are mutually comparable.

#ifndef GMPSVM_OBS_SPAN_H_
#define GMPSVM_OBS_SPAN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"

namespace gmpsvm::obs {

struct SpanEvent {
  std::string name;

  // Which timeline the interval lives on: simulated device time or host
  // wall-clock time (seconds since the recorder's epoch).
  enum class Origin { kDevice, kHost };
  Origin origin = Origin::kHost;

  // Row within the origin: device stream id (plus any lane base configured
  // on the executor) or serve-worker index.
  int lane = 0;

  double start_seconds = 0.0;
  double end_seconds = 0.0;

  // Optional work attribution, shown as args in the trace viewer.
  double flops = 0.0;
  double bytes = 0.0;
  bool is_transfer = false;

  // Phase spans are named envelopes around leaf work (a trainer's
  // "smo 0v1" around the solver's kernel launches). They are exported to
  // the trace but excluded from busy-time accounting so that per-stream
  // busy seconds keep meaning "time the stream was executing tasks".
  bool is_phase = false;
};

// Sink interface. Implementations must tolerate concurrent RecordSpan calls.
class SpanRecorder {
 public:
  virtual ~SpanRecorder() = default;
  virtual void RecordSpan(const SpanEvent& event) = 0;
};

// Thread-safe collecting recorder with Chrome/Perfetto export.
class TraceRecorder : public SpanRecorder {
 public:
  TraceRecorder() : epoch_(MonotonicNow()) {}

  void RecordSpan(const SpanEvent& event) override;

  // Wall-clock seconds since this recorder was created; the time base for
  // host spans so every thread shares one origin.
  double HostSecondsNow() const {
    return SecondsBetween(epoch_, MonotonicNow());
  }

  std::vector<SpanEvent> events() const;
  size_t size() const;
  void Clear();

  // Total busy simulated time per device stream lane, leaf spans only
  // (phase envelopes and host spans are excluded).
  std::vector<double> BusyTimePerStream() const;

  // Merged Chrome trace-event JSON: pid 0 = simulated device (one row per
  // stream lane), pid 1 = host (one row per worker lane), microsecond
  // timestamps, with process/thread metadata records naming the rows.
  std::string ToChromeJson() const;

 private:
  MonotonicTime epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

// RAII wall-clock span: records [construction, destruction) as a host span
// on `lane`. A null recorder makes it a no-op.
class HostSpan {
 public:
  HostSpan(TraceRecorder* recorder, std::string name, int lane)
      : recorder_(recorder), name_(std::move(name)), lane_(lane),
        start_(recorder != nullptr ? recorder->HostSecondsNow() : 0.0) {}

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

  ~HostSpan() {
    if (recorder_ == nullptr) return;
    SpanEvent event;
    event.name = std::move(name_);
    event.origin = SpanEvent::Origin::kHost;
    event.lane = lane_;
    event.start_seconds = start_;
    event.end_seconds = recorder_->HostSecondsNow();
    recorder_->RecordSpan(event);
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  int lane_;
  double start_;
};

}  // namespace gmpsvm::obs

#endif  // GMPSVM_OBS_SPAN_H_
