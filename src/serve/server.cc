#include "serve/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace gmpsvm {
namespace {

// Lane spacing for per-worker device executors sharing one TraceRecorder:
// worker w's simulated streams occupy lanes [16w, 16w + 16) so rows from
// different workers never collide in the merged trace.
constexpr int kWorkerLaneStride = 16;

}  // namespace

InferenceServer::InferenceServer(ModelRegistry* registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      batcher_(&queue_, options_.batching),
      stats_(options_.metrics) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.max_request_retries = std::max(0, options_.max_request_retries);
  options_.degraded_after_faults = std::max(1, options_.degraded_after_faults);
  options_.recover_after_successes =
      std::max(1, options_.recover_after_successes);
  effective_max_batch_.store(std::max(1, options_.batching.max_batch_size));
  stats_.SetEffectiveMaxBatch(effective_max_batch_.load());
}

InferenceServer::~InferenceServer() { (void)Shutdown(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (shut_down_) return Status::FailedPrecondition("server was shut down");
  if (started_) return Status::FailedPrecondition("server already started");
  // Fail fast on malformed serve-wide prediction options instead of failing
  // every batch on a worker thread.
  GMP_RETURN_NOT_OK(options_.predict.Validate());
  started_ = true;
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_->Schedule([this, w] { WorkerLoop(w); });
  }
  return Status::OK();
}

Result<std::future<Result<PredictResponse>>> InferenceServer::Submit(
    std::span<const int32_t> indices, std::span<const double> values,
    Deadline deadline) {
  return Submit(indices, values, deadline, std::string(), nullptr);
}

Result<std::future<Result<PredictResponse>>> InferenceServer::Submit(
    std::span<const int32_t> indices, std::span<const double> values,
    Deadline deadline, std::string model_name,
    CompletionCallback on_complete) {
  if (indices.size() != values.size()) {
    stats_.RecordRejected();
    return Status::InvalidArgument("indices/values size mismatch");
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] < 0 || (i > 0 && indices[i] <= indices[i - 1])) {
      stats_.RecordRejected();
      return Status::InvalidArgument(
          "feature indices must be nonnegative and strictly increasing");
    }
  }

  PendingRequest item;
  item.request.indices.assign(indices.begin(), indices.end());
  item.request.values.assign(values.begin(), values.end());
  item.request.deadline = deadline;
  item.request.model_name = std::move(model_name);
  item.on_complete = std::move(on_complete);
  item.enqueue_time = MonotonicNow();
  std::future<Result<PredictResponse>> future = item.promise.get_future();

  const Status pushed = queue_.Push(std::move(item));
  if (!pushed.ok()) {
    stats_.RecordRejected();
    return pushed;
  }
  stats_.RecordAdmitted(queue_.size());
  return future;
}

Result<PredictResponse> InferenceServer::Predict(
    std::span<const int32_t> indices, std::span<const double> values,
    Deadline deadline) {
  GMP_ASSIGN_OR_RETURN(auto future, Submit(indices, values, deadline));
  // Wait in bounded slices: Deadline::Remaining() of an infinite deadline is
  // duration::max, which overflows wait_for's internal now() + duration
  // arithmetic on common implementations.
  while (future.wait_for(deadline.BoundedRemaining(std::chrono::seconds(1))) !=
         std::future_status::ready) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("request deadline expired while waiting");
    }
  }
  return future.get();
}

void InferenceServer::Pause() { queue_.Pause(); }

void InferenceServer::Resume() { queue_.Resume(); }

Status InferenceServer::Shutdown() {
  std::unique_ptr<ThreadPool> workers;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return Status::OK();
    shut_down_ = true;
    workers = std::move(workers_);
  }
  queue_.Close();
  queue_.Resume();  // a paused queue must still drain
  if (workers != nullptr) {
    workers->Wait();  // WorkerLoop exits once the queue is drained
  }
  return Status::OK();
}

void InferenceServer::Respond(PendingRequest item,
                              Result<PredictResponse> response) {
  if (response.ok()) {
    response->total_seconds = SecondsBetween(item.enqueue_time, MonotonicNow());
  }
  if (item.on_complete) item.on_complete(response);
  item.promise.set_value(std::move(response));
}

void InferenceServer::NoteBatchFault() {
  stats_.RecordFault();
  consecutive_successes_.store(0);
  if (consecutive_faults_.fetch_add(1) + 1 < options_.degraded_after_faults) {
    return;
  }
  consecutive_faults_.store(0);
  const int current = effective_max_batch_.load();
  const int next = std::max(1, current / 2);
  if (next < current) {
    effective_max_batch_.store(next);
    stats_.RecordDegradedEntry();
    stats_.SetEffectiveMaxBatch(next);
  }
}

void InferenceServer::NoteBatchSuccess() {
  consecutive_faults_.store(0);
  if (consecutive_successes_.fetch_add(1) + 1 <
      options_.recover_after_successes) {
    return;
  }
  consecutive_successes_.store(0);
  const int full = std::max(1, options_.batching.max_batch_size);
  const int current = effective_max_batch_.load();
  if (current < full) {
    const int next = std::min(full, current * 2);
    effective_max_batch_.store(next);
    stats_.SetEffectiveMaxBatch(next);
  }
}

void InferenceServer::WorkerLoop(int worker_index) {
  SimExecutor executor(options_.executor_model);
  if (options_.fault != nullptr) {
    executor.SetFaultInjector(options_.fault);
  }
  obs::TraceRecorder* trace = options_.trace;
  const int host_lane = options_.lane_base + worker_index;
  if (trace != nullptr) {
    executor.SetSpanRecorder(
        trace, options_.lane_base + worker_index * kWorkerLaneStride,
        kWorkerLaneStride);
  }
  std::vector<SparseRowView> rows;

  while (true) {
    double wait_t0 = trace != nullptr ? trace->HostSecondsNow() : 0.0;
    MicroBatcher::Batch batch = batcher_.NextBatch(
        static_cast<size_t>(effective_max_batch_.load()));
    if (batch.empty()) break;  // queue closed and drained
    if (trace != nullptr) {
      obs::SpanEvent wait;
      wait.name = "queue_wait";
      wait.lane = host_lane;
      wait.start_seconds = wait_t0;
      wait.end_seconds = trace->HostSecondsNow();
      trace->RecordSpan(wait);
    }

    const MonotonicTime formed_at = MonotonicNow();
    for (auto& item : batch.expired) {
      stats_.RecordExpired();
      Respond(std::move(item),
              Status::DeadlineExceeded("request expired while queued"));
    }
    if (batch.requests.empty()) continue;

    const int batch_size = static_cast<int>(batch.requests.size());
    stats_.RecordBatch(batch_size);

    // The queue forms model-homogeneous batches, so the first request's
    // model name (empty = server default) speaks for the whole batch.
    const std::string& batch_model =
        batch.requests.front().request.model_name.empty()
            ? options_.model_name
            : batch.requests.front().request.model_name;
    auto handle = registry_->Get(batch_model);
    if (!handle.ok()) {
      for (auto& item : batch.requests) {
        stats_.RecordFailed();
        Respond(std::move(item), handle.status());
      }
      continue;
    }

    rows.clear();
    rows.reserve(batch.requests.size());
    for (const auto& item : batch.requests) {
      rows.push_back(SparseRowView{item.request.indices, item.request.values});
    }

    MpSvmPredictor predictor(handle->model.get());
    PredictOptions predict = options_.predict;
    if (options_.predict_options_resolver) {
      if (std::optional<PredictOptions> per_model =
              options_.predict_options_resolver(batch_model)) {
        predict = *std::move(per_model);
      }
    }
    if (options_.kernel_cache_resolver) {
      predict.kernel_cache = options_.kernel_cache_resolver(*handle);
    }
    Result<PredictResult> result = [&] {
      obs::HostSpan span(trace,
                         StrPrintf("predict batch=%d", batch_size),
                         host_lane);
      return predictor.PredictRows(rows, &executor, predict);
    }();
    if (options_.metrics != nullptr) {
      executor.counters().PublishTo(
          options_.metrics, {{"worker", std::to_string(worker_index)}});
    }
    obs::HostSpan respond_span(trace, "respond", host_lane);
    if (!result.ok()) {
      if (result.status().IsUnavailable()) {
        NoteBatchFault();
      }
      // A malformed row or an injected fault fails the whole tile; recover
      // per-request so the unaffected requests still succeed. Transient
      // (kUnavailable) failures get a bounded retry budget, cut short once
      // the request's deadline expires — either way the request ends with a
      // terminal Result.
      for (size_t i = 0; i < batch.requests.size(); ++i) {
        auto single =
            predictor.PredictRows({&rows[i], 1}, &executor, predict);
        int retries_left = options_.max_request_retries;
        while (!single.ok() && single.status().IsUnavailable() &&
               retries_left > 0 &&
               !batch.requests[i].request.deadline.Expired()) {
          --retries_left;
          stats_.RecordRetry();
          single =
              predictor.PredictRows({&rows[i], 1}, &executor, predict);
        }
        if (single.ok()) {
          PredictResponse response;
          const int k = single->num_classes;
          response.probabilities.assign(single->probabilities.begin(),
                                        single->probabilities.begin() + k);
          response.label = single->labels[0];
          response.model_version = handle->version;
          response.batch_size = 1;
          response.queue_seconds =
              SecondsBetween(batch.requests[i].enqueue_time, formed_at);
          stats_.RecordCompleted(
              response.queue_seconds,
              SecondsBetween(batch.requests[i].enqueue_time, MonotonicNow()));
          Respond(std::move(batch.requests[i]), std::move(response));
        } else {
          stats_.RecordFailed();
          Respond(std::move(batch.requests[i]), single.status());
        }
      }
      continue;
    }
    NoteBatchSuccess();

    const int k = result->num_classes;
    for (size_t i = 0; i < batch.requests.size(); ++i) {
      PredictResponse response;
      response.probabilities.assign(
          result->probabilities.begin() + static_cast<int64_t>(i) * k,
          result->probabilities.begin() + static_cast<int64_t>(i + 1) * k);
      response.label = result->labels[i];
      response.model_version = handle->version;
      response.batch_size = batch_size;
      response.queue_seconds =
          SecondsBetween(batch.requests[i].enqueue_time, formed_at);
      const double total =
          SecondsBetween(batch.requests[i].enqueue_time, MonotonicNow());
      stats_.RecordCompleted(response.queue_seconds, total);
      Respond(std::move(batch.requests[i]), std::move(response));
    }
  }
}

}  // namespace gmpsvm
