// ServeStats: the serving layer's view over the observability registry.
//
// Workers and the admission path record events; every event lands in
// obs::MetricsRegistry series (gmpsvm_serve_* counters, gauges and
// histograms), so a Prometheus scrape and the CLI table are two renderings
// of the same state. A Snapshot() is a consistent copy that computes the
// derived numbers (percentiles, throughput, batch histogram) from the
// registry's retained histogram samples with exactly the pre-registry
// semantics (nearest-rank percentiles), and renders itself through the
// metrics-layer TablePrinter for CLI/benchmark output.
//
// By default a ServeStats owns a private registry; pass one in to publish
// into a shared registry (e.g. the process-wide one svm_tool dumps with
// --metrics-out).

#ifndef GMPSVM_SERVE_SERVE_STATS_H_
#define GMPSVM_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace gmpsvm {

struct ServeStatsSnapshot {
  // Counters.
  uint64_t submitted = 0;  // admission attempts
  uint64_t admitted = 0;
  uint64_t rejected = 0;  // kResourceExhausted at the door
  uint64_t expired = 0;   // deadline passed while queued
  uint64_t failed = 0;    // prediction errors
  uint64_t completed = 0;
  uint64_t batches = 0;

  // Fault recovery.
  uint64_t faults = 0;            // transient prediction faults observed
  uint64_t retries = 0;           // per-request retries after faults
  uint64_t degraded_entries = 0;  // times the server shrank its max batch
  int effective_max_batch = 0;    // current degraded-mode batch cap (0 = unset)

  // Derived.
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;  // completed / elapsed

  // End-to-end latency (admission -> response) in seconds.
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;

  // Queue wait (admission -> batch formation) in seconds.
  double queue_mean = 0.0;
  double queue_p99 = 0.0;

  // Batch-size distribution: histogram[i] counts batches of size i+1
  // (trailing zeros trimmed).
  std::vector<uint64_t> batch_histogram;
  double mean_batch_size = 0.0;
  int max_batch_size = 0;

  // Queue-depth high-water mark observed at admissions.
  size_t max_queue_depth = 0;

  // Renders counters + latency table ("metric" / "value" columns).
  std::string ToTable() const;
};

class ServeStats {
 public:
  // Publishes into `registry`; nullptr creates a private registry.
  explicit ServeStats(obs::MetricsRegistry* registry = nullptr);

  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  // Admission path.
  void RecordAdmitted(size_t queue_depth_after);
  void RecordRejected();

  // Worker path.
  void RecordBatch(int batch_size);
  void RecordExpired();
  void RecordFailed();
  void RecordCompleted(double queue_seconds, double total_seconds);

  // Fault-recovery path.
  void RecordFault();
  void RecordRetry();
  void RecordDegradedEntry();
  void SetEffectiveMaxBatch(int max_batch);

  ServeStatsSnapshot Snapshot() const;

  // Clears counters and distributions and restarts the elapsed clock. Only
  // the gmpsvm_serve_* series this object writes are reset, not the whole
  // registry.
  void Reset();

  // The registry this object publishes into (for exporters).
  obs::MetricsRegistry* registry() const { return registry_; }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  Stopwatch elapsed_;

  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* expired_;
  obs::Counter* failed_;
  obs::Counter* batches_;
  obs::Counter* faults_;
  obs::Counter* retries_;
  obs::Counter* degraded_entries_;
  obs::Gauge* effective_max_batch_;
  obs::Gauge* max_queue_depth_;
  obs::Histogram* batch_size_;
  obs::Histogram* latency_;
  obs::Histogram* queue_wait_;
};

// Percentile of `sorted` (ascending) by nearest-rank; 0 for empty input.
// Exposed for tests and other reporters (obs::HistogramSnapshot::Percentile
// applies the same formula to its retained samples).
double PercentileSorted(const std::vector<double>& sorted, double pct);

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_SERVE_STATS_H_
