// ServeStats: thread-safe counters and latency/batch-size distributions for
// the inference service. Workers and the admission path record events; a
// Snapshot() is a consistent copy that computes the derived numbers
// (percentiles, throughput, batch histogram) and can render itself through
// the metrics-layer TablePrinter for CLI/benchmark output.

#ifndef GMPSVM_SERVE_SERVE_STATS_H_
#define GMPSVM_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace gmpsvm {

struct ServeStatsSnapshot {
  // Counters.
  uint64_t submitted = 0;  // admission attempts
  uint64_t admitted = 0;
  uint64_t rejected = 0;  // kResourceExhausted at the door
  uint64_t expired = 0;   // deadline passed while queued
  uint64_t failed = 0;    // prediction errors
  uint64_t completed = 0;
  uint64_t batches = 0;

  // Derived.
  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;  // completed / elapsed

  // End-to-end latency (admission -> response) in seconds.
  double latency_mean = 0.0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;

  // Queue wait (admission -> batch formation) in seconds.
  double queue_mean = 0.0;
  double queue_p99 = 0.0;

  // Batch-size distribution: histogram[i] counts batches of size i+1
  // (trailing zeros trimmed).
  std::vector<uint64_t> batch_histogram;
  double mean_batch_size = 0.0;
  int max_batch_size = 0;

  // Queue-depth high-water mark observed at admissions.
  size_t max_queue_depth = 0;

  // Renders counters + latency table ("metric" / "value" columns).
  std::string ToTable() const;
};

class ServeStats {
 public:
  ServeStats() = default;

  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  // Admission path.
  void RecordAdmitted(size_t queue_depth_after);
  void RecordRejected();

  // Worker path.
  void RecordBatch(int batch_size);
  void RecordExpired();
  void RecordFailed();
  void RecordCompleted(double queue_seconds, double total_seconds);

  ServeStatsSnapshot Snapshot() const;

  // Clears counters and distributions and restarts the elapsed clock.
  void Reset();

 private:
  mutable std::mutex mu_;
  Stopwatch elapsed_;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t expired_ = 0;
  uint64_t failed_ = 0;
  uint64_t batches_ = 0;
  size_t max_queue_depth_ = 0;
  std::vector<uint64_t> batch_histogram_;  // index i = batches of size i+1
  std::vector<double> latencies_;          // total_seconds per completion
  std::vector<double> queue_waits_;        // queue_seconds per completion
};

// Percentile of `sorted` (ascending) by nearest-rank; 0 for empty input.
// Exposed for tests and other reporters.
double PercentileSorted(const std::vector<double>& sorted, double pct);

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_SERVE_STATS_H_
