#include "serve/replica_router.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <string>
#include <utility>

namespace gmpsvm {
namespace {

// Matches kWorkerLaneStride in server.cc: each worker's simulated device
// occupies 16 lanes, so a replica's band is 16 lanes per worker.
constexpr int kLanesPerWorker = 16;

}  // namespace

ReplicaRouter::ReplicaRouter(ModelRegistry* registry, RouterOptions options)
    : options_(std::move(options)) {
  std::vector<ExecutorModel> devices = options_.devices;
  if (devices.empty()) devices.push_back(options_.serve.executor_model);
  const int workers = std::max(1, options_.serve.num_workers);
  replicas_.reserve(devices.size());
  for (size_t r = 0; r < devices.size(); ++r) {
    ServeOptions serve = options_.serve;
    serve.executor_model = devices[r];
    // Private stats registry per replica; router-level series carry the
    // {device=...} label instead.
    serve.metrics = nullptr;
    serve.lane_base = options_.serve.lane_base +
                      static_cast<int>(r) * workers * kLanesPerWorker;
    replicas_.push_back(
        std::make_unique<InferenceServer>(registry, std::move(serve)));
  }
  routed_ = std::vector<std::atomic<int64_t>>(replicas_.size());
}

ReplicaRouter::~ReplicaRouter() { (void)Shutdown(); }

Status ReplicaRouter::Start() {
  for (std::unique_ptr<InferenceServer>& replica : replicas_) {
    GMP_RETURN_NOT_OK(replica->Start());
  }
  return Status::OK();
}

Result<std::future<Result<PredictResponse>>> ReplicaRouter::Submit(
    std::span<const int32_t> indices, std::span<const double> values,
    Deadline deadline) {
  // Rank replicas by queue depth (snapshot), ties to the lowest index, and
  // admit at the first that accepts. Depths move under concurrent Submits —
  // the ranking is a heuristic, the fallback is the guarantee.
  std::vector<size_t> order(replicas_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<size_t> depth(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    depth[r] = replicas_[r]->queue_depth();
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return depth[a] < depth[b]; });

  Status last = Status::ResourceExhausted("router has no replicas");
  for (size_t r : order) {
    Result<std::future<Result<PredictResponse>>> admitted =
        replicas_[r]->Submit(indices, values, deadline);
    if (admitted.ok()) {
      routed_[r].fetch_add(1, std::memory_order_relaxed);
      NoteRouted(r);
      return admitted;
    }
    last = admitted.status();
    // Only a full queue justifies spilling to the next replica; malformed
    // rows or a shut-down server fail the same way everywhere.
    if (!last.IsResourceExhausted()) return last;
  }
  return last;
}

Result<PredictResponse> ReplicaRouter::Predict(std::span<const int32_t> indices,
                                               std::span<const double> values,
                                               Deadline deadline) {
  GMP_ASSIGN_OR_RETURN(auto future, Submit(indices, values, deadline));
  while (future.wait_for(deadline.BoundedRemaining(std::chrono::seconds(1))) !=
         std::future_status::ready) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("request deadline expired while waiting");
    }
  }
  return future.get();
}

Status ReplicaRouter::Shutdown() {
  Status first = Status::OK();
  for (std::unique_ptr<InferenceServer>& replica : replicas_) {
    const Status s = replica->Shutdown();
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

void ReplicaRouter::NoteRouted(size_t r) {
  if (options_.metrics == nullptr) return;
  const obs::Labels labels = {{"device", std::to_string(r)}};
  options_.metrics
      ->GetCounter(
          "gmpsvm_router_requests_routed_total",
          "Requests dispatched to a replica by the least-loaded router.",
          labels)
      ->Increment();
  options_.metrics
      ->GetGauge("gmpsvm_router_replica_queue_depth",
                 "Peak replica queue depth observed at routing decisions.",
                 labels)
      ->SetMax(static_cast<double>(replicas_[r]->queue_depth()));
}

}  // namespace gmpsvm
