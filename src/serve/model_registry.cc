#include "serve/model_registry.h"

#include <utility>

#include "core/model_io.h"
#include "fault/fault_injector.h"

namespace gmpsvm {

Result<int64_t> ModelRegistry::Register(const std::string& name,
                                        MpSvmModel model) {
  if (model.num_classes < 2 || model.svms.empty()) {
    return Status::InvalidArgument("cannot register an empty model: " + name);
  }
  auto shared = std::make_shared<const MpSvmModel>(std::move(model));
  // Validation, the injected-failure gate and the commit share one critical
  // section: concurrent swaps of the same name fully serialize, so the
  // version a Register returns always describes the model it carried — a
  // slower older candidate can never commit over a newer one (the
  // swap-under-load race). Every rejection happens before the entry is
  // touched, so a failed swap is an automatic rollback: the previous version
  // keeps serving.
  std::lock_guard<std::mutex> lock(mu_);
  if (validator_ != nullptr) {
    Status validated = validator_(*shared);
    if (!validated.ok()) {
      return Status::InvalidArgument("model validation failed for " + name +
                                     ": " + validated.message());
    }
  }
  if (fault_ != nullptr && models_.count(name) != 0 &&
      fault_->ShouldInject(fault::Site::kModelSwap)) {
    return Status::Unavailable("injected hot-swap failure for " + name);
  }
  const int64_t version = ++next_version_[name];
  models_[name] = Entry{std::move(shared), version};
  return version;
}

void ModelRegistry::SetValidator(ModelValidator validator) {
  std::lock_guard<std::mutex> lock(mu_);
  validator_ = std::move(validator);
}

void ModelRegistry::SetFaultInjector(fault::FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_ = injector;
}

Result<int64_t> ModelRegistry::LoadFromFile(const std::string& name,
                                            const std::string& path) {
  GMP_ASSIGN_OR_RETURN(MpSvmModel model, LoadModel(path));
  return Register(name, std::move(model));
}

Result<ModelHandle> ModelRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::FailedPrecondition("no model registered as: " + name);
  }
  return ModelHandle{it->second.model, it->second.version, name};
}

bool ModelRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, entry] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace gmpsvm
