// ReplicaRouter: sharded serving across cluster devices.
//
// One InferenceServer replica per device model, all serving the same
// ModelRegistry (a hot-swap takes effect on every replica's next batch), with
// least-loaded dispatch: Submit routes each request to the replica with the
// shallowest queue (ties to the lowest replica index) and falls through to
// the next-least-loaded replica when a queue rejects with
// kResourceExhausted — a request is only rejected when every replica is full.
//
// Per-request results stay bit-identical to a direct MpSvmPredictor call
// whichever replica answers (the single-server guarantee, per replica).
//
// Observability: each replica keeps its own private ServeStats registry
// (reachable via replica(r)->stats()) so per-worker series from different
// replicas never collide; the router publishes its own routing counters and
// queue-depth gauges labeled {device=...} into RouterOptions::metrics. When
// a trace recorder is shared, replica r's lanes are offset by
// r * 16 * num_workers via ServeOptions::lane_base so the merged trace shows
// one band per device.

#ifndef GMPSVM_SERVE_REPLICA_ROUTER_H_
#define GMPSVM_SERVE_REPLICA_ROUTER_H_

#include <atomic>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "serve/server.h"

namespace gmpsvm {

struct RouterOptions {
  // Template applied to every replica. Its executor_model is ignored when
  // `devices` is non-empty; its metrics pointer is ignored (replicas keep
  // private registries — see the header comment); its lane_base is the base
  // of replica 0's band.
  ServeOptions serve;

  // One replica per device model. Empty = one replica on
  // serve.executor_model.
  std::vector<ExecutorModel> devices;

  // Router-level metrics: gmpsvm_router_* series labeled {device=...}.
  // Null disables publication.
  obs::MetricsRegistry* metrics = nullptr;
};

class ReplicaRouter {
 public:
  // The registry must outlive the router.
  ReplicaRouter(ModelRegistry* registry, RouterOptions options);
  ~ReplicaRouter();

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  // Starts every replica; fails on the first replica that cannot start.
  Status Start();

  // Least-loaded admission across replicas (see header comment). Fails with
  // the last replica's kResourceExhausted only when every replica rejected.
  Result<std::future<Result<PredictResponse>>> Submit(
      std::span<const int32_t> indices, std::span<const double> values,
      Deadline deadline = Deadline::Infinite());

  // Submit + wait, flattening admission and per-request errors.
  Result<PredictResponse> Predict(std::span<const int32_t> indices,
                                  std::span<const double> values,
                                  Deadline deadline = Deadline::Infinite());

  // Shuts every replica down (drains accepted requests). Idempotent;
  // returns the first error.
  Status Shutdown();

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  InferenceServer* replica(int r) { return replicas_[static_cast<size_t>(r)].get(); }
  const InferenceServer* replica(int r) const {
    return replicas_[static_cast<size_t>(r)].get();
  }

  // Requests dispatched to replica r so far.
  int64_t routed(int r) const {
    return routed_[static_cast<size_t>(r)].load(std::memory_order_relaxed);
  }

 private:
  void NoteRouted(size_t r);

  RouterOptions options_;
  std::vector<std::unique_ptr<InferenceServer>> replicas_;
  std::vector<std::atomic<int64_t>> routed_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_REPLICA_ROUTER_H_
