#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "metrics/report.h"

namespace gmpsvm {

double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  const size_t index = static_cast<size_t>(std::ceil(rank));
  return sorted[std::min(sorted.size() - 1, index == 0 ? 0 : index - 1)];
}

void ServeStats::RecordAdmitted(size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++admitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth_after);
}

void ServeStats::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeStats::RecordBatch(int batch_size) {
  if (batch_size <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  if (batch_histogram_.size() < static_cast<size_t>(batch_size)) {
    batch_histogram_.resize(static_cast<size_t>(batch_size), 0);
  }
  ++batch_histogram_[static_cast<size_t>(batch_size) - 1];
}

void ServeStats::RecordExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++expired_;
}

void ServeStats::RecordFailed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failed_;
}

void ServeStats::RecordCompleted(double queue_seconds, double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_waits_.push_back(queue_seconds);
  latencies_.push_back(total_seconds);
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  ServeStatsSnapshot snap;
  std::vector<double> latencies, queue_waits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.admitted = admitted_;
    snap.rejected = rejected_;
    snap.expired = expired_;
    snap.failed = failed_;
    snap.batches = batches_;
    snap.max_queue_depth = max_queue_depth_;
    snap.batch_histogram = batch_histogram_;
    snap.elapsed_seconds = elapsed_.ElapsedSeconds();
    latencies = latencies_;
    queue_waits = queue_waits_;
  }
  snap.submitted = snap.admitted + snap.rejected;
  snap.completed = latencies.size();
  if (snap.elapsed_seconds > 0.0) {
    snap.throughput_rps =
        static_cast<double>(snap.completed) / snap.elapsed_seconds;
  }

  if (!latencies.empty()) {
    snap.latency_mean =
        std::accumulate(latencies.begin(), latencies.end(), 0.0) /
        static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    snap.latency_p50 = PercentileSorted(latencies, 50.0);
    snap.latency_p95 = PercentileSorted(latencies, 95.0);
    snap.latency_p99 = PercentileSorted(latencies, 99.0);
    snap.latency_max = latencies.back();
  }
  if (!queue_waits.empty()) {
    snap.queue_mean =
        std::accumulate(queue_waits.begin(), queue_waits.end(), 0.0) /
        static_cast<double>(queue_waits.size());
    std::sort(queue_waits.begin(), queue_waits.end());
    snap.queue_p99 = PercentileSorted(queue_waits, 99.0);
  }

  uint64_t batched_requests = 0;
  for (size_t i = 0; i < snap.batch_histogram.size(); ++i) {
    batched_requests += snap.batch_histogram[i] * (i + 1);
    if (snap.batch_histogram[i] > 0) {
      snap.max_batch_size = static_cast<int>(i + 1);
    }
  }
  if (snap.batches > 0) {
    snap.mean_batch_size = static_cast<double>(batched_requests) /
                           static_cast<double>(snap.batches);
  }
  while (!snap.batch_histogram.empty() && snap.batch_histogram.back() == 0) {
    snap.batch_histogram.pop_back();
  }
  return snap;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  admitted_ = rejected_ = expired_ = failed_ = batches_ = 0;
  max_queue_depth_ = 0;
  batch_histogram_.clear();
  latencies_.clear();
  queue_waits_.clear();
  elapsed_.Reset();
}

std::string ServeStatsSnapshot::ToTable() const {
  TablePrinter table({"metric", "value"});
  table.AddRow({"submitted", std::to_string(submitted)});
  table.AddRow({"admitted", std::to_string(admitted)});
  table.AddRow({"rejected", std::to_string(rejected)});
  table.AddRow({"expired", std::to_string(expired)});
  table.AddRow({"failed", std::to_string(failed)});
  table.AddRow({"completed", std::to_string(completed)});
  table.AddRow({"batches", std::to_string(batches)});
  table.AddRow({"mean batch size", StrPrintf("%.2f", mean_batch_size)});
  table.AddRow({"max batch size", std::to_string(max_batch_size)});
  table.AddRow({"max queue depth", std::to_string(max_queue_depth)});
  table.AddRow({"throughput", StrPrintf("%.1f req/s", throughput_rps)});
  table.AddRow({"latency mean", HumanSeconds(latency_mean)});
  table.AddRow({"latency p50", HumanSeconds(latency_p50)});
  table.AddRow({"latency p95", HumanSeconds(latency_p95)});
  table.AddRow({"latency p99", HumanSeconds(latency_p99)});
  table.AddRow({"latency max", HumanSeconds(latency_max)});
  table.AddRow({"queue wait mean", HumanSeconds(queue_mean)});
  table.AddRow({"queue wait p99", HumanSeconds(queue_p99)});
  return table.ToString();
}

}  // namespace gmpsvm
