#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "metrics/report.h"

namespace gmpsvm {

double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size());
  const size_t index = static_cast<size_t>(std::ceil(rank));
  return sorted[std::min(sorted.size() - 1, index == 0 ? 0 : index - 1)];
}

ServeStats::ServeStats(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  admitted_ = registry_->GetCounter("gmpsvm_serve_admitted_total",
                                    "Requests accepted at admission.");
  rejected_ = registry_->GetCounter(
      "gmpsvm_serve_rejected_total",
      "Requests rejected at admission (queue full or malformed).");
  expired_ = registry_->GetCounter("gmpsvm_serve_expired_total",
                                   "Requests whose deadline passed while queued.");
  failed_ = registry_->GetCounter("gmpsvm_serve_failed_total",
                                  "Requests failed by prediction errors.");
  batches_ = registry_->GetCounter("gmpsvm_serve_batches_total",
                                   "Micro-batches executed.");
  faults_ = registry_->GetCounter(
      "gmpsvm_serve_faults_total",
      "Transient prediction faults observed by workers.");
  retries_ = registry_->GetCounter(
      "gmpsvm_serve_retries_total",
      "Per-request prediction retries after transient faults.");
  degraded_entries_ = registry_->GetCounter(
      "gmpsvm_serve_degraded_entries_total",
      "Times the server shrank its effective max batch size under faults.");
  effective_max_batch_ = registry_->GetGauge(
      "gmpsvm_serve_effective_max_batch",
      "Current effective max batch size (shrinks in degraded mode).");
  max_queue_depth_ = registry_->GetGauge(
      "gmpsvm_serve_max_queue_depth",
      "Queue-depth high-water mark observed at admissions.");
  batch_size_ = registry_->GetHistogram("gmpsvm_serve_batch_size",
                                        "Requests per executed micro-batch.",
                                        obs::Histogram::SizeBuckets());
  latency_ = registry_->GetHistogram(
      "gmpsvm_serve_latency_seconds",
      "End-to-end request latency (admission to response).",
      obs::Histogram::LatencyBuckets());
  queue_wait_ = registry_->GetHistogram(
      "gmpsvm_serve_queue_wait_seconds",
      "Queue wait (admission to batch formation).",
      obs::Histogram::LatencyBuckets());
}

void ServeStats::RecordAdmitted(size_t queue_depth_after) {
  admitted_->Increment();
  max_queue_depth_->SetMax(static_cast<double>(queue_depth_after));
}

void ServeStats::RecordRejected() { rejected_->Increment(); }

void ServeStats::RecordBatch(int batch_size) {
  if (batch_size <= 0) return;
  batches_->Increment();
  batch_size_->Observe(static_cast<double>(batch_size));
}

void ServeStats::RecordExpired() { expired_->Increment(); }

void ServeStats::RecordFailed() { failed_->Increment(); }

void ServeStats::RecordCompleted(double queue_seconds, double total_seconds) {
  queue_wait_->Observe(queue_seconds);
  latency_->Observe(total_seconds);
}

void ServeStats::RecordFault() { faults_->Increment(); }

void ServeStats::RecordRetry() { retries_->Increment(); }

void ServeStats::RecordDegradedEntry() { degraded_entries_->Increment(); }

void ServeStats::SetEffectiveMaxBatch(int max_batch) {
  effective_max_batch_->Set(static_cast<double>(max_batch));
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  ServeStatsSnapshot snap;
  snap.admitted = static_cast<uint64_t>(admitted_->Value());
  snap.rejected = static_cast<uint64_t>(rejected_->Value());
  snap.expired = static_cast<uint64_t>(expired_->Value());
  snap.failed = static_cast<uint64_t>(failed_->Value());
  snap.batches = static_cast<uint64_t>(batches_->Value());
  snap.faults = static_cast<uint64_t>(faults_->Value());
  snap.retries = static_cast<uint64_t>(retries_->Value());
  snap.degraded_entries = static_cast<uint64_t>(degraded_entries_->Value());
  snap.effective_max_batch = static_cast<int>(effective_max_batch_->Value());
  snap.max_queue_depth = static_cast<size_t>(max_queue_depth_->Value());
  snap.elapsed_seconds = elapsed_.ElapsedSeconds();

  const obs::HistogramSnapshot latencies = latency_->Snapshot();
  const obs::HistogramSnapshot queue_waits = queue_wait_->Snapshot();
  const obs::HistogramSnapshot batch_sizes = batch_size_->Snapshot();

  snap.submitted = snap.admitted + snap.rejected;
  snap.completed = latencies.count;
  if (snap.elapsed_seconds > 0.0) {
    snap.throughput_rps =
        static_cast<double>(snap.completed) / snap.elapsed_seconds;
  }

  if (latencies.count > 0) {
    snap.latency_mean = latencies.Mean();
    snap.latency_p50 = latencies.Percentile(50.0);
    snap.latency_p95 = latencies.Percentile(95.0);
    snap.latency_p99 = latencies.Percentile(99.0);
    snap.latency_max = latencies.Max();
  }
  if (queue_waits.count > 0) {
    snap.queue_mean = queue_waits.Mean();
    snap.queue_p99 = queue_waits.Percentile(99.0);
  }

  // Rebuild the exact per-size batch histogram from the retained samples
  // (index i = batches of size i+1, trailing zeros trimmed).
  uint64_t batched_requests = 0;
  for (double s : batch_sizes.samples) {
    const size_t size = static_cast<size_t>(s);
    if (size == 0) continue;
    if (snap.batch_histogram.size() < size) snap.batch_histogram.resize(size, 0);
    ++snap.batch_histogram[size - 1];
    batched_requests += size;
    snap.max_batch_size = std::max(snap.max_batch_size, static_cast<int>(size));
  }
  if (snap.batches > 0) {
    snap.mean_batch_size = static_cast<double>(batched_requests) /
                           static_cast<double>(snap.batches);
  }
  return snap;
}

void ServeStats::Reset() {
  admitted_->Reset();
  rejected_->Reset();
  expired_->Reset();
  failed_->Reset();
  batches_->Reset();
  faults_->Reset();
  retries_->Reset();
  degraded_entries_->Reset();
  effective_max_batch_->Reset();
  max_queue_depth_->Reset();
  batch_size_->Reset();
  latency_->Reset();
  queue_wait_->Reset();
  elapsed_.Reset();
}

std::string ServeStatsSnapshot::ToTable() const {
  TablePrinter table({"metric", "value"});
  table.AddRow({"submitted", std::to_string(submitted)});
  table.AddRow({"admitted", std::to_string(admitted)});
  table.AddRow({"rejected", std::to_string(rejected)});
  table.AddRow({"expired", std::to_string(expired)});
  table.AddRow({"failed", std::to_string(failed)});
  table.AddRow({"completed", std::to_string(completed)});
  table.AddRow({"batches", std::to_string(batches)});
  table.AddRow({"faults", std::to_string(faults)});
  table.AddRow({"retries", std::to_string(retries)});
  table.AddRow({"degraded entries", std::to_string(degraded_entries)});
  table.AddRow({"mean batch size", StrPrintf("%.2f", mean_batch_size)});
  table.AddRow({"max batch size", std::to_string(max_batch_size)});
  table.AddRow({"max queue depth", std::to_string(max_queue_depth)});
  table.AddRow({"throughput", StrPrintf("%.1f req/s", throughput_rps)});
  table.AddRow({"latency mean", HumanSeconds(latency_mean)});
  table.AddRow({"latency p50", HumanSeconds(latency_p50)});
  table.AddRow({"latency p95", HumanSeconds(latency_p95)});
  table.AddRow({"latency p99", HumanSeconds(latency_p99)});
  table.AddRow({"latency max", HumanSeconds(latency_max)});
  table.AddRow({"queue wait mean", HumanSeconds(queue_mean)});
  table.AddRow({"queue wait p99", HumanSeconds(queue_p99)});
  return table.ToString();
}

}  // namespace gmpsvm
