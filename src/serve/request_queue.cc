#include "serve/request_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace gmpsvm {

Status RequestQueue::Push(PendingRequest item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("request queue is closed");
    }
    if (items_.size() >= capacity_) {
      return Status::ResourceExhausted(
          "request queue full (" + std::to_string(capacity_) + " pending)");
    }
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
  return Status::OK();
}

bool RequestQueue::Pop(PendingRequest* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || (!paused_ && !items_.empty()); });
  if (items_.empty()) return false;  // closed and drained
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

size_t RequestQueue::PopBatch(size_t max_batch,
                              MonotonicClock::duration max_delay,
                              std::vector<PendingRequest>* out) {
  if (max_batch == 0) max_batch = 1;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || (!paused_ && !items_.empty()); });
  if (items_.empty()) return 0;  // closed and drained

  // The batch closes when full or when the oldest member has been waiting
  // `max_delay` since admission; a request that already waited that long in
  // the queue leaves immediately with whatever is on hand. SafeTimeAdd keeps
  // an effectively-infinite max_delay (e.g. duration::max from an infinite
  // deadline) from overflowing the time_point arithmetic.
  const MonotonicTime batch_deadline =
      SafeTimeAdd(items_.front().enqueue_time, max_delay);
  // Batches are homogeneous in model name so every batch predicts against a
  // single registry snapshot even when requests for many models share the
  // queue: the oldest queued request picks the batch's model, and takes
  // extract only matching requests, leaving the others in admission order
  // for the next consumer.
  const std::string batch_model = items_.front().request.model_name;
  size_t popped = 0;
  auto take_available = [&] {
    for (auto it = items_.begin(); popped < max_batch && it != items_.end();) {
      if (it->request.model_name == batch_model) {
        out->push_back(std::move(*it));
        it = items_.erase(it);
        ++popped;
      } else {
        ++it;
      }
    }
  };
  take_available();
  while (popped < max_batch && !closed_ && MonotonicNow() < batch_deadline) {
    // Wait in bounded slices rather than handing a potentially huge
    // time_point to wait_until (whose clock conversions can overflow).
    const MonotonicTime slice = std::min(
        batch_deadline, SafeTimeAdd(MonotonicNow(), std::chrono::seconds(1)));
    cv_.wait_until(lock, slice,
                   [this] { return closed_ || !items_.empty(); });
    if (!paused_) take_available();
  }
  return popped;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void RequestQueue::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace gmpsvm
