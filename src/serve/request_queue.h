// Bounded MPMC queue of pending predict requests — the admission-control
// point of the serving layer. Producers (client threads) push without
// blocking: a full queue rejects immediately with kResourceExhausted so
// overload sheds load at the door instead of growing latency without bound.
// Consumers (worker threads) block for work; Close() stops admissions while
// letting consumers drain everything already accepted, which is what makes
// graceful shutdown lossless.

#ifndef GMPSVM_SERVE_REQUEST_QUEUE_H_
#define GMPSVM_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "serve/request.h"

namespace gmpsvm {

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking admission. kResourceExhausted when full; kFailedPrecondition
  // after Close().
  Status Push(PendingRequest item);

  // Blocks until an item is available (returns true) or the queue is closed
  // and empty (returns false). Paused queues hold consumers even when items
  // are queued — Close() overrides the pause so draining always proceeds.
  bool Pop(PendingRequest* out);

  // Pops up to `max_batch` items for one micro-batch. Blocks for the first
  // item like Pop(); then keeps the batch open until it is full or
  // `max_delay` has elapsed since the *oldest* item in it was enqueued (so
  // batching adds at most `max_delay` of queueing latency to any request).
  // Returns the number of items appended to `out`; 0 means closed-and-empty.
  size_t PopBatch(size_t max_batch, MonotonicClock::duration max_delay,
                  std::vector<PendingRequest>* out);

  // Stops admissions; consumers drain the remainder. Idempotent.
  void Close();

  // Consumption gate: while paused, Pop/PopBatch block even when items are
  // queued (admission is unaffected). Used for deterministic overflow tests
  // and stop-the-world maintenance.
  void Pause();
  void Resume();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes consumers: item pushed / closed / resumed
  std::deque<PendingRequest> items_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_REQUEST_QUEUE_H_
