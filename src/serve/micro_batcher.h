// MicroBatcher: turns the request queue's stream of single-instance requests
// into prediction tiles. This is where the paper's prediction-phase
// economics (Section 3.3.3) meet the serving path: the shared-SV kernel
// block costs one tile x pool computation regardless of how many requests
// share the tile, so coalescing B requests divides the per-request kernel
// and fixed dispatch cost by B at the price of at most `max_queue_delay`
// extra latency for the earliest request.
//
// The batcher also retires requests whose deadline passed while queued —
// they are returned separately so the worker can fail them without spending
// prediction work on them.

#ifndef GMPSVM_SERVE_MICRO_BATCHER_H_
#define GMPSVM_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <vector>

#include "serve/request_queue.h"

namespace gmpsvm {

struct BatchingOptions {
  // Upper bound on requests per tile; 1 disables coalescing (every request
  // is its own Predict call — the baseline the serve bench compares against).
  int max_batch_size = 32;

  // How long a batch may stay open waiting to fill, measured from the
  // admission of its oldest request. Zero means "take whatever is queued
  // right now" (no added latency, batches form only under backlog).
  std::chrono::microseconds max_queue_delay{500};
};

class MicroBatcher {
 public:
  struct Batch {
    // Requests to predict, in admission order.
    std::vector<PendingRequest> requests;
    // Requests whose deadline expired while queued; fail, don't predict.
    std::vector<PendingRequest> expired;

    bool empty() const { return requests.empty() && expired.empty(); }
  };

  // The queue must outlive the batcher.
  MicroBatcher(RequestQueue* queue, const BatchingOptions& options)
      : queue_(queue), options_(options) {}

  // Blocks for the next batch. An empty() batch means the queue is closed
  // and fully drained — the consumer should exit. A positive
  // `max_batch_override` caps this batch below options().max_batch_size
  // (degraded-mode servers shrink their batches after repeated faults);
  // 0 uses the configured maximum.
  Batch NextBatch(size_t max_batch_override = 0);

  const BatchingOptions& options() const { return options_; }

 private:
  RequestQueue* queue_;
  BatchingOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_MICRO_BATCHER_H_
