// InferenceServer: the in-process serving front end over MpSvmPredictor.
//
//   client threads ──Submit()──▶ RequestQueue (bounded, admission control)
//                                    │
//                              MicroBatcher (coalesce ≤ max_batch_size,
//                                    │        wait ≤ max_queue_delay)
//                              worker pool (common/ThreadPool; one simulated
//                                    │      executor per worker)
//                              MpSvmPredictor::PredictRows on a ModelRegistry
//                                    │      snapshot (hot-swappable)
//                               std::future<Result<PredictResponse>> per
//                                          request
//
// Guarantees:
//   * a request accepted by Submit() always receives a response — graceful
//     Shutdown() drains the queue before workers exit;
//   * a full queue rejects at the door with kResourceExhausted (the future
//     is never created), so overload cannot grow memory or tail latency
//     without bound;
//   * per-request results are bit-identical to calling
//     MpSvmPredictor::Predict directly on the same rows, whatever batch
//     composition the coalescing produced;
//   * model hot-swap (ModelRegistry::Register under a served name) is atomic
//     per batch: a batch runs wholly against one model snapshot.

#ifndef GMPSVM_SERVE_SERVER_H_
#define GMPSVM_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/predictor.h"
#include "device/executor.h"
#include "fault/fault_injector.h"
#include "obs/span.h"
#include "serve/micro_batcher.h"
#include "serve/model_registry.h"
#include "serve/request_queue.h"
#include "serve/serve_stats.h"

namespace gmpsvm {

struct ServeOptions {
  // Name resolved against the registry for batches of requests that do not
  // carry their own model_name (so a hot-swapped model takes effect on the
  // next batch without a restart). Requests submitted with an explicit model
  // name override this per batch — see PredictRequest::model_name.
  std::string model_name = "default";

  // Worker threads, each with its own simulated-device executor.
  int num_workers = 2;

  // Admission bound: Submit() rejects with kResourceExhausted beyond this.
  size_t queue_capacity = 1024;

  BatchingOptions batching;

  // Passed through to MpSvmPredictor for every batch.
  PredictOptions predict;

  // Optional resolver mapping the model snapshot a batch runs against to a
  // cross-model kernel-value cache binding (the fleet SV store). Returning
  // nullptr disables caching for that batch. Called on worker threads —
  // must be thread-safe and outlive the server. Only consulted on the
  // shared-kernel path; results stay byte-identical either way.
  std::function<PredictionKernelCache*(const ModelHandle&)>
      kernel_cache_resolver;

  // Optional resolver for per-model PredictOptions overrides (the fleet's
  // per-tenant cascade/decision knobs). Consulted once per batch with the
  // batch's resolved model name; returning nullopt keeps the server-wide
  // `predict` above. The returned options replace `predict` wholesale (the
  // kernel_cache_resolver still applies afterwards) and must already be
  // valid — the fleet validates them at tenant registration. Called on
  // worker threads: must be thread-safe and outlive the server.
  std::function<std::optional<PredictOptions>(const std::string& model_name)>
      predict_options_resolver;

  // Simulated device each worker runs on.
  ExecutorModel executor_model = ExecutorModel::TeslaP100();

  // Optional shared registry: serve counters/histograms publish here (and
  // each worker publishes its device counters labeled {worker=...}); nullptr
  // keeps them in a server-private registry reachable via stats().registry().
  obs::MetricsRegistry* metrics = nullptr;

  // Optional span sink: workers record per-batch queue_wait/predict/respond
  // host spans on a per-worker lane, and each worker's simulated device
  // feeds its stream spans into the same recorder (lane base
  // lane_base + 16 * worker), yielding one merged Chrome trace. Must outlive
  // the server.
  obs::TraceRecorder* trace = nullptr;

  // Offset added to every lane this server emits (host and device). Lets
  // several servers — e.g. a ReplicaRouter's per-device replicas — share one
  // recorder without their rows colliding; give each replica a band of
  // 16 * num_workers lanes.
  int lane_base = 0;

  // --- Fault recovery -------------------------------------------------------
  // Optional injector attached to every worker's simulated device, so
  // prediction allocations can fail transiently and streams can take latency
  // spikes. Must outlive the server.
  fault::FaultInjector* fault = nullptr;

  // Per-request retry budget after a transient (kUnavailable) prediction
  // failure. Retries stop early once the request's deadline has expired; the
  // request then fails with the fault's status (still a terminal Result —
  // accepted requests always get an answer).
  int max_request_retries = 1;

  // Degraded mode: after this many consecutive transient batch faults the
  // server halves its effective max batch size (floor 1); after
  // recover_after_successes consecutive fault-free batches it doubles back
  // toward the configured maximum.
  int degraded_after_faults = 3;
  int recover_after_successes = 8;
};

class InferenceServer {
 public:
  // The registry must outlive the server.
  InferenceServer(ModelRegistry* registry, ServeOptions options);

  // Drains and joins (Shutdown).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Spawns the worker pool. kFailedPrecondition if already started or shut
  // down. Requests submitted before Start() wait in the queue.
  Status Start();

  // Admission. Copies the sparse row (0-based, strictly increasing indices)
  // and returns a future the worker pool fulfils; the future resolves to
  // Result<PredictResponse> so per-request failures (deadline expiry, model
  // errors) carry library Status codes. Submit itself fails fast with
  // kResourceExhausted (queue full), kInvalidArgument (malformed row), or
  // kFailedPrecondition (shut down) — no future is created on failure.
  Result<std::future<Result<PredictResponse>>> Submit(
      std::span<const int32_t> indices, std::span<const double> values,
      Deadline deadline = Deadline::Infinite());

  // Multi-model admission: the request resolves against `model_name`
  // (batches are formed per model, so it never shares a tile with another
  // model's requests), and `on_complete` — if non-empty — runs on the worker
  // thread with the terminal result just before the future resolves. An
  // empty model_name falls back to options().model_name.
  Result<std::future<Result<PredictResponse>>> Submit(
      std::span<const int32_t> indices, std::span<const double> values,
      Deadline deadline, std::string model_name,
      CompletionCallback on_complete = nullptr);

  // Convenience: Submit + wait, flattening admission and per-request errors
  // into one Result.
  Result<PredictResponse> Predict(std::span<const int32_t> indices,
                                  std::span<const double> values,
                                  Deadline deadline = Deadline::Infinite());

  // Consumption gate (admission unaffected). Pause lets tests and
  // maintenance windows build a backlog deterministically; Resume releases
  // the workers.
  void Pause();
  void Resume();

  // Stops admissions, drains every accepted request, joins the workers.
  // Idempotent; returns the first error encountered (none expected).
  Status Shutdown();

  const ServeStats& stats() const { return stats_; }
  size_t queue_depth() const { return queue_.size(); }
  const ServeOptions& options() const { return options_; }

  // Current degraded-mode batch cap (== batching.max_batch_size when
  // healthy).
  int effective_max_batch() const { return effective_max_batch_.load(); }

 private:
  void WorkerLoop(int worker_index);
  static void Respond(PendingRequest item, Result<PredictResponse> response);

  // Degraded-mode bookkeeping, called by workers per batch outcome.
  void NoteBatchFault();
  void NoteBatchSuccess();

  ModelRegistry* registry_;
  ServeOptions options_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  ServeStats stats_;
  std::unique_ptr<ThreadPool> workers_;
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool shut_down_ = false;

  std::atomic<int> effective_max_batch_{1};
  std::atomic<int> consecutive_faults_{0};
  std::atomic<int> consecutive_successes_{0};
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_SERVER_H_
