#include "serve/micro_batcher.h"

#include <algorithm>
#include <utility>

namespace gmpsvm {

MicroBatcher::Batch MicroBatcher::NextBatch(size_t max_batch_override) {
  Batch batch;
  const size_t configured =
      static_cast<size_t>(std::max(1, options_.max_batch_size));
  const size_t max_batch = max_batch_override > 0
                               ? std::min(configured, max_batch_override)
                               : configured;
  std::vector<PendingRequest> popped;
  if (queue_->PopBatch(max_batch, options_.max_queue_delay, &popped) == 0) {
    return batch;  // closed and drained
  }
  for (auto& item : popped) {
    if (item.request.deadline.Expired()) {
      batch.expired.push_back(std::move(item));
    } else {
      batch.requests.push_back(std::move(item));
    }
  }
  return batch;
}

}  // namespace gmpsvm
