// ModelRegistry: named, versioned MpSvmModels with atomic hot-swap.
//
// Workers resolve a model by name into a ModelHandle — a shared_ptr snapshot
// plus the version it carries. Registering a new model under an existing
// name swaps the pointer under the registry lock; in-flight batches keep
// predicting against the snapshot they already hold, so a swap never tears a
// batch and never blocks on prediction work. Old versions are freed when the
// last in-flight batch drops its handle.

#ifndef GMPSVM_SERVE_MODEL_REGISTRY_H_
#define GMPSVM_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace gmpsvm {

namespace fault {
class FaultInjector;
}  // namespace fault

// A consistent (model, version) snapshot. Copyable; keeps the model alive.
struct ModelHandle {
  std::shared_ptr<const MpSvmModel> model;
  int64_t version = 0;
  std::string name;

  bool valid() const { return model != nullptr; }
};

// Optional gate run against a candidate model before it is committed.
// Returning a non-OK status rejects the swap; the previous version stays
// registered and keeps serving (rollback is "never commit").
using ModelValidator = std::function<Status(const MpSvmModel&)>;

class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Registers `model` under `name`, replacing any current version atomically.
  // Returns the new version number (1 for a fresh name, previous + 1 on
  // swap). Rejects structurally empty models, models failing the validator
  // (if set), and — under an attached fault injector — injected swap
  // failures (kUnavailable). A rejected swap leaves the previous version
  // serving untouched.
  Result<int64_t> Register(const std::string& name, MpSvmModel model);

  // Installs a validation gate for all future Register calls (nullptr
  // clears it).
  void SetValidator(ModelValidator validator);

  // Attaches a fault injector consulted (site kModelSwap) when Register
  // would replace an existing version; nullptr detaches. The injector must
  // outlive the registry.
  void SetFaultInjector(fault::FaultInjector* injector);

  // Loads a model file (core/model_io) and registers it.
  Result<int64_t> LoadFromFile(const std::string& name, const std::string& path);

  // Snapshot of the current version of `name`; kFailedPrecondition when the
  // name is unknown.
  Result<ModelHandle> Get(const std::string& name) const;

  // Removes `name`; returns whether it existed. In-flight handles stay valid.
  bool Remove(const std::string& name);

  // Registered names, sorted.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const MpSvmModel> model;
    int64_t version = 0;
  };

  mutable std::mutex mu_;
  ModelValidator validator_;
  fault::FaultInjector* fault_ = nullptr;
  std::map<std::string, Entry> models_;
  // Version counters survive Remove() so a re-registered name keeps
  // monotonically increasing versions.
  std::map<std::string, int64_t> next_version_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_MODEL_REGISTRY_H_
