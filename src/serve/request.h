// Request/response types for the in-process inference service (src/serve).
//
// A PredictRequest is one sparse instance; the service coalesces many of
// them into tiles so the predictor's shared-SV kernel block (Section 3.3.3)
// is computed once per batch instead of once per request. Responses report,
// besides the coupled probabilities, how the request travelled through the
// pipeline (queue wait, batch it rode in) so clients and benchmarks can
// attribute latency.

#ifndef GMPSVM_SERVE_REQUEST_H_
#define GMPSVM_SERVE_REQUEST_H_

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace gmpsvm {

struct PredictRequest {
  // Sparse features, 0-based strictly increasing indices. Owned by the
  // request so the submitting thread may return immediately.
  std::vector<int32_t> indices;
  std::vector<double> values;

  // The request is dropped (kDeadlineExceeded) if still queued past this.
  Deadline deadline;

  // Registry name this request resolves against; empty uses the server's
  // configured default. Micro-batches are formed per model name, so one
  // batch always predicts against a single model snapshot even when a
  // multi-tenant fleet funnels many models through one queue.
  std::string model_name;
};

// A response only exists for a request that succeeded: failures
// (kDeadlineExceeded while queued, model errors, ...) travel as the error
// arm of the Result<PredictResponse> the client's future resolves to, using
// the same Status codes as the rest of the library. Rejections at admission
// time (kResourceExhausted) are reported from Submit() itself and never
// produce a future at all.
struct PredictResponse {
  // Coupled class probabilities (length k) and the argmax label.
  std::vector<double> probabilities;
  int32_t label = -1;

  // Version of the model that served the request (ModelRegistry versioning).
  int64_t model_version = 0;

  // Number of requests in the micro-batch this one rode in.
  int batch_size = 0;

  // Admission -> batch formation, and admission -> completion.
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
};

// Invoked exactly once with the request's terminal result, on the thread
// that fulfils it (a server worker), immediately before the promise is set.
// Lets a layer above the server (the fleet) account per-tenant outcomes
// without wrapping every future. May be empty.
using CompletionCallback =
    std::function<void(const Result<PredictResponse>&)>;

// A queued request: the client holds the future, the worker fulfils the
// promise. Movable only.
struct PendingRequest {
  PredictRequest request;
  std::promise<Result<PredictResponse>> promise;
  MonotonicTime enqueue_time;
  CompletionCallback on_complete;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SERVE_REQUEST_H_
