// MP-SVM probability prediction (Sections 3.2 Phase (iii) and 3.3.3).
//
// Pipeline per tile of test instances:
//   1. decision values v = sum_m coef_m K(x, sv_m) + b for every binary SVM
//      (Equation 11);
//   2. local probabilities r_st = sigmoid_st(v) (Equation 12);
//   3. multi-class coupling (Equation 14/15).
//
// Two kernel-value strategies:
//   * shared (GMP-SVM): compute K(test_tile, SV_pool) ONCE; every binary SVM
//     gathers the values of its support vectors from that block. A support
//     vector referenced by k-1 SVMs costs one kernel evaluation instead of
//     k-1 (support-vector + kernel-value sharing).
//   * per-SVM (GPU baseline): each binary SVM recomputes kernel values for
//     its own support-vector list, one SVM at a time.
// Tiles are sized so the kernel block fits the device-memory budget.

#ifndef GMPSVM_CORE_PREDICTOR_H_
#define GMPSVM_CORE_PREDICTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/stopwatch.h"
#include "core/model.h"
#include "device/executor.h"
#include "prob/pairwise_coupling.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {

// One sparse instance given as parallel index/value arrays (0-based, strictly
// increasing indices). The backing storage must outlive the call it is
// passed to.
struct SparseRowView {
  std::span<const int32_t> indices;
  std::span<const double> values;
};

// Cross-model kernel-value cache consulted by the shared-kernel predict path.
// An implementation (the fleet layer's SV store) maps each pool column of the
// model it was bound to onto a global support-vector identity, so a kernel
// value computed while serving one model can be served from the cache to any
// co-resident model referencing the same support vector — Section 3.3.3's
// sharing applied across models. Because a kernel value is a pure function of
// (query row, SV row, kernel params) and misses are computed through the same
// code path as the uncached block, probabilities stay byte-identical whether
// a cache is attached or not, at any capacity. Implementations must be
// thread-safe (worker threads share one store).
class PredictionKernelCache {
 public:
  virtual ~PredictionKernelCache() = default;

  // Fills out[j] with the cached K(row, pool[j]) and sets hit[j] = 1 for
  // every pool column the cache holds; entries it does not hold are left
  // untouched with hit[j] == 0. `out` and `hit` have one slot per pool row
  // of the bound model. Returns the number of hits.
  virtual int64_t Gather(const SparseRowView& row, std::span<double> out,
                         std::span<uint8_t> hit) = 0;

  // Offers the completed row back after the misses were computed: values[j]
  // holds K(row, pool[j]) for every j, and hit[j] is the mask Gather
  // returned (0-entries are fresh values the cache may insert).
  virtual void Commit(const SparseRowView& row,
                      std::span<const double> values,
                      std::span<const uint8_t> hit) = 0;
};

// Prediction-time class-elimination cascade (DCSVM-style; docs/cascade.md).
// In kEliminate mode an elimination stage scans pairs most-discriminative-
// first (the model's PairCascadeStats order), evaluates at most `budget`
// binary SVMs per row, and eliminates classes whose accumulated pairwise
// loss crosses `elimination_threshold`; exact Wu coupling then runs on the
// surviving class subset only. Rows whose coupled survivor margin falls
// inside `ambiguity_band` are recomputed through the full exact pipeline
// (bit-identical to kExact for those rows). kExact is byte-for-byte the
// pre-cascade predictor.
struct CascadeOptions {
  enum class Mode { kExact, kEliminate };
  Mode mode = Mode::kExact;

  // Elimination-stage budget: binary-SVM evaluations per row. 0 sizes it
  // automatically (4k evaluations, capped at the pair count). Completing the
  // surviving clique before coupling may evaluate beyond the budget.
  int budget = 0;

  // A class is eliminated once its accumulated loss reaches this value. Each
  // evaluated pair (s,t) with local probability r = P(s | {s,t}) adds 1 - r
  // to class s and r to class t, so the default needs strictly more than one
  // decisively-lost pair before a class drops out.
  double elimination_threshold = 1.0;

  // Exact-fallback guard: rows whose top-1/top-2 coupled probability margin
  // is below this band rerun the full exact pipeline. 1.0 forces the exact
  // path for every row; 0 never falls back.
  double ambiguity_band = 0.05;

  // kInvalidArgument naming the offending field, or OK.
  Status Validate() const;
};

struct PredictOptions {
  // How the final label is produced:
  //   kProbability — sigmoid + pairwise coupling, label = argmax p (the
  //                  MP-SVM path; probabilities are calibrated);
  //   kVoting      — LibSVM's plain multi-class rule: each binary SVM votes
  //                  by the sign of its decision value; probabilities are
  //                  reported as vote fractions (NOT calibrated).
  enum class Decision { kProbability, kVoting };
  Decision decision = Decision::kProbability;

  // Shared kernel-value strategy (GMP-SVM) vs per-SVM recomputation
  // (GPU baseline / ablation).
  bool share_kernel_values = true;

  // Evaluate the binary SVMs' decision values concurrently on SM-capped
  // streams (GMP) or sequentially (baseline).
  bool concurrent_svms = true;
  int max_concurrent_svms = 8;

  // Test instances per tile; 0 sizes tiles from the memory budget.
  int64_t tile_rows = 0;

  // Optional cross-model kernel-value cache, consulted only on the shared
  // path (share_kernel_values). Must outlive the call and be thread-safe.
  // Cached values are gathered instead of recomputed (counted as
  // kernel_values_reused on the executor); results are byte-identical with
  // or without it.
  PredictionKernelCache* kernel_cache = nullptr;

  CouplingOptions coupling;

  // SIMD tier for the host hot paths (kernel dots/transforms, decision-value
  // gathers; kAuto = the process-wide active tier, i.e. the `--simd=` flag
  // or hardware detection). Every tier is byte-identical — a speed knob
  // only. Also seeds coupling.simd when that is left at kAuto.
  simd::SimdTier simd = simd::SimdTier::kAuto;

  // Class-elimination cascade; the default (kExact) reproduces the full
  // pipeline bit for bit.
  CascadeOptions cascade;

  // Fail-fast validation, mirroring MpTrainOptions::Validate: checks every
  // field (including the nested cascade options) and returns
  // kInvalidArgument naming the first offending one. Every predictor entry
  // point and serve-option validation call this before doing work.
  Status Validate() const;
};

struct PredictResult {
  int64_t num_instances = 0;
  int num_classes = 0;

  // Row-major num_instances x num_classes coupled probabilities.
  std::vector<double> probabilities;

  // argmax-probability class per instance.
  std::vector<int32_t> labels;

  // Simulated seconds for the whole prediction.
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;

  // Attribution: "decision_values", "sigmoid", "coupling" (Figure 12), plus
  // "elimination" for the cascade's elimination stage.
  PhaseTimer phases;

  // Cascade accounting (kEliminate mode; all zero under kExact). Counts are
  // pure per-row functions of the inputs, so they are byte-identical at any
  // host-thread or device count.
  int64_t cascade_rows = 0;               // rows that ran the elimination stage
  int64_t cascade_fallback_rows = 0;      // rows rerun through the exact path
  int64_t cascade_pairs_evaluated = 0;    // elimination-stage binary evals
  int64_t cascade_classes_eliminated = 0; // summed over non-fallback rows

  double Probability(int64_t instance, int cls) const {
    return probabilities[static_cast<size_t>(instance) * num_classes + cls];
  }
};

class MpSvmPredictor {
 public:
  // The model must outlive the predictor.
  explicit MpSvmPredictor(const MpSvmModel* model) : model_(model) {}

  // Predicts coupled probabilities for every row of `test`.
  Result<PredictResult> Predict(const CsrMatrix& test, SimExecutor* executor,
                                const PredictOptions& options) const;

  // Predicts for an ad-hoc set of sparse rows (assembled into one tile
  // internally). This is the serving-layer entry point: a micro-batch of
  // coalesced single-row requests maps 1:1 onto `rows`, and row i's
  // probabilities are independent of which other rows share the batch —
  // identical bit-for-bit to Predict() on a matrix of the same rows. An
  // empty `rows` yields an empty result.
  Result<PredictResult> PredictRows(std::span<const SparseRowView> rows,
                                    SimExecutor* executor,
                                    const PredictOptions& options) const;

  // Convenience single-instance path: `indices`/`values` are the sparse
  // features (0-based, strictly increasing). Returns the k probabilities
  // under the same options surface as Predict/PredictRows — decision mode,
  // cascade, coupling, and kernel cache all apply (concurrent_svms buys
  // nothing for a single row but does not change results). Batch
  // Predict()/PredictRows() amortizes far better; use this for
  // interactive/online settings.
  Result<std::vector<double>> PredictOne(std::span<const int32_t> indices,
                                         std::span<const double> values,
                                         SimExecutor* executor,
                                         const PredictOptions& options) const;

 private:
  Result<PredictResult> PredictCascade(const CsrMatrix& test,
                                       SimExecutor* executor,
                                       const PredictOptions& options) const;

  const MpSvmModel* model_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_PREDICTOR_H_
