#include "core/ova_trainer.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/thread_pool.h"
#include "device/fork_join.h"
#include "solver/batch_smo_solver.h"

namespace gmpsvm {

Result<OvaModel> OvaTrainer::Train(const Dataset& dataset, SimExecutor* executor,
                                   MpTrainReport* report) const {
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  executor->Transfer(kDefaultStream,
                     static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);

  KernelComputer computer(&dataset.features(), options_.kernel);
  BatchSmoSolver solver(options_.batch);

  OvaModel model;
  model.num_classes = dataset.num_classes();
  model.c = options_.c;
  model.kernel = options_.kernel;
  std::unordered_map<int32_t, int32_t> pool_map;

  // Binary problem: class `cls` (+1) vs everything else (-1), over ALL rows.
  auto make_problem = [&](int cls) {
    BinaryProblem problem;
    problem.data = &dataset.features();
    problem.rows.resize(static_cast<size_t>(dataset.size()));
    std::iota(problem.rows.begin(), problem.rows.end(), 0);
    problem.y.resize(static_cast<size_t>(dataset.size()));
    for (int64_t i = 0; i < dataset.size(); ++i) {
      problem.y[static_cast<size_t>(i)] =
          dataset.labels()[static_cast<size_t>(i)] == cls ? int8_t{1} : int8_t{-1};
    }
    problem.C = options_.c;
    problem.kernel = options_.kernel;
    return problem;
  };

  // One class's solver + sigmoid work, against an arbitrary executor so the
  // serial path (main executor) and the class-parallel path (satellite
  // executors) run identical numeric code.
  auto solve_class = [&](SimExecutor* exec, const BinaryProblem& problem,
                         SolverStats* stats, BinarySolution* solution,
                         SigmoidParams* sigmoid) -> Status {
    GMP_ASSIGN_OR_RETURN(
        *solution,
        solver.Solve(problem, computer, exec, kDefaultStream, stats));
    std::vector<double> v(solution->f.size());
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = solution->f[i] + static_cast<double>(problem.y[i]) + solution->bias;
    }
    GMP_ASSIGN_OR_RETURN(
        *sigmoid,
        FitSigmoid(v, problem.y, options_.platt, exec, kDefaultStream,
                   options_.platt_parallel_candidates));
    return Status::OK();
  };

  // Builds the class's model entry; pool indices depend on insertion order,
  // so entries must be added in class order on one thread.
  auto add_entry = [&](int cls, const BinaryProblem& problem,
                       const BinarySolution& solution,
                       const SigmoidParams& sigmoid) {
    OvaClassEntry entry;
    entry.cls = cls;
    entry.bias = solution.bias;
    entry.sigmoid = sigmoid;
    for (int64_t i = 0; i < problem.n(); ++i) {
      const double a = solution.alpha[static_cast<size_t>(i)];
      if (a <= 0.0) continue;
      const int32_t global_row = problem.rows[static_cast<size_t>(i)];
      auto [it, inserted] = pool_map.try_emplace(
          global_row, static_cast<int32_t>(model.pool_source_rows.size()));
      if (inserted) model.pool_source_rows.push_back(global_row);
      entry.sv_pool_index.push_back(it->second);
      entry.sv_coef.push_back(a * problem.y[static_cast<size_t>(i)]);
    }
    model.classes.push_back(std::move(entry));
  };

  const int class_threads = options_.host_threads > 0
                                ? options_.host_threads
                                : executor->model().host_threads;
  // Chaos runs stay serial so fault decisions are consumed in class order.
  const bool class_parallel =
      class_threads > 1 && executor->fault_injector() == nullptr;

  if (class_parallel) {
    ThreadPool* pool = executor->host_pool();
    std::unique_ptr<ThreadPool> owned_pool;
    if (pool == nullptr || pool->num_threads() != class_threads) {
      owned_pool = std::make_unique<ThreadPool>(class_threads);
      pool = owned_pool.get();
    }

    struct ClassTask {
      BinaryProblem problem;
      ExecEventLog log;
      std::optional<SimExecutor> satellite;
      double base = 0.0;
      Status status;
      SolverStats stats;
      BinarySolution solution;
      SigmoidParams sigmoid;
    };
    std::vector<ClassTask> tasks(static_cast<size_t>(dataset.num_classes()));
    for (int cls = 0; cls < dataset.num_classes(); ++cls) {
      ClassTask& task = tasks[static_cast<size_t>(cls)];
      task.problem = make_problem(cls);
      task.satellite.emplace(
          ForkSatellite(executor, kDefaultStream, &task.log, pool));
      task.base = task.satellite->StreamTime(kDefaultStream);
    }
    pool->ParallelFor(
        static_cast<int64_t>(tasks.size()),
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            ClassTask& task = tasks[static_cast<size_t>(i)];
            task.status = solve_class(&*task.satellite, task.problem,
                                      &task.stats, &task.solution,
                                      &task.sigmoid);
          }
        },
        /*min_chunk=*/1);
    // Replay in class order; a failing class returns after its own replay,
    // exactly where the serial loop would have stopped.
    for (int cls = 0; cls < dataset.num_classes(); ++cls) {
      ClassTask& task = tasks[static_cast<size_t>(cls)];
      JoinSatellite(task.log, *task.satellite, task.base, executor,
                    kDefaultStream);
      GMP_RETURN_NOT_OK(task.status);
      add_entry(cls, task.problem, task.solution, task.sigmoid);
      if (report != nullptr) {
        report->solver.Merge(task.stats);
        report->phases.Merge(task.stats.phases);
      }
    }
  } else {
    for (int cls = 0; cls < dataset.num_classes(); ++cls) {
      BinaryProblem problem = make_problem(cls);
      SolverStats stats;
      BinarySolution solution;
      SigmoidParams sigmoid;
      GMP_RETURN_NOT_OK(
          solve_class(executor, problem, &stats, &solution, &sigmoid));
      add_entry(cls, problem, solution, sigmoid);
      if (report != nullptr) {
        report->solver.Merge(stats);
        report->phases.Merge(stats.phases);
      }
    }
  }
  model.support_vectors = dataset.features().SelectRows(model.pool_source_rows);

  executor->SynchronizeAll();
  if (report != nullptr) {
    report->sim_seconds = executor->NowSeconds() - sim_base;
    report->wall_seconds = wall.ElapsedSeconds();
    report->kernel_values_computed = executor->counters().kernel_values_computed -
                                     counters_base.kernel_values_computed;
    report->kernel_values_reused = executor->counters().kernel_values_reused -
                                   counters_base.kernel_values_reused;
    report->peak_device_bytes = executor->counters().peak_bytes_in_use;
  }
  return model;
}

Result<PredictResult> OvaPredict(const OvaModel& model, const CsrMatrix& test,
                                 SimExecutor* executor) {
  const int k = model.num_classes;
  const int64_t n = test.rows();
  if (k < 2 || model.classes.empty()) {
    return Status::FailedPrecondition("OVA model is empty");
  }
  if (test.cols() != model.support_vectors.cols()) {
    return Status::InvalidArgument("test dimensionality mismatch with model");
  }

  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  PredictResult result;
  result.num_instances = n;
  result.num_classes = k;
  result.probabilities.assign(static_cast<size_t>(n) * k, 0.0);
  result.labels.assign(static_cast<size_t>(n), 0);
  if (n == 0) return result;

  KernelComputer computer(&test, &model.support_vectors, model.kernel);
  const int64_t pool = model.support_vectors.rows();
  std::vector<int32_t> test_rows(static_cast<size_t>(n));
  std::iota(test_rows.begin(), test_rows.end(), 0);
  std::vector<int32_t> pool_rows(static_cast<size_t>(pool));
  std::iota(pool_rows.begin(), pool_rows.end(), 0);

  std::vector<double> kblock(static_cast<size_t>(n * pool));
  computer.ComputeBlock(test_rows, pool_rows, executor, kDefaultStream,
                        kblock.data());

  for (int64_t i = 0; i < n; ++i) {
    const double* krow = kblock.data() + i * pool;
    double* out = result.probabilities.data() + i * k;
    double sum = 0.0;
    for (const OvaClassEntry& entry : model.classes) {
      double v = entry.bias;
      for (size_t m = 0; m < entry.sv_pool_index.size(); ++m) {
        v += entry.sv_coef[m] * krow[entry.sv_pool_index[m]];
      }
      out[entry.cls] = entry.sigmoid.Probability(v);
      sum += out[entry.cls];
    }
    if (sum > 0) {
      for (int c = 0; c < k; ++c) out[c] /= sum;
    }
    result.labels[static_cast<size_t>(i)] =
        static_cast<int32_t>(std::max_element(out, out + k) - out);
  }
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = 2.0 * static_cast<double>(n) *
               static_cast<double>(model.pool_source_rows.size() + 10 * k);
  executor->Charge(kDefaultStream, cost);

  executor->SynchronizeAll();
  result.sim_seconds = executor->NowSeconds() - sim_base;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace gmpsvm
