#include "core/model_io.h"

#include <cinttypes>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {
namespace {

// v1: header + svms + pool. v2 adds an optional `cascade <n>` section (one
// score/prior triple per binary SVM) between the svm entries and pool_rows;
// v1 files still load, yielding a model with no cascade stats.
constexpr char kMagicV1[] = "gmpsvm_model_v1";
constexpr char kMagic[] = "gmpsvm_model_v2";
constexpr char kPairMagic[] = "gmpsvm_pair_checkpoint_v1";
constexpr char kManifestMagic[] = "gmpsvm_checkpoint_v1";

// Reads a whole file into a string; kIoError if it cannot be opened.
Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string SerializeModel(const MpSvmModel& model) {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << "\n";
  out << "num_classes " << model.num_classes << "\n";
  out << "c " << model.c << "\n";
  out << "kernel " << KernelTypeToString(model.kernel.type) << " "
      << model.kernel.gamma << " " << model.kernel.coef0 << " "
      << model.kernel.degree << "\n";
  out << "pool " << model.support_vectors.rows() << " "
      << model.support_vectors.cols() << "\n";
  out << "svms " << model.svms.size() << "\n";
  for (const auto& svm : model.svms) {
    out << "svm " << svm.class_s << " " << svm.class_t << " " << svm.bias << " "
        << svm.sigmoid.a << " " << svm.sigmoid.b << " " << svm.num_svs() << "\n";
    for (int64_t m = 0; m < svm.num_svs(); ++m) {
      out << svm.sv_pool_index[static_cast<size_t>(m)] << ":"
          << svm.sv_coef[static_cast<size_t>(m)]
          << (m + 1 < svm.num_svs() ? " " : "");
    }
    out << "\n";
  }
  if (model.has_cascade_stats()) {
    out << "cascade " << model.cascade.size() << "\n";
    for (const PairCascadeStats& stats : model.cascade) {
      out << stats.score << " " << stats.prior_s << " " << stats.prior_t
          << "\n";
    }
  }
  out << "pool_rows";
  for (int32_t row : model.pool_source_rows) out << " " << row;
  out << "\n";
  const CsrMatrix& sv = model.support_vectors;
  for (int64_t r = 0; r < sv.rows(); ++r) {
    const auto idx = sv.RowIndices(r);
    const auto val = sv.RowValues(r);
    for (size_t p = 0; p < idx.size(); ++p) {
      out << (p > 0 ? " " : "") << idx[p] << ":" << val[p];
    }
    out << "\n";
  }
  return out.str();
}

Result<MpSvmModel> DeserializeModel(const std::string& text) {
  std::istringstream in(text);
  std::string line, word;

  auto fail = [](const std::string& what) {
    return Status::IoError("model parse error: " + what);
  };

  if (!std::getline(in, line) ||
      (StripWhitespace(line) != kMagic && StripWhitespace(line) != kMagicV1)) {
    return fail("bad magic");
  }
  MpSvmModel model;
  int64_t pool_rows = 0, pool_cols = 0;
  size_t num_svms = 0;

  {
    std::string kernel_name;
    if (!(in >> word >> model.num_classes) || word != "num_classes") {
      return fail("num_classes");
    }
    if (!(in >> word >> model.c) || word != "c") return fail("c");
    if (!(in >> word >> kernel_name >> model.kernel.gamma >> model.kernel.coef0 >>
          model.kernel.degree) ||
        word != "kernel") {
      return fail("kernel");
    }
    GMP_ASSIGN_OR_RETURN(model.kernel.type, KernelTypeFromString(kernel_name));
    if (!(in >> word >> pool_rows >> pool_cols) || word != "pool") {
      return fail("pool");
    }
    if (!(in >> word >> num_svms) || word != "svms") return fail("svms");
  }
  if (model.num_classes < 2 || pool_rows < 0 || pool_cols < 0) {
    return fail("bad header values");
  }
  // Element counts claimed by the header cannot exceed the number of tokens
  // the text could possibly hold; rejecting hostile counts here keeps the
  // reserve()/resize() calls below from attempting absurd allocations.
  const auto kMaxElements = static_cast<int64_t>(text.size());
  if (pool_rows > kMaxElements || num_svms > text.size()) {
    return fail("header counts exceed input size");
  }

  model.svms.reserve(num_svms);
  for (size_t s = 0; s < num_svms; ++s) {
    BinarySvmEntry entry;
    int64_t nsv = 0;
    if (!(in >> word >> entry.class_s >> entry.class_t >> entry.bias >>
          entry.sigmoid.a >> entry.sigmoid.b >> nsv) ||
        word != "svm" || nsv < 0 || nsv > kMaxElements) {
      return fail(StrPrintf("svm header %zu", s));
    }
    entry.sv_pool_index.reserve(static_cast<size_t>(nsv));
    entry.sv_coef.reserve(static_cast<size_t>(nsv));
    for (int64_t m = 0; m < nsv; ++m) {
      std::string token;
      if (!(in >> token)) return fail("sv coefficient");
      const auto kv = SplitTokens(token, ":");
      if (kv.size() != 2) return fail("sv coefficient format");
      int32_t index = 0;
      double coef = 0.0;
      if (!ParseInt32(kv[0], &index) || !ParseDouble(kv[1], &coef)) {
        return fail("sv coefficient value");
      }
      if (index < 0 || index >= pool_rows) return fail("sv index out of range");
      entry.sv_pool_index.push_back(index);
      entry.sv_coef.push_back(coef);
    }
    model.svms.push_back(std::move(entry));
  }

  if (!(in >> word)) return fail("pool_rows");
  if (word == "cascade") {
    // Optional v2 section; one stats triple per binary SVM.
    size_t count = 0;
    if (!(in >> count) || count != num_svms) return fail("cascade count");
    model.cascade.reserve(count);
    for (size_t s = 0; s < count; ++s) {
      PairCascadeStats stats;
      if (!(in >> stats.score >> stats.prior_s >> stats.prior_t)) {
        return fail("cascade entry");
      }
      model.cascade.push_back(stats);
    }
    if (!(in >> word)) return fail("pool_rows");
  }
  if (word != "pool_rows") return fail("pool_rows");
  model.pool_source_rows.resize(static_cast<size_t>(pool_rows));
  for (int64_t r = 0; r < pool_rows; ++r) {
    if (!(in >> model.pool_source_rows[static_cast<size_t>(r)])) {
      return fail("pool_rows entries");
    }
  }
  std::getline(in, line);  // consume rest of pool_rows line

  CsrBuilder builder(pool_cols);
  for (int64_t r = 0; r < pool_rows; ++r) {
    if (!std::getline(in, line)) return fail("missing pool row");
    std::vector<std::pair<int32_t, double>> entries;
    for (const auto token : SplitTokens(StripWhitespace(line), " ")) {
      const auto kv = SplitTokens(token, ":");
      if (kv.size() != 2) return fail("pool row token");
      int32_t index = 0;
      double value = 0.0;
      if (!ParseInt32(kv[0], &index) || !ParseDouble(kv[1], &value)) {
        return fail("pool row value");
      }
      entries.emplace_back(index, value);
    }
    builder.AddRowUnsorted(std::move(entries));
  }
  GMP_ASSIGN_OR_RETURN(model.support_vectors, builder.Finish());
  return model;
}

Status SaveModel(const MpSvmModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << SerializeModel(model);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<MpSvmModel> LoadModel(const std::string& path) {
  GMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return DeserializeModel(text);
}

std::string SerializePairCheckpoint(const PairCheckpoint& pair) {
  std::ostringstream out;
  out.precision(17);
  out << kPairMagic << "\n";
  out << "pair " << pair.class_s << " " << pair.class_t << "\n";
  out << "bias " << pair.bias << "\n";
  out << "sigmoid " << pair.sigmoid.a << " " << pair.sigmoid.b << "\n";
  out << "degraded " << (pair.degraded ? 1 : 0) << "\n";
  out << "svs " << pair.sv_rows.size() << "\n";
  for (size_t m = 0; m < pair.sv_rows.size(); ++m) {
    out << pair.sv_rows[m] << ":" << pair.sv_coef[m]
        << (m + 1 < pair.sv_rows.size() ? " " : "");
  }
  out << "\n";
  return out.str();
}

Result<PairCheckpoint> ParsePairCheckpoint(const std::string& text) {
  std::istringstream in(text);
  std::string line, word;
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("pair checkpoint parse error: " + what);
  };
  if (!std::getline(in, line) || StripWhitespace(line) != kPairMagic) {
    return fail("bad magic");
  }
  PairCheckpoint pair;
  int degraded = 0;
  size_t nsv = 0;
  if (!(in >> word >> pair.class_s >> pair.class_t) || word != "pair") {
    return fail("pair header");
  }
  if (!(in >> word >> pair.bias) || word != "bias") return fail("bias");
  if (!(in >> word >> pair.sigmoid.a >> pair.sigmoid.b) || word != "sigmoid") {
    return fail("sigmoid");
  }
  if (!(in >> word >> degraded) || word != "degraded" ||
      (degraded != 0 && degraded != 1)) {
    return fail("degraded flag");
  }
  if (!(in >> word >> nsv) || word != "svs" || nsv > text.size()) {
    return fail("sv count");
  }
  if (pair.class_s < 0 || pair.class_t < 0 || pair.class_s == pair.class_t) {
    return fail("bad class pair");
  }
  pair.degraded = degraded != 0;
  pair.sv_rows.reserve(nsv);
  pair.sv_coef.reserve(nsv);
  for (size_t m = 0; m < nsv; ++m) {
    std::string token;
    if (!(in >> token)) return fail("sv entry");
    const auto kv = SplitTokens(token, ":");
    if (kv.size() != 2) return fail("sv entry format");
    int32_t row = 0;
    double coef = 0.0;
    if (!ParseInt32(kv[0], &row) || !ParseDouble(kv[1], &coef)) {
      return fail("sv entry value");
    }
    if (row < 0) return fail("negative sv row");
    pair.sv_rows.push_back(row);
    pair.sv_coef.push_back(coef);
  }
  return pair;
}

std::string SerializeCheckpointManifest(const CheckpointManifest& manifest) {
  std::ostringstream out;
  out << kManifestMagic << "\n";
  out << "fingerprint " << manifest.fingerprint << "\n";
  out << "num_classes " << manifest.num_classes << "\n";
  out << "completed " << manifest.completed.size() << "\n";
  for (const auto& [s, t] : manifest.completed) out << s << " " << t << "\n";
  return out.str();
}

Result<CheckpointManifest> ParseCheckpointManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line, word;
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("checkpoint manifest parse error: " + what);
  };
  if (!std::getline(in, line) || StripWhitespace(line) != kManifestMagic) {
    return fail("bad magic");
  }
  CheckpointManifest manifest;
  size_t num_completed = 0;
  if (!(in >> word >> manifest.fingerprint) || word != "fingerprint") {
    return fail("fingerprint");
  }
  if (!(in >> word >> manifest.num_classes) || word != "num_classes" ||
      manifest.num_classes < 2) {
    return fail("num_classes");
  }
  if (!(in >> word >> num_completed) || word != "completed" ||
      num_completed > text.size()) {
    return fail("completed count");
  }
  manifest.completed.reserve(num_completed);
  std::set<std::pair<int, int>> seen;
  for (size_t i = 0; i < num_completed; ++i) {
    int s = 0, t = 0;
    if (!(in >> s >> t)) return fail("completed pair");
    if (s < 0 || t < 0 || s == t || s >= manifest.num_classes ||
        t >= manifest.num_classes) {
      return fail("completed pair out of range");
    }
    if (!seen.emplace(s, t).second) return fail("duplicate completed pair");
    manifest.completed.emplace_back(s, t);
  }
  return manifest;
}

std::string PairCheckpointFileName(int class_s, int class_t) {
  return StrPrintf("pair_%d_%d.ckpt", class_s, class_t);
}

Status SavePairCheckpoint(const PairCheckpoint& pair, const std::string& path) {
  return WriteFile(SerializePairCheckpoint(pair), path);
}

Result<PairCheckpoint> LoadPairCheckpoint(const std::string& path) {
  GMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParsePairCheckpoint(text);
}

Status SaveCheckpointManifest(const CheckpointManifest& manifest,
                              const std::string& path) {
  return WriteFile(SerializeCheckpointManifest(manifest), path);
}

Result<CheckpointManifest> LoadCheckpointManifest(const std::string& path) {
  GMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseCheckpointManifest(text);
}

}  // namespace gmpsvm
