#include "core/dataset.h"

#include <algorithm>

#include "common/string_util.h"

namespace gmpsvm {

Result<Dataset> Dataset::Create(CsrMatrix features, std::vector<int32_t> labels,
                                int num_classes, std::string name) {
  if (static_cast<int64_t>(labels.size()) != features.rows()) {
    return Status::InvalidArgument(
        StrPrintf("label count %zu != row count %lld", labels.size(),
                  static_cast<long long>(features.rows())));
  }
  int max_label = -1;
  for (int32_t label : labels) {
    if (label < 0) return Status::InvalidArgument("negative class label");
    max_label = std::max(max_label, label);
  }
  if (num_classes == 0) num_classes = max_label + 1;
  if (max_label >= num_classes) {
    return Status::InvalidArgument(
        StrPrintf("label %d out of range for %d classes", max_label, num_classes));
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("dataset needs at least 2 classes");
  }

  Dataset d;
  d.features_ = std::move(features);
  d.labels_ = std::move(labels);
  d.num_classes_ = num_classes;
  d.name_ = std::move(name);
  d.class_rows_.resize(static_cast<size_t>(num_classes));
  for (size_t i = 0; i < d.labels_.size(); ++i) {
    d.class_rows_[static_cast<size_t>(d.labels_[i])].push_back(
        static_cast<int32_t>(i));
  }
  return d;
}

BinaryProblem Dataset::MakePairProblem(int s, int t, double c,
                                       const KernelParams& kernel) const {
  BinaryProblem p;
  p.data = &features_;
  const auto& rows_s = ClassRows(s);
  const auto& rows_t = ClassRows(t);
  p.rows.reserve(rows_s.size() + rows_t.size());
  p.rows.insert(p.rows.end(), rows_s.begin(), rows_s.end());
  p.rows.insert(p.rows.end(), rows_t.begin(), rows_t.end());
  p.y.assign(rows_s.size(), int8_t{1});
  p.y.insert(p.y.end(), rows_t.size(), int8_t{-1});
  p.C = c;
  p.kernel = kernel;
  return p;
}

std::vector<std::pair<int, int>> Dataset::ClassPairs() const {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(num_pairs()));
  for (int s = 0; s < num_classes_; ++s) {
    for (int t = s + 1; t < num_classes_; ++t) pairs.emplace_back(s, t);
  }
  return pairs;
}

}  // namespace gmpsvm
