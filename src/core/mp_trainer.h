// MP-SVM trainers (Section 3).
//
// Two training strategies over the same substrate:
//   * SequentialMpTrainer — the paper's GPU baseline (Section 3.2) when run
//     against the GPU model with a device-resident kernel cache, and the
//     LibSVM reference when run against a CPU model: binary SVMs trained one
//     by one with classic SMO, sigmoids fitted one at a time.
//   * GmpSvmTrainer — GMP-SVM (Section 3.3): batched working-set solver,
//     GPU kernel buffer, multiple binary SVMs trained concurrently on
//     SM-capped streams, kernel-block sharing between SVMs, and concurrent
//     sigmoid fitting. Run against a CPU model this is CMP-SVM.
//
// Both produce the same MpSvmModel (Table 4's classifier-identity claim);
// they differ in the resources they consume, which the report captures.

#ifndef GMPSVM_CORE_MP_TRAINER_H_
#define GMPSVM_CORE_MP_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/dataset.h"
#include "core/model.h"
#include "core/model_io.h"
#include "device/executor.h"
#include "fault/retry.h"
#include "prob/platt.h"
#include "solver/batch_smo_solver.h"
#include "solver/smo_solver.h"
#include "solver/solver_stats.h"

namespace gmpsvm {

namespace fault {
class FaultInjector;
}  // namespace fault

// What a trainer does with a binary pair whose transient faults outlasted the
// retry policy.
enum class PairFailurePolicy {
  // Abort the whole training run with the pair's kUnavailable status.
  kFailFast,
  // Emit a neutral entry for the pair (no support vectors, bias 0, sigmoid
  // {0, 0} => p = 0.5), mark the model degraded, and keep going. The report
  // counts such pairs and checkpoints tag them so a resume retrains them.
  kSkipDegraded,
};

// Periodic checkpointing of completed binary pairs through model_io.
struct TrainCheckpointOptions {
  // Directory for the manifest + per-pair files; empty disables
  // checkpointing. Created if missing.
  std::string dir;

  // Flush the manifest after every N completed pairs (pair files are always
  // written immediately). The manifest is also flushed at the end of the run
  // and on a fault-plan interrupt.
  int every_n_pairs = 1;

  // Load the manifest in `dir` and skip its completed (non-degraded) pairs.
  // Rejected with InvalidArgument if the manifest's fingerprint does not
  // match this dataset + configuration. A missing manifest starts fresh.
  bool resume = false;
};

struct MpTrainOptions {
  double c = 1.0;
  KernelParams kernel;

  // Optional per-class penalty multipliers (LibSVM's -wi): instance of class
  // k gets box constraint c * class_weights[k]. Empty = all ones. Weighting
  // minority classes up counters class imbalance.
  std::vector<double> class_weights;

  // --- GMP-SVM (batched) solver configuration -----------------------------
  BatchSmoOptions batch;

  // Train up to this many binary SVMs concurrently (each on a stream owning
  // 1/group of the SMs). Effective group size also respects the device
  // memory budget. 1 disables MP-level concurrency (ablation).
  int max_concurrent_svms = 8;

  // Share kernel class-block segments across binary SVMs (Figure 3).
  bool share_kernel_blocks = true;

  // Device bytes reserved for the shared block cache.
  size_t shared_cache_bytes = 2ull << 30;

  // Deduplicate support vectors across SVMs in the model pool.
  bool share_support_vectors = true;

  // --- Sequential (baseline) solver configuration --------------------------
  SmoOptions smo;

  // --- Sigmoid fitting ------------------------------------------------------
  PlattOptions platt;
  // Backtracking candidates evaluated concurrently (1 = baseline behaviour).
  int platt_parallel_candidates = 8;

  // 0 (default, the paper's Algorithm 2): fit each sigmoid on the training
  // decision values, which fall out of the solver for free. >= 2: fit on
  // decision values from an internal stratified cross-validation per binary
  // problem (stock LibSVM uses 5) — better calibrated, ~folds x more binary
  // training work.
  int sigmoid_cv_folds = 0;

  // --- Fault recovery -------------------------------------------------------
  // Per-pair retry policy for transient (kUnavailable) failures. Backoff is
  // charged as simulated time to the pair's stream, so retried runs stay
  // deterministic and produce byte-identical models.
  fault::RetryPolicy pair_retry;

  // What to do when a pair exhausts its retries.
  PairFailurePolicy pair_failure_policy = PairFailurePolicy::kFailFast;

  // Checkpoint/resume configuration (disabled unless checkpoint.dir is set).
  TrainCheckpointOptions checkpoint;

  // --- Host parallelism -----------------------------------------------------
  // Real worker threads for pair-level training (wall-clock only; models,
  // reports, counters, and traces are byte-identical for every value — see
  // docs/performance.md). 0 inherits the executor model's host_threads; 1
  // forces today's serial orchestration. Pair-level parallelism engages only
  // when no fault injector is attached (chaos runs stay serial so fault/RNG
  // streams remain per-pair) and, for GmpSvmTrainer, only with
  // share_kernel_blocks disabled (shared-cache hit/miss accounting is
  // schedule-dependent); the data-parallel kernel ops still apply in those
  // cases.
  int host_threads = 0;

  // Checks the whole configuration, including the nested batch-solver
  // options, and returns InvalidArgument naming the offending field. Pass
  // the dataset's class count to also check class_weights (0 skips that
  // check when no dataset is at hand). Both trainers call this before
  // touching the data.
  Status Validate(int num_classes = 0) const;
};

struct MpTrainReport {
  // Simulated seconds from training start to model completion.
  double sim_seconds = 0.0;
  // Host wall-clock seconds (diagnostic; the benchmarked quantity is
  // sim_seconds).
  double wall_seconds = 0.0;

  // Aggregated binary-solver statistics (all pairs).
  SolverStats solver;

  // Simulated-time attribution: "kernel_values", "subproblem", "other",
  // "sigmoid". Figure 11 is generated from this.
  PhaseTimer phases;

  // Device counters snapshot deltas over the training run.
  int64_t kernel_values_computed = 0;
  int64_t kernel_values_reused = 0;
  size_t peak_device_bytes = 0;

  // Fault recovery: whole-pair retry attempts after transient failures,
  // pairs that exhausted retries under kSkipDegraded (the model carries
  // neutral entries for them), and pairs loaded from a checkpoint instead of
  // being trained.
  int64_t pair_retries = 0;
  int64_t pairs_degraded = 0;
  int64_t pairs_resumed = 0;

  // Publishes this report into `registry` under gmpsvm_train_* names:
  // sim/wall seconds, solver iteration counters, per-phase sim-time
  // counters labeled {phase=...}, and the kernel-value counters.
  void PublishTo(obs::MetricsRegistry* registry) const;
};

// --- Multi-device building blocks (used by src/cluster) ----------------------
//
// Cluster training splits the k(k-1)/2 pairwise problems across devices:
// each device trains its assigned subset with TrainGmpPairSubset, then the
// per-pair results are stitched back together — in global ClassPairs() order,
// because support-vector pool indices depend on insertion order — with
// AssembleModelFromPairs. Pair solutions are schedule-invariant (the kernel
// math is exact), so the assembled model is byte-identical to a single-device
// GmpSvmTrainer run whatever the assignment.

// One trained pair plus the statistics a multi-device caller merges in global
// ClassPairs() order. The sim-time fields (stats.phases, sigmoid_seconds)
// depend on the stream shares of the run that produced them; the counter
// fields (iterations, kernel rows, retries) are schedule-invariant.
struct PairTrainOutcome {
  size_t pair_index = 0;
  PairCheckpoint checkpoint;
  SolverStats stats;
  double sigmoid_seconds = 0.0;
  bool sigmoid_done = false;
  int64_t retries = 0;
  bool degraded = false;
};

// Optional per-pair fault-injector factory for chaos cluster runs: deriving
// one injector per pair (seeded from the pair index) keeps fault sequences
// pair-deterministic regardless of which device trains the pair. Returning
// nullptr for a pair trains it fault-free. The returned injector is attached
// to the executor only for that pair's attempts.
using PairFaultInjectorFactory =
    std::function<std::unique_ptr<fault::FaultInjector>(size_t pair_index)>;

// Optional warm-start provider: returns the seed alphas for a pair's problem
// (one per problem row, mapped onto the new problem's row order), or an empty
// vector to solve cold. The online pipeline derives the seeds from the
// previous model's PairCheckpoint; the seeds are clamped into the box and
// constraint-repaired by BatchSmoSolver::SolveWarm, so any previous solution
// of overlapping data is a legal seed.
using PairWarmStartProvider =
    std::function<std::vector<double>(size_t pair_index,
                                      const BinaryProblem& problem)>;

// Trains the subset of dataset.ClassPairs() named by `pair_indices` on one
// executor with the GMP-SVM machinery: groups packed under the memory budget,
// one SM-capped stream per pair in a group, an optional per-executor shared
// block cache, and the per-pair retry policy. Pair orchestration is serial
// (devices parallelize across executors; op bodies still use the executor's
// host pool). `options.checkpoint` is ignored — cluster checkpointing is a
// documented non-goal. Fails fast on the first pair whose error is not
// recoverable under the options' failure policy.
Result<std::vector<PairTrainOutcome>> TrainGmpPairSubset(
    const Dataset& dataset, const MpTrainOptions& options,
    SimExecutor* executor, const std::vector<size_t>& pair_indices,
    const PairFaultInjectorFactory& injector_factory = nullptr,
    const PairWarmStartProvider& warm_start = nullptr);

// Assembles the final model from per-pair checkpoints given in ClassPairs()
// order. Rejects a vector whose size or pair labels do not match the
// dataset's pair enumeration.
Result<MpSvmModel> AssembleModelFromPairs(
    const Dataset& dataset, const MpTrainOptions& options,
    const std::vector<PairCheckpoint>& pairs_in_order);

class GmpSvmTrainer {
 public:
  explicit GmpSvmTrainer(const MpTrainOptions& options) : options_(options) {}

  // Trains the full MP-SVM model. `report` may be null.
  Result<MpSvmModel> Train(const Dataset& dataset, SimExecutor* executor,
                           MpTrainReport* report) const;

 private:
  MpTrainOptions options_;
};

class SequentialMpTrainer {
 public:
  explicit SequentialMpTrainer(const MpTrainOptions& options) : options_(options) {}

  Result<MpSvmModel> Train(const Dataset& dataset, SimExecutor* executor,
                           MpTrainReport* report) const;

 private:
  MpTrainOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_MP_TRAINER_H_
