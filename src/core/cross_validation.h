// Stratified k-fold cross-validation for MP-SVMs, equivalent to LibSVM's
// svm-train -v. Each fold is held out once; the model trained on the other
// folds predicts it. Reports accuracy and probability quality, which is how
// practitioners choose C and gamma.

#ifndef GMPSVM_CORE_CROSS_VALIDATION_H_
#define GMPSVM_CORE_CROSS_VALIDATION_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "device/executor.h"

namespace gmpsvm {

struct CrossValidationOptions {
  int folds = 5;
  uint64_t seed = 1;
  MpTrainOptions train;
  PredictOptions predict;
};

struct CrossValidationResult {
  int folds = 0;
  // Pooled over all held-out predictions.
  double error_rate = 0.0;
  double log_loss = 0.0;
  double brier_score = 0.0;
  // Per-fold held-out error rates.
  std::vector<double> fold_errors;
  // Total simulated seconds across all folds (train + predict).
  double sim_seconds = 0.0;
};

// Runs k-fold CV with the GMP-SVM trainer on `executor`.
Result<CrossValidationResult> CrossValidate(const Dataset& dataset,
                                            const CrossValidationOptions& options,
                                            SimExecutor* executor);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_CROSS_VALIDATION_H_
