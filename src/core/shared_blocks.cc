#include "core/shared_blocks.h"

#include <cstring>

#include "common/logging.h"

namespace gmpsvm {

SharedBlockCache::SharedBlockCache(const Dataset* dataset,
                                   const KernelComputer* computer,
                                   size_t budget_bytes, SimExecutor* executor)
    : dataset_(dataset), computer_(computer), budget_bytes_(budget_bytes),
      executor_(executor) {
  // Reserve the cache region on the device up front, like the baseline's
  // fixed cache slice; halve until it fits alongside other reservations.
  while (budget_bytes_ > (1u << 20)) {
    auto reservation = executor_->Allocate(budget_bytes_);
    if (reservation.ok()) {
      reservation_ = std::move(reservation).value();
      return;
    }
    budget_bytes_ /= 2;
  }
}

std::span<const double> SharedBlockCache::Lookup(int32_t global_row, int cls) {
  auto it = index_.find(Key{global_row, cls});
  if (it == index_.end()) return {};
  return it->second;
}

void SharedBlockCache::PinPairs(std::span<const int32_t> global_rows, int cls_a,
                                int cls_b) {
  pinned_.clear();
  for (int32_t g : global_rows) {
    pinned_.insert(PackKey(Key{g, cls_a}));
    pinned_.insert(PackKey(Key{g, cls_b}));
  }
}

void SharedBlockCache::EvictUntilFits(size_t incoming_bytes) {
  size_t scanned = 0;
  while (bytes_used_ + incoming_bytes > budget_bytes_ && !fifo_.empty() &&
         scanned < fifo_.size() + 1) {
    Key victim = fifo_.front();
    fifo_.pop_front();
    ++scanned;
    if (pinned_.count(PackKey(victim)) != 0) {
      fifo_.push_back(victim);
      continue;
    }
    auto it = index_.find(victim);
    if (it == index_.end()) continue;  // already gone
    bytes_used_ -= it->second.size() * sizeof(double);
    index_.erase(it);
    scanned = 0;  // progress made; rescan allowance resets
  }
}

Status SharedBlockCache::Ensure(std::span<const int32_t> global_rows, int cls,
                                SimExecutor* executor, StreamId stream) {
  const auto& class_rows = dataset_->ClassRows(cls);
  const size_t seg_len = class_rows.size();
  if (seg_len == 0) return Status::OK();

  std::vector<int32_t> missing;
  for (int32_t g : global_rows) {
    const Key key{g, cls};
    if (index_.count(key) != 0) {
      ++hits_;
      executor->counters().kernel_values_reused += static_cast<int64_t>(seg_len);
    } else {
      ++misses_;
      missing.push_back(g);
    }
  }
  if (missing.empty()) return Status::OK();

  const size_t incoming = missing.size() * seg_len * sizeof(double);
  if (incoming > budget_bytes_) {
    return Status::FailedPrecondition(
        "shared block cache budget too small for one batch");
  }
  EvictUntilFits(incoming);
  if (bytes_used_ + incoming > budget_bytes_) {
    return Status::FailedPrecondition(
        "shared block cache cannot fit batch: too many pinned segments");
  }

  // One batched product for all missing segments of this class.
  std::vector<double> scratch(missing.size() * seg_len);
  computer_->ComputeBlock(missing, class_rows, executor, stream, scratch.data());
  for (size_t m = 0; m < missing.size(); ++m) {
    const Key key{missing[m], cls};
    std::vector<double> seg(scratch.begin() + static_cast<int64_t>(m * seg_len),
                            scratch.begin() + static_cast<int64_t>((m + 1) * seg_len));
    bytes_used_ += seg.size() * sizeof(double);
    index_.emplace(key, std::move(seg));
    fifo_.push_back(key);
  }
  return Status::OK();
}

void SharedRowSource::ComputeRows(std::span<const int32_t> local_rows,
                                  std::span<double* const> dest,
                                  SimExecutor* executor, StreamId stream) {
  if (local_rows.empty()) return;
  // One round (pin + ensure both classes + assemble) is the unit of cache
  // consistency; hold the round mutex across all of it.
  std::lock_guard<std::mutex> round_lock(cache_->round_mutex());
  globals_.resize(local_rows.size());
  for (size_t k = 0; k < local_rows.size(); ++k) {
    globals_[k] = problem_->rows[static_cast<size_t>(local_rows[k])];
  }

  // Pin this round's segments of BOTH classes, then make them resident: the
  // class-t insertions must not evict class-s hits that were cached long ago
  // (and so sit near the FIFO front). Falls back to an unshared direct
  // computation when the budget cannot hold one round.
  cache_->PinPairs(globals_, class_s_, class_t_);
  Status st = cache_->Ensure(globals_, class_s_, executor, stream);
  if (st.ok()) st = cache_->Ensure(globals_, class_t_, executor, stream);
  if (!st.ok()) {
    GMP_LOG(Warning) << "shared block cache fallback: " << st.ToString();
    fallback_.ComputeRows(local_rows, dest, executor, stream);
    return;
  }

  // The second Ensure can, under a tight budget, evict segments the first
  // one just stored (it only pins its own class). Verify everything is still
  // resident before assembling; otherwise compute the batch directly.
  for (size_t k = 0; k < local_rows.size(); ++k) {
    if (cache_->Lookup(globals_[k], class_s_).size() != class_s_count_ ||
        cache_->Lookup(globals_[k], class_t_).size() !=
            static_cast<size_t>(problem_->n()) - class_s_count_) {
      GMP_LOG(Warning) << "shared block cache thrashing; computing batch directly";
      fallback_.ComputeRows(local_rows, dest, executor, stream);
      return;
    }
  }

  // Assemble: dest row = [K(g, X_s) | K(g, X_t)] in problem-local order
  // (the problem's first class_s_count_ instances are class s, the rest t).
  double copied = 0.0;
  for (size_t k = 0; k < local_rows.size(); ++k) {
    auto seg_s = cache_->Lookup(globals_[k], class_s_);
    auto seg_t = cache_->Lookup(globals_[k], class_t_);
    std::memcpy(dest[k], seg_s.data(), seg_s.size() * sizeof(double));
    std::memcpy(dest[k] + seg_s.size(), seg_t.data(), seg_t.size() * sizeof(double));
    copied += static_cast<double>(seg_s.size() + seg_t.size());
  }
  TaskCost copy_cost;
  copy_cost.parallel_items = static_cast<int64_t>(copied);
  copy_cost.bytes_read = copied * sizeof(double);
  copy_cost.bytes_written = copied * sizeof(double);
  executor->Charge(stream, copy_cost);
}

}  // namespace gmpsvm
