// Hyper-parameter grid search over (C, gamma) with stratified k-fold
// cross-validation per cell — the LibSVM grid.py workflow as a library API.
// Cells run sequentially on the executor (each cell's internal training
// already exploits the MP-SVM-level stream concurrency).

#ifndef GMPSVM_CORE_GRID_SEARCH_H_
#define GMPSVM_CORE_GRID_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/cross_validation.h"
#include "core/dataset.h"
#include "device/executor.h"

namespace gmpsvm {

struct GridSearchOptions {
  std::vector<double> c_values = {0.1, 1.0, 10.0, 100.0};
  std::vector<double> gamma_values = {0.01, 0.1, 1.0};
  int folds = 5;
  uint64_t seed = 1;

  // Base training configuration; c and kernel.gamma are overwritten per cell.
  MpTrainOptions train;
  PredictOptions predict;
};

struct GridCellResult {
  double c = 0.0;
  double gamma = 0.0;
  double error_rate = 0.0;
  double log_loss = 0.0;
  double brier_score = 0.0;
};

struct GridSearchResult {
  std::vector<GridCellResult> cells;  // row-major over (c, gamma)
  GridCellResult best;                // lowest CV error (ties: lowest log loss)
  double sim_seconds = 0.0;
};

// Evaluates the full grid; all work is charged to `executor`.
Result<GridSearchResult> GridSearch(const Dataset& dataset,
                                    const GridSearchOptions& options,
                                    SimExecutor* executor);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_GRID_SEARCH_H_
