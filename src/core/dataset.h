// Multi-class dataset: CSR features plus integer class labels in [0, k).
// Provides the per-class row lists and pairwise binary problem views that
// MP-SVM training decomposes into (Figure 1 of the paper).

#ifndef GMPSVM_CORE_DATASET_H_
#define GMPSVM_CORE_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kernel/kernel_function.h"
#include "solver/svm_problem.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {

class Dataset {
 public:
  Dataset() = default;

  // Validates labels against [0, num_classes) and row counts. num_classes of
  // 0 means "infer as max(label)+1".
  static Result<Dataset> Create(CsrMatrix features, std::vector<int32_t> labels,
                                int num_classes = 0, std::string name = "");

  const CsrMatrix& features() const { return features_; }
  const std::vector<int32_t>& labels() const { return labels_; }
  int num_classes() const { return num_classes_; }
  int64_t size() const { return features_.rows(); }
  int64_t dim() const { return features_.cols(); }
  const std::string& name() const { return name_; }

  // Number of pairwise binary SVMs: k(k-1)/2.
  int num_pairs() const { return num_classes_ * (num_classes_ - 1) / 2; }

  // Global row ids of one class, in dataset order (the canonical order every
  // pairwise problem uses, which is what makes kernel-block sharing a
  // straight segment copy).
  const std::vector<int32_t>& ClassRows(int cls) const {
    return class_rows_[static_cast<size_t>(cls)];
  }

  // Builds the binary problem for the class pair (s, t), s < t: class-s
  // instances (label +1) followed by class-t instances (label -1), matching
  // LibSVM's convention.
  BinaryProblem MakePairProblem(int s, int t, double c,
                                const KernelParams& kernel) const;

  // Enumerates pairs in LibSVM order: (0,1), (0,2), ..., (0,k-1), (1,2), ...
  std::vector<std::pair<int, int>> ClassPairs() const;

 private:
  CsrMatrix features_;
  std::vector<int32_t> labels_;
  int num_classes_ = 0;
  std::string name_;
  std::vector<std::vector<int32_t>> class_rows_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_DATASET_H_
