#include "core/sigmoid_cv.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace gmpsvm {

Result<std::vector<double>> CrossValidatedDecisionValues(
    const BinaryProblem& problem, const KernelComputer& computer,
    const BinarySolveFn& solve, int folds, uint64_t seed, SimExecutor* executor,
    StreamId stream) {
  const int64_t n = problem.n();
  if (folds < 2 || folds > n) {
    return Status::InvalidArgument(
        StrPrintf("bad fold count %d for %lld instances", folds,
                  static_cast<long long>(n)));
  }

  // Stratified fold assignment per side (+1 / -1 round-robin after shuffle).
  std::vector<int32_t> fold_of(static_cast<size_t>(n), 0);
  {
    Rng rng(seed);
    for (int side = 0; side < 2; ++side) {
      std::vector<int32_t> locals;
      for (int64_t i = 0; i < n; ++i) {
        if ((problem.y[static_cast<size_t>(i)] > 0) == (side == 0)) {
          locals.push_back(static_cast<int32_t>(i));
        }
      }
      rng.Shuffle(&locals);
      for (size_t p = 0; p < locals.size(); ++p) {
        fold_of[static_cast<size_t>(locals[p])] =
            static_cast<int32_t>(p % static_cast<size_t>(folds));
      }
    }
  }

  std::vector<double> values(static_cast<size_t>(n), 0.0);
  for (int f = 0; f < folds; ++f) {
    // Build the sub-problem of everything outside fold f.
    BinaryProblem sub;
    sub.data = problem.data;
    sub.C = problem.C;
    sub.weight_pos = problem.weight_pos;
    sub.weight_neg = problem.weight_neg;
    sub.kernel = problem.kernel;
    std::vector<int32_t> held_out;
    int pos = 0, neg = 0;
    for (int64_t i = 0; i < n; ++i) {
      if (fold_of[static_cast<size_t>(i)] == f) {
        held_out.push_back(static_cast<int32_t>(i));
        continue;
      }
      sub.rows.push_back(problem.rows[static_cast<size_t>(i)]);
      sub.y.push_back(problem.y[static_cast<size_t>(i)]);
      (problem.y[static_cast<size_t>(i)] > 0 ? pos : neg) += 1;
    }
    if (held_out.empty()) continue;
    if (pos == 0 || neg == 0) {
      // Degenerate fold (LibSVM assigns fixed pseudo-values in this case).
      for (int32_t i : held_out) {
        values[static_cast<size_t>(i)] = pos == 0 ? -1.0 : 1.0;
      }
      continue;
    }

    GMP_ASSIGN_OR_RETURN(BinarySolution solution, solve(sub, executor, stream));

    // Decision values of the held-out instances against the sub-model's SVs.
    std::vector<int32_t> sv_globals;
    std::vector<double> sv_coef;
    for (size_t j = 0; j < solution.alpha.size(); ++j) {
      if (solution.alpha[j] <= 0.0) continue;
      sv_globals.push_back(sub.rows[j]);
      sv_coef.push_back(solution.alpha[j] * static_cast<double>(sub.y[j]));
    }
    if (sv_globals.empty()) {
      for (int32_t i : held_out) values[static_cast<size_t>(i)] = solution.bias;
      continue;
    }
    std::vector<int32_t> held_globals(held_out.size());
    for (size_t h = 0; h < held_out.size(); ++h) {
      held_globals[h] = problem.rows[static_cast<size_t>(held_out[h])];
    }
    std::vector<double> block(held_out.size() * sv_globals.size());
    computer.ComputeBlock(held_globals, sv_globals, executor, stream, block.data());
    for (size_t h = 0; h < held_out.size(); ++h) {
      const double* row = block.data() + h * sv_globals.size();
      double v = solution.bias;
      for (size_t m = 0; m < sv_coef.size(); ++m) v += sv_coef[m] * row[m];
      values[static_cast<size_t>(held_out[h])] = v;
    }
    TaskCost cost;
    cost.parallel_items = static_cast<int64_t>(held_out.size());
    cost.flops = 2.0 * static_cast<double>(held_out.size() * sv_coef.size());
    executor->Charge(stream, cost);
  }
  return values;
}

}  // namespace gmpsvm
