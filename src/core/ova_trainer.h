// One-vs-all (OVA) multi-class probabilistic SVMs — the alternative
// decomposition the paper's related-work section discusses (Rifkin & Klautau
// defend it; Wu et al. and LibSVM prefer pairwise coupling). Provided as an
// extension so the two decompositions can be compared on cost and accuracy:
// k binary SVMs (class c vs the rest of the data, so each sees ALL n
// instances — the reason OVA training is usually slower than one-vs-one's
// k(k-1)/2 smaller problems), Platt sigmoid per class, probabilities by
// normalizing the per-class sigmoid outputs.

#ifndef GMPSVM_CORE_OVA_TRAINER_H_
#define GMPSVM_CORE_OVA_TRAINER_H_

#include <cstdint>

#include "core/dataset.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "device/executor.h"
#include "prob/platt.h"

namespace gmpsvm {

struct OvaClassEntry {
  int cls = 0;
  std::vector<int32_t> sv_pool_index;
  std::vector<double> sv_coef;
  double bias = 0.0;
  SigmoidParams sigmoid;
};

struct OvaModel {
  int num_classes = 0;
  double c = 1.0;
  KernelParams kernel;
  CsrMatrix support_vectors;  // shared pool, deduplicated
  std::vector<int32_t> pool_source_rows;
  std::vector<OvaClassEntry> classes;
};

class OvaTrainer {
 public:
  // Reuses MpTrainOptions; the pairwise-specific fields (kernel-block
  // sharing) are ignored — OVA problems span all classes, so class-block
  // sharing does not apply.
  explicit OvaTrainer(const MpTrainOptions& options) : options_(options) {}

  Result<OvaModel> Train(const Dataset& dataset, SimExecutor* executor,
                         MpTrainReport* report) const;

 private:
  MpTrainOptions options_;
};

// Predicts normalized per-class probabilities; labels are argmax.
Result<PredictResult> OvaPredict(const OvaModel& model, const CsrMatrix& test,
                                 SimExecutor* executor);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_OVA_TRAINER_H_
