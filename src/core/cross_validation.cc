#include "core/cross_validation.h"

#include <algorithm>

#include "data/split.h"
#include "metrics/calibration.h"
#include "metrics/metrics.h"

namespace gmpsvm {

Result<CrossValidationResult> CrossValidate(const Dataset& dataset,
                                            const CrossValidationOptions& options,
                                            SimExecutor* executor) {
  GMP_ASSIGN_OR_RETURN(std::vector<std::vector<int32_t>> folds,
                       StratifiedFolds(dataset, options.folds, options.seed));

  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  CrossValidationResult result;
  result.folds = options.folds;

  // Pooled held-out predictions in dataset-row order.
  std::vector<int32_t> pooled_pred(static_cast<size_t>(dataset.size()), -1);
  std::vector<double> pooled_prob(
      static_cast<size_t>(dataset.size()) * dataset.num_classes(), 0.0);

  for (int f = 0; f < options.folds; ++f) {
    std::vector<int32_t> train_rows;
    for (int g = 0; g < options.folds; ++g) {
      if (g == f) continue;
      train_rows.insert(train_rows.end(), folds[static_cast<size_t>(g)].begin(),
                        folds[static_cast<size_t>(g)].end());
    }
    std::sort(train_rows.begin(), train_rows.end());
    const std::vector<int32_t>& test_rows = folds[static_cast<size_t>(f)];
    if (test_rows.empty()) continue;

    GMP_ASSIGN_OR_RETURN(Dataset train, SubsetDataset(dataset, train_rows));
    GMP_ASSIGN_OR_RETURN(Dataset test, SubsetDataset(dataset, test_rows));
    if (train.num_classes() != dataset.num_classes()) {
      return Status::FailedPrecondition("a fold lost a whole class");
    }

    GmpSvmTrainer trainer(options.train);
    GMP_ASSIGN_OR_RETURN(MpSvmModel model, trainer.Train(train, executor, nullptr));
    MpSvmPredictor predictor(&model);
    GMP_ASSIGN_OR_RETURN(
        PredictResult pred,
        predictor.Predict(test.features(), executor, options.predict));

    GMP_ASSIGN_OR_RETURN(double fold_error, ErrorRate(pred.labels, test.labels()));
    result.fold_errors.push_back(fold_error);
    for (size_t i = 0; i < test_rows.size(); ++i) {
      const size_t row = static_cast<size_t>(test_rows[i]);
      pooled_pred[row] = pred.labels[i];
      std::copy(pred.probabilities.begin() +
                    static_cast<int64_t>(i) * dataset.num_classes(),
                pred.probabilities.begin() +
                    static_cast<int64_t>(i + 1) * dataset.num_classes(),
                pooled_prob.begin() +
                    static_cast<int64_t>(row) * dataset.num_classes());
    }
  }

  GMP_ASSIGN_OR_RETURN(result.error_rate, ErrorRate(pooled_pred, dataset.labels()));
  GMP_ASSIGN_OR_RETURN(
      result.log_loss,
      LogLoss(pooled_prob, dataset.labels(), dataset.num_classes()));
  GMP_ASSIGN_OR_RETURN(
      result.brier_score,
      BrierScore(pooled_prob, dataset.labels(), dataset.num_classes()));
  executor->SynchronizeAll();
  result.sim_seconds = executor->NowSeconds() - sim_base;
  return result;
}

}  // namespace gmpsvm
