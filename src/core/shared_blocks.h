// MP-SVM-level kernel-value sharing (Section 3.3.2, Figure 3).
//
// The kernel matrix of pairwise problem (s, t) decomposes into class blocks:
// a row for instance j restricted to class c is the segment
// K(x_j, X_c) — and that segment is identical for every binary SVM whose
// problem contains both x_j and class c. SharedBlockCache stores segments
// keyed by (global row, class) under a device-memory budget with FIFO
// eviction, so concurrently trained SVMs (and successive rounds of one SVM)
// share kernel values instead of recomputing them. SharedRowSource adapts
// the cache to the BatchSmoSolver's KernelRowSource interface by
// concatenating the (j, s) and (j, t) segments.

#ifndef GMPSVM_CORE_SHARED_BLOCKS_H_
#define GMPSVM_CORE_SHARED_BLOCKS_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/dataset.h"
#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "solver/kernel_row_source.h"

namespace gmpsvm {

// Cache of kernel segments K(x_j, X_c). One instance per training run,
// shared by all pairs.
class SharedBlockCache {
 public:
  // `dataset` and `computer` must outlive the cache. `budget_bytes` bounds
  // segment storage; the reservation is charged to `executor`'s device
  // memory lazily as segments are stored.
  SharedBlockCache(const Dataset* dataset, const KernelComputer* computer,
                   size_t budget_bytes, SimExecutor* executor);

  // Returns the cached segment K(x_global_row, X_cls) or an empty span.
  std::span<const double> Lookup(int32_t global_row, int cls);

  // Pins the (g, cls_a) and (g, cls_b) keys for every g in `global_rows` so
  // eviction skips them until the next PinPairs call. A row source pins the
  // whole round's segments before Ensure-ing either class: the second
  // class's insertions must not evict the first class's (possibly old,
  // FIFO-front) hits.
  void PinPairs(std::span<const int32_t> global_rows, int cls_a, int cls_b);

  // Ensures the segments (g, cls) exist for every g in `global_rows`,
  // computing all misses as one batched product. Segments already present
  // count as shared values.
  Status Ensure(std::span<const int32_t> global_rows, int cls,
                SimExecutor* executor, StreamId stream);

  int64_t segments_cached() const { return static_cast<int64_t>(index_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t bytes_used() const { return bytes_used_; }

  // Serializes one PinPairs/Ensure/Lookup round. A row source's round spans
  // several calls whose pin/evict state must not interleave with another
  // SVM's round, so callers lock here rather than per call. Note the
  // trainers keep cache-backed runs on the serial pair path anyway (hit/miss
  // accounting is schedule-dependent); this mutex makes stray concurrent use
  // safe, not deterministic.
  std::mutex& round_mutex() { return round_mu_; }

 private:
  struct Key {
    int32_t row;
    int32_t cls;
    bool operator==(const Key& o) const { return row == o.row && cls == o.cls; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.row) << 20) ^ k.cls);
    }
  };

  void EvictUntilFits(size_t incoming_bytes);
  static int64_t PackKey(const Key& k) {
    return (static_cast<int64_t>(k.row) << 20) ^ k.cls;
  }

  const Dataset* dataset_;
  const KernelComputer* computer_;
  size_t budget_bytes_;
  SimExecutor* executor_;
  DeviceAllocation reservation_;
  std::unordered_map<Key, std::vector<double>, KeyHash> index_;
  std::unordered_set<int64_t> pinned_;
  std::deque<Key> fifo_;
  std::mutex round_mu_;
  size_t bytes_used_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

// KernelRowSource for pairwise problem (s, t) backed by a SharedBlockCache.
// Requires the problem's rows to be [ClassRows(s)..., ClassRows(t)...] in
// dataset canonical order (Dataset::MakePairProblem guarantees this).
class SharedRowSource : public KernelRowSource {
 public:
  // `computer` backs the direct-computation fallback used when the cache
  // budget cannot hold even one batch of segments.
  SharedRowSource(const BinaryProblem* problem, int class_s, int class_t,
                  SharedBlockCache* cache, const KernelComputer* computer)
      : problem_(problem),
        class_s_(class_s),
        class_t_(class_t),
        cache_(cache),
        fallback_(problem, computer) {
    for (int8_t label : problem_->y) {
      if (label > 0) ++class_s_count_;
    }
  }

  void ComputeRows(std::span<const int32_t> local_rows,
                   std::span<double* const> dest, SimExecutor* executor,
                   StreamId stream) override;

 private:
  const BinaryProblem* problem_;
  int class_s_;
  int class_t_;
  SharedBlockCache* cache_;
  DirectRowSource fallback_;
  size_t class_s_count_ = 0;
  std::vector<int32_t> globals_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_SHARED_BLOCKS_H_
