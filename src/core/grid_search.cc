#include "core/grid_search.h"

#include <limits>

namespace gmpsvm {

Result<GridSearchResult> GridSearch(const Dataset& dataset,
                                    const GridSearchOptions& options,
                                    SimExecutor* executor) {
  if (options.c_values.empty() || options.gamma_values.empty()) {
    return Status::InvalidArgument("empty hyper-parameter grid");
  }
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  GridSearchResult result;
  result.best.error_rate = std::numeric_limits<double>::infinity();
  result.best.log_loss = std::numeric_limits<double>::infinity();

  for (double c : options.c_values) {
    for (double gamma : options.gamma_values) {
      CrossValidationOptions cv_options;
      cv_options.folds = options.folds;
      cv_options.seed = options.seed;
      cv_options.train = options.train;
      cv_options.train.c = c;
      cv_options.train.kernel.gamma = gamma;
      cv_options.predict = options.predict;
      GMP_ASSIGN_OR_RETURN(CrossValidationResult cv,
                           CrossValidate(dataset, cv_options, executor));

      GridCellResult cell;
      cell.c = c;
      cell.gamma = gamma;
      cell.error_rate = cv.error_rate;
      cell.log_loss = cv.log_loss;
      cell.brier_score = cv.brier_score;
      result.cells.push_back(cell);

      const bool better =
          cell.error_rate < result.best.error_rate ||
          (cell.error_rate == result.best.error_rate &&
           cell.log_loss < result.best.log_loss);
      if (better) result.best = cell;
    }
  }
  executor->SynchronizeAll();
  result.sim_seconds = executor->NowSeconds() - sim_base;
  return result;
}

}  // namespace gmpsvm
