// Cross-validated decision values for sigmoid fitting.
//
// Stock LibSVM (svm_binary_svc_probability) fits the Platt sigmoid on
// decision values from an internal 5-fold cross-validation rather than on
// the training-set decision values, trading ~5x extra binary training for
// less optimistic (better calibrated) probabilities. The paper's Algorithm 2
// uses the direct training-set values, so that is this library's default;
// this module provides the LibSVM-faithful alternative behind
// MpTrainOptions::sigmoid_cv_folds.

#ifndef GMPSVM_CORE_SIGMOID_CV_H_
#define GMPSVM_CORE_SIGMOID_CV_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "solver/svm_problem.h"

namespace gmpsvm {

// Trains one binary SVM for a (sub-)problem.
using BinarySolveFn = std::function<Result<BinarySolution>(
    const BinaryProblem& problem, SimExecutor* executor, StreamId stream)>;

// Returns per-instance decision values where v[i] was produced by a model
// that did NOT train on instance i (stratified `folds`-fold CV inside the
// binary problem). `computer` must cover the problem's underlying matrix.
Result<std::vector<double>> CrossValidatedDecisionValues(
    const BinaryProblem& problem, const KernelComputer& computer,
    const BinarySolveFn& solve, int folds, uint64_t seed, SimExecutor* executor,
    StreamId stream);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_SIGMOID_CV_H_
