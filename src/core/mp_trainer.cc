#include "core/mp_trainer.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/shared_blocks.h"
#include "core/sigmoid_cv.h"
#include "prob/pairwise_coupling.h"

namespace gmpsvm {
namespace {

// Emits a named device-origin phase span for [start, end) on `stream` if the
// executor has a span recorder attached. Phase spans envelop the leaf task
// spans the executor records itself; they are excluded from busy-time math.
void RecordPhaseSpan(SimExecutor* executor, StreamId stream, std::string name,
                     double start, double end) {
  obs::SpanRecorder* recorder = executor->span_recorder();
  if (recorder == nullptr || end <= start) return;
  obs::SpanEvent span;
  span.name = std::move(name);
  span.origin = obs::SpanEvent::Origin::kDevice;
  span.lane = executor->lane_base() + stream;
  span.start_seconds = start;
  span.end_seconds = end;
  span.is_phase = true;
  recorder->RecordSpan(span);
}

// Accumulates trained binary SVMs into a model with (optionally deduplicated)
// support-vector pool.
class ModelBuilder {
 public:
  ModelBuilder(const Dataset* dataset, const MpTrainOptions& options)
      : dataset_(dataset), options_(options) {
    model_.num_classes = dataset->num_classes();
    model_.c = options.c;
    model_.kernel = options.kernel;
  }

  void AddBinarySvm(int s, int t, const BinaryProblem& problem,
                    const BinarySolution& solution, const SigmoidParams& sigmoid) {
    BinarySvmEntry entry;
    entry.class_s = s;
    entry.class_t = t;
    entry.bias = solution.bias;
    entry.sigmoid = sigmoid;
    for (int64_t i = 0; i < problem.n(); ++i) {
      const double a = solution.alpha[static_cast<size_t>(i)];
      if (a <= 0.0) continue;
      const int32_t global_row = problem.rows[static_cast<size_t>(i)];
      entry.sv_pool_index.push_back(PoolIndex(global_row));
      entry.sv_coef.push_back(a * problem.y[static_cast<size_t>(i)]);
    }
    model_.svms.push_back(std::move(entry));
  }

  MpSvmModel Finish() {
    model_.support_vectors = dataset_->features().SelectRows(pool_rows_);
    model_.pool_source_rows = std::move(pool_rows_);
    return std::move(model_);
  }

 private:
  int32_t PoolIndex(int32_t global_row) {
    if (options_.share_support_vectors) {
      auto [it, inserted] =
          pool_map_.try_emplace(global_row, static_cast<int32_t>(pool_rows_.size()));
      if (inserted) pool_rows_.push_back(global_row);
      return it->second;
    }
    pool_rows_.push_back(global_row);
    return static_cast<int32_t>(pool_rows_.size() - 1);
  }

  const Dataset* dataset_;
  const MpTrainOptions& options_;
  MpSvmModel model_;
  std::vector<int32_t> pool_rows_;
  std::unordered_map<int32_t, int32_t> pool_map_;
};

// Decision values on the training instances come for free from the final
// optimality indicators: v_i = f_i + y_i + b (Equation 3 vs Equation 11).
std::vector<double> TrainingDecisionValues(const BinaryProblem& problem,
                                           const BinarySolution& solution) {
  std::vector<double> v(solution.f.size());
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = solution.f[i] + static_cast<double>(problem.y[i]) + solution.bias;
  }
  return v;
}

void FillReport(SimExecutor* executor, double sim_base,
                const ExecutorCounters& counters_base, const Stopwatch& wall,
                MpTrainReport* report) {
  if (report == nullptr) return;
  report->sim_seconds = executor->NowSeconds() - sim_base;
  report->wall_seconds = wall.ElapsedSeconds();
  report->kernel_values_computed =
      executor->counters().kernel_values_computed - counters_base.kernel_values_computed;
  report->kernel_values_reused =
      executor->counters().kernel_values_reused - counters_base.kernel_values_reused;
  report->peak_device_bytes = executor->counters().peak_bytes_in_use;
}

}  // namespace

Status MpTrainOptions::Validate(int num_classes) const {
  if (!(c > 0.0)) {
    return Status::InvalidArgument(StrPrintf("c must be positive, got %g", c));
  }
  GMP_RETURN_NOT_OK(batch.Validate());
  if (!class_weights.empty()) {
    if (num_classes > 0 &&
        class_weights.size() != static_cast<size_t>(num_classes)) {
      return Status::InvalidArgument(
          StrPrintf("class_weights size (%zu) must equal num_classes (%d)",
                    class_weights.size(), num_classes));
    }
    for (size_t k = 0; k < class_weights.size(); ++k) {
      if (!(class_weights[k] > 0.0)) {
        return Status::InvalidArgument(
            StrPrintf("class_weights[%zu] must be positive, got %g", k,
                      class_weights[k]));
      }
    }
  }
  if (max_concurrent_svms < 1) {
    return Status::InvalidArgument(StrPrintf(
        "max_concurrent_svms must be >= 1, got %d", max_concurrent_svms));
  }
  if (platt_parallel_candidates < 1) {
    return Status::InvalidArgument(
        StrPrintf("platt_parallel_candidates must be >= 1, got %d",
                  platt_parallel_candidates));
  }
  if (sigmoid_cv_folds < 0 || sigmoid_cv_folds == 1) {
    return Status::InvalidArgument(StrPrintf(
        "sigmoid_cv_folds must be 0 or >= 2, got %d", sigmoid_cv_folds));
  }
  return Status::OK();
}

void MpTrainReport::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("gmpsvm_train_sim_seconds",
                     "Simulated seconds from training start to model completion.")
      ->Set(sim_seconds);
  registry->GetGauge("gmpsvm_train_wall_seconds",
                     "Host wall-clock seconds spent training.")
      ->Set(wall_seconds);
  registry->GetCounter("gmpsvm_train_solver_iterations_total",
                       "SMO subproblems solved across all binary SVMs.")
      ->Add(static_cast<double>(solver.iterations));
  registry->GetCounter("gmpsvm_train_solver_outer_rounds_total",
                       "Working-set refreshes across all binary SVMs.")
      ->Add(static_cast<double>(solver.outer_rounds));
  registry->GetCounter("gmpsvm_train_kernel_rows_computed_total",
                       "Kernel rows computed by the solvers.")
      ->Add(static_cast<double>(solver.kernel_rows_computed));
  registry->GetCounter("gmpsvm_train_kernel_rows_reused_total",
                       "Kernel rows served from the buffer by the solvers.")
      ->Add(static_cast<double>(solver.kernel_rows_reused));
  registry->GetCounter("gmpsvm_train_kernel_values_computed_total",
                       "Kernel values computed during training.")
      ->Add(static_cast<double>(kernel_values_computed));
  registry->GetCounter("gmpsvm_train_kernel_values_reused_total",
                       "Kernel values reused during training.")
      ->Add(static_cast<double>(kernel_values_reused));
  registry->GetGauge("gmpsvm_train_peak_device_bytes",
                     "Peak simulated device memory during training.")
      ->SetMax(static_cast<double>(peak_device_bytes));
  for (const auto& [phase, seconds] : phases.phases()) {
    registry
        ->GetCounter("gmpsvm_train_phase_sim_seconds_total",
                     "Simulated seconds attributed to a training phase.",
                     {{"phase", phase}})
        ->Add(seconds);
  }
}

Result<MpSvmModel> SequentialMpTrainer::Train(const Dataset& dataset,
                                              SimExecutor* executor,
                                              MpTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  // Ship the training data to the device once.
  const double load_t0 = executor->StreamTime(kDefaultStream);
  executor->Transfer(kDefaultStream, static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  RecordPhaseSpan(executor, kDefaultStream, "data_load", load_t0,
                  executor->StreamTime(kDefaultStream));

  KernelComputer computer(&dataset.features(), options_.kernel);
  SmoSolver solver(options_.smo);
  ModelBuilder builder(&dataset, options_);

  for (const auto& [s, t] : dataset.ClassPairs()) {
    BinaryProblem problem = dataset.MakePairProblem(s, t, options_.c, options_.kernel);
    if (!options_.class_weights.empty()) {
      problem.weight_pos = options_.class_weights[static_cast<size_t>(s)];
      problem.weight_neg = options_.class_weights[static_cast<size_t>(t)];
    }
    SolverStats stats;
    const double smo_t0 = executor->StreamTime(kDefaultStream);
    GMP_ASSIGN_OR_RETURN(
        BinarySolution solution,
        solver.Solve(problem, computer, executor, kDefaultStream, &stats));
    RecordPhaseSpan(executor, kDefaultStream, StrPrintf("smo %dv%d", s, t),
                    smo_t0, executor->StreamTime(kDefaultStream));

    std::vector<double> v;
    if (options_.sigmoid_cv_folds >= 2) {
      SmoSolver cv_solver(options_.smo);
      GMP_ASSIGN_OR_RETURN(
          v, CrossValidatedDecisionValues(
                 problem, computer,
                 [&](const BinaryProblem& sub, SimExecutor* exec, StreamId str) {
                   return cv_solver.Solve(sub, computer, exec, str, nullptr);
                 },
                 options_.sigmoid_cv_folds, /*seed=*/1u, executor,
                 kDefaultStream));
    } else {
      v = TrainingDecisionValues(problem, solution);
    }
    const double sigmoid_t0 = executor->StreamTime(kDefaultStream);
    GMP_ASSIGN_OR_RETURN(
        SigmoidParams sigmoid,
        FitSigmoid(v, problem.y, options_.platt, executor, kDefaultStream,
                   /*parallel_candidates=*/1));
    RecordPhaseSpan(executor, kDefaultStream, StrPrintf("sigmoid %dv%d", s, t),
                    sigmoid_t0, executor->StreamTime(kDefaultStream));
    if (report != nullptr) {
      report->phases.Add("sigmoid",
                         executor->StreamTime(kDefaultStream) - sigmoid_t0);
      report->solver.Merge(stats);
      report->phases.Merge(stats.phases);
    }
    builder.AddBinarySvm(s, t, problem, solution, sigmoid);
  }

  executor->SynchronizeAll();
  FillReport(executor, sim_base, counters_base, wall, report);
  return builder.Finish();
}

Result<MpSvmModel> GmpSvmTrainer::Train(const Dataset& dataset,
                                        SimExecutor* executor,
                                        MpTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  const double load_t0 = executor->StreamTime(kDefaultStream);
  executor->Transfer(kDefaultStream, static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  RecordPhaseSpan(executor, kDefaultStream, "data_load", load_t0,
                  executor->StreamTime(kDefaultStream));

  KernelComputer computer(&dataset.features(), options_.kernel);
  BatchSmoSolver solver(options_.batch);
  ModelBuilder builder(&dataset, options_);

  // Shared block cache lives across the whole run so later pairs reuse
  // earlier pairs' class segments.
  std::unique_ptr<SharedBlockCache> cache;
  if (options_.share_kernel_blocks) {
    cache = std::make_unique<SharedBlockCache>(&dataset, &computer,
                                               options_.shared_cache_bytes, executor);
  }

  const auto pairs = dataset.ClassPairs();

  // Greedily pack pairs into concurrent groups under the memory budget:
  // each pair needs its kernel buffer (ws * n_pair doubles) on the device.
  const int64_t ws_rows = std::max(2, options_.batch.working_set.ws_size);
  const size_t budget = executor->memory_budget();
  std::vector<std::vector<size_t>> groups;  // indices into `pairs`
  {
    std::vector<size_t> current;
    size_t current_bytes = 0;
    const size_t usable = budget > executor->bytes_in_use()
                              ? (budget - executor->bytes_in_use()) * 6 / 10
                              : 0;
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto& [s, t] = pairs[p];
      const int64_t n_pair =
          static_cast<int64_t>(dataset.ClassRows(s).size() +
                               dataset.ClassRows(t).size());
      const size_t need = static_cast<size_t>(std::min<int64_t>(ws_rows, n_pair) *
                                              n_pair) *
                          sizeof(double);
      const bool full = !current.empty() &&
                        (static_cast<int>(current.size()) >=
                             std::max(1, options_.max_concurrent_svms) ||
                         current_bytes + need > usable);
      if (full) {
        groups.push_back(std::move(current));
        current.clear();
        current_bytes = 0;
      }
      current.push_back(p);
      current_bytes += need;
    }
    if (!current.empty()) groups.push_back(std::move(current));
  }

  for (const auto& group : groups) {
    // One stream per pair in the group, each owning an equal share of SMs
    // (the paper caps SMs per binary SVM to enable concurrency).
    const double share = 1.0 / static_cast<double>(group.size());
    std::vector<StreamId> streams;
    streams.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      streams.push_back(executor->CreateStream(share));
    }

    for (size_t gi = 0; gi < group.size(); ++gi) {
      const auto& [s, t] = pairs[group[gi]];
      const StreamId stream = streams[gi];
      BinaryProblem problem =
          dataset.MakePairProblem(s, t, options_.c, options_.kernel);
      if (!options_.class_weights.empty()) {
        problem.weight_pos = options_.class_weights[static_cast<size_t>(s)];
        problem.weight_neg = options_.class_weights[static_cast<size_t>(t)];
      }

      SolverStats stats;
      BinarySolution solution;
      const double smo_t0 = executor->StreamTime(stream);
      if (cache != nullptr) {
        SharedRowSource source(&problem, s, t, cache.get(), &computer);
        GMP_ASSIGN_OR_RETURN(
            solution,
            solver.Solve(problem, computer, &source, executor, stream, &stats));
      } else {
        GMP_ASSIGN_OR_RETURN(
            solution, solver.Solve(problem, computer, executor, stream, &stats));
      }
      RecordPhaseSpan(executor, stream, StrPrintf("smo %dv%d", s, t), smo_t0,
                      executor->StreamTime(stream));

      // Concurrent sigmoid fitting on the pair's own stream, with parallel
      // candidate evaluation (Section 3.3.2).
      std::vector<double> v;
      if (options_.sigmoid_cv_folds >= 2) {
        GMP_ASSIGN_OR_RETURN(
            v, CrossValidatedDecisionValues(
                   problem, computer,
                   [&](const BinaryProblem& sub, SimExecutor* exec, StreamId str) {
                     return solver.Solve(sub, computer, exec, str, nullptr);
                   },
                   options_.sigmoid_cv_folds, /*seed=*/1u, executor, stream));
      } else {
        v = TrainingDecisionValues(problem, solution);
      }
      const double sigmoid_t0 = executor->StreamTime(stream);
      GMP_ASSIGN_OR_RETURN(
          SigmoidParams sigmoid,
          FitSigmoid(v, problem.y, options_.platt, executor, stream,
                     options_.platt_parallel_candidates));
      RecordPhaseSpan(executor, stream, StrPrintf("sigmoid %dv%d", s, t),
                      sigmoid_t0, executor->StreamTime(stream));
      if (report != nullptr) {
        report->phases.Add("sigmoid", executor->StreamTime(stream) - sigmoid_t0);
        report->solver.Merge(stats);
        report->phases.Merge(stats.phases);
      }
      builder.AddBinarySvm(s, t, problem, solution, sigmoid);
    }
    // Barrier between groups: buffers are reclaimed before the next group.
    executor->SynchronizeAll();
  }

  executor->SynchronizeAll();
  FillReport(executor, sim_base, counters_base, wall, report);
  return builder.Finish();
}

}  // namespace gmpsvm
